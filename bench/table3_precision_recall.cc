// Regenerates paper Table 3: precision and recall of the best SQL
// statement SODA produces per benchmark query, plus the number of results
// with P,R > 0 and P,R = 0. Paper reference values are printed alongside.

#include <cstdio>

#include "bench_util.h"

int main() {
  auto fixture = soda::bench::BuildFixture();
  auto evaluations = soda::EvaluateWorkload(*fixture->soda,
                                            soda::EnterpriseWorkload());
  if (!evaluations.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 evaluations.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Table 3: Precision and recall for experiment queries including\n"
      "inverted index for base data. (measured | paper)\n\n");
  std::printf("%-6s %13s %13s %14s %14s\n", "Q", "Best Precision",
              "Best Recall", "#Results P,R>0", "#Results P,R=0");
  const auto& workload = soda::EnterpriseWorkload();
  for (size_t i = 0; i < workload.size(); ++i) {
    const soda::BenchmarkQuery& query = workload[i];
    const soda::QueryEvaluation& evaluation = (*evaluations)[i];
    std::printf("%-6s %5.2f | %4.2f  %5.2f | %4.2f  %6d | %3d   %6d | %3d\n",
                query.id.c_str(), evaluation.best.precision,
                query.paper_precision, evaluation.best.recall,
                query.paper_recall, evaluation.results_nonzero,
                query.paper_results_nonzero, evaluation.results_zero,
                query.paper_results_zero);
  }
  std::printf(
      "\nShape notes:\n"
      "  Q2.1/Q2.2: recall 0.2 — bi-temporal historization: the history\n"
      "             join is not reflected in the schema graph.\n"
      "  Q5.0:      precision collapse — bridge table between inheritance\n"
      "             siblings (assoc_empl_td).\n"
      "  Q7.0:      2x superset — only the order-currency restriction is\n"
      "             generated, not the settlement restriction.\n"
      "  Q9.0:      all results zero — COUNT(*) over the party-address\n"
      "             bridge double-counts persons.\n");
  return 0;
}
