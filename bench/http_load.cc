// Closed/open-loop load harness for the HTTP front end.
//
// Default mode is fully self-contained: build the mini-bank, put a
// sharded engine (with live-freshness wiring) behind a SodaHttpServer on
// an ephemeral loopback port, then drive a concurrency sweep of mixed
// traffic at it over real sockets:
//
//   * hit traffic     — the demo dashboard queries, repeated (cache hits
//                       after the first round);
//   * miss traffic    — per-request unique query strings (every one a
//                       cache miss that runs the full pipeline);
//   * mutation traffic— rows appended to the live database mid-sweep;
//                       the change log + FreshnessManager invalidate the
//                       dependent cache keys, so subsequent "hit" traffic
//                       re-misses: the freshness path under load.
//
// Each sweep level runs `--requests` requests through `--concurrency`
// workers. Closed loop by default (a worker fires its next request the
// moment the previous response lands); `--open-rate R` switches to an
// open loop where arrivals are scheduled at R requests/second and
// latency includes queueing delay behind slow responses.
//
// Latency percentiles are exact (every sample is kept and sorted —
// p50/p99/p999 are order statistics, not histogram-bucket estimates).
// Results go to --out as JSON (BENCH_http_load.json in CI, uploaded as
// an artifact) and to stdout as grep-friendly `key=value` lines that the
// Release CI leg asserts on (server_requests, server_shed, load_p99_ms).
//
// The accounting invariant CI enforces: every request is either ok (200),
// shed (503 — booked by the server AND counted here), or dropped
// (transport error / unexpected status). Dropped must be zero; shed must
// match the server's own server.shed book. Nothing is silently lost.
//
// `--probe` is a one-shot smoke check (healthz + search round trip +
// metrics exposition) against an already-running server — the no-curl
// fallback for the CI server smoke stage.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/freshness.h"
#include "core/sharded_engine.h"
#include "datasets/minibank.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "pattern/library.h"
#include "storage/change_log.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::vector<size_t> concurrency = {1, 2, 4};
  size_t requests = 200;       // per sweep level
  size_t shards = 2;
  size_t threads = 2;          // per shard
  size_t cache_capacity = 64;
  size_t watermark = 128;
  double open_rate = 0.0;      // requests/sec; 0 = closed loop
  double hit_fraction = 0.7;
  size_t mutate_every = 50;    // 0 = no mutation traffic
  size_t retry_shed = 0;       // client 503 retries (closed loop); 0 = off
  std::string out = "BENCH_http_load.json";
  std::string host = "127.0.0.1";
  uint16_t port = 0;           // 0 = spawn the in-process server
  bool probe = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --concurrency LIST  sweep levels, comma-separated (default 1,2,4)\n"
      "  --requests N        requests per level (default 200)\n"
      "  --shards N          engine shards for the in-process server (2)\n"
      "  --threads N         worker threads per shard (2)\n"
      "  --watermark N       admission shed watermark (128)\n"
      "  --hit-fraction F    fraction of cache-hit traffic (0.7)\n"
      "  --mutate-every N    one base-data append per N requests; 0=off (50)\n"
      "  --open-rate R       open-loop arrivals/sec; 0 = closed loop\n"
      "  --retry-shed N      client retries per shed 503, honoring\n"
      "                      Retry-After (closed loop only; 0 = off)\n"
      "  --out PATH          JSON report path (BENCH_http_load.json)\n"
      "  --host H --port P   target an external server instead\n"
      "  --probe             one-shot smoke probe (needs --port)\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Options* options) {
  auto next = [&](int* i) -> const char* {
    if (*i + 1 >= argc) return nullptr;
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    const char* value = nullptr;
    if (flag == "--probe") {
      options->probe = true;
    } else if (flag == "--concurrency" && (value = next(&i))) {
      options->concurrency.clear();
      const char* p = value;
      while (*p != '\0') {
        char* end = nullptr;
        unsigned long level = std::strtoul(p, &end, 10);
        if (end == p || level == 0) return false;
        options->concurrency.push_back(level);
        p = (*end == ',') ? end + 1 : end;
        if (*end != '\0' && *end != ',') return false;
      }
      if (options->concurrency.empty()) return false;
    } else if (flag == "--requests" && (value = next(&i))) {
      options->requests = std::strtoul(value, nullptr, 10);
    } else if (flag == "--shards" && (value = next(&i))) {
      options->shards = std::strtoul(value, nullptr, 10);
    } else if (flag == "--threads" && (value = next(&i))) {
      options->threads = std::strtoul(value, nullptr, 10);
    } else if (flag == "--watermark" && (value = next(&i))) {
      options->watermark = std::strtoul(value, nullptr, 10);
    } else if (flag == "--hit-fraction" && (value = next(&i))) {
      options->hit_fraction = std::strtod(value, nullptr);
    } else if (flag == "--mutate-every" && (value = next(&i))) {
      options->mutate_every = std::strtoul(value, nullptr, 10);
    } else if (flag == "--open-rate" && (value = next(&i))) {
      options->open_rate = std::strtod(value, nullptr);
    } else if (flag == "--retry-shed" && (value = next(&i))) {
      options->retry_shed = std::strtoul(value, nullptr, 10);
    } else if (flag == "--out" && (value = next(&i))) {
      options->out = value;
    } else if (flag == "--host" && (value = next(&i))) {
      options->host = value;
    } else if (flag == "--port" && (value = next(&i))) {
      options->port = static_cast<uint16_t>(std::strtoul(value, nullptr, 10));
    } else {
      return false;
    }
  }
  return true;
}

const std::vector<std::string>& Dashboard() {
  static const std::vector<std::string> dashboard = {
      "customers Zürich financial instruments",
      "sum(investments) group by (currency)",
      "addresses Sara Guttinger",
      "private customers family name",
  };
  return dashboard;
}

/// Request body for request number `k` of a level: deterministic
/// hit/miss interleave (no RNG — identical invocations produce identical
/// traffic).
std::string RequestBody(size_t k, double hit_fraction) {
  size_t hit_tenths =
      static_cast<size_t>(std::lround(std::clamp(hit_fraction, 0.0, 1.0) *
                                      10.0));
  bool hit = (k % 10) < hit_tenths;
  std::string body;
  if (hit && k % 13 == 0) {
    // Occasional batch request: the whole dashboard as one POST.
    body = "{\"queries\":[";
    for (size_t i = 0; i < Dashboard().size(); ++i) {
      if (i > 0) body += ",";
      soda::AppendJsonQuoted(&body, Dashboard()[i]);
    }
    body += "]}";
    return body;
  }
  body = "{\"query\":";
  if (hit) {
    soda::AppendJsonQuoted(&body, Dashboard()[k % Dashboard().size()]);
  } else {
    soda::AppendJsonQuoted(
        &body, "customers Zürich financial instruments v" + std::to_string(k));
  }
  body += "}";
  return body;
}

/// Exact order-statistic percentile over an already-sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

struct LevelStats {
  size_t concurrency = 0;
  size_t requests = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t dropped = 0;
  size_t mutations = 0;
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

/// The in-process serving stack (absent when --port targets an external
/// server).
struct InProcessStack {
  std::unique_ptr<soda::MiniBank> bank;
  std::unique_ptr<soda::ShardedSodaEngine> engine;
  std::unique_ptr<soda::FreshnessManager> freshness;
  std::unique_ptr<soda::SodaHttpServer> server;
  std::atomic<int64_t> next_row_id{50000};

  /// One base-data mutation: append a fresh individual. Thread-safe
  /// (Table::Append takes the change log's exclusive data lock); the
  /// FreshnessManager listener applies index deltas and evicts dependent
  /// cache keys before the lock is released.
  void Mutate() {
    int64_t id = next_row_id.fetch_add(1);
    soda::Table* individuals = bank->db.FindTable("individuals");
    (void)individuals->Append(
        {soda::Value::Int(id), soda::Value::Str("Load"),
         soda::Value::Str("Harness" + std::to_string(id)),
         soda::Value::Int(100000),
         soda::Value::DateV(soda::Date::FromYmd(1990, 1, 1))});
  }
};

soda::Result<std::unique_ptr<InProcessStack>> BuildStack(
    const Options& options) {
  auto stack = std::make_unique<InProcessStack>();
  SODA_ASSIGN_OR_RETURN(stack->bank, soda::BuildMiniBank());

  soda::SodaConfig config;
  config.num_shards = options.shards;
  config.num_threads = options.threads;
  config.cache_capacity = options.cache_capacity;
  SODA_ASSIGN_OR_RETURN(
      stack->engine,
      soda::ShardedSodaEngine::Create(&stack->bank->db, &stack->bank->graph,
                                      soda::CreditSuissePatternLibrary(),
                                      config));

  stack->freshness = std::make_unique<soda::FreshnessManager>(
      &stack->bank->db.change_log());
  stack->freshness->Track(stack->engine.get());

  soda::HttpServerOptions server_options;
  size_t max_level = *std::max_element(options.concurrency.begin(),
                                       options.concurrency.end());
  server_options.num_threads = std::max<size_t>(4, max_level);
  server_options.shed_watermark = options.watermark;
  soda::FreshnessManager* freshness = stack->freshness.get();
  server_options.extra_metrics = [freshness] {
    return freshness->metrics_snapshot();
  };
  stack->server = std::make_unique<soda::SodaHttpServer>(
      stack->engine.get(), server_options);
  SODA_RETURN_NOT_OK(stack->server->Start());
  return stack;
}

LevelStats RunLevel(const Options& options, size_t concurrency, uint16_t port,
                    InProcessStack* stack) {
  LevelStats stats;
  stats.concurrency = concurrency;
  stats.requests = options.requests;

  std::atomic<size_t> next{0};
  std::atomic<size_t> ok{0};
  std::atomic<size_t> shed{0};
  std::atomic<size_t> dropped{0};
  std::atomic<size_t> mutations{0};
  std::vector<std::vector<double>> latencies(concurrency);

  Clock::time_point level_start = Clock::now();
  double interval_ms =
      options.open_rate > 0.0 ? 1000.0 / options.open_rate : 0.0;

  std::vector<std::thread> workers;
  workers.reserve(concurrency);
  for (size_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      soda::HttpClient client(options.host, port, /*timeout_ms=*/60000.0);
      if (options.retry_shed > 0 && interval_ms == 0.0) {
        // Closed loop only: an open loop must not stall its arrival
        // schedule sleeping out Retry-After.
        soda::HttpRetryPolicy policy;
        policy.max_retries = options.retry_shed;
        client.set_retry_policy(policy);
      }
      for (;;) {
        size_t k = next.fetch_add(1);
        if (k >= options.requests) break;

        if (stack != nullptr && options.mutate_every != 0 &&
            k % options.mutate_every == options.mutate_every - 1) {
          stack->Mutate();
          mutations.fetch_add(1);
        }

        Clock::time_point issue_at = level_start;
        if (interval_ms > 0.0) {
          // Open loop: arrival k is scheduled, not reactive; latency
          // below includes time spent queued behind slow responses.
          issue_at += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  interval_ms * static_cast<double>(k)));
          std::this_thread::sleep_until(issue_at);
        } else {
          issue_at = Clock::now();
        }

        std::string body = RequestBody(k, options.hit_fraction);
        auto response = client.Post("/search", body);
        double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                              issue_at)
                        .count();
        if (!response.ok()) {
          dropped.fetch_add(1);
          continue;
        }
        if (response->status == 200) {
          ok.fetch_add(1);
          latencies[w].push_back(ms);
        } else if (response->status == 503) {
          shed.fetch_add(1);
        } else {
          dropped.fetch_add(1);
        }
      }
      // 503s the client absorbed by retrying are still sheds the server
      // booked — add them back so the shed-accounting invariant (client
      // shed == server.shed) survives client-side retries.
      shed.fetch_add(client.sheds_absorbed());
    });
  }
  for (std::thread& worker : workers) worker.join();

  stats.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            level_start)
                      .count();
  stats.ok = ok.load();
  stats.shed = shed.load();
  stats.dropped = dropped.load();
  stats.mutations = mutations.load();

  std::vector<double> all;
  for (const std::vector<double>& lane : latencies) {
    all.insert(all.end(), lane.begin(), lane.end());
  }
  std::sort(all.begin(), all.end());
  stats.p50_ms = Percentile(all, 50.0);
  stats.p99_ms = Percentile(all, 99.0);
  stats.p999_ms = Percentile(all, 99.9);
  stats.max_ms = all.empty() ? 0.0 : all.back();
  return stats;
}

void AppendLevelJson(std::string* out, const LevelStats& stats) {
  char buf[512];
  double rps = stats.wall_ms > 0.0
                   ? 1000.0 * static_cast<double>(stats.ok + stats.shed) /
                         stats.wall_ms
                   : 0.0;
  std::snprintf(
      buf, sizeof(buf),
      "{\"concurrency\":%zu,\"requests\":%zu,\"ok\":%zu,\"shed\":%zu,"
      "\"dropped\":%zu,\"mutations\":%zu,\"wall_ms\":%.3f,"
      "\"throughput_rps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"p999_ms\":%.3f,\"max_ms\":%.3f}",
      stats.concurrency, stats.requests, stats.ok, stats.shed, stats.dropped,
      stats.mutations, stats.wall_ms, rps, stats.p50_ms, stats.p99_ms,
      stats.p999_ms, stats.max_ms);
  out->append(buf);
}

/// One-shot smoke probe against a running server: the CI server smoke
/// stage's fallback when curl is unavailable. Prints PROBE_OK / a
/// failure reason; exit status is the verdict.
int RunProbe(const Options& options) {
  if (options.port == 0) {
    std::fprintf(stderr, "--probe needs --port\n");
    return 2;
  }
  soda::HttpClient client(options.host, options.port, 15000.0);

  auto health = client.Get("/healthz");
  // First-line check: /healthz leads with the verdict and may append
  // per-shard breaker detail lines below it.
  bool healthy = health.ok() && health->status == 200 &&
                 health->body.compare(0, 3, "ok\n") == 0;
  if (!healthy) {
    std::fprintf(stderr, "PROBE_FAIL healthz: %s\n",
                 health.ok() ? std::to_string(health->status).c_str()
                             : health.status().ToString().c_str());
    return 1;
  }

  auto search =
      client.Post("/search", RequestBody(/*k=*/1, /*hit_fraction=*/1.0));
  if (!search.ok() || search->status != 200 ||
      search->body.find("\"outputs\"") == std::string::npos) {
    std::fprintf(stderr, "PROBE_FAIL search: %s\n",
                 search.ok() ? std::to_string(search->status).c_str()
                             : search.status().ToString().c_str());
    return 1;
  }

  auto metrics = client.Get("/metrics");
  if (!metrics.ok() || metrics->status != 200) {
    std::fprintf(stderr, "PROBE_FAIL metrics: %s\n",
                 metrics.ok() ? std::to_string(metrics->status).c_str()
                              : metrics.status().ToString().c_str());
    return 1;
  }
  for (const char* required :
       {"soda_server_requests_total", "soda_server_accepted_total",
        "soda_server_shed_total", "soda_server_timeouts_total",
        "soda_server_inflight"}) {
    if (metrics->body.find(required) == std::string::npos) {
      std::fprintf(stderr, "PROBE_FAIL metrics: missing %s\n", required);
      return 1;
    }
  }
  // The /debug introspection pair must answer valid JSON with their
  // load-bearing top-level keys — an operator's first stop at a
  // misbehaving box must never itself be broken.
  auto vars = client.Get("/debug/vars");
  if (!vars.ok() || vars->status != 200) {
    std::fprintf(stderr, "PROBE_FAIL debug/vars: %s\n",
                 vars.ok() ? std::to_string(vars->status).c_str()
                           : vars.status().ToString().c_str());
    return 1;
  }
  auto vars_doc = soda::ParseJson(vars->body);
  if (!vars_doc.ok() || !vars_doc->is_object() ||
      vars_doc->Find("server") == nullptr ||
      vars_doc->Find("service") == nullptr ||
      vars_doc->Find("trace") == nullptr) {
    std::fprintf(stderr, "PROBE_FAIL debug/vars: not a valid vars object\n");
    return 1;
  }
  auto traces = client.Get("/debug/traces?min_ms=0");
  if (!traces.ok() || traces->status != 200) {
    std::fprintf(stderr, "PROBE_FAIL debug/traces: %s\n",
                 traces.ok() ? std::to_string(traces->status).c_str()
                             : traces.status().ToString().c_str());
    return 1;
  }
  auto traces_doc = soda::ParseJson(traces->body);
  if (!traces_doc.ok() || !traces_doc->is_object() ||
      traces_doc->Find("traces") == nullptr ||
      !traces_doc->Find("traces")->is_array()) {
    std::fprintf(stderr,
                 "PROBE_FAIL debug/traces: not a valid trace listing\n");
    return 1;
  }
  std::printf("PROBE_OK healthz+search+metrics+debug on %s:%u\n",
              options.host.c_str(), options.port);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    Usage(argv[0]);
    return 2;
  }
  if (options.probe) return RunProbe(options);

  std::unique_ptr<InProcessStack> stack;
  uint16_t port = options.port;
  if (port == 0) {
    auto built = BuildStack(options);
    if (!built.ok()) {
      std::fprintf(stderr, "stack construction failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    stack = std::move(built).value();
    port = stack->server->port();
    std::printf("in-process server up on %s:%u (%zu shards x %zu threads, "
                "watermark %zu)\n",
                options.host.c_str(), port, options.shards, options.threads,
                options.watermark);
  } else {
    std::printf("targeting external server %s:%u (no mutation traffic)\n",
                options.host.c_str(), port);
  }

  std::vector<LevelStats> levels;
  size_t total_dropped = 0;
  for (size_t concurrency : options.concurrency) {
    LevelStats stats = RunLevel(options, concurrency, port, stack.get());
    total_dropped += stats.dropped;
    std::printf(
        "http_load concurrency=%zu requests=%zu ok=%zu shed=%zu dropped=%zu "
        "mutations=%zu wall_ms=%.1f p50_ms=%.3f p99_ms=%.3f p999_ms=%.3f\n",
        stats.concurrency, stats.requests, stats.ok, stats.shed,
        stats.dropped, stats.mutations, stats.wall_ms, stats.p50_ms,
        stats.p99_ms, stats.p999_ms);
    levels.push_back(stats);
  }

  // Overall percentiles across the whole sweep, as the grep tokens the
  // Release CI leg asserts on.
  size_t total_ok = 0;
  size_t total_shed = 0;
  for (const LevelStats& stats : levels) {
    total_ok += stats.ok;
    total_shed += stats.shed;
  }
  const LevelStats& last = levels.back();
  std::printf("load_p50_ms=%.3f\nload_p99_ms=%.3f\nload_p999_ms=%.3f\n",
              last.p50_ms, last.p99_ms, last.p999_ms);

  std::string json = "{\"bench\":\"http_load\",\"mode\":\"";
  json += options.open_rate > 0.0 ? "open" : "closed";
  json += "\",\"levels\":[";
  for (size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) json += ",";
    AppendLevelJson(&json, levels[i]);
  }
  json += "]";

  if (stack != nullptr) {
    // The server's own accounting must agree with the client's: every
    // shed the clients saw is booked, nothing vanished in between.
    soda::MetricsSnapshot server = stack->server->server_metrics();
    uint64_t server_requests = server.counter("server.requests");
    uint64_t server_shed = server.counter("server.shed");
    uint64_t server_timeouts = server.counter("server.timeouts");
    std::printf("server_requests=%llu\nserver_shed=%llu\n"
                "server_timeouts=%llu\n",
                static_cast<unsigned long long>(server_requests),
                static_cast<unsigned long long>(server_shed),
                static_cast<unsigned long long>(server_timeouts));
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\"server\":{\"requests\":%llu,\"shed\":%llu,"
                  "\"timeouts\":%llu}",
                  static_cast<unsigned long long>(server_requests),
                  static_cast<unsigned long long>(server_shed),
                  static_cast<unsigned long long>(server_timeouts));
    json += buf;
    if (server_shed != total_shed) {
      std::fprintf(stderr,
                   "FAIL: shed accounting mismatch (server booked %llu, "
                   "clients observed %zu)\n",
                   static_cast<unsigned long long>(server_shed), total_shed);
      return 1;
    }
  } else {
    std::printf("server_requests=external\nserver_shed=%zu\n", total_shed);
  }
  json += "}\n";

  std::ofstream out(options.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", options.out.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::printf("report written to %s (%zu ok, %zu shed, %zu dropped)\n",
              options.out.c_str(), total_ok, total_shed, total_dropped);

  if (total_dropped != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu non-shed request(s) dropped — closed-loop "
                 "accounting must be lossless\n",
                 total_dropped);
    return 1;
  }
  if (stack != nullptr) stack->server->Stop();
  return 0;
}
