// Regenerates paper Figure 6: the output of the tables step for the
// classification example — seven tables reached from the three entry
// points (parties, individuals, organizations, addresses, and the three
// financial-instrument tables).

#include <cstdio>

#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

int main() {
  auto bank = soda::BuildMiniBank();
  if (!bank.ok()) {
    std::fprintf(stderr, "%s\n", bank.status().ToString().c_str());
    return 1;
  }
  soda::SodaConfig config;
  config.execute_snippets = false;
  soda::Soda engine(&(*bank)->db, &(*bank)->graph,
                    soda::CreditSuissePatternLibrary(), config);

  std::printf("Figure 6: Output of Tables Step (join relationships not "
              "shown)\n\n");
  std::printf("Input (graph nodes):\n"
              "  Customers (Domain ontology)\n"
              "  Zürich (Base data)\n"
              "  Financial Instruments (Logical schema)\n\n");

  // Entry points as the lookup step would choose them: the ontology
  // concept for "customers", the logical-schema interpretation for
  // "financial instruments", the base-data hit for "Zürich".
  std::vector<soda::EntryPoint> entries;
  for (const auto& candidate : engine.classification().Lookup("customers")) {
    if (candidate.layer == soda::MetadataLayer::kDomainOntology) {
      entries.push_back(candidate);
      break;
    }
  }
  for (const auto& candidate :
       engine.classification().Lookup("financial instruments")) {
    if (candidate.layer == soda::MetadataLayer::kLogicalSchema) {
      entries.push_back(candidate);
      break;
    }
  }
  for (const auto& candidate : engine.classification().Lookup("Zürich")) {
    if (candidate.kind == soda::EntryPoint::Kind::kBaseData) {
      entries.push_back(candidate);
      break;
    }
  }

  auto tables = engine.tables_step().Run(entries);
  if (!tables.ok()) {
    std::fprintf(stderr, "%s\n", tables.status().ToString().c_str());
    return 1;
  }
  std::printf("Output (tables):\n");
  size_t total = 0;
  for (size_t i = 0; i < tables->tables_per_entry.size(); ++i) {
    std::printf("  from '%s':\n", entries[i].label.c_str());
    for (const auto& table : tables->tables_per_entry[i]) {
      std::printf("    %s\n", table.c_str());
      ++total;
    }
  }
  std::printf("\n%zu tables (paper: 7 — parties, individuals, organizations,"
              "\naddresses, financial_instruments, fi_contains_sec, "
              "securities)\n", total);
  return 0;
}
