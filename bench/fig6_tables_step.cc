// Regenerates paper Figure 6: the output of the tables step for the
// classification example — seven tables reached from the three entry
// points (parties, individuals, organizations, addresses, and the three
// financial-instrument tables).

#include <chrono>
#include <cstdio>

#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace {

// Per-op microseconds for TablesStep::Run over `entries`.
double MicrosPerRun(const soda::Soda& engine,
                    const std::vector<soda::EntryPoint>& entries,
                    int iterations) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    auto out = engine.tables_step().Run(entries);
    if (!out.ok()) return -1.0;
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         iterations;
}

}  // namespace

int main() {
  auto bank = soda::BuildMiniBank();
  if (!bank.ok()) {
    std::fprintf(stderr, "%s\n", bank.status().ToString().c_str());
    return 1;
  }
  soda::SodaConfig config;
  config.execute_snippets = false;
  auto engine_ptr = soda::Soda::Create(&(*bank)->db, &(*bank)->graph,
                                       soda::CreditSuissePatternLibrary(),
                                       config)
                        .value();
  soda::Soda& engine = *engine_ptr;

  std::printf("Figure 6: Output of Tables Step (join relationships not "
              "shown)\n\n");
  std::printf("Input (graph nodes):\n"
              "  Customers (Domain ontology)\n"
              "  Zürich (Base data)\n"
              "  Financial Instruments (Logical schema)\n\n");

  // Entry points as the lookup step would choose them: the ontology
  // concept for "customers", the logical-schema interpretation for
  // "financial instruments", the base-data hit for "Zürich".
  std::vector<soda::EntryPoint> entries;
  for (const auto& candidate : engine.classification().Lookup("customers")) {
    if (candidate.layer == soda::MetadataLayer::kDomainOntology) {
      entries.push_back(candidate);
      break;
    }
  }
  for (const auto& candidate :
       engine.classification().Lookup("financial instruments")) {
    if (candidate.layer == soda::MetadataLayer::kLogicalSchema) {
      entries.push_back(candidate);
      break;
    }
  }
  for (const auto& candidate : engine.classification().Lookup("Zürich")) {
    if (candidate.kind == soda::EntryPoint::Kind::kBaseData) {
      entries.push_back(candidate);
      break;
    }
  }

  auto tables = engine.tables_step().Run(entries);
  if (!tables.ok()) {
    std::fprintf(stderr, "%s\n", tables.status().ToString().c_str());
    return 1;
  }
  std::printf("Output (tables):\n");
  size_t total = 0;
  for (size_t i = 0; i < tables->tables_per_entry.size(); ++i) {
    std::printf("  from '%s':\n", entries[i].label.c_str());
    for (const auto& table : tables->tables_per_entry[i]) {
      std::printf("    %s\n", table.c_str());
      ++total;
    }
  }
  std::printf("\n%zu tables (paper: 7 — parties, individuals, organizations,"
              "\naddresses, financial_instruments, fi_contains_sec, "
              "securities)\n", total);

  // Closure ablation (PR 4): the same step with the compiled closure
  // layer (entry-point traversal memo + APSP join paths) on vs off.
  soda::SodaConfig no_closures = config;
  no_closures.enable_closures = false;
  auto engine_off_ptr = soda::Soda::Create(&(*bank)->db, &(*bank)->graph,
                                           soda::CreditSuissePatternLibrary(),
                                           no_closures)
                            .value();
  soda::Soda& engine_off = *engine_off_ptr;
  constexpr int kIterations = 2000;
  double us_on = MicrosPerRun(engine, entries, kIterations);
  double us_off = MicrosPerRun(engine_off, entries, kIterations);
  std::printf("\nTables step, %d runs (identical output):\n", kIterations);
  std::printf("  compiled closures ON    %8.2f us/run\n", us_on);
  std::printf("  compiled closures OFF   %8.2f us/run\n", us_off);
  if (us_on > 0.0 && us_off > 0.0) {
    std::printf("  speedup                 %8.2fx\n", us_off / us_on);
  }
  return 0;
}
