// End-to-end micro benchmarks: full SODA translation (Steps 1-5, no
// execution) per benchmark-query class, executor throughput, and the
// SodaEngine scaling story — a num_threads sweep over the fan-out of
// Steps 3-5 plus the LRU cache hit path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/trace.h"
#include "core/engine.h"
#include "core/freshness.h"
#include "core/session.h"
#include "core/sharded_engine.h"
#include "core/soda.h"
#include "datasets/enterprise.h"
#include "datasets/minibank.h"
#include "eval/workload.h"
#include "pattern/library.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace {

struct Env {
  std::unique_ptr<soda::EnterpriseWarehouse> warehouse;
  std::unique_ptr<soda::Soda> soda;
  std::map<std::pair<size_t, size_t>, std::unique_ptr<soda::SodaEngine>>
      engines;
  std::string widest_query;  // workload query with the most interpretations

  Env() {
    warehouse = std::move(soda::BuildEnterpriseWarehouse()).value();
    soda::SodaConfig config;
    config.execute_snippets = false;
    soda = soda::Soda::Create(&warehouse->db, &warehouse->graph,
                              soda::CreditSuissePatternLibrary(), config)
               .value();
    size_t best = 0;
    for (const soda::BenchmarkQuery& bench : soda::EnterpriseWorkload()) {
      auto output = soda->Search(bench.keywords);
      if (output.ok() && output->complexity > best) {
        best = output->complexity;
        widest_query = bench.keywords;
      }
    }
    if (widest_query.empty()) widest_query = "private customers family name";
  }

  /// Engine with `threads` workers and a cold-by-default cache. Built on
  /// first use so only swept widths pay construction.
  soda::SodaEngine* engine(size_t threads, size_t cache_capacity = 0) {
    auto key = std::make_pair(threads, cache_capacity);
    auto it = engines.find(key);
    if (it != engines.end()) return it->second.get();
    soda::SodaConfig config;
    config.execute_snippets = false;
    config.num_threads = threads;
    config.cache_capacity = cache_capacity;
    auto created = soda::SodaEngine::Create(&warehouse->db, &warehouse->graph,
                                            soda::CreditSuissePatternLibrary(),
                                            config);
    if (!created.ok()) {
      std::fprintf(stderr, "failed to build engine: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    auto* engine = created.value().get();
    engines[key] = std::move(created).value();
    return engine;
  }
};

Env* env() {
  static Env* instance = new Env();
  return instance;
}

// Note: the fixture is built lazily on first use (building it during
// static initialization would race the dataset's own static pools), so
// the first benchmark's first iteration absorbs the one-time setup cost.

void TranslateBench(benchmark::State& state, const char* query) {
  for (auto _ : state) {
    auto output = env()->soda->Search(query);
    benchmark::DoNotOptimize(output);
  }
}

void BM_TranslateKeywordOnly(benchmark::State& state) {
  TranslateBench(state, "Sara");
}
BENCHMARK(BM_TranslateKeywordOnly);

void BM_TranslateOntologyJoin(benchmark::State& state) {
  TranslateBench(state, "private customers family name");
}
BENCHMARK(BM_TranslateOntologyJoin);

void BM_TranslatePredicate(benchmark::State& state) {
  TranslateBench(state, "trade order period > date(2011-09-01)");
}
BENCHMARK(BM_TranslatePredicate);

void BM_TranslateAggregation(benchmark::State& state) {
  TranslateBench(state, "sum(investments) group by (currency)");
}
BENCHMARK(BM_TranslateAggregation);

void BM_ExecuteThreeWayJoin(benchmark::State& state) {
  soda::Executor executor(&env()->warehouse->db);
  auto stmt = soda::ParseSql(
      "SELECT indvl_td.id, indvl_nm_hist_td.family_name "
      "FROM party_td, indvl_td, indvl_nm_hist_td "
      "WHERE indvl_td.id = party_td.id "
      "AND indvl_td.curr_name_id = indvl_nm_hist_td.name_id");
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(*stmt));
  }
}
BENCHMARK(BM_ExecuteThreeWayJoin);

void BM_ExecuteGroupByAggregation(benchmark::State& state) {
  soda::Executor executor(&env()->warehouse->db);
  auto stmt = soda::ParseSql(
      "SELECT sum(invst_pos_td.invst_amt), invst_pos_td.crncy_cd "
      "FROM invst_pos_td GROUP BY invst_pos_td.crncy_cd");
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(*stmt));
  }
}
BENCHMARK(BM_ExecuteGroupByAggregation);

// ---------------------------------------------------------------------------
// SodaEngine: num_threads sweep over the Steps 3-5 fan-out. Compare the
// per-arg times to read the speedup; "interpretations" records how much
// parallelism the query exposes.
// ---------------------------------------------------------------------------

void BM_EngineFanoutWidestQuery(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  soda::SodaEngine* engine = env()->engine(threads);
  const std::string& query = env()->widest_query;
  size_t interpretations = 0;
  for (auto _ : state) {
    auto output = engine->Search(query);
    benchmark::DoNotOptimize(output);
    if (output.ok()) interpretations = output->complexity;
  }
  state.counters["threads"] = static_cast<double>(engine->num_threads());
  state.counters["interpretations"] = static_cast<double>(interpretations);
}
BENCHMARK(BM_EngineFanoutWidestQuery)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The full 13-query paper workload per iteration — the service-level view
// of the same sweep.
void BM_EngineFanoutWorkload(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  soda::SodaEngine* engine = env()->engine(threads);
  const auto& workload = soda::EnterpriseWorkload();
  for (auto _ : state) {
    for (const soda::BenchmarkQuery& bench : workload) {
      benchmark::DoNotOptimize(engine->Search(bench.keywords));
    }
  }
  state.counters["threads"] = static_cast<double>(engine->num_threads());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_EngineFanoutWorkload)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// SodaEngine: LRU cache hit path and hit rate under dashboard-style
// repetition (every query repeats after the first round).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// SodaEngine: batched SearchAll — the whole 13-query workload admitted as
// one batch per iteration, Steps 3-5 of every query flattened into one
// shared task list. "stage_samples" proves the per-stage metrics sink
// saw the traffic (CI greps for it).
// ---------------------------------------------------------------------------

void BM_EngineBatchSearchAll(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  soda::SodaEngine* engine = env()->engine(threads);
  std::vector<std::string> queries;
  for (const soda::BenchmarkQuery& bench : soda::EnterpriseWorkload()) {
    queries.push_back(bench.keywords);
  }
  for (auto _ : state) {
    auto outputs = engine->SearchAll(queries);
    benchmark::DoNotOptimize(outputs);
  }
  soda::MetricsSnapshot snapshot = engine->metrics_snapshot();
  state.counters["threads"] = static_cast<double>(engine->num_threads());
  state.counters["batch_queries"] =
      static_cast<double>(snapshot.counter("batch.queries"));
  const soda::HistogramSnapshot* lookup =
      snapshot.histogram("stage.lookup.ms");
  state.counters["stage_samples"] =
      lookup == nullptr ? 0.0 : static_cast<double>(lookup->count);
  // Per-query probe memo effectiveness: hits are classification probes
  // answered without re-scanning the inverted index (CI greps for it).
  state.counters["probe_memo_hits"] =
      static_cast<double>(snapshot.counter("index.probe_memo_hits"));
  state.counters["probe_memo_misses"] =
      static_cast<double>(snapshot.counter("index.probe_memo_misses"));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_EngineBatchSearchAll)->Arg(1)->Arg(4);

// Tracing overhead guard: the BM_EngineBatchSearchAll workload with the
// trace layer at three sampling settings — Arg is sample_every. Arg(0)
// (compiled in, sampled off: every span is one relaxed load + branch)
// must stay within noise of the untraced baseline; Arg(1) keeps every
// trace, Arg(2) alternates keep/drop so both tails of the head-sampling
// decision are exercised. "trace_spans" / "trace_sampled" /
// "trace_dropped" feed the CI counter guard for the trace surface.
void BM_TraceOverhead(benchmark::State& state) {
  size_t sample_every = static_cast<size_t>(state.range(0));
  static std::map<size_t, std::unique_ptr<soda::SodaEngine>> engines;
  auto it = engines.find(sample_every);
  if (it == engines.end()) {
    soda::SodaConfig config;
    config.execute_snippets = false;
    config.num_threads = 2;
    config.cache_capacity = 0;  // cold: trace the full pipeline each op
    auto created = soda::SodaEngine::Create(&env()->warehouse->db,
                                            &env()->warehouse->graph,
                                            soda::CreditSuissePatternLibrary(),
                                            config);
    if (!created.ok()) {
      std::fprintf(stderr, "failed to build trace engine: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    it = engines.emplace(sample_every, std::move(created).value()).first;
  }
  soda::SodaEngine* engine = it->second.get();
  soda::TraceRecorder& recorder = soda::TraceRecorder::Instance();
  recorder.Clear();
  recorder.Configure(sample_every, /*slow_threshold_ms=*/0.0);
  std::vector<std::string> queries;
  for (const soda::BenchmarkQuery& bench : soda::EnterpriseWorkload()) {
    queries.push_back(bench.keywords);
  }
  for (auto _ : state) {
    auto outputs = engine->SearchAll(queries);
    benchmark::DoNotOptimize(outputs);
  }
  // Leave the process-wide recorder off for whatever bench runs next.
  recorder.Configure(0, 0.0);
  soda::MetricsSnapshot snapshot = engine->metrics_snapshot();
  state.counters["sample_every"] = static_cast<double>(sample_every);
  state.counters["trace_spans"] =
      static_cast<double>(snapshot.counter("trace.spans"));
  state.counters["trace_sampled"] =
      static_cast<double>(snapshot.counter("trace.sampled"));
  state.counters["trace_dropped"] =
      static_cast<double>(snapshot.counter("trace.dropped"));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->Arg(2);

// Dashboard-style batch with heavy repetition: every unique query appears
// four times, so dedup should hand back 3/4 of the batch as in-batch
// hits. "dedup_hits" and "cache_hits" guard the batch accounting.
void BM_EngineBatchDedup(benchmark::State& state) {
  soda::SodaEngine* engine = env()->engine(/*threads=*/2,
                                           /*cache_capacity=*/256);
  std::vector<std::string> queries;
  for (const soda::BenchmarkQuery& bench : soda::EnterpriseWorkload()) {
    for (int repeat = 0; repeat < 4; ++repeat) {
      queries.push_back(bench.keywords);
    }
  }
  for (auto _ : state) {
    auto outputs = engine->SearchAll(queries);
    benchmark::DoNotOptimize(outputs);
  }
  soda::MetricsSnapshot snapshot = engine->metrics_snapshot();
  state.counters["dedup_hits"] =
      static_cast<double>(snapshot.counter("batch.dedup_hits"));
  state.counters["cache_hits"] =
      static_cast<double>(engine->cache_stats().hits);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_EngineBatchDedup);

// Async snippet streaming: translated SQL returns immediately, snippets
// execute on the pool and stream through the callback; the barrier is
// the per-iteration completion point. "snippets_streamed" guards the
// exactly-once delivery path end to end.
void BM_EngineAsyncStream(benchmark::State& state) {
  static soda::SodaEngine* engine = [] {
    soda::SodaConfig config;
    config.execute_snippets = true;  // streaming is the point here
    config.num_threads = 4;
    config.cache_capacity = 0;
    auto created = soda::SodaEngine::Create(
        &env()->warehouse->db, &env()->warehouse->graph,
        soda::CreditSuissePatternLibrary(), config);
    if (!created.ok()) {
      std::fprintf(stderr, "failed to build async engine: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    return created.value().release();
  }();
  std::vector<std::string> queries;
  for (const soda::BenchmarkQuery& bench : soda::EnterpriseWorkload()) {
    queries.push_back(bench.keywords);
  }
  size_t streamed = 0;
  for (auto _ : state) {
    std::atomic<size_t> delivered{0};
    soda::SnippetBarrier barrier;
    auto outputs = engine->SearchAllAsync(
        queries,
        [&delivered](size_t, size_t, const soda::SodaResult&) {
          delivered.fetch_add(1, std::memory_order_relaxed);
        },
        &barrier);
    benchmark::DoNotOptimize(outputs);
    barrier.Wait();
    streamed += delivered.load();
  }
  state.counters["snippets_streamed"] = static_cast<double>(streamed);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_EngineAsyncStream);

// Sharded router over replicated engines: the 13-query workload admitted
// as one batch, split across shards by the folded-hash router and merged
// back into input order. Sweep shards x per-shard threads; on the 1-vCPU
// CI box the wall clock stays flat (the shards time-slice one core) but
// CPU time per shard drops — re-record on multi-core hardware to see the
// fan-out. "shards" and "router_shard_queries" feed the CI counter guard
// for the router.* metrics surface.
void BM_ShardedSearchAll(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  size_t threads = static_cast<size_t>(state.range(1));
  static std::map<std::pair<size_t, size_t>,
                  std::unique_ptr<soda::ShardedSodaEngine>>
      routers;
  auto key = std::make_pair(shards, threads);
  auto it = routers.find(key);
  if (it == routers.end()) {
    soda::SodaConfig config;
    config.execute_snippets = false;
    config.num_shards = shards;
    config.num_threads = threads;
    config.cache_capacity = 0;  // cold: measure routed pipeline work
    auto created = soda::ShardedSodaEngine::Create(
        &env()->warehouse->db, &env()->warehouse->graph,
        soda::CreditSuissePatternLibrary(), config);
    if (!created.ok()) {
      std::fprintf(stderr, "failed to build sharded engine: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    it = routers.emplace(key, std::move(created).value()).first;
  }
  soda::ShardedSodaEngine* router = it->second.get();
  std::vector<std::string> queries;
  for (const soda::BenchmarkQuery& bench : soda::EnterpriseWorkload()) {
    queries.push_back(bench.keywords);
  }
  for (auto _ : state) {
    auto outputs = router->SearchAll(queries);
    benchmark::DoNotOptimize(outputs);
  }
  soda::MetricsSnapshot snapshot = router->metrics_snapshot();
  state.counters["shards"] = static_cast<double>(router->num_shards());
  state.counters["threads"] = static_cast<double>(router->num_threads());
  state.counters["router_shard_queries"] =
      static_cast<double>(snapshot.counter("router.shard_queries"));
  const soda::HistogramSnapshot* sizes =
      snapshot.histogram("router.shard_batch_size");
  state.counters["router_shard_batches"] =
      sizes == nullptr ? 0.0 : static_cast<double>(sizes->count);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_ShardedSearchAll)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 1})
    ->Args({2, 4})
    ->Args({4, 1})
    ->Args({4, 4});

// Failover cost: the same batched workload on a four-shard router with
// one shard's dispatch permanently armed to fail (tight backoffs, so the
// breaker cycles quarantine -> probe -> re-quarantine within the run).
// Per-op time vs BM_ShardedSearchAll{4,t} is the price of re-routing a
// quarter of the traffic; "router_shard_failures" and
// "router_rerouted_queries" feed the CI counter guard for the failover
// surface. Skips (reports 0 counters) when failpoints are compiled out.
void BM_ShardFailover(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  soda::SodaConfig config;
  config.execute_snippets = false;
  config.num_shards = 4;
  config.num_threads = threads;
  config.cache_capacity = 0;  // cold: measure routed + rerouted work
  config.shard_failure_threshold = 2;
  config.shard_backoff_initial_ms = 1.0;
  config.shard_backoff_max_ms = 10.0;
  config.shard_retry_limit = 3;
  config.shard_retry_backoff_ms = 0.1;
  auto created = soda::ShardedSodaEngine::Create(
      &env()->warehouse->db, &env()->warehouse->graph,
      soda::CreditSuissePatternLibrary(), config);
  if (!created.ok()) {
    std::fprintf(stderr, "failed to build sharded engine: %s\n",
                 created.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<soda::ShardedSodaEngine> router = std::move(created).value();
  if (soda::Failpoints::compiled_in()) {
    soda::FailpointSpec spec;
    spec.action = soda::FailpointSpec::Action::kError;
    spec.match = "1";  // shard 1 of 4 fails every dispatch
    soda::Failpoints::Instance().Arm("shard.dispatch", spec);
  }
  std::vector<std::string> queries;
  for (const soda::BenchmarkQuery& bench : soda::EnterpriseWorkload()) {
    queries.push_back(bench.keywords);
  }
  for (auto _ : state) {
    auto outputs = router->SearchAll(queries);
    benchmark::DoNotOptimize(outputs);
  }
  soda::Failpoints::Instance().DisarmAll();
  soda::MetricsSnapshot snapshot = router->metrics_snapshot();
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["router_shard_failures"] =
      static_cast<double>(snapshot.counter("router.shard_failures"));
  state.counters["router_rerouted_queries"] =
      static_cast<double>(snapshot.counter("router.rerouted_queries"));
  state.counters["router_quarantines"] =
      static_cast<double>(snapshot.counter("router.quarantines"));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_ShardFailover)->Arg(1)->Arg(4);

// ---------------------------------------------------------------------------
// Compiled closures (PR 4): the full workload translated with the
// closure layer on vs off — entry-point traversal memo, APSP join-path
// matrices, integer-interned adjacency. Per-op CPU time is the number to
// read (1-vCPU caveat as above); "closure_traverse_hits" and
// "closure_path_lookups" feed the CI counter guard.
// ---------------------------------------------------------------------------

void BM_EngineClosure(benchmark::State& state) {
  bool closures = state.range(0) != 0;
  static std::map<bool, std::unique_ptr<soda::SodaEngine>> engines;
  auto it = engines.find(closures);
  if (it == engines.end()) {
    soda::SodaConfig config;
    config.execute_snippets = false;
    config.enable_closures = closures;
    config.num_threads = 1;  // serial: isolate the closure effect
    config.cache_capacity = 0;
    auto created = soda::SodaEngine::Create(&env()->warehouse->db,
                                            &env()->warehouse->graph,
                                            soda::CreditSuissePatternLibrary(),
                                            config);
    if (!created.ok()) {
      std::fprintf(stderr, "failed to build closure engine: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    it = engines.emplace(closures, std::move(created).value()).first;
  }
  soda::SodaEngine* engine = it->second.get();
  const auto& workload = soda::EnterpriseWorkload();
  for (auto _ : state) {
    for (const soda::BenchmarkQuery& bench : workload) {
      benchmark::DoNotOptimize(engine->Search(bench.keywords));
    }
  }
  soda::MetricsSnapshot snapshot = engine->metrics_snapshot();
  state.counters["closures"] = closures ? 1.0 : 0.0;
  state.counters["closure_traverse_hits"] =
      static_cast<double>(snapshot.counter("closure.traverse_hits"));
  state.counters["closure_path_lookups"] =
      static_cast<double>(snapshot.counter("closure.path_lookups"));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_EngineClosure)->Arg(0)->Arg(1);

// Step 3 in isolation (the Figure 6 path): one fixed entry-point set,
// translated through TablesStep::Run with the traversal memo + APSP
// closure on vs off.
void BM_TablesStepClosure(benchmark::State& state) {
  bool closures = state.range(0) != 0;
  static std::map<bool, std::unique_ptr<soda::Soda>> sodas;
  auto it = sodas.find(closures);
  if (it == sodas.end()) {
    soda::SodaConfig config;
    config.execute_snippets = false;
    config.enable_closures = closures;
    auto soda = soda::Soda::Create(&env()->warehouse->db,
                                   &env()->warehouse->graph,
                                   soda::CreditSuissePatternLibrary(), config)
                    .value();
    it = sodas.emplace(closures, std::move(soda)).first;
  }
  const soda::Soda& translator = *it->second;
  std::vector<soda::EntryPoint> entries;
  for (const char* phrase :
       {"private customers", "family name", "organizations"}) {
    auto candidates = translator.classification().Lookup(phrase);
    if (!candidates.empty()) entries.push_back(candidates.front());
  }
  if (entries.empty()) {
    state.SkipWithError("no entry points resolved");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(translator.tables_step().Run(entries));
  }
  state.counters["closures"] = closures ? 1.0 : 0.0;
  state.counters["entry_points"] = static_cast<double>(entries.size());
}
BENCHMARK(BM_TablesStepClosure)->Arg(0)->Arg(1);

// Join-path discovery in isolation (the Figure 9 path): DirectPath over
// every ordered pair of the first tables of the harvested edge list —
// matrix min-scan + reconstruction vs per-call BFS.
void BM_JoinPathClosure(benchmark::State& state) {
  bool closures = state.range(0) != 0;
  static std::map<bool, std::unique_ptr<soda::Soda>> sodas;
  auto it = sodas.find(closures);
  if (it == sodas.end()) {
    soda::SodaConfig config;
    config.execute_snippets = false;
    config.enable_closures = closures;
    auto soda = soda::Soda::Create(&env()->warehouse->db,
                                   &env()->warehouse->graph,
                                   soda::CreditSuissePatternLibrary(), config)
                    .value();
    it = sodas.emplace(closures, std::move(soda)).first;
  }
  const soda::JoinGraph& join_graph = it->second->join_graph();
  std::vector<std::string> tables;
  for (const soda::JoinEdge& edge : join_graph.all_edges()) {
    for (const std::string& table : {edge.from.table, edge.to.table}) {
      if (std::find(tables.begin(), tables.end(), table) == tables.end()) {
        tables.push_back(table);
      }
    }
    if (tables.size() >= 12) break;
  }
  size_t paths = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < tables.size(); ++i) {
      for (size_t j = 0; j < tables.size(); ++j) {
        if (i == j) continue;
        std::vector<soda::JoinEdge> path;
        std::vector<std::string> path_tables;
        if (join_graph.DirectPath({tables[i]}, {tables[j]}, &path,
                                  &path_tables)) {
          ++paths;
        }
        benchmark::DoNotOptimize(path);
      }
    }
  }
  state.counters["closures"] = closures ? 1.0 : 0.0;
  state.counters["path_pairs"] =
      static_cast<double>(tables.size() * (tables.size() - 1));
  benchmark::DoNotOptimize(paths);
}
BENCHMARK(BM_JoinPathClosure)->Arg(0)->Arg(1);

void BM_EngineCacheHit(benchmark::State& state) {
  soda::SodaEngine* engine = env()->engine(/*threads=*/2,
                                           /*cache_capacity=*/64);
  const std::string& query = env()->widest_query;
  benchmark::DoNotOptimize(engine->Search(query));  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Search(query));
  }
  state.counters["hit_rate"] = engine->cache_stats().hit_rate();
}
BENCHMARK(BM_EngineCacheHit);

void BM_EngineCachedWorkload(benchmark::State& state) {
  soda::SodaEngine* engine = env()->engine(/*threads=*/2,
                                           /*cache_capacity=*/128);
  const auto& workload = soda::EnterpriseWorkload();
  for (auto _ : state) {
    for (const soda::BenchmarkQuery& bench : workload) {
      benchmark::DoNotOptimize(engine->Search(bench.keywords));
    }
  }
  state.counters["hit_rate"] = engine->cache_stats().hit_rate();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_EngineCachedWorkload);

// The live-base-data cycle: serve a cached query, append a row that its
// answer depends on (new Zürich address), let the FreshnessManager apply
// the index delta and invalidate the key, and serve again cold. Runs on
// its own mini-bank — the shared enterprise Env must stay immutable for
// the other benches.
struct FreshnessEnv {
  std::unique_ptr<soda::MiniBank> bank;
  std::unique_ptr<soda::SodaEngine> engine;
  std::unique_ptr<soda::FreshnessManager> freshness;
  int64_t next_id = 100000;

  FreshnessEnv() {
    bank = std::move(soda::BuildMiniBank()).value();
    soda::SodaConfig config;
    config.num_threads = 2;
    config.cache_capacity = 64;
    auto created =
        soda::SodaEngine::Create(&bank->db, &bank->graph,
                                 soda::CreditSuissePatternLibrary(), config);
    if (!created.ok()) {
      std::fprintf(stderr, "failed to build freshness engine: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    engine = std::move(created).value();
    freshness =
        std::make_unique<soda::FreshnessManager>(&bank->db.change_log());
    freshness->Track(engine.get());
  }
};

FreshnessEnv* freshness_env() {
  static FreshnessEnv* instance = new FreshnessEnv();
  return instance;
}

void BM_FreshnessAppendInvalidate(benchmark::State& state) {
  FreshnessEnv* env = freshness_env();
  soda::Table* addresses = env->bank->db.FindTable("addresses");
  const std::string query = "customers Zürich financial instruments";
  for (auto _ : state) {
    // The previous iteration's append invalidated this key, so every
    // serve is a cold pipeline run over the grown table.
    benchmark::DoNotOptimize(env->engine->Search(query));
    int64_t id = env->next_id++;
    addresses->AppendUnchecked({soda::Value::Int(id), soda::Value::Int(id),
                                soda::Value::Str("Benchstrasse"),
                                soda::Value::Str("Zürich"),
                                soda::Value::Str("CH")});
  }
  auto snapshot = env->freshness->metrics_snapshot();
  state.counters["freshness_events"] =
      static_cast<double>(snapshot.counter("freshness.events"));
  state.counters["freshness_keys_invalidated"] =
      static_cast<double>(snapshot.counter("freshness.keys_invalidated"));
}
BENCHMARK(BM_FreshnessAppendInvalidate);

// The interactive-session loop: one Ask captures a TranslationPlan, then
// every iteration flips a pin/ban constraint and Refines — a pure Step-5
// re-run over the session-cached Steps 1-4. "session_refines" and
// "session_stages_skipped" feed the CI counter guard for the session
// surface; compare against BM_TranslateOntologyJoin for the cold cost of
// what a refine skips.
void BM_SessionRefine(benchmark::State& state) {
  static soda::SodaEngine* engine = [] {
    soda::SodaConfig config;
    config.execute_snippets = false;
    config.num_threads = 2;
    config.cache_capacity = 0;  // measure the plan resume, not the cache
    auto created = soda::SodaEngine::Create(&env()->warehouse->db,
                                            &env()->warehouse->graph,
                                            soda::CreditSuissePatternLibrary(),
                                            config);
    if (!created.ok()) {
      std::fprintf(stderr, "failed to build session engine: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    return created.value().release();
  }();
  soda::SodaSession session(engine);
  auto first = session.Ask("private customers family name");
  if (!first.ok()) {
    state.SkipWithError("session Ask failed");
    return;
  }
  bool pin = false;
  for (auto _ : state) {
    session.ClearConstraints();
    if (pin) {
      session.PinTable("party_td");
    } else {
      session.BanTable("party_td");
    }
    pin = !pin;
    benchmark::DoNotOptimize(session.Refine());
  }
  soda::MetricsSnapshot snapshot = engine->metrics_snapshot();
  state.counters["session_refines"] =
      static_cast<double>(snapshot.counter("session.refines"));
  state.counters["session_stages_skipped"] =
      static_cast<double>(snapshot.counter("session.stages_skipped"));
}
BENCHMARK(BM_SessionRefine);

}  // namespace
