// End-to-end micro benchmarks: full SODA translation (Steps 1-5, no
// execution) per benchmark-query class, plus executor throughput.

#include <benchmark/benchmark.h>

#include "core/soda.h"
#include "datasets/enterprise.h"
#include "pattern/library.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace {

struct Env {
  std::unique_ptr<soda::EnterpriseWarehouse> warehouse;
  std::unique_ptr<soda::Soda> soda;

  Env() {
    warehouse = std::move(soda::BuildEnterpriseWarehouse()).value();
    soda::SodaConfig config;
    config.execute_snippets = false;
    soda = std::make_unique<soda::Soda>(&warehouse->db, &warehouse->graph,
                                        soda::CreditSuissePatternLibrary(),
                                        config);
  }
};

Env* env() {
  static Env* instance = new Env();
  return instance;
}

// Note: the fixture is built lazily on first use (building it during
// static initialization would race the dataset's own static pools), so
// the first benchmark's first iteration absorbs the one-time setup cost.

void TranslateBench(benchmark::State& state, const char* query) {
  for (auto _ : state) {
    auto output = env()->soda->Search(query);
    benchmark::DoNotOptimize(output);
  }
}

void BM_TranslateKeywordOnly(benchmark::State& state) {
  TranslateBench(state, "Sara");
}
BENCHMARK(BM_TranslateKeywordOnly);

void BM_TranslateOntologyJoin(benchmark::State& state) {
  TranslateBench(state, "private customers family name");
}
BENCHMARK(BM_TranslateOntologyJoin);

void BM_TranslatePredicate(benchmark::State& state) {
  TranslateBench(state, "trade order period > date(2011-09-01)");
}
BENCHMARK(BM_TranslatePredicate);

void BM_TranslateAggregation(benchmark::State& state) {
  TranslateBench(state, "sum(investments) group by (currency)");
}
BENCHMARK(BM_TranslateAggregation);

void BM_ExecuteThreeWayJoin(benchmark::State& state) {
  soda::Executor executor(&env()->warehouse->db);
  auto stmt = soda::ParseSql(
      "SELECT indvl_td.id, indvl_nm_hist_td.family_name "
      "FROM party_td, indvl_td, indvl_nm_hist_td "
      "WHERE indvl_td.id = party_td.id "
      "AND indvl_td.curr_name_id = indvl_nm_hist_td.name_id");
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(*stmt));
  }
}
BENCHMARK(BM_ExecuteThreeWayJoin);

void BM_ExecuteGroupByAggregation(benchmark::State& state) {
  soda::Executor executor(&env()->warehouse->db);
  auto stmt = soda::ParseSql(
      "SELECT sum(invst_pos_td.invst_amt), invst_pos_td.crncy_cd "
      "FROM invst_pos_td GROUP BY invst_pos_td.crncy_cd");
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(*stmt));
  }
}
BENCHMARK(BM_ExecuteGroupByAggregation);

}  // namespace
