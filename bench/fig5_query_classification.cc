// Regenerates paper Figure 5: classification of the query
// "customers Zürich financial instruments" on the mini-bank — where each
// keyword is found and the resulting query complexity (1 x 1 x 2 = 2).

#include <cstdio>

#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

int main() {
  auto bank = soda::BuildMiniBank();
  if (!bank.ok()) {
    std::fprintf(stderr, "%s\n", bank.status().ToString().c_str());
    return 1;
  }
  soda::SodaConfig config;
  config.execute_snippets = false;
  auto engine_ptr = soda::Soda::Create(&(*bank)->db, &(*bank)->graph,
                                       soda::CreditSuissePatternLibrary(),
                                       config)
                        .value();
  soda::Soda& engine = *engine_ptr;

  const char* kQuery = "customers Zürich financial instruments";
  std::printf("Figure 5: Query Classification\n\nquery: %s\n\n", kQuery);

  const soda::ClassificationIndex& classification = engine.classification();
  const char* kPhrases[] = {"customers", "Zürich", "financial instruments"};
  size_t complexity = 1;
  for (const char* phrase : kPhrases) {
    auto entries = classification.Lookup(phrase);
    std::printf("  '%s' found %zu time(s):\n", phrase, entries.size());
    for (const auto& entry : entries) {
      std::printf("    - %s\n", entry.ToString().c_str());
    }
    complexity *= entries.size();
  }
  std::printf("\nquery complexity = %zu (paper: 1 x 1 x 2 = 2)\n",
              complexity);

  auto output = engine.Search(kQuery);
  if (output.ok()) {
    std::printf("SODA reports complexity %zu with %zu result(s).\n",
                output->complexity, output->results.size());
    for (const auto& result : output->results) {
      std::printf("\n--- score %.2f (%s)\n%s\n", result.score,
                  result.explanation.c_str(), result.sql.c_str());
    }
  }
  return 0;
}
