// Regenerates paper Table 2: the experiment queries, their type tags and
// gold-standard descriptions, as adapted to the synthetic warehouse.

#include <cstdio>

#include "eval/workload.h"

int main() {
  std::printf("Table 2: Experiment queries.\n\n");
  std::printf("%-5s %-45s %-6s\n", "Q", "Keyword query", "Types");
  std::printf("%.100s\n", std::string(100, '-').c_str());
  for (const soda::BenchmarkQuery& query : soda::EnterpriseWorkload()) {
    std::printf("%-5s %-45s %-6s\n", query.id.c_str(),
                query.keywords.c_str(), query.types.c_str());
    std::printf("      comment: %s\n", query.comment.c_str());
    std::printf("      gold:    %s\n\n", query.gold_description.c_str());
  }
  return 0;
}
