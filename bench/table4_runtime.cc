// Regenerates paper Table 4: query complexity (lookup combinatorics),
// number of results, SODA translation time and total end-to-end time.
//
// Absolute times are not comparable (the paper ran Oracle on a shared
// Sun M5000 against 220 GB; this substrate is an in-memory engine on
// scaled-down data) — the shape that must hold, and does, is that SODA's
// translation time is a small fraction of the total end-to-end time.

#include <cstdio>

#include "bench_util.h"

int main() {
  auto fixture = soda::bench::BuildFixture();
  auto evaluations = soda::EvaluateWorkload(*fixture->soda,
                                            soda::EnterpriseWorkload());
  if (!evaluations.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 evaluations.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Table 4: Query complexity and runtime information of SODA algorithm\n"
      "and total end-to-end query processing. (measured | paper)\n\n");
  std::printf("%-6s %17s %13s %22s %24s\n", "Q", "Complexity", "#Results",
              "SODA runtime", "Total runtime");
  const auto& workload = soda::EnterpriseWorkload();
  double total_soda_ms = 0.0, total_exec_ms = 0.0;
  for (size_t i = 0; i < workload.size(); ++i) {
    const soda::BenchmarkQuery& query = workload[i];
    const soda::QueryEvaluation& evaluation = (*evaluations)[i];
    total_soda_ms += evaluation.soda_ms;
    total_exec_ms += evaluation.execute_ms;
    std::printf(
        "%-6s %7zu | %5d   %5zu | %3d   %8.2f ms | %5.2f s   %8.2f ms | %3d "
        "min\n",
        query.id.c_str(), evaluation.complexity, query.paper_complexity,
        evaluation.num_results, query.paper_num_results, evaluation.soda_ms,
        query.paper_soda_seconds,
        evaluation.soda_ms + evaluation.execute_ms,
        query.paper_total_minutes);
  }
  std::printf(
      "\nTotals: SODA translation %.1f ms, SQL execution %.1f ms —\n"
      "translation is %.1f%% of end-to-end time (paper: seconds vs. an\n"
      "hour; 'the overhead for the SODA query processing is a small\n"
      "fraction compared to the total query execution time').\n",
      total_soda_ms, total_exec_ms,
      100.0 * total_soda_ms / (total_soda_ms + total_exec_ms));
  return 0;
}
