// Regenerates paper Table 1: complexity of the schema graph (conceptual,
// logical and physical cardinalities), plus metadata-graph and base-data
// size context from Section 5.1.2.

#include <cstdio>

#include "bench_util.h"

int main() {
  auto fixture = soda::bench::BuildFixture();
  soda::SchemaStats stats = fixture->warehouse->model.Stats();

  std::printf(
      "Table 1: Complexity of the schema graph including conceptual,\n"
      "logical and physical schema.\n\n");
  std::printf("%-28s %10s %10s\n", "Type", "measured", "paper");
  std::printf("%-28s %10zu %10zu\n", "#Conceptual entities",
              stats.conceptual_entities, soda::kPaperConceptualEntities);
  std::printf("%-28s %10zu %10zu\n", "#Conceptual attributes",
              stats.conceptual_attributes, soda::kPaperConceptualAttributes);
  std::printf("%-28s %10zu %10zu\n", "#Conceptual relationships",
              stats.conceptual_relationships,
              soda::kPaperConceptualRelationships);
  std::printf("%-28s %10zu %10zu\n", "#Logical entities",
              stats.logical_entities, soda::kPaperLogicalEntities);
  std::printf("%-28s %10zu %10zu\n", "#Logical attributes",
              stats.logical_attributes, soda::kPaperLogicalAttributes);
  std::printf("%-28s %10zu %10zu\n", "#Logical relationships",
              stats.logical_relationships, soda::kPaperLogicalRelationships);
  std::printf("%-28s %10zu %10zu\n", "#Physical tables",
              stats.physical_tables, soda::kPaperPhysicalTables);
  std::printf("%-28s %10zu %10zu\n", "#Physical columns",
              stats.physical_columns, soda::kPaperPhysicalColumns);

  const soda::MetadataGraph& graph = fixture->warehouse->graph;
  const soda::InvertedIndex& index = fixture->soda->inverted_index();
  std::printf("\nContext (Section 5.1.2, scaled substrate):\n");
  std::printf("  metadata graph: %zu nodes, %zu edges, %zu text labels\n",
              graph.num_nodes(), graph.num_edges(), graph.num_text_edges());
  std::printf("  base data:      %zu tables, %zu rows\n",
              fixture->warehouse->db.num_tables(),
              fixture->warehouse->db.TotalRows());
  std::printf(
      "  inverted index: %zu tokens, %zu distinct values, %zu records\n",
      index.num_tokens(), index.num_values(), index.num_records());
  return 0;
}
