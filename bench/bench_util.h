// Shared setup for the reproduction benches: builds the enterprise
// warehouse, the SODA engine, and the baseline systems.

#ifndef SODA_BENCH_BENCH_UTIL_H_
#define SODA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baselines/baseline.h"
#include "core/soda.h"
#include "datasets/enterprise.h"
#include "eval/harness.h"
#include "eval/workload.h"
#include "pattern/library.h"

namespace soda {
namespace bench {

struct Fixture {
  std::unique_ptr<EnterpriseWarehouse> warehouse;
  std::unique_ptr<Soda> soda;
  ClassificationIndex metadata_only_classification;
  BaselineContext baseline_context;
  std::vector<std::unique_ptr<KeywordSearchSystem>> baselines;
};

inline std::unique_ptr<Fixture> BuildFixture(bool execute_snippets = false) {
  auto fixture = std::make_unique<Fixture>();
  auto built = BuildEnterpriseWarehouse();
  if (!built.ok()) {
    std::fprintf(stderr, "failed to build warehouse: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  fixture->warehouse = std::move(built).value();
  SodaConfig config;
  config.execute_snippets = execute_snippets;
  auto created = Soda::Create(&fixture->warehouse->db,
                              &fixture->warehouse->graph,
                              CreditSuissePatternLibrary(), config);
  if (!created.ok()) {
    std::fprintf(stderr, "failed to build engine: %s\n",
                 created.status().ToString().c_str());
    std::exit(1);
  }
  fixture->soda = std::move(created).value();

  fixture->metadata_only_classification.Build(fixture->warehouse->graph,
                                              /*base_data=*/nullptr);
  BaselineContext& context = fixture->baseline_context;
  context.db = &fixture->warehouse->db;
  context.inverted_index = &fixture->soda->inverted_index();
  context.foreign_keys = fixture->soda->join_graph().all_edges();
  context.classification = &fixture->soda->classification();
  context.metadata_only_classification =
      &fixture->metadata_only_classification;
  context.graph_for_resolution = &fixture->warehouse->graph;
  context.schema_columns = kPaperPhysicalColumns;
  fixture->baselines = MakeBaselines(&context);
  return fixture;
}

}  // namespace bench
}  // namespace soda

#endif  // SODA_BENCH_BENCH_UTIL_H_
