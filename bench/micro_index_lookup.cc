// Micro benchmarks for the base-data inverted index and the
// classification index (Step 1 building blocks).

#include <benchmark/benchmark.h>

#include "core/classification.h"
#include "datasets/enterprise.h"
#include "text/inverted_index.h"

namespace {

struct Env {
  std::unique_ptr<soda::EnterpriseWarehouse> warehouse;
  soda::InvertedIndex index;
  soda::ClassificationIndex classification;

  Env() {
    warehouse = std::move(soda::BuildEnterpriseWarehouse()).value();
    index.Build(warehouse->db);
    classification.Build(warehouse->graph, &index);
  }
};

Env* env() {
  static Env* instance = new Env();
  return instance;
}

// Note: the fixture is built lazily on first use (building it during
// static initialization would race the dataset's own static pools), so
// the first benchmark's first iteration absorbs the one-time setup cost.

void BM_InvertedIndexBuild(benchmark::State& state) {
  for (auto _ : state) {
    soda::InvertedIndex index;
    index.Build(env()->warehouse->db);
    benchmark::DoNotOptimize(index.num_tokens());
  }
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_PhraseLookupHit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(env()->index.LookupPhrase("credit suisse"));
  }
}
BENCHMARK(BM_PhraseLookupHit);

void BM_PhraseLookupMiss(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(env()->index.LookupPhrase("nonexistent term"));
  }
}
BENCHMARK(BM_PhraseLookupMiss);

void BM_ClassificationLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env()->classification.Lookup("private customers"));
  }
}
BENCHMARK(BM_ClassificationLookup);

void BM_LongestCombinationSegmentation(benchmark::State& state) {
  std::vector<std::string> words = {"private", "customers", "family",
                                    "name", "zurich"};
  for (auto _ : state) {
    std::vector<std::string> ignored;
    benchmark::DoNotOptimize(
        env()->classification.SegmentKeywords(words, &ignored));
  }
}
BENCHMARK(BM_LongestCombinationSegmentation);

// ---------------------------------------------------------------------------
// Phrase-length × postings-skew sweep over a synthetic corpus with
// controlled token frequencies. Every value is "hot mid<i%97> rare<i>":
// "hot" occurs in all 20k values (dense), each "mid*" in ~206 (medium),
// each "rare*" in exactly one. The sweep shows what rarest-token-first
// intersection buys: a probe containing a rare token costs O(1) postings
// work regardless of how dense its other tokens are, where a first-token
// scan paid O(|postings(token0)|).
// ---------------------------------------------------------------------------

struct SkewEnv {
  soda::Database db;
  soda::InvertedIndex index;

  SkewEnv() {
    soda::Table* t =
        db.CreateTable("synthetic", {{"v", soda::ValueType::kString}})
            .value();
    for (int i = 0; i < 20000; ++i) {
      std::string value = "hot mid" + std::to_string(i % 97) + " rare" +
                          std::to_string(i);
      t->AppendUnchecked({soda::Value::Str(value)});
    }
    index.Build(db);
  }
};

SkewEnv* skew_env() {
  static SkewEnv* instance = new SkewEnv();
  return instance;
}

// range(0): probe phrase length in tokens. range(1): skew of the probe —
// 0 anchors the phrase at the dense end ("hot ..."), 1 includes a rare
// token. Counted, not materialized, so the measurement is pure probe.
void BM_PhraseCountSweep(benchmark::State& state) {
  const int64_t len = state.range(0);
  const bool rare_end = state.range(1) != 0;
  const int i = 1077;  // an arbitrary fixed value of the corpus
  const std::string mid = "mid" + std::to_string(i % 97);
  const std::string rare = "rare" + std::to_string(i);
  std::string phrase;
  if (len == 1) {
    phrase = rare_end ? rare : "hot";
  } else if (len == 2) {
    phrase = rare_end ? mid + " " + rare : "hot " + mid;
  } else {
    phrase = "hot " + mid + " " + rare;
  }
  size_t count = 0;
  for (auto _ : state) {
    count = skew_env()->index.CountPhrase(phrase);
    benchmark::DoNotOptimize(count);
  }
  state.counters["phrase_len"] = static_cast<double>(len);
  state.counters["rare_token"] = rare_end ? 1.0 : 0.0;
  state.counters["matches"] = static_cast<double>(count);
}
BENCHMARK(BM_PhraseCountSweep)->ArgsProduct({{1, 2, 3}, {0, 1}});

// The no-materialize segmentation probe over the same skew corpus: a
// dense-token phrase that never matches ("hot mid3 hot") — the adversary
// for adjacency verification.
void BM_ContainsPhraseMissDense(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        skew_env()->index.ContainsPhrase("hot mid3 hot"));
  }
}
BENCHMARK(BM_ContainsPhraseMissDense);

// Memory accounting surface: reported once so the bench JSON records the
// packed-representation footprint alongside the probe latencies.
void BM_IndexMemoryFootprint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(env()->index.ApproxMemoryBytes());
  }
  state.counters["index_bytes"] =
      static_cast<double>(env()->index.ApproxMemoryBytes());
  state.counters["dict_bytes"] =
      static_cast<double>(env()->index.token_dict()->ApproxMemoryBytes());
  state.counters["dict_tokens"] =
      static_cast<double>(env()->index.token_dict()->size());
}
BENCHMARK(BM_IndexMemoryFootprint);

}  // namespace
