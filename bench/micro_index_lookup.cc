// Micro benchmarks for the base-data inverted index and the
// classification index (Step 1 building blocks).

#include <benchmark/benchmark.h>

#include "core/classification.h"
#include "datasets/enterprise.h"
#include "text/inverted_index.h"

namespace {

struct Env {
  std::unique_ptr<soda::EnterpriseWarehouse> warehouse;
  soda::InvertedIndex index;
  soda::ClassificationIndex classification;

  Env() {
    warehouse = std::move(soda::BuildEnterpriseWarehouse()).value();
    index.Build(warehouse->db);
    classification.Build(warehouse->graph, &index);
  }
};

Env* env() {
  static Env* instance = new Env();
  return instance;
}

// Note: the fixture is built lazily on first use (building it during
// static initialization would race the dataset's own static pools), so
// the first benchmark's first iteration absorbs the one-time setup cost.

void BM_InvertedIndexBuild(benchmark::State& state) {
  for (auto _ : state) {
    soda::InvertedIndex index;
    index.Build(env()->warehouse->db);
    benchmark::DoNotOptimize(index.num_tokens());
  }
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_PhraseLookupHit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(env()->index.LookupPhrase("credit suisse"));
  }
}
BENCHMARK(BM_PhraseLookupHit);

void BM_PhraseLookupMiss(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(env()->index.LookupPhrase("nonexistent term"));
  }
}
BENCHMARK(BM_PhraseLookupMiss);

void BM_ClassificationLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env()->classification.Lookup("private customers"));
  }
}
BENCHMARK(BM_ClassificationLookup);

void BM_LongestCombinationSegmentation(benchmark::State& state) {
  std::vector<std::string> words = {"private", "customers", "family",
                                    "name", "zurich"};
  for (auto _ : state) {
    std::vector<std::string> ignored;
    benchmark::DoNotOptimize(
        env()->classification.SegmentKeywords(words, &ignored));
  }
}
BENCHMARK(BM_LongestCombinationSegmentation);

}  // namespace
