// Regenerates paper Table 5: qualitative comparison of SODA against
// DBExplorer, DISCOVER, BANKS, SQAK and Keymantic across the six query
// types. Two matrices are printed:
//
//   1. the *declared* capability matrix — what each system's publication
//      claims (this must equal the paper's Table 5), and
//   2. the *measured* matrix — what our re-implementations actually
//      achieve on the 13 benchmark queries (a statement counts when it
//      executes and scores P,R > 0 against the gold standard).

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"
#include "sql/executor.h"

namespace {

using soda::QueryType;

constexpr QueryType kTypes[] = {
    QueryType::kBaseData,       QueryType::kSchema,
    QueryType::kInheritance,    QueryType::kDomainOntology,
    QueryType::kPredicates,     QueryType::kAggregates};

char TypeTag(QueryType type) {
  switch (type) {
    case QueryType::kBaseData:
      return 'B';
    case QueryType::kSchema:
      return 'S';
    case QueryType::kInheritance:
      return 'I';
    case QueryType::kDomainOntology:
      return 'D';
    case QueryType::kPredicates:
      return 'P';
    case QueryType::kAggregates:
      return 'A';
  }
  return '?';
}

}  // namespace

int main() {
  auto fixture = soda::bench::BuildFixture();
  const auto& workload = soda::EnterpriseWorkload();
  soda::Executor executor(&fixture->warehouse->db);

  // ---- declared matrix -------------------------------------------------
  std::printf("Table 5: Qualitative comparison (declared capabilities —\n"
              "must match the paper).\n\n");
  std::printf("%-16s", "Query type");
  for (const auto& system : fixture->baselines) {
    std::printf(" %-10s", system->name().c_str());
  }
  std::printf(" %-6s\n", "SODA");
  for (QueryType type : kTypes) {
    std::printf("%-16s", soda::QueryTypeName(type));
    for (const auto& system : fixture->baselines) {
      std::printf(" %-10s",
                  soda::SupportLevelSymbol(system->DeclaredSupport(type)));
    }
    std::printf(" %-6s\n", "X");
  }

  // ---- measured matrix -------------------------------------------------
  // For each system and type: does at least one benchmark query of that
  // type get a correct answer (some statement with P,R > 0)?
  std::printf("\nMeasured on the 13 benchmark queries (X = at least one\n"
              "query of the type answered with P,R > 0):\n\n");
  std::printf("%-16s", "Query type");
  for (const auto& system : fixture->baselines) {
    std::printf(" %-10s", system->name().c_str());
  }
  std::printf(" %-6s\n", "SODA");

  // Precompute gold tuple sets.
  std::vector<std::set<std::string>> golds;
  for (const auto& query : workload) {
    std::set<std::string> gold;
    for (const auto& sql : query.gold_sql) {
      auto rs = executor.ExecuteSql(sql);
      if (rs.ok()) {
        for (auto& tuple : soda::AllTuples(*rs)) gold.insert(tuple);
      }
    }
    golds.push_back(std::move(gold));
  }

  // SODA measured results per query (reuse the evaluation harness).
  auto soda_evaluations =
      soda::EvaluateWorkload(*fixture->soda, workload);

  for (QueryType type : kTypes) {
    std::printf("%-16s", soda::QueryTypeName(type));
    for (const auto& system : fixture->baselines) {
      bool any_correct = false;
      for (size_t q = 0; q < workload.size(); ++q) {
        if (workload[q].types.find(TypeTag(type)) == std::string::npos) {
          continue;
        }
        auto answer = system->Translate(workload[q].keywords);
        if (!answer.ok() || !answer->answered) continue;
        for (const auto& stmt : answer->statements) {
          auto rs = executor.Execute(stmt);
          if (!rs.ok()) continue;
          auto tuples = soda::ExtractTuples(*rs, workload[q].extractors);
          auto score = soda::ComputePr(tuples, golds[q]);
          if (score.precision > 0.0 && score.recall > 0.0) {
            any_correct = true;
            break;
          }
        }
        if (any_correct) break;
      }
      std::printf(" %-10s", any_correct ? "X" : "NO");
    }
    bool soda_correct = false;
    if (soda_evaluations.ok()) {
      for (size_t q = 0; q < workload.size(); ++q) {
        if (workload[q].types.find(TypeTag(type)) == std::string::npos) {
          continue;
        }
        if ((*soda_evaluations)[q].results_nonzero > 0) soda_correct = true;
      }
    }
    std::printf(" %-6s\n", soda_correct ? "X" : "NO");
  }

  // ---- per-system failure narratives ------------------------------------
  std::printf("\nSample failure reasons on this warehouse:\n");
  for (const auto& system : fixture->baselines) {
    auto answer = system->Translate("Sara");
    if (answer.ok() && !answer->answered) {
      std::printf("  %-10s on 'Sara': %s\n", system->name().c_str(),
                  answer->failure_reason.c_str());
    }
    auto agg = system->Translate("sum(investments) group by (currency)");
    if (agg.ok() && !agg->answered) {
      std::printf("  %-10s on Q10: %s\n", system->name().c_str(),
                  agg->failure_reason.c_str());
    }
  }
  return 0;
}
