// Micro benchmarks for the graph-pattern matcher: the per-node pattern
// tests of Step 3 are SODA's inner loop.

#include <benchmark/benchmark.h>

#include "core/soda.h"
#include "datasets/enterprise.h"
#include "pattern/library.h"
#include "pattern/matcher.h"
#include "schema/warehouse_model.h"

namespace {

struct Env {
  std::unique_ptr<soda::EnterpriseWarehouse> warehouse;
  soda::PatternLibrary library = soda::CreditSuissePatternLibrary();
  std::unique_ptr<soda::PatternMatcher> matcher;

  Env() {
    warehouse = std::move(soda::BuildEnterpriseWarehouse()).value();
    matcher = std::make_unique<soda::PatternMatcher>(&warehouse->graph,
                                                     &library);
  }
};

Env* env() {
  static Env* instance = new Env();
  return instance;
}

// Note: the fixture is built lazily on first use (building it during
// static initialization would race the dataset's own static pools), so
// the first benchmark's first iteration absorbs the one-time setup cost.

void BM_TablePatternAtTableNode(benchmark::State& state) {
  soda::NodeId node = env()->warehouse->graph.FindNode(
      soda::TableUri("indvl_td"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env()->matcher->Matches(soda::patterns::kTable, node));
  }
}
BENCHMARK(BM_TablePatternAtTableNode);

void BM_ColumnPatternAtColumnNode(benchmark::State& state) {
  soda::NodeId node = env()->warehouse->graph.FindNode(
      soda::ColumnUri("indvl_td", "birth_dt"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env()->matcher->Matches(soda::patterns::kColumn, node));
  }
}
BENCHMARK(BM_ColumnPatternAtColumnNode);

void BM_InheritanceChildPattern(benchmark::State& state) {
  soda::NodeId node = env()->warehouse->graph.FindNode(
      soda::TableUri("indvl_td"));
  for (auto _ : state) {
    auto matches =
        env()->matcher->MatchAt(soda::patterns::kInheritanceChild, node);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_InheritanceChildPattern);

void BM_BridgeTablePatternMatchAll(benchmark::State& state) {
  for (auto _ : state) {
    auto matches = env()->matcher->MatchAll(
        soda::patterns::kBridgeTableJoin, /*max_matches=*/100000);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_BridgeTablePatternMatchAll);

// Arg 0: pattern harvest only (comparable with pre-closure recordings).
// Arg 1: harvest + the APSP path-closure precompute added in PR 4.
void BM_JoinGraphBuild(benchmark::State& state) {
  bool precompute_paths = state.range(0) != 0;
  for (auto _ : state) {
    soda::JoinGraph graph;
    benchmark::DoNotOptimize(graph.Build(*env()->matcher, precompute_paths));
  }
  state.counters["precompute_paths"] = precompute_paths ? 1.0 : 0.0;
}
BENCHMARK(BM_JoinGraphBuild)->Arg(0)->Arg(1);

}  // namespace
