// Regenerates paper Figure 9: join conditions are kept only when they lie
// on a direct path between entry points; joins merely "attached" to the
// path are ignored to keep the result small and precise.
//
// This bench doubles as the ablation for that design choice: it runs the
// benchmark workload once with direct-path pruning (the SODA default) and
// once keeping every attached join, and reports the blowup in FROM-list
// sizes and join counts.

#include <chrono>
#include <cstdio>

#include "bench_util.h"

namespace {

struct Aggregate {
  double avg_tables = 0.0;
  double avg_joins = 0.0;
  size_t results = 0;
  double wall_ms = 0.0;  // full-workload translation time
};

Aggregate Run(const soda::bench::Fixture& fixture, bool direct_path_only,
              bool enable_closures = true) {
  soda::SodaConfig config;
  config.execute_snippets = false;
  config.direct_path_only = direct_path_only;
  config.enable_closures = enable_closures;
  auto engine = soda::Soda::Create(&fixture.warehouse->db,
                                   &fixture.warehouse->graph,
                                   soda::CreditSuissePatternLibrary(), config)
                    .value();
  Aggregate aggregate;
  size_t tables = 0, joins = 0;
  auto start = std::chrono::steady_clock::now();
  for (const auto& query : soda::EnterpriseWorkload()) {
    auto output = engine->Search(query.keywords);
    if (!output.ok()) continue;
    for (const auto& result : output->results) {
      tables += result.statement.from.size();
      for (const auto& predicate : result.statement.where) {
        if (predicate.IsJoinCondition()) ++joins;
      }
      ++aggregate.results;
    }
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  aggregate.wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  if (aggregate.results > 0) {
    aggregate.avg_tables =
        static_cast<double>(tables) / static_cast<double>(aggregate.results);
    aggregate.avg_joins =
        static_cast<double>(joins) / static_cast<double>(aggregate.results);
  }
  return aggregate;
}

}  // namespace

int main() {
  auto fixture = soda::bench::BuildFixture();

  std::printf("Figure 9: Joins on Direct Path (ablation)\n\n");
  Aggregate pruned = Run(*fixture, /*direct_path_only=*/true);
  Aggregate attached = Run(*fixture, /*direct_path_only=*/false);

  std::printf("%-34s %10s %10s %10s\n", "mode", "#results", "avg FROM",
              "avg joins");
  std::printf("%-34s %10zu %10.2f %10.2f\n",
              "direct paths only (SODA default)", pruned.results,
              pruned.avg_tables, pruned.avg_joins);
  std::printf("%-34s %10zu %10.2f %10.2f\n", "all attached joins",
              attached.results, attached.avg_tables, attached.avg_joins);
  std::printf(
      "\nKeeping only direct-path joins shrinks the average statement by\n"
      "%.1fx in joined tables (paper: attached joins are 'ignored to keep\n"
      "the result small and precise').\n",
      pruned.avg_tables > 0 ? attached.avg_tables / pruned.avg_tables : 0.0);

  // Closure ablation (PR 4): direct-path discovery served from the APSP
  // matrices + traversal memo vs recomputed per query. Identical output
  // (same #results / FROM / joins), different work.
  Aggregate closed = Run(*fixture, /*direct_path_only=*/true,
                         /*enable_closures=*/true);
  Aggregate open = Run(*fixture, /*direct_path_only=*/true,
                       /*enable_closures=*/false);
  std::printf("\nDirect paths, compiled closures ON  vs OFF "
              "(13-query workload):\n");
  std::printf("%-34s %10.2f ms  (%zu results)\n", "  closures ON",
              closed.wall_ms, closed.results);
  std::printf("%-34s %10.2f ms  (%zu results)\n", "  closures OFF",
              open.wall_ms, open.results);
  if (closed.wall_ms > 0.0) {
    std::printf("%-34s %10.2fx\n", "  speedup", open.wall_ms / closed.wall_ms);
  }
  return 0;
}
