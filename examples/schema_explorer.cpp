// Schema explorer: the second usage scenario from the paper's feedback
// section (5.3.2) — "an exploratory tool to analyze the schema and learn
// patterns in the schema in order to find out which entities are related
// with others".
//
// This example walks the enterprise metadata graph interactively-style:
// for a keyword it prints the entry points, the tables each one maps to,
// the join relationships around them, and a DOT fragment of the local
// neighborhood that can be piped into graphviz.

#include <cstdio>

#include "core/soda.h"
#include "datasets/enterprise.h"
#include "graph/vocab.h"
#include "pattern/library.h"

namespace {

void Explore(const soda::Soda& engine, const char* keyword) {
  std::printf("==============================================\n");
  std::printf("explore> %s\n\n", keyword);
  const soda::MetadataGraph& graph = *engine.graph();

  auto entries = engine.classification().Lookup(keyword);
  if (entries.empty()) {
    std::printf("  (not found in metadata or base data)\n");
    return;
  }
  for (const auto& entry : entries) {
    std::printf("entry point: %s\n", entry.ToString().c_str());
    if (entry.kind == soda::EntryPoint::Kind::kBaseData) {
      std::printf("  value '%s' in %s.%s (%lld rows)\n",
                  entry.value.c_str(), entry.table.c_str(),
                  entry.column.c_str(),
                  static_cast<long long>(entry.row_count));
      continue;
    }
    // Tables reachable from this node (the Step 3 mapping).
    auto tables = engine.tables_step().TablesFromNode(entry.node);
    std::printf("  maps to %zu physical table(s):", tables.size());
    for (const auto& table : tables) std::printf(" %s", table.c_str());
    std::printf("\n");
    // Join relationships around those tables.
    for (const auto& table : tables) {
      for (const auto& edge : engine.join_graph().EdgesOf(table)) {
        std::printf("    join: %s%s\n", edge.ToString().c_str(),
                    edge.ignored ? "   [annotated: ignore]" : "");
      }
    }
    // Outgoing metadata edges of the node itself.
    std::printf("  node '%s' edges:\n", graph.uri(entry.node).c_str());
    for (const auto& edge : graph.OutEdges(entry.node)) {
      std::printf("    --%s--> %s\n",
                  graph.PredicateUri(edge.predicate).c_str(),
                  graph.uri(edge.target).c_str());
    }
  }
}

}  // namespace

int main() {
  auto warehouse = soda::BuildEnterpriseWarehouse();
  if (!warehouse.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 warehouse.status().ToString().c_str());
    return 1;
  }
  soda::SodaConfig config;
  config.execute_snippets = false;
  auto created = soda::Soda::Create(&(*warehouse)->db, &(*warehouse)->graph,
                                    soda::CreditSuissePatternLibrary(),
                                    config);
  if (!created.ok()) {
    std::fprintf(stderr, "engine construction failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  soda::Soda& engine = **created;

  Explore(engine, "private customers");
  Explore(engine, "trade order");
  Explore(engine, "Credit Suisse");

  // A user who spots a suspicious mapping can dump the neighborhood:
  std::printf("==============================================\n");
  std::printf("DOT fragment of the metadata graph (first 40 nodes):\n\n%s\n",
              (*warehouse)->graph.ToDot(40).c_str());
  return 0;
}
