// Adjustment engine: the war-story workflow from paper Section 5.3.1 —
// mitigating schema/data-quality issues by annotating the metadata graph.
//
// "If we know from — let's say the Testing Team — that some database
//  tables that are part of a bridge between siblings are not populated
//  yet, the schema can be annotated indicating that the respective
//  relationship should be ignored."
//
// This example builds the enterprise warehouse twice: once as-is (the
// sibling bridge assoc_empl_td wrecks the precision of "customers names",
// paper Q5.0) and once with the bridge's join relationships annotated as
// ignored. The second run shows SODA routing around the bridge.

#include <cstdio>

#include "core/soda.h"
#include "datasets/enterprise.h"
#include "graph/vocab.h"
#include "pattern/library.h"
#include "schema/warehouse_model.h"

namespace {

void Run(const char* label, const soda::Soda& engine) {
  std::printf("==============================================\n");
  std::printf("%s\nSODA> customers names\n\n", label);
  auto output = engine.Search("customers names");
  if (!output.ok()) {
    std::printf("error: %s\n", output.status().ToString().c_str());
    return;
  }
  for (const auto& result : output->results) {
    std::printf("score %.2f — %s\n%s\n\n", result.score,
                result.explanation.c_str(), result.sql.c_str());
  }
}

}  // namespace

int main() {
  // ---- run 1: the bridge between siblings is active -----------------------
  auto warehouse = soda::BuildEnterpriseWarehouse();
  if (!warehouse.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 warehouse.status().ToString().c_str());
    return 1;
  }
  soda::SodaConfig config;
  config.execute_snippets = false;
  {
    auto engine = soda::Soda::Create(&(*warehouse)->db, &(*warehouse)->graph,
                                     soda::CreditSuissePatternLibrary(),
                                     config);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine construction failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    Run("[1] bridge assoc_empl_td active (paper Q5.0: precision 0.12)",
        **engine);
  }

  // ---- run 2: annotate the bridge joins as ignored -------------------------
  // The annotation is a plain metadata edit — no code changes, exactly
  // the flexibility the paper advertises. We mark both join-relationship
  // nodes of the bridge.
  soda::MetadataGraph& graph = (*warehouse)->graph;
  for (const char* join_uri :
       {"join/assoc_empl_td.indvl_id->indvl_td.id",
        "join/assoc_empl_td.org_id->org_td.id"}) {
    soda::NodeId node = graph.FindNode(join_uri);
    if (node == soda::kInvalidNode) {
      std::fprintf(stderr, "missing join node %s\n", join_uri);
      return 1;
    }
    graph.AddTextEdge(node, soda::vocab::kAnnotation,
                      soda::vocab::kIgnoreRelationship);
    std::printf("annotated %s as ignore_relationship\n", join_uri);
  }
  {
    // Rebuild the engine so the join graph re-harvests the annotations
    // (in a deployment this is the metadata-refresh cycle).
    auto engine = soda::Soda::Create(&(*warehouse)->db, &(*warehouse)->graph,
                                     soda::CreditSuissePatternLibrary(),
                                     config);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine construction failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    Run("[2] bridge annotated as ignored — employment joins disappear",
        **engine);
  }
  return 0;
}
