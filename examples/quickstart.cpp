// Quickstart: build the paper's mini-bank running example, ask the three
// queries from Section 2 of the paper, and print the generated SQL with
// result snippets — the Google-like search experience over a warehouse.
//
//   (1) Find all financial instruments of customers in Zürich.
//   (2) What is the total trading volume over the last months?
//   (3) What is the address of Sara Guttinger?

#include <cstdio>

#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

int main() {
  // 1. Build a warehouse: schema model -> metadata graph + base tables.
  auto bank = soda::BuildMiniBank();
  if (!bank.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 bank.status().ToString().c_str());
    return 1;
  }

  // 2. Construct the search engine over the catalog and metadata graph.
  //    This builds the inverted index over the base data, the
  //    classification index over all metadata labels, and harvests the
  //    join graph through the Credit Suisse pattern library. The factory
  //    surfaces any index-construction failure immediately.
  auto created = soda::Soda::Create(&(*bank)->db, &(*bank)->graph,
                                    soda::CreditSuissePatternLibrary(),
                                    soda::SodaConfig{});
  if (!created.ok()) {
    std::fprintf(stderr, "engine construction failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  soda::Soda& engine = **created;

  const char* kQueries[] = {
      "customers Zürich financial instruments",
      "trading volume transaction date between date(2010-01-01) date(2011-12-31)",
      "addresses Sara Guttinger",
  };

  for (const char* query : kQueries) {
    std::printf("==============================================\n");
    std::printf("SODA> %s\n", query);
    auto output = engine.Search(query);
    if (!output.ok()) {
      std::printf("  error: %s\n", output.status().ToString().c_str());
      continue;
    }
    std::printf("  complexity %zu, %zu candidate statement(s)\n\n",
                output->complexity, output->results.size());
    // Show the top-ranked candidate with its snippet, like the first
    // entry of a result page.
    if (output->results.empty()) continue;
    const soda::SodaResult& best = output->results[0];
    std::printf("score %.2f — entry points: %s\n%s\n\n", best.score,
                best.explanation.c_str(), best.sql.c_str());
    if (best.executed) {
      std::printf("%s\n", best.snippet.ToAsciiTable(10).c_str());
    } else {
      std::printf("(execution failed: %s)\n",
                  best.execution_status.ToString().c_str());
    }
  }
  return 0;
}
