// Business concepts: metadata-defined filters and aggregations
// (paper Sections 1.2 and 4.4).
//
// Business users think in terms like "wealthy customers" and "trading
// volume". Neither is a table or a column — both are definitions stored
// in the domain ontology: a predicate (salary >= 1'000'000) and an
// aggregation (sum of transaction amounts). This example shows SODA
// expanding them, then combines them with top-N ranking:
//
//     Show me all my wealthy customers who live in Zurich.
//     Who are my top ten customers in terms of revenue?

#include <cstdio>

#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace {

void Run(const soda::Soda& engine, const char* query, size_t show = 1) {
  std::printf("==============================================\n");
  std::printf("SODA> %s\n\n", query);
  auto output = engine.Search(query);
  if (!output.ok()) {
    std::printf("  error: %s\n", output.status().ToString().c_str());
    return;
  }
  for (size_t i = 0; i < output->results.size() && i < show; ++i) {
    const soda::SodaResult& result = output->results[i];
    std::printf("score %.2f — %s\n%s\n\n", result.score,
                result.explanation.c_str(), result.sql.c_str());
    if (result.executed) {
      std::printf("%s\n", result.snippet.ToAsciiTable(10).c_str());
    }
  }
}

}  // namespace

int main() {
  auto bank = soda::BuildMiniBank();
  if (!bank.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 bank.status().ToString().c_str());
    return 1;
  }
  auto created = soda::Soda::Create(&(*bank)->db, &(*bank)->graph,
                                    soda::CreditSuissePatternLibrary(),
                                    soda::SodaConfig{});
  if (!created.ok()) {
    std::fprintf(stderr, "engine construction failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  soda::Soda& engine = **created;

  // The metadata filter "wealthy customers" expands to a salary predicate
  // defined by domain experts — the user never writes the threshold.
  Run(engine, "wealthy customers");

  // Combined with a base-data filter: wealthy customers in Zürich.
  Run(engine, "wealthy customers Zürich");

  // The metadata aggregation "trading volume" expands to
  // sum(fi_transactions.amount) (Section 4.4.2).
  Run(engine, "trading volume group by (transaction date)");

  // Paper Query 3: explicit aggregation syntax.
  Run(engine, "sum (amount) group by (transaction date)");

  // Paper Query 4: count transactions per company, ranked.
  Run(engine, "count (transactions) group by (company name)");

  return 0;
}
