// Service demo: the sharded SODA service — a folded-hash query router
// over replicated SodaEngines, many user threads firing the paper's
// queries at it, the way a BI front end would (interactive query
// building over a warehouse à la Sigma Worksheet).
//
// Shows: the router splitting one dashboard refresh across shards (each
// with its own worker pool and LRU cache, byte-identical merge back into
// input order), async snippet streaming behind a SnippetBarrier, keyed
// cache invalidation fanning out to every shard after a base-data
// update, and the fleet-level metrics snapshot (per-stage histograms +
// service counters merged across shards, plus router.* samples).

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_engine.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

int main() {
  auto bank = soda::BuildMiniBank();
  if (!bank.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 bank.status().ToString().c_str());
    return 1;
  }

  soda::SodaConfig config;
  config.num_shards = 2;
  config.num_threads = 2;
  config.cache_capacity = 32;
  auto created = soda::ShardedSodaEngine::Create(
      &(*bank)->db, &(*bank)->graph, soda::CreditSuissePatternLibrary(),
      config);
  if (!created.ok()) {
    std::fprintf(stderr, "engine construction failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  soda::ShardedSodaEngine& engine = **created;
  std::printf("router up: %zu shard(s) x %zu worker thread(s), "
              "fleet cache capacity %zu\n\n",
              engine.num_shards(), engine.num_threads(),
              engine.cache_stats().capacity);

  // A small "dashboard" of queries every simulated user keeps refreshing.
  const std::vector<std::string> dashboard = {
      "customers Zürich financial instruments",
      "sum(investments) group by (currency)",
      "addresses Sara Guttinger",
      "private customers family name",
  };

  // First pass: cold cache — the whole dashboard goes in as ONE batch.
  // Steps 1-2 run once per unique query and every (query, interpretation)
  // pair shares the worker pool; a repeated query would cost one miss
  // plus in-batch hits.
  std::printf("---- cold pass (one SearchAll batch) --------------------\n");
  auto batch = engine.SearchAll(dashboard);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i].ok()) {
      std::fprintf(stderr, "  error: %s\n",
                   batch[i].status().ToString().c_str());
      continue;
    }
    std::printf("  %-48s %2zu result(s)  %6.2f ms  %s\n",
                dashboard[i].c_str(), batch[i]->results.size(),
                batch[i]->timings.wall_ms,
                batch[i]->from_cache ? "cache" : "pipeline");
  }

  // Concurrent users hammering the same dashboard: mostly cache hits.
  std::printf("---- 8 users x 25 refreshes -----------------------------\n");
  std::atomic<size_t> answered{0};
  std::vector<std::thread> users;
  for (int u = 0; u < 8; ++u) {
    users.emplace_back([&, u] {
      for (int round = 0; round < 25; ++round) {
        const std::string& query = dashboard[(u + round) % dashboard.size()];
        auto output = engine.Search(query);
        if (output.ok()) answered.fetch_add(1);
      }
    });
  }
  for (auto& user : users) user.join();

  soda::CacheStats stats = engine.cache_stats();
  std::printf("  answered %zu requests; cache: %zu hit / %zu miss "
              "(%.0f%% hit rate, %zu entries)\n",
              answered.load(), stats.hits, stats.misses,
              100.0 * stats.hit_rate(), stats.size);

  // One warm request with the full observability surface.
  auto warm = engine.Search(dashboard[0]);
  if (warm.ok()) {
    std::printf("\nwarm '%s':\n  from_cache=%d wall=%.3f ms "
                "(owning shard: %zu hits / %zu misses, %zu threads)\n",
                dashboard[0].c_str(), warm->from_cache ? 1 : 0,
                warm->timings.wall_ms, warm->cache_hits, warm->cache_misses,
                warm->threads_used);
  }

  // Base-data update: the investments table changed, so evict exactly the
  // cached answers that mention it — on whichever shard they live — and
  // leave the rest of the fleet's cache warm.
  size_t evicted = engine.InvalidateWhere([](const std::string& key) {
    return key.find("investments") != std::string::npos;
  });
  auto recomputed = engine.Search(dashboard[1]);
  std::printf("---- keyed invalidation ---------------------------------\n"
              "  InvalidateWhere(\"investments\") evicted %zu entr%s; "
              "'%s' now served from %s\n",
              evicted, evicted == 1 ? "y" : "ies", dashboard[1].c_str(),
              recomputed.ok() && recomputed->from_cache ? "cache"
                                                        : "pipeline");

  // Async snippet streaming: translated, ranked SQL comes back at once;
  // snippets arrive through the callback as the pool executes them, and
  // the barrier is the deterministic completion point.
  std::printf("---- async streaming (fresh query) ----------------------\n");
  engine.ClearCache();
  std::atomic<size_t> streamed{0};
  soda::SnippetBarrier barrier;
  auto async_out = engine.SearchAsync(
      "trading volume transaction date between date(2010-01-01) "
      "date(2011-12-31)",
      [&](size_t, size_t result_index, const soda::SodaResult& result) {
        streamed.fetch_add(1);
        std::printf("  snippet #%zu streamed: %s (%zu rows)\n", result_index,
                    result.executed ? "ok" : "skipped",
                    result.snippet.rows.size());
      },
      &barrier);
  if (async_out.ok()) {
    std::printf("  translation returned %zu ranked statement(s) "
                "immediately\n", async_out->results.size());
  }
  barrier.Wait();
  std::printf("  barrier drained: %zu snippet callback(s), "
              "%zu exception(s)\n", streamed.load(),
              barrier.callback_exceptions());

  // The fleet-level view: per-stage latency histograms and service
  // counters, aggregated across everything this process just did.
  std::printf("---- metrics snapshot -----------------------------------\n%s",
              engine.metrics_snapshot().ToString().c_str());
  return 0;
}
