// Service demo: the sharded SODA service — a folded-hash query router
// over replicated SodaEngines, many user threads firing the paper's
// queries at it, the way a BI front end would (interactive query
// building over a warehouse à la Sigma Worksheet).
//
// Shows: the router splitting one dashboard refresh across shards (each
// with its own worker pool and LRU cache, byte-identical merge back into
// input order), async snippet streaming behind a SnippetBarrier, live
// base data — a row appended mid-serve flows through the change log into
// every shard's inverted index and invalidates exactly the dependent
// cache keys automatically (FreshnessManager) — and the fleet-level
// metrics snapshot, in both the human-readable dump and Prometheus text
// exposition format. Everything serves through the abstract SodaService
// interface — the demo would read the same over a single SodaEngine —
// including an interactive session (pin/ban/bind + incremental Refine).
//
// With --serve the same stack goes behind the HTTP front end
// (net/http_server.h) instead: the process prints its port + curl
// quickstart lines and serves /search, /metrics and /healthz until
// SIGINT/SIGTERM, then drains gracefully. The CI server smoke stage
// drives exactly this mode.

#include <csignal>
#include <cstring>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/prometheus_sink.h"
#include "core/freshness.h"
#include "core/session.h"
#include "core/sharded_engine.h"
#include "datasets/minibank.h"
#include "net/http_server.h"
#include "pattern/library.h"
#include "storage/change_log.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [--serve] [--port N] [--shards N] [--threads N]\n"
      "\n"
      "Without flags: the scripted demo (router, sessions, freshness,\n"
      "async streaming, metrics) against the mini-bank warehouse.\n"
      "\n"
      "--serve: the same stack behind the HTTP front end. Quickstart:\n"
      "  %s --serve            # prints 'serving on http://127.0.0.1:PORT'\n"
      "  curl http://127.0.0.1:PORT/healthz\n"
      "  curl -X POST -d '{\"query\":\"addresses Sara Guttinger\"}' \\\n"
      "       http://127.0.0.1:PORT/search\n"
      "  curl -X POST -d '{\"queries\":[\"customers Z\\u00fcrich financial "
      "instruments\"]}' \\\n"
      "       'http://127.0.0.1:PORT/search?stream=1'   # chunked ndjson\n"
      "  curl http://127.0.0.1:PORT/metrics             # Prometheus text\n"
      "  curl 'http://127.0.0.1:PORT/debug/traces?min_ms=0'  # span trees\n"
      "  curl http://127.0.0.1:PORT/debug/vars          # config + state\n"
      "SIGINT/SIGTERM drain gracefully (in-flight requests complete).\n",
      argv0, argv0);
}

// The HTTP serving mode: mini-bank + sharded engine + freshness wiring
// behind a SodaHttpServer, alive until a stop signal.
int RunServe(uint16_t port, size_t shards, size_t threads) {
  auto bank = soda::BuildMiniBank();
  if (!bank.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 bank.status().ToString().c_str());
    return 1;
  }
  soda::SodaConfig config;
  config.num_shards = shards;
  config.num_threads = threads;
  config.cache_capacity = 64;
  // Serve mode keeps every trace (sample 1-in-1) so the /debug/traces
  // quickstart below shows span trees immediately; slow-query capture
  // flags anything over 250ms in /debug/vars' slow_log.
  config.trace_sample_n = 1;
  config.slow_query_threshold_ms = 250.0;
  auto created = soda::ShardedSodaEngine::Create(
      &(*bank)->db, &(*bank)->graph, soda::CreditSuissePatternLibrary(),
      config);
  if (!created.ok()) {
    std::fprintf(stderr, "engine construction failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  soda::FreshnessManager freshness(&(*bank)->db.change_log());
  freshness.Track(created->get());

  soda::HttpServerOptions options;
  options.port = port;
  options.extra_metrics = [&freshness] {
    return freshness.metrics_snapshot();
  };
  soda::SodaHttpServer server(created->get(), options);
  soda::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::printf("serving on http://127.0.0.1:%u (%zu shards x %zu threads)\n",
              server.port(), created->get()->num_shards(),
              created->get()->num_threads());
  std::printf("  curl http://127.0.0.1:%u/healthz\n", server.port());
  std::printf("  curl -X POST -d '{\"query\":\"addresses Sara Guttinger\"}' "
              "http://127.0.0.1:%u/search\n",
              server.port());
  std::printf("  curl http://127.0.0.1:%u/metrics\n", server.port());
  std::printf("  curl 'http://127.0.0.1:%u/debug/traces?min_ms=0'\n",
              server.port());
  std::printf("  curl http://127.0.0.1:%u/debug/vars\n", server.port());
  std::fflush(stdout);

  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("stop signal received — draining\n");
  server.Stop();
  std::printf("drained; served %llu request(s)\n",
              static_cast<unsigned long long>(
                  server.server_metrics().counter("server.requests")));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve = false;
  uint16_t port = 0;
  size_t shards = 2;
  size_t threads = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoul(argv[++i], nullptr, 10);
    } else {
      PrintUsage(argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  if (serve) return RunServe(port, shards, threads);

  auto bank = soda::BuildMiniBank();
  if (!bank.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 bank.status().ToString().c_str());
    return 1;
  }

  soda::SodaConfig config;
  config.num_shards = 2;
  config.num_threads = 2;
  config.cache_capacity = 32;
  auto created = soda::ShardedSodaEngine::Create(
      &(*bank)->db, &(*bank)->graph, soda::CreditSuissePatternLibrary(),
      config);
  if (!created.ok()) {
    std::fprintf(stderr, "engine construction failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  soda::ShardedSodaEngine& engine = **created;
  // Serving goes through the abstract interface: swap in a single
  // SodaEngine and nothing below this line changes.
  soda::SodaService& service = engine;
  std::printf("router up: %zu shard(s) x %zu worker thread(s), "
              "fleet cache capacity %zu\n\n",
              engine.num_shards(), engine.num_threads(),
              service.cache_stats().capacity);

  // Index memory accounting: every replica packs its postings + token
  // arena privately, but all of them share ONE token dictionary (the
  // database's), so the vocabulary is paid once fleet-wide instead of
  // once per shard.
  std::printf("---- index memory accounting ----------------------------\n");
  size_t index_bytes_total = 0;
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const soda::InvertedIndex& index = engine.shard(s).soda().inverted_index();
    std::printf("  shard %zu index:          %8.1f KiB "
                "(%zu values, %zu tokens)\n",
                s, index.ApproxMemoryBytes() / 1024.0, index.num_values(),
                index.num_tokens());
    index_bytes_total += index.ApproxMemoryBytes();
  }
  const auto& dict = (*bank)->db.token_dict();
  size_t dict_bytes = dict->ApproxMemoryBytes();
  std::printf("  shared token dict:       %8.1f KiB (%zu spellings, "
              "1 copy for %zu replicas)\n",
              dict_bytes / 1024.0, dict->size(), engine.num_shards());
  std::printf("  fleet total:             %8.1f KiB — private "
              "vocabularies would add %8.1f KiB\n\n",
              (index_bytes_total + dict_bytes) / 1024.0,
              (engine.num_shards() - 1) * dict_bytes / 1024.0);

  // Live-base-data wiring: storage appends now publish ChangeEvents, the
  // manager applies incremental index deltas on every shard replica and
  // fires keyed invalidation for exactly the affected cache entries.
  // Installed before serving so every cached answer's dependencies are
  // recorded.
  soda::FreshnessManager freshness(&(*bank)->db.change_log());
  freshness.Track(&engine);

  // A small "dashboard" of queries every simulated user keeps refreshing.
  const std::vector<std::string> dashboard = {
      "customers Zürich financial instruments",
      "sum(investments) group by (currency)",
      "addresses Sara Guttinger",
      "private customers family name",
  };

  // First pass: cold cache — the whole dashboard goes in as ONE batch.
  // Steps 1-2 run once per unique query and every (query, interpretation)
  // pair shares the worker pool; a repeated query would cost one miss
  // plus in-batch hits.
  std::printf("---- cold pass (one SearchAll batch) --------------------\n");
  auto batch = service.SearchAll(dashboard);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i].ok()) {
      std::fprintf(stderr, "  error: %s\n",
                   batch[i].status().ToString().c_str());
      continue;
    }
    std::printf("  %-48s %2zu result(s)  %6.2f ms  %s\n",
                dashboard[i].c_str(), batch[i]->results.size(),
                batch[i]->timings.wall_ms,
                batch[i]->from_cache ? "cache" : "pipeline");
  }

  // Concurrent users hammering the same dashboard: mostly cache hits.
  std::printf("---- 8 users x 25 refreshes -----------------------------\n");
  std::atomic<size_t> answered{0};
  std::vector<std::thread> users;
  for (int u = 0; u < 8; ++u) {
    users.emplace_back([&, u] {
      for (int round = 0; round < 25; ++round) {
        const std::string& query = dashboard[(u + round) % dashboard.size()];
        auto output = service.Search(query);
        if (output.ok()) answered.fetch_add(1);
      }
    });
  }
  for (auto& user : users) user.join();

  soda::CacheStats stats = service.cache_stats();
  std::printf("  answered %zu requests; cache: %zu hit / %zu miss "
              "(%.0f%% hit rate, %zu entries)\n",
              answered.load(), stats.hits, stats.misses,
              100.0 * stats.hit_rate(), stats.size);

  // One warm request with the full observability surface.
  auto warm = service.Search(dashboard[0]);
  if (warm.ok()) {
    std::printf("\nwarm '%s':\n  from_cache=%d wall=%.3f ms "
                "(owning shard: %zu hits / %zu misses, %zu threads)\n",
                dashboard[0].c_str(), warm->from_cache ? 1 : 0,
                warm->timings.wall_ms, warm->cache_hits, warm->cache_misses,
                warm->threads_used);
  }

  // Interactive session: one user steering a translation. Ask answers
  // cold and captures a translation plan; every result carries a typed
  // Explanation (matched terms -> chosen entry points -> FROM tables ->
  // joins -> filters); pin/ban/bind levers re-run only the stages they
  // can affect on Refine — byte-identical to a cold constrained
  // translation, just cheaper.
  std::printf("---- interactive session --------------------------------\n");
  // Start cold so the Ask translates (and captures a resumable plan)
  // instead of answering from the dashboard-warmed cache.
  service.ClearCache();
  soda::SodaSession session(&service);
  auto asked = session.Ask("private customers family name");
  if (asked.ok()) {
    std::printf("  Ask('private customers family name'): %zu result(s)\n",
                asked->results.size());
    for (const soda::SodaResult& result : asked->results) {
      const soda::Explanation& why = result.provenance;
      std::printf("    score %.2f  terms:%zu  FROM:%zu  joins:%zu  "
                  "filters:%zu  (%s)\n",
                  result.score, why.terms.size(), why.tables.size(),
                  why.joins.size(), why.filters.size(),
                  result.explanation.c_str());
    }
  }
  auto banned = session.BanTable("securities").Refine();
  if (banned.ok()) {
    std::printf("  BanTable('securities') + Refine: %zu result(s), "
                "skipped %zu/5 stages (pin/ban gates Step 5 only)\n",
                banned->results.size(), banned->stages_skipped);
  }
  auto candidates = session.TermCandidates("name");
  std::printf("  'name' has %zu bindable entry point(s)\n",
              candidates.size());
  for (const auto& [entry_key, description] : candidates) {
    if (description.find("logical schema") == std::string::npos) continue;
    auto bound = session.BindTerm("name", entry_key).Refine();
    if (bound.ok()) {
      std::printf("  BindTerm('name' -> '%s') + Refine: %zu result(s), "
                  "skipped %zu/5 stages (re-ranked from the session's "
                  "cached lookup)\n",
                  description.c_str(), bound->results.size(),
                  bound->stages_skipped);
    }
    break;
  }

  // Manual keyed invalidation is still available for callers that know
  // which keys a change affects...
  size_t evicted = service.InvalidateWhere([](const std::string& key) {
    return key.find("investments") != std::string::npos;
  });
  auto recomputed = service.Search(dashboard[1]);
  std::printf("---- keyed invalidation ---------------------------------\n"
              "  InvalidateWhere(\"investments\") evicted %zu entr%s; "
              "'%s' now served from %s\n",
              evicted, evicted == 1 ? "y" : "ies", dashboard[1].c_str(),
              recomputed.ok() && recomputed->from_cache ? "cache"
                                                        : "pipeline");

  // ...but live base data does not need it: append a brand-new customer
  // while the fleet is up, and the change log + FreshnessManager update
  // every shard's inverted index in place and evict exactly the cached
  // answers the row can affect (the Zürich dashboard entry), leaving the
  // rest warm.
  std::printf("---- live base data (automatic freshness) ---------------\n");
  soda::Table* individuals = (*bank)->db.FindTable("individuals");
  soda::Table* addresses = (*bank)->db.FindTable("addresses");
  {
    soda::ChangeLog::EpochGuard epoch((*bank)->db.change_log());
    (void)individuals->Append(
        {soda::Value::Int(9001), soda::Value::Str("Nadia"),
         soda::Value::Str("Demozian"), soda::Value::Int(120000),
         soda::Value::DateV(soda::Date::FromYmd(1988, 4, 2))});
    (void)addresses->Append({soda::Value::Int(9001), soda::Value::Int(9001),
                             soda::Value::Str("Limmatquai 1"),
                             soda::Value::Str("Zürich"),
                             soda::Value::Str("CH")});
  }
  auto after_append = service.Search(dashboard[0]);
  std::printf("  appended individual 'Nadia Demozian' + Zürich address "
              "(one epoch, %llu events)\n",
              static_cast<unsigned long long>(freshness.events_seen()));
  std::printf("  '%s' served from %s (auto-invalidated, %llu key(s) "
              "evicted fleet-wide)\n",
              dashboard[0].c_str(),
              after_append.ok() && after_append->from_cache ? "cache"
                                                           : "pipeline",
              static_cast<unsigned long long>(freshness.keys_invalidated()));
  auto nadia = service.Search("addresses Nadia Demozian");
  if (nadia.ok()) {
    std::printf("  'addresses Nadia Demozian' now finds %zu result(s) "
                "without any rebuild\n", nadia->results.size());
  }

  // Async snippet streaming: translated, ranked SQL comes back at once;
  // snippets arrive through the callback as the pool executes them, and
  // the barrier is the deterministic completion point.
  std::printf("---- async streaming (fresh query) ----------------------\n");
  service.ClearCache();
  std::atomic<size_t> streamed{0};
  soda::SnippetBarrier barrier;
  auto async_out = service.SearchAsync(
      "trading volume transaction date between date(2010-01-01) "
      "date(2011-12-31)",
      [&](size_t, size_t result_index, const soda::SodaResult& result) {
        streamed.fetch_add(1);
        std::printf("  snippet #%zu streamed: %s (%zu rows)\n", result_index,
                    result.executed ? "ok" : "skipped",
                    result.snippet.rows.size());
      },
      &barrier);
  if (async_out.ok()) {
    std::printf("  translation returned %zu ranked statement(s) "
                "immediately\n", async_out->results.size());
  }
  barrier.Wait();
  std::printf("  barrier drained: %zu snippet callback(s), "
              "%zu exception(s)\n", streamed.load(),
              barrier.callback_exceptions());

  // The fleet-level view: per-stage latency histograms and service
  // counters, aggregated across everything this process just did —
  // freshness.* books included (the manager writes into its own sink
  // here; fold it into the fleet view for one merged dump).
  soda::MetricsSnapshot fleet = service.metrics_snapshot();
  fleet.MergeFrom(freshness.metrics_snapshot());
  std::printf("---- metrics snapshot -----------------------------------\n%s",
              fleet.ToString().c_str());

  // The same snapshot a /metrics endpoint would serve, in Prometheus
  // text exposition format (counters only here — the histogram series
  // render too but would flood the terminal).
  std::printf("---- prometheus exposition (counters) -------------------\n");
  std::string exposition = soda::RenderPrometheusText(fleet);
  size_t pos = 0;
  while (pos < exposition.size()) {
    size_t eol = exposition.find('\n', pos);
    std::string line = exposition.substr(pos, eol - pos);
    if (line.find("_bucket{") == std::string::npos &&
        line.find("_sum") == std::string::npos &&
        line.find("_count") == std::string::npos &&
        line.find("histogram") == std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
    pos = eol == std::string::npos ? exposition.size() : eol + 1;
  }
  return 0;
}
