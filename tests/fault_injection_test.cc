// Fault-injection sweep over the serving stack's failure domains:
//
//   - shard.dispatch armed to throw / error / stall on one shard of a
//     router: non-failed queries stay byte-identical to a fault-free
//     run, failed sub-batches re-route to healthy replicas (identical
//     answers — replicas are shared-nothing full copies), and the
//     per-shard circuit breaker quarantines, probes, and re-admits;
//   - engine.pool_task / snippet.execute armed inside the engine: a
//     poisoned pool task degrades to a per-query (or per-result) error
//     instead of unwinding the serving layer, and an async snippet
//     stream always drains its barrier;
//   - freshness.apply_delta armed: a failed index delta falls back to
//     full cache invalidation, never a stale answer;
//   - http.handle armed: a throwing handler is answered 500 and the
//     connection loop survives.
//
// Every case runs with failpoints disarmed in teardown so cases stay
// independent; the whole file skips when the build compiled failpoints
// out (-DSODA_FAILPOINTS=OFF).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "core/freshness.h"
#include "core/sharded_engine.h"
#include "core/soda.h"
#include "datasets/minibank.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "pattern/library.h"
#include "storage/change_log.h"
#include "sql/value.h"

namespace soda {
namespace {

// Same literal-byte fingerprint as sharded_engine_test: everything
// rank-relevant including snippets, excluding serving-history counters.
std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

std::vector<std::string> MiniBankQueries() {
  return {
      "customers Zürich financial instruments",
      "trading volume transaction date between date(2010-01-01) "
      "date(2011-12-31)",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete bank_;
    bank_ = nullptr;
  }

  void SetUp() override {
    if (!Failpoints::compiled_in()) {
      GTEST_SKIP() << "failpoints compiled out (-DSODA_FAILPOINTS=OFF)";
    }
  }
  void TearDown() override { Failpoints::Instance().DisarmAll(); }

  /// Fault-tuned knobs: quarantine after 2 consecutive failures, short
  /// backoffs so probe/re-admission fits in a test, enough retries to
  /// walk past one bad shard of four.
  static SodaConfig FaultConfig(size_t shards, size_t threads,
                                double deadline_ms = 0.0) {
    SodaConfig config;
    config.num_shards = shards;
    config.num_threads = threads;
    config.cache_capacity = 64;
    config.shard_failure_threshold = 2;
    config.shard_backoff_initial_ms = 40.0;
    config.shard_backoff_max_ms = 400.0;
    config.shard_retry_limit = 3;
    config.shard_retry_backoff_ms = 1.0;
    config.shard_dispatch_deadline_ms = deadline_ms;
    return config;
  }

  static std::unique_ptr<ShardedSodaEngine> MakeRouter(
      const SodaConfig& config) {
    auto router = ShardedSodaEngine::Create(&bank_->db, &bank_->graph,
                                            CreditSuissePatternLibrary(),
                                            config);
    EXPECT_TRUE(router.ok()) << router.status();
    return std::move(router).value();
  }

  static std::unique_ptr<SodaEngine> MakeEngine(size_t threads,
                                                size_t cache_capacity) {
    SodaConfig config;
    config.num_threads = threads;
    config.cache_capacity = cache_capacity;
    auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                     CreditSuissePatternLibrary(), config);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  /// Fault-free reference fingerprints for the standard query set.
  static std::vector<std::string> Baseline(size_t shards, size_t threads) {
    auto router = MakeRouter(FaultConfig(shards, threads));
    std::vector<std::string> queries = MiniBankQueries();
    auto outputs = router->SearchAll(std::span<const std::string>(queries));
    std::vector<std::string> fingerprints;
    for (const auto& output : outputs) {
      EXPECT_TRUE(output.ok()) << output.status();
      fingerprints.push_back(output.ok() ? Fingerprint(*output) : "");
    }
    return fingerprints;
  }

  static MiniBank* bank_;
};

MiniBank* FaultInjectionTest::bank_ = nullptr;

// ---------------------------------------------------------------------------
// Router failover: throw / error / stall sweeps
// ---------------------------------------------------------------------------

// One of four shards armed (throw and error variants): every query still
// answers, rerouted ones byte-identical to the fault-free run, and the
// breaker books the failures.
TEST_F(FaultInjectionTest, MultiShardFailoverByteIdentity) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<std::string> baseline = Baseline(4, threads);
    std::vector<std::string> queries = MiniBankQueries();
    size_t bad = ShardOfKey(NormalizedQueryKey(queries[0]), 4);
    for (FailpointSpec::Action action :
         {FailpointSpec::Action::kThrow, FailpointSpec::Action::kError}) {
      auto router = MakeRouter(FaultConfig(4, threads));
      FailpointSpec spec;
      spec.action = action;
      spec.match = std::to_string(bad);
      Failpoints::Instance().Arm("shard.dispatch", spec);

      auto outputs = router->SearchAll(std::span<const std::string>(queries));
      ASSERT_EQ(outputs.size(), queries.size());
      for (size_t i = 0; i < outputs.size(); ++i) {
        ASSERT_TRUE(outputs[i].ok())
            << "threads=" << threads << " query " << i << ": "
            << outputs[i].status();
        EXPECT_EQ(Fingerprint(*outputs[i]), baseline[i])
            << "threads=" << threads << " query " << i;
      }
      EXPECT_GT(Failpoints::Instance().fires("shard.dispatch"), 0u);
      MetricsSnapshot snapshot = router->metrics_snapshot();
      EXPECT_GE(snapshot.counter("router.shard_failures"), 1u);
      EXPECT_GE(snapshot.counter("router.retries"), 1u);
      EXPECT_GE(snapshot.counter("router.rerouted_queries"), 1u);
      Failpoints::Instance().DisarmAll();
    }
  }
}

// Stall variant: the armed shard sleeps past the sub-batch deadline; the
// batch abandons it and re-routes, byte-identical again.
TEST_F(FaultInjectionTest, MultiShardStallAbandonsAndReroutes) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<std::string> baseline = Baseline(4, threads);
    std::vector<std::string> queries = MiniBankQueries();
    size_t bad = ShardOfKey(NormalizedQueryKey(queries[0]), 4);
    auto router = MakeRouter(FaultConfig(4, threads, /*deadline_ms=*/80.0));
    FailpointSpec spec;
    spec.action = FailpointSpec::Action::kSleep;
    spec.sleep_ms = 400.0;
    spec.match = std::to_string(bad);
    Failpoints::Instance().Arm("shard.dispatch", spec);

    auto outputs = router->SearchAll(std::span<const std::string>(queries));
    ASSERT_EQ(outputs.size(), queries.size());
    for (size_t i = 0; i < outputs.size(); ++i) {
      ASSERT_TRUE(outputs[i].ok())
          << "threads=" << threads << " query " << i << ": "
          << outputs[i].status();
      EXPECT_EQ(Fingerprint(*outputs[i]), baseline[i])
          << "threads=" << threads << " query " << i;
    }
    MetricsSnapshot snapshot = router->metrics_snapshot();
    EXPECT_GE(snapshot.counter("router.shard_failures"), 1u);
    EXPECT_GE(snapshot.counter("router.rerouted_queries"), 1u);
    Failpoints::Instance().DisarmAll();
    // Let the abandoned worker finish its sleep inside the router's
    // dispatch pool before the router (and the armed registry state)
    // goes away.
  }
}

// A single-shard router has nowhere to re-route: every query fails with
// a per-query Unavailable (fail-fast once quarantined, no hang), and the
// shard recovers after disarm + backoff.
TEST_F(FaultInjectionTest, SingleShardFailsFastAndRecovers) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<std::string> baseline = Baseline(1, threads);
    std::vector<std::string> queries = MiniBankQueries();
    auto router = MakeRouter(FaultConfig(1, threads));
    FailpointSpec spec;
    spec.action = FailpointSpec::Action::kThrow;
    Failpoints::Instance().Arm("shard.dispatch", spec);

    auto outputs = router->SearchAll(std::span<const std::string>(queries));
    ASSERT_EQ(outputs.size(), queries.size());
    for (const auto& output : outputs) {
      ASSERT_FALSE(output.ok());
      EXPECT_EQ(output.status().code(), StatusCode::kUnavailable);
    }
    ServiceHealth degraded = router->health();
    EXPECT_TRUE(degraded.degraded);
    ASSERT_EQ(degraded.shards.size(), 1u);
    EXPECT_EQ(degraded.shards[0].state, "quarantined");

    // Re-admission: disarm, let the quarantine backoff elapse, and the
    // next batch is the successful probe that closes the breaker.
    Failpoints::Instance().DisarmAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    auto recovered = router->SearchAll(std::span<const std::string>(queries));
    ASSERT_EQ(recovered.size(), queries.size());
    for (size_t i = 0; i < recovered.size(); ++i) {
      ASSERT_TRUE(recovered[i].ok()) << recovered[i].status();
      EXPECT_EQ(Fingerprint(*recovered[i]), baseline[i]);
    }
    ServiceHealth healthy = router->health();
    EXPECT_FALSE(healthy.degraded);
    EXPECT_EQ(healthy.shards[0].state, "closed");
    EXPECT_GE(router->metrics_snapshot().counter("router.readmissions"), 1u);
  }
}

// Single-query routing walks the same breaker: repeated failures on the
// home shard quarantine it, traffic re-routes, and a successful probe
// after the backoff re-admits.
TEST_F(FaultInjectionTest, QuarantineProbeAndReadmission) {
  std::vector<std::string> queries = MiniBankQueries();
  size_t bad = ShardOfKey(NormalizedQueryKey(queries[0]), 4);
  auto router = MakeRouter(FaultConfig(4, /*threads=*/2));
  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kError;
  spec.match = std::to_string(bad);
  Failpoints::Instance().Arm("shard.dispatch", spec);

  // failure_threshold=2: two Searches homed on the bad shard charge one
  // failure each (then succeed rerouted), crossing into quarantine.
  for (int round = 0; round < 2; ++round) {
    auto output = router->Search(queries[0]);
    ASSERT_TRUE(output.ok()) << output.status();
  }
  ServiceHealth health = router->health();
  EXPECT_TRUE(health.degraded);
  EXPECT_EQ(health.shards[bad].state, "quarantined");
  EXPECT_GT(health.shards[bad].backoff_ms, 0.0);
  MetricsSnapshot snapshot = router->metrics_snapshot();
  EXPECT_GE(snapshot.counter("router.quarantines"), 1u);
  EXPECT_EQ(snapshot.counter("router.shards_quarantined"), 1u);

  // While quarantined (backoff not yet elapsed) the query re-routes
  // without charging the bad shard further.
  auto rerouted = router->Search(queries[0]);
  ASSERT_TRUE(rerouted.ok()) << rerouted.status();

  // Disarm and let the backoff elapse: the next dispatch is the probe,
  // it succeeds, and the breaker closes.
  Failpoints::Instance().DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto probed = router->Search(queries[0]);
  ASSERT_TRUE(probed.ok()) << probed.status();
  health = router->health();
  EXPECT_FALSE(health.degraded);
  EXPECT_EQ(health.shards[bad].state, "closed");
  snapshot = router->metrics_snapshot();
  EXPECT_GE(snapshot.counter("router.readmissions"), 1u);
  EXPECT_EQ(snapshot.counter("router.shards_quarantined"), 0u);
}

// ---------------------------------------------------------------------------
// Engine containment: pool tasks and snippet execution
// ---------------------------------------------------------------------------

// A throwing pool task inside the engine degrades to a per-query error
// Status — and through the router it is a query outcome, NOT a shard
// failure: the breaker stays closed (the replica is healthy; re-routing
// an engine-level fault would just fail again elsewhere).
TEST_F(FaultInjectionTest, PoolTaskExceptionBecomesPerQueryError) {
  auto engine = MakeEngine(/*threads=*/4, /*cache_capacity=*/0);
  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kThrow;
  Failpoints::Instance().Arm("engine.pool_task", spec);

  auto single = engine->Search("customers Zürich financial instruments");
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(single.status().code(), StatusCode::kUnavailable);

  std::vector<std::string> queries = MiniBankQueries();
  auto outputs = engine->SearchAll(std::span<const std::string>(queries));
  ASSERT_EQ(outputs.size(), queries.size());
  for (const auto& output : outputs) {
    ASSERT_FALSE(output.ok());
    EXPECT_EQ(output.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_GE(engine->metrics_snapshot().counter("engine.task_exceptions"), 1u);

  Failpoints::Instance().DisarmAll();
  auto healthy = engine->Search("customers Zürich financial instruments");
  ASSERT_TRUE(healthy.ok()) << healthy.status();
}

TEST_F(FaultInjectionTest, EngineFaultDoesNotTripShardBreaker) {
  auto router = MakeRouter(FaultConfig(2, /*threads=*/2));
  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kThrow;
  Failpoints::Instance().Arm("engine.pool_task", spec);

  std::vector<std::string> queries = MiniBankQueries();
  auto outputs = router->SearchAll(std::span<const std::string>(queries));
  for (const auto& output : outputs) {
    ASSERT_FALSE(output.ok());
    EXPECT_EQ(output.status().code(), StatusCode::kUnavailable);
  }
  // The error Results are query outcomes: no shard was blamed.
  ServiceHealth health = router->health();
  EXPECT_FALSE(health.degraded);
  EXPECT_EQ(router->metrics_snapshot().counter("router.shard_failures"), 0u);
}

// snippet.execute containment: the translation still answers; every
// poisoned result is marked unexecuted with its error instead of
// failing the query.
TEST_F(FaultInjectionTest, SnippetExceptionMarksResultFailed) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/0);
  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kThrow;
  Failpoints::Instance().Arm("snippet.execute", spec);

  auto output = engine->Search("customers Zürich financial instruments");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());
  for (const SodaResult& result : output->results) {
    EXPECT_FALSE(result.executed);
    EXPECT_FALSE(result.execution_status.ok());
  }
  MetricsSnapshot snapshot = engine->metrics_snapshot();
  EXPECT_GE(snapshot.counter("snippet.exception"), 1u);

  Failpoints::Instance().DisarmAll();
  auto healthy = engine->Search("customers Zürich financial instruments");
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_TRUE(healthy->results.front().executed);
}

// ---------------------------------------------------------------------------
// Async streaming: the barrier drains through faults (satellite)
// ---------------------------------------------------------------------------

// A snippet task that throws mid-stream — on a router whose armed shard
// is quarantined, so the sub-batch was rerouted — still delivers every
// expected callback: Wait() returns instead of hanging, with the
// poisoned results marked unexecuted.
TEST_F(FaultInjectionTest,
       SnippetBarrierDrainsWhenTaskThrowsOnQuarantinedShard) {
  std::vector<std::string> queries = MiniBankQueries();
  size_t bad = ShardOfKey(NormalizedQueryKey(queries[0]), 4);
  auto router = MakeRouter(FaultConfig(4, /*threads=*/2));

  // Quarantine the bad shard first with dispatch errors...
  FailpointSpec dispatch_spec;
  dispatch_spec.action = FailpointSpec::Action::kError;
  dispatch_spec.match = std::to_string(bad);
  Failpoints::Instance().Arm("shard.dispatch", dispatch_spec);
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(router->Search(queries[0]).ok());
  }
  ASSERT_TRUE(router->health().degraded);

  // ...then stream an async batch with snippet execution poisoned too.
  // Drop the answers the priming searches cached (their snippets ran
  // healthy) so the batch really re-executes under the fault.
  router->ClearCache();
  FailpointSpec snippet_spec;
  snippet_spec.action = FailpointSpec::Action::kThrow;
  Failpoints::Instance().Arm("snippet.execute", snippet_spec);

  std::atomic<size_t> delivered{0};
  std::atomic<size_t> executed{0};
  SnippetBarrier barrier;
  auto outputs = router->SearchAllAsync(
      std::span<const std::string>(queries),
      [&delivered, &executed](size_t, size_t, const SodaResult& result) {
        if (result.executed) executed.fetch_add(1);
        delivered.fetch_add(1);
      },
      &barrier);
  barrier.Wait();  // must return: every callback delivered despite faults

  ASSERT_EQ(outputs.size(), queries.size());
  size_t expected = 0;
  for (const auto& output : outputs) {
    ASSERT_TRUE(output.ok()) << output.status();
    expected += output->results.size();
  }
  EXPECT_EQ(delivered.load(), expected);
  EXPECT_EQ(executed.load(), 0u);  // every snippet execution was poisoned
  EXPECT_EQ(barrier.pending(), 0u);
  EXPECT_EQ(barrier.callback_exceptions(), 0u);
}

// ---------------------------------------------------------------------------
// Freshness: failed delta falls back to full invalidation
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, FreshnessDeltaFailureInvalidatesWholeCache) {
  auto built = BuildMiniBank();  // private bank: this test mutates it
  ASSERT_TRUE(built.ok()) << built.status();
  std::unique_ptr<MiniBank> bank = std::move(built).value();
  SodaConfig config;
  config.num_threads = 2;
  config.cache_capacity = 64;
  auto engine_result = SodaEngine::Create(&bank->db, &bank->graph,
                                          CreditSuissePatternLibrary(), config);
  ASSERT_TRUE(engine_result.ok()) << engine_result.status();
  std::unique_ptr<SodaEngine> engine = std::move(engine_result).value();
  FreshnessManager freshness(&bank->db.change_log());
  freshness.Track(engine.get());

  // Warm the cache with an answer that does NOT depend on individuals.
  ASSERT_TRUE(engine->Search("sum(investments) group by (currency)").ok());
  ASSERT_GT(engine->cache_stats().size, 0u);

  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kError;
  Failpoints::Instance().Arm("freshness.apply_delta", spec);

  Table* individuals = bank->db.FindTable("individuals");
  ASSERT_NE(individuals, nullptr);
  int64_t id = static_cast<int64_t>(individuals->num_rows()) + 2000;
  ASSERT_TRUE(individuals
                  ->Append({Value::Int(id), Value::Str("Fault"),
                            Value::Str("Fallbackville"), Value::Int(1),
                            Value::DateV(Date::FromYmd(1990, 1, 1))})
                  .ok());

  // The delta failed, so the engine cannot trust ANY cached answer: the
  // fallback evicts everything, including keys the event would not have
  // touched.
  EXPECT_EQ(engine->cache_stats().size, 0u);
  EXPECT_GE(freshness.metrics_snapshot().counter("freshness.delta_failures"),
            1u);
}

// ---------------------------------------------------------------------------
// HTTP front end: handler faults and degraded-mode /healthz
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, HttpHandlerFaultAnswers500AndServesOn) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/16);
  HttpServerOptions options;
  options.num_threads = 2;
  SodaHttpServer server(engine.get(), options);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());

  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kThrow;
  spec.max_fires = 1;  // exactly one poisoned request, then auto-disarm
  Failpoints::Instance().Arm("http.handle", spec);

  auto poisoned = client.Get("/healthz");
  ASSERT_TRUE(poisoned.ok()) << poisoned.status();
  EXPECT_EQ(poisoned->status, 500);

  auto healthy = client.Get("/healthz");
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(healthy->status, 200);
  EXPECT_EQ(healthy->body, "ok\n");
  server.Stop();
}

TEST_F(FaultInjectionTest, HealthzReportsDegradedAndRecovers) {
  std::vector<std::string> queries = MiniBankQueries();
  size_t bad = ShardOfKey(NormalizedQueryKey(queries[0]), 4);
  auto router = MakeRouter(FaultConfig(4, /*threads=*/2));
  HttpServerOptions options;
  options.num_threads = 2;
  SodaHttpServer server(router.get(), options);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());

  // Healthy fleet: verdict line + one detail line per shard.
  auto before = client.Get("/healthz");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->body.compare(0, 3, "ok\n"), 0) << before->body;
  EXPECT_NE(before->body.find("shard 0: closed"), std::string::npos)
      << before->body;

  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kError;
  spec.match = std::to_string(bad);
  Failpoints::Instance().Arm("shard.dispatch", spec);
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(router->Search(queries[0]).ok());
  }

  auto during = client.Get("/healthz");
  ASSERT_TRUE(during.ok()) << during.status();
  EXPECT_EQ(during->status, 200);  // degraded still serves
  EXPECT_EQ(during->body.compare(0, 9, "degraded\n"), 0) << during->body;
  EXPECT_NE(during->body.find("shard " + std::to_string(bad) +
                              ": quarantined"),
            std::string::npos)
      << during->body;

  // Quarantine state reaches /metrics as a point-in-time gauge.
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->body.find("soda_router_shards_quarantined"),
            std::string::npos);

  Failpoints::Instance().DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(router->Search(queries[0]).ok());  // successful probe
  auto after = client.Get("/healthz");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->body.compare(0, 3, "ok\n"), 0) << after->body;
  server.Stop();
}

// ---------------------------------------------------------------------------
// Failpoint registry mechanics
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, RegistryCountsMatchesAndMaxFires) {
  auto engine = MakeEngine(/*threads=*/1, /*cache_capacity=*/0);
  // fires() is a lifetime total that survives DisarmAll (and earlier
  // cases in this binary), so assert the delta this case produced.
  uint64_t fires_before = Failpoints::Instance().fires("engine.pool_task");
  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kThrow;
  spec.max_fires = 2;
  Failpoints::Instance().Arm("engine.pool_task", spec);

  size_t failed = 0;
  for (int i = 0; i < 4; ++i) {
    auto output = engine->Search("addresses Sara Guttinger");
    if (!output.ok()) ++failed;
  }
  // max_fires auto-disarmed after exactly two fires; both fires may land
  // in one search (several pool tasks per search), so 1 or 2 searches
  // failed — but the last ones are healthy.
  EXPECT_EQ(Failpoints::Instance().fires("engine.pool_task") - fires_before,
            2u);
  EXPECT_GE(failed, 1u);
  EXPECT_LE(failed, 2u);
  EXPECT_FALSE(FailpointsArmed());
}

TEST_F(FaultInjectionTest, MatchFiltersByDetail) {
  auto router = MakeRouter(FaultConfig(4, /*threads=*/1));
  std::vector<std::string> queries = MiniBankQueries();
  size_t home0 = ShardOfKey(NormalizedQueryKey(queries[0]), 4);
  // Arm a detail that is NOT query 0's home: its dispatch must not fire.
  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kThrow;
  spec.match = std::to_string((home0 + 1) % 4);
  Failpoints::Instance().Arm("shard.dispatch", spec);

  auto output = router->Search(queries[0]);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_GE(Failpoints::Instance().evaluations("shard.dispatch"), 1u);
  EXPECT_EQ(router->metrics_snapshot().counter("router.shard_failures"), 0u);
}

}  // namespace
}  // namespace soda
