// Tests for the ShardedSodaEngine router:
//
//   - folded-hash routing: stable, whitespace-insensitive, in range, and
//     sanely distributed across 1/2/4/8 shards;
//   - determinism: SearchAll / Search / SearchAllAsync output bytes match
//     a single serial engine at every shard count × thread count;
//   - aggregation: summed cache stats and merged metrics equal a single
//     engine's totals for the same traffic, plus the router's own
//     counters and batch-size samples;
//   - invalidation: InvalidateWhere evicts exactly the matching keys
//     across shards, and keyed eviction is safe under concurrent Search.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace soda {
namespace {

// Serializes everything rank-relevant about an output, snippets included,
// so "byte-identical" is literal (engine-lifetime cache counters are
// deliberately excluded: they describe the serving history, not the
// answer).
std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

std::vector<std::string> MiniBankQueries() {
  return {
      "customers Zürich financial instruments",
      "trading volume transaction date between date(2010-01-01) "
      "date(2011-12-31)",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
}

class ShardedEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete bank_;
    bank_ = nullptr;
  }

  static std::unique_ptr<ShardedSodaEngine> MakeRouter(size_t shards,
                                                       size_t threads,
                                                       size_t cache_capacity) {
    SodaConfig config;
    config.num_shards = shards;
    config.num_threads = threads;
    config.cache_capacity = cache_capacity;
    auto router = ShardedSodaEngine::Create(&bank_->db, &bank_->graph,
                                            CreditSuissePatternLibrary(),
                                            config);
    EXPECT_TRUE(router.ok()) << router.status();
    return std::move(router).value();
  }

  static std::unique_ptr<SodaEngine> MakeEngine(size_t threads,
                                                size_t cache_capacity) {
    SodaConfig config;
    config.num_threads = threads;
    config.cache_capacity = cache_capacity;
    auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                     CreditSuissePatternLibrary(), config);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  static MiniBank* bank_;
};

MiniBank* ShardedEngineTest::bank_ = nullptr;

// ---------------------------------------------------------------------------
// Routing hash
// ---------------------------------------------------------------------------

TEST(ShardOfKeyTest, InRangeAndStable) {
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    for (int i = 0; i < 100; ++i) {
      std::string key = "query number " + std::to_string(i);
      size_t shard = ShardOfKey(key, shards);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, ShardOfKey(key, shards)) << "unstable for " << key;
    }
  }
}

TEST(ShardOfKeyTest, SingleShardAlwaysZero) {
  EXPECT_EQ(ShardOfKey("anything", 1), 0u);
  EXPECT_EQ(ShardOfKey("anything", 0), 0u);
  EXPECT_EQ(ShardOfKey("", 1), 0u);
}

TEST(ShardOfKeyTest, DistributionIsSaneAcrossShardCounts) {
  // 400 distinct dashboard-ish keys; with a healthy folded hash every
  // shard should carry a real share. The bound is loose (half the fair
  // share) — this guards against degenerate folding (e.g. everything on
  // shard 0), not statistical perfection.
  constexpr size_t kKeys = 400;
  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    std::vector<size_t> per_shard(shards, 0);
    for (size_t i = 0; i < kKeys; ++i) {
      std::string key =
          "revenue by region " + std::to_string(i) + " quarter view";
      ++per_shard[ShardOfKey(key, shards)];
    }
    size_t fair = kKeys / shards;
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_GT(per_shard[s], fair / 2)
          << "shard " << s << "/" << shards << " is starved";
      EXPECT_LT(per_shard[s], 2 * fair)
          << "shard " << s << "/" << shards << " is overloaded";
    }
  }
}

TEST(ShardOfKeyTest, NormalizedKeyMakesRoutingWhitespaceInsensitive) {
  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    EXPECT_EQ(
        ShardOfKey(NormalizedQueryKey("addresses Sara Guttinger"), shards),
        ShardOfKey(NormalizedQueryKey("  addresses   Sara Guttinger "),
                   shards));
  }
}

// ---------------------------------------------------------------------------
// Determinism vs a single engine
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, SearchAllMatchesSingleEngineAtAnyShardAndThreadCount) {
  const std::vector<std::string> queries = MiniBankQueries();
  auto reference = MakeEngine(/*threads=*/1, /*cache_capacity=*/0);
  std::vector<std::string> expected;
  for (const std::string& query : queries) {
    auto output = reference->Search(query);
    ASSERT_TRUE(output.ok()) << output.status();
    expected.push_back(Fingerprint(*output));
  }

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      auto router = MakeRouter(shards, threads, /*cache_capacity=*/0);
      auto outputs = router->SearchAll(queries);
      ASSERT_EQ(outputs.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_TRUE(outputs[i].ok())
            << "shards=" << shards << " threads=" << threads << " query="
            << queries[i] << ": " << outputs[i].status();
        EXPECT_EQ(Fingerprint(*outputs[i]), expected[i])
            << "shards=" << shards << " threads=" << threads
            << " query=" << queries[i];
      }
    }
  }
}

TEST_F(ShardedEngineTest, RoutedSingleSearchMatchesSingleEngine) {
  auto reference = MakeEngine(/*threads=*/1, /*cache_capacity=*/0);
  auto router = MakeRouter(/*shards=*/4, /*threads=*/2, /*cache_capacity=*/0);
  for (const std::string& query : MiniBankQueries()) {
    auto expected = reference->Search(query);
    ASSERT_TRUE(expected.ok());
    auto routed = router->Search(query);
    ASSERT_TRUE(routed.ok()) << routed.status();
    EXPECT_EQ(Fingerprint(*routed), Fingerprint(*expected)) << query;
  }
}

TEST_F(ShardedEngineTest, PreservesInputOrderWithDuplicatesAndErrors) {
  auto router = MakeRouter(/*shards=*/4, /*threads=*/2, /*cache_capacity=*/8);
  const std::vector<std::string> queries = {
      "addresses Sara Guttinger",
      "sum(investments",  // unbalanced '(' — parse error
      "customers Zürich financial instruments",
      "  addresses   Sara Guttinger ",  // whitespace-variant repeat
  };
  auto outputs = router->SearchAll(queries);
  ASSERT_EQ(outputs.size(), 4u);
  ASSERT_TRUE(outputs[0].ok());
  ASSERT_FALSE(outputs[1].ok());
  EXPECT_EQ(outputs[1].status().code(), StatusCode::kParseError);
  ASSERT_TRUE(outputs[2].ok());
  ASSERT_TRUE(outputs[3].ok());
  // The repeat met its twin on one shard: identical bytes, booked as an
  // in-batch dedup hit there.
  EXPECT_EQ(Fingerprint(*outputs[0]), Fingerprint(*outputs[3]));
  EXPECT_NE(Fingerprint(*outputs[0]), Fingerprint(*outputs[2]));
  CacheStats stats = router->cache_stats();
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(ShardedEngineTest, EmptyBatch) {
  auto router = MakeRouter(/*shards=*/2, /*threads=*/1, /*cache_capacity=*/0);
  const std::vector<std::string> empty;
  EXPECT_TRUE(router->SearchAll(empty).empty());
}

// ---------------------------------------------------------------------------
// Aggregated cache and metrics accounting
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, AggregatedCacheStatsEqualSingleEngineTotals) {
  const std::vector<std::string> base = MiniBankQueries();
  std::vector<std::string> traffic;
  for (int round = 0; round < 3; ++round) {
    traffic.insert(traffic.end(), base.begin(), base.end());
  }

  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/32);
  auto outputs = engine->SearchAll(traffic);
  for (const auto& output : outputs) ASSERT_TRUE(output.ok());
  CacheStats single = engine->cache_stats();

  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    auto router = MakeRouter(shards, /*threads=*/2, /*cache_capacity=*/32);
    auto routed = router->SearchAll(traffic);
    for (const auto& output : routed) ASSERT_TRUE(output.ok());
    CacheStats total = router->cache_stats();
    // Every key lives on exactly one shard, so the fleet's books must sum
    // to exactly the single-engine books for identical traffic.
    EXPECT_EQ(total.hits, single.hits) << "shards=" << shards;
    EXPECT_EQ(total.misses, single.misses) << "shards=" << shards;
    EXPECT_EQ(total.size, single.size) << "shards=" << shards;
    EXPECT_EQ(total.capacity, shards * 32) << "shards=" << shards;
  }
}

TEST_F(ShardedEngineTest, MergedMetricsMatchSingleEngineAndAddRouterCounters) {
  const std::vector<std::string> queries = MiniBankQueries();

  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/32);
  for (const auto& output : engine->SearchAll(queries)) {
    ASSERT_TRUE(output.ok());
  }
  MetricsSnapshot single = engine->metrics_snapshot();

  auto router = MakeRouter(/*shards=*/4, /*threads=*/2, /*cache_capacity=*/32);
  for (const auto& output : router->SearchAll(queries)) {
    ASSERT_TRUE(output.ok());
  }
  MetricsSnapshot merged = router->metrics_snapshot();

  // Work-proportional counters agree with the single engine; per-call
  // counters (engine.search_all) count one per occupied shard instead.
  for (const char* name : {"cache.hit", "cache.miss", "batch.queries",
                           "batch.unique", "batch.interpretations"}) {
    EXPECT_EQ(merged.counter(name), single.counter(name)) << name;
  }
  // Stage histograms merged across shards carry exactly the samples the
  // single engine observed.
  const HistogramSnapshot* merged_lookup = merged.histogram("stage.lookup.ms");
  const HistogramSnapshot* single_lookup = single.histogram("stage.lookup.ms");
  ASSERT_NE(merged_lookup, nullptr);
  ASSERT_NE(single_lookup, nullptr);
  EXPECT_EQ(merged_lookup->count, single_lookup->count);

  // Router's own surface: every query was routed, the batch was one
  // admission, and the per-shard sub-batch sizes sum back to the batch.
  EXPECT_EQ(merged.counter("router.shard_queries"), queries.size());
  EXPECT_EQ(merged.counter("router.batches"), 1u);
  const HistogramSnapshot* sizes = merged.histogram("router.shard_batch_size");
  ASSERT_NE(sizes, nullptr);
  EXPECT_GT(sizes->count, 0u);
  EXPECT_EQ(static_cast<size_t>(sizes->sum), queries.size());
}

TEST_F(ShardedEngineTest, DefaultThreadsDivideHardwareAcrossShards) {
  // num_threads=0 means "use the hardware"; a fleet must divide it, not
  // multiply it (8 shards on a 64-core box → ~64 workers, not 512).
  auto router = MakeRouter(/*shards=*/4, /*threads=*/0, /*cache_capacity=*/0);
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_t expected = std::max<size_t>(1, hw / 4);
  for (size_t s = 0; s < router->num_shards(); ++s) {
    EXPECT_EQ(router->shard(s).num_threads(), expected) << "shard " << s;
  }
}

TEST_F(ShardedEngineTest, SetMetricsSinkFansOutToEveryShard) {
  auto router = MakeRouter(/*shards=*/4, /*threads=*/1, /*cache_capacity=*/8);
  auto exporter = std::make_shared<InMemoryMetricsSink>();
  router->set_metrics_sink(exporter);
  const std::vector<std::string> queries = MiniBankQueries();
  for (const auto& output : router->SearchAll(queries)) {
    ASSERT_TRUE(output.ok());
  }
  // Every shard reported into the shared exporter: the fleet's misses
  // all land in one sink, none in the (now-bypassed) built-in ones.
  MetricsSnapshot exported = exporter->Snapshot();
  EXPECT_EQ(exported.counter("cache.miss"), queries.size());
  EXPECT_EQ(router->metrics_snapshot().counter("cache.miss"), 0u);
  // The router's own samples still flow into the merged view.
  EXPECT_EQ(router->metrics_snapshot().counter("router.shard_queries"),
            queries.size());
}

TEST_F(ShardedEngineTest, RepeatTrafficHitsTheOwningShardCache) {
  auto router = MakeRouter(/*shards=*/4, /*threads=*/1, /*cache_capacity=*/16);
  const std::vector<std::string> queries = MiniBankQueries();
  for (const auto& output : router->SearchAll(queries)) {
    ASSERT_TRUE(output.ok());
  }
  auto again = router->SearchAll(queries);
  for (const auto& output : again) {
    ASSERT_TRUE(output.ok());
    EXPECT_TRUE((*output).from_cache);
  }
  CacheStats stats = router->cache_stats();
  EXPECT_EQ(stats.misses, queries.size());
  EXPECT_EQ(stats.hits, queries.size());
}

// ---------------------------------------------------------------------------
// Async streaming through the router
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, AsyncStreamsExactlyOncePerGlobalIndex) {
  const std::vector<std::string> queries = MiniBankQueries();
  auto router = MakeRouter(/*shards=*/4, /*threads=*/2, /*cache_capacity=*/0);

  std::mutex mu;
  std::map<std::pair<size_t, size_t>, int> deliveries;
  SnippetBarrier barrier;
  auto outputs = router->SearchAllAsync(
      queries,
      [&](size_t query_index, size_t result_index, const SodaResult&) {
        std::lock_guard<std::mutex> lock(mu);
        ++deliveries[{query_index, result_index}];
      },
      &barrier);
  ASSERT_EQ(outputs.size(), queries.size());
  barrier.Wait();
  EXPECT_EQ(barrier.pending(), 0u);

  size_t expected_total = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(outputs[q].ok()) << queries[q];
    for (size_t r = 0; r < outputs[q]->results.size(); ++r) {
      auto it = deliveries.find({q, r});
      ASSERT_NE(it, deliveries.end())
          << "missing callback for query " << q << " result " << r;
      EXPECT_EQ(it->second, 1)
          << "duplicate callback for query " << q << " result " << r;
      ++expected_total;
    }
  }
  EXPECT_EQ(deliveries.size(), expected_total);
  EXPECT_EQ(barrier.delivered(), expected_total);
}

TEST_F(ShardedEngineTest, AsyncBytesMatchSyncAcrossShardCounts) {
  const std::vector<std::string> queries = MiniBankQueries();
  auto reference = MakeEngine(/*threads=*/1, /*cache_capacity=*/0);
  for (size_t shards : {size_t{2}, size_t{4}}) {
    auto router = MakeRouter(shards, /*threads=*/2, /*cache_capacity=*/8);
    SnippetBarrier barrier;
    auto outputs = router->SearchAllAsync(queries, nullptr, &barrier);
    barrier.Wait();
    // After the barrier every shard has inserted its materialized
    // answers; warm Searches must serve the same bytes as a single
    // serial engine.
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_TRUE(outputs[q].ok());
      auto expected = reference->Search(queries[q]);
      ASSERT_TRUE(expected.ok());
      auto warm = router->Search(queries[q]);
      ASSERT_TRUE(warm.ok());
      EXPECT_TRUE(warm->from_cache) << queries[q];
      EXPECT_EQ(Fingerprint(*warm), Fingerprint(*expected))
          << "shards=" << shards << " query=" << queries[q];
    }
  }
}

// ---------------------------------------------------------------------------
// Keyed invalidation
// ---------------------------------------------------------------------------

TEST_F(ShardedEngineTest, InvalidateWhereEvictsExactlyMatchingKeysFleetWide) {
  auto router = MakeRouter(/*shards=*/4, /*threads=*/2, /*cache_capacity=*/16);
  const std::vector<std::string> queries = MiniBankQueries();
  for (const auto& output : router->SearchAll(queries)) {
    ASSERT_TRUE(output.ok());
  }
  ASSERT_EQ(router->cache_stats().size, queries.size());

  // A base-data update touching "addresses": evict the cached answers
  // that mention it, wherever their shard put them.
  size_t erased = router->InvalidateWhere([](const std::string& key) {
    return key.find("addresses") != std::string::npos;
  });
  EXPECT_EQ(erased, 1u);
  CacheStats stats = router->cache_stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.size, queries.size() - 1);

  // The evicted query recomputes (a fresh miss); the others still hit.
  auto cold = router->Search("addresses Sara Guttinger");
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->from_cache);
  auto warm = router->Search("private customers family name");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(router->metrics_snapshot().counter("cache.invalidated"), 1u);
}

TEST_F(ShardedEngineTest, ClearCacheFansOut) {
  auto router = MakeRouter(/*shards=*/4, /*threads=*/1, /*cache_capacity=*/16);
  for (const auto& output : router->SearchAll(MiniBankQueries())) {
    ASSERT_TRUE(output.ok());
  }
  ASSERT_GT(router->cache_stats().size, 0u);
  router->ClearCache();
  EXPECT_EQ(router->cache_stats().size, 0u);
}

TEST_F(ShardedEngineTest, InvalidateWhereIsSafeUnderConcurrentSearch) {
  auto router = MakeRouter(/*shards=*/2, /*threads=*/2, /*cache_capacity=*/32);
  const std::vector<std::string> queries = MiniBankQueries();
  for (const auto& output : router->SearchAll(queries)) {
    ASSERT_TRUE(output.ok());
  }

  // Searchers hammer the warm cache while an invalidator repeatedly
  // evicts and lets entries recompute. Nothing should crash, deadlock,
  // or serve wrong bytes.
  auto reference = MakeEngine(/*threads=*/1, /*cache_capacity=*/0);
  std::vector<std::string> expected;
  for (const std::string& query : queries) {
    auto output = reference->Search(query);
    ASSERT_TRUE(output.ok());
    expected.push_back(Fingerprint(*output));
  }

  std::atomic<bool> mismatch{false};
  std::vector<std::thread> searchers;
  for (int t = 0; t < 3; ++t) {
    searchers.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        size_t q = static_cast<size_t>(t + round) % queries.size();
        auto output = router->Search(queries[q]);
        if (!output.ok() || Fingerprint(*output) != expected[q]) {
          mismatch.store(true);
        }
      }
    });
  }
  std::thread invalidator([&] {
    for (int round = 0; round < 10; ++round) {
      router->InvalidateWhere([](const std::string& key) {
        return key.find("customers") != std::string::npos;
      });
    }
  });
  for (std::thread& searcher : searchers) searcher.join();
  invalidator.join();
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace soda
