// Unit tests for the baseline systems and the Table 5 capability matrix.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/baseline.h"
#include "core/soda.h"
#include "datasets/enterprise.h"
#include "pattern/library.h"

namespace soda {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    warehouse_ = BuildEnterpriseWarehouse().value().release();
    SodaConfig config;
    config.execute_snippets = false;
    soda_ = Soda::Create(&warehouse_->db, &warehouse_->graph,
                         CreditSuissePatternLibrary(), config)
                .value()
                .release();
    metadata_only_ = new ClassificationIndex();
    metadata_only_->Build(warehouse_->graph, nullptr);
    context_ = new BaselineContext();
    context_->db = &warehouse_->db;
    context_->inverted_index = &soda_->inverted_index();
    context_->foreign_keys = soda_->join_graph().all_edges();
    context_->classification = &soda_->classification();
    context_->metadata_only_classification = metadata_only_;
    context_->graph_for_resolution = &warehouse_->graph;
    context_->schema_columns = kPaperPhysicalColumns;
    systems_ = new std::vector<std::unique_ptr<KeywordSearchSystem>>(
        MakeBaselines(context_));
  }
  static void TearDownTestSuite() {
    delete systems_;
    delete context_;
    delete metadata_only_;
    delete soda_;
    delete warehouse_;
  }

  static KeywordSearchSystem* Find(const std::string& name) {
    for (auto& system : *systems_) {
      if (system->name() == name) return system.get();
    }
    return nullptr;
  }

  static EnterpriseWarehouse* warehouse_;
  static Soda* soda_;
  static ClassificationIndex* metadata_only_;
  static BaselineContext* context_;
  static std::vector<std::unique_ptr<KeywordSearchSystem>>* systems_;
};

EnterpriseWarehouse* BaselinesTest::warehouse_ = nullptr;
Soda* BaselinesTest::soda_ = nullptr;
ClassificationIndex* BaselinesTest::metadata_only_ = nullptr;
BaselineContext* BaselinesTest::context_ = nullptr;
std::vector<std::unique_ptr<KeywordSearchSystem>>* BaselinesTest::systems_ =
    nullptr;

TEST_F(BaselinesTest, AllFiveSystemsPresent) {
  ASSERT_EQ(systems_->size(), 5u);
  for (const char* name :
       {"DBExplorer", "DISCOVER", "BANKS", "SQAK", "Keymantic"}) {
    EXPECT_NE(Find(name), nullptr) << name;
  }
}

// The declared capability matrix must equal paper Table 5.
TEST_F(BaselinesTest, DeclaredMatrixMatchesPaper) {
  struct Row {
    QueryType type;
    SupportLevel dbexplorer, discover, banks, sqak, keymantic;
  };
  const Row kPaper[] = {
      {QueryType::kBaseData, SupportLevel::kPartial, SupportLevel::kPartial,
       SupportLevel::kYes, SupportLevel::kNo, SupportLevel::kNoInPractice},
      {QueryType::kSchema, SupportLevel::kNo, SupportLevel::kNo,
       SupportLevel::kYes, SupportLevel::kNo, SupportLevel::kYes},
      {QueryType::kInheritance, SupportLevel::kNo, SupportLevel::kNo,
       SupportLevel::kNo, SupportLevel::kNo, SupportLevel::kNo},
      {QueryType::kDomainOntology, SupportLevel::kNo, SupportLevel::kNo,
       SupportLevel::kNo, SupportLevel::kNo, SupportLevel::kPartial},
      {QueryType::kPredicates, SupportLevel::kNo, SupportLevel::kNo,
       SupportLevel::kNo, SupportLevel::kNo, SupportLevel::kNo},
      {QueryType::kAggregates, SupportLevel::kNo, SupportLevel::kNo,
       SupportLevel::kNo, SupportLevel::kYes, SupportLevel::kNo},
  };
  for (const Row& row : kPaper) {
    EXPECT_EQ(Find("DBExplorer")->DeclaredSupport(row.type), row.dbexplorer);
    EXPECT_EQ(Find("DISCOVER")->DeclaredSupport(row.type), row.discover);
    EXPECT_EQ(Find("BANKS")->DeclaredSupport(row.type), row.banks);
    EXPECT_EQ(Find("SQAK")->DeclaredSupport(row.type), row.sqak);
    EXPECT_EQ(Find("Keymantic")->DeclaredSupport(row.type), row.keymantic);
  }
}

TEST_F(BaselinesTest, DbExplorerBreaksOnCyclicSchema) {
  // The enterprise foreign-key graph is cyclic (e.g. two currency FKs on
  // trade orders), which defeats DBExplorer's join trees.
  auto answer = Find("DBExplorer")->Translate("Sara");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->answered);
  EXPECT_NE(answer->failure_reason.find("cycle"), std::string::npos);
}

TEST_F(BaselinesTest, DiscoverBreaksOnCyclicSchema) {
  auto answer = Find("DISCOVER")->Translate("Credit Suisse");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->answered);
}

TEST_F(BaselinesTest, BanksAnswersBaseDataQueries) {
  auto answer = Find("BANKS")->Translate("Sara");
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->answered) << answer->failure_reason;
  ASSERT_FALSE(answer->statements.empty());
  // The statement filters on the matched value.
  EXPECT_NE(answer->statements[0].ToSql().find("'Sara'"),
            std::string::npos);
}

TEST_F(BaselinesTest, BanksCannotExpandOntologyTerms) {
  auto answer = Find("BANKS")->Translate("wealthy customers");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->answered);
}

TEST_F(BaselinesTest, SqakRejectsPlainKeywords) {
  auto answer = Find("SQAK")->Translate("Sara");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->answered);
  EXPECT_NE(answer->failure_reason.find("pattern"), std::string::npos);
}

TEST_F(BaselinesTest, SqakHandlesAggregation) {
  auto answer =
      Find("SQAK")->Translate("sum(investments) group by (currency)");
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->answered) << answer->failure_reason;
  const std::string sql = answer->statements[0].ToSql();
  EXPECT_NE(sql.find("sum(invst_pos_td.invst_amt)"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("GROUP BY"), std::string::npos);
}

TEST_F(BaselinesTest, KeymanticMatchesSchemaTerms) {
  auto answer = Find("Keymantic")->Translate("trade order");
  ASSERT_TRUE(answer.ok());
  ASSERT_TRUE(answer->answered) << answer->failure_reason;
}

TEST_F(BaselinesTest, KeymanticFailsOnValueKeywordsAtScale) {
  auto answer = Find("Keymantic")->Translate("Sara");
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->answered);
  EXPECT_NE(answer->failure_reason.find("3181"), std::string::npos);
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

TEST(ConnectByForeignKeysTest, DirectedModeRespectsFkDirection) {
  std::vector<JoinEdge> fks = {
      {{"child", "pid"}, {"parent", "id"}, false},
  };
  std::vector<JoinEdge> joins;
  std::vector<std::string> tables;
  // fk -> pk allowed.
  EXPECT_TRUE(ConnectByForeignKeys(fks, {"child", "parent"},
                                   /*directed=*/true, &joins, &tables));
  joins.clear();
  tables.clear();
  // pk -> fk forbidden in directed mode.
  EXPECT_FALSE(ConnectByForeignKeys(fks, {"parent", "child"},
                                    /*directed=*/true, &joins, &tables));
  // ...but fine undirected.
  joins.clear();
  tables.clear();
  EXPECT_TRUE(ConnectByForeignKeys(fks, {"parent", "child"},
                                   /*directed=*/false, &joins, &tables));
}

TEST(CycleDetectionTest, ParallelEdgesAreACycle) {
  std::vector<JoinEdge> fks = {
      {{"a", "x"}, {"b", "id"}, false},
      {{"a", "y"}, {"b", "id2"}, false},
  };
  EXPECT_TRUE(ForeignKeyComponentHasCycle(fks, "a"));
}

TEST(CycleDetectionTest, TreeIsAcyclic) {
  std::vector<JoinEdge> fks = {
      {{"b", "aid"}, {"a", "id"}, false},
      {{"c", "aid"}, {"a", "id"}, false},
      {{"d", "bid"}, {"b", "id"}, false},
  };
  EXPECT_FALSE(ForeignKeyComponentHasCycle(fks, "a"));
  EXPECT_FALSE(ForeignKeyComponentHasCycle(fks, "d"));
  EXPECT_FALSE(ForeignKeyComponentHasCycle(fks, "unrelated"));
}

TEST(CycleDetectionTest, TriangleIsACycle) {
  std::vector<JoinEdge> fks = {
      {{"a", "b_id"}, {"b", "id"}, false},
      {{"b", "c_id"}, {"c", "id"}, false},
      {{"c", "a_id"}, {"a", "id"}, false},
  };
  EXPECT_TRUE(ForeignKeyComponentHasCycle(fks, "a"));
}

}  // namespace
}  // namespace soda
