// Unit tests for the warehouse model compiler and the ontology compilers.

#include <gtest/gtest.h>

#include "datasets/minibank.h"
#include "graph/vocab.h"
#include "ontology/ontology.h"
#include "schema/warehouse_model.h"
#include "storage/table.h"

namespace soda {
namespace {

WarehouseModel TinyModel() {
  WarehouseModel model;
  model.AddConceptualEntity({"Party", {{"name"}}, ""});
  model.AddLogicalEntity({"Party", {{"name"}}, "Party"});
  model.AddLogicalEntity({"Individual", {{"name"}}, "Party"});
  model.AddTable({"party_td",
                  "Party",
                  {{"id", ValueType::kInt64, ""},
                   {"nm", ValueType::kString, "Party.name"}}});
  model.AddTable({"indvl_td",
                  "Individual",
                  {{"id", ValueType::kInt64, ""},
                   {"nm", ValueType::kString, "Individual.name"}}});
  model.AddForeignKey({"indvl_td", "id", "party_td", "id"});
  model.AddInheritance({"party_td", {"indvl_td"}});
  return model;
}

TEST(WarehouseCompileTest, CreatesGraphNodesAndTables) {
  WarehouseModel model = TinyModel();
  MetadataGraph graph;
  Database db;
  ASSERT_TRUE(model.Compile(&graph, &db).ok());

  EXPECT_NE(graph.FindNode(ConceptUri("Party")), kInvalidNode);
  EXPECT_NE(graph.FindNode(LogicalUri("Individual")), kInvalidNode);
  EXPECT_NE(graph.FindNode(TableUri("party_td")), kInvalidNode);
  EXPECT_NE(graph.FindNode(ColumnUri("indvl_td", "nm")), kInvalidNode);
  EXPECT_NE(graph.FindNode(InheritanceUri("party_td")), kInvalidNode);
  EXPECT_NE(graph.FindNode(JoinUri("indvl_td", "id", "party_td", "id")),
            kInvalidNode);

  ASSERT_NE(db.FindTable("party_td"), nullptr);
  EXPECT_EQ(db.FindTable("indvl_td")->num_columns(), 2u);
}

TEST(WarehouseCompileTest, CrossLayerMappingEdges) {
  WarehouseModel model = TinyModel();
  MetadataGraph graph;
  ASSERT_TRUE(model.Compile(&graph, nullptr).ok());

  NodeId conceptual = graph.FindNode(ConceptUri("Party"));
  NodeId logical = graph.FindNode(LogicalUri("Party"));
  NodeId table = graph.FindNode(TableUri("party_td"));
  EXPECT_TRUE(graph.HasEdge(conceptual, vocab::kImplementedBy, logical));
  EXPECT_TRUE(graph.HasEdge(logical, vocab::kImplementedBy, table));

  // Attribute-level convention mapping: conceptual Party.name ->
  // logical Party.name (same name, implementing entity).
  NodeId cattr = graph.FindNode(ConceptAttrUri("Party", "name"));
  NodeId lattr = graph.FindNode(LogicalAttrUri("Party", "name"));
  EXPECT_TRUE(graph.HasEdge(cattr, vocab::kImplementedBy, lattr));

  // realized_by: logical attribute -> physical column.
  NodeId column = graph.FindNode(ColumnUri("party_td", "nm"));
  EXPECT_TRUE(graph.HasEdge(lattr, vocab::kRealizedBy, column));
}

TEST(WarehouseCompileTest, MissingReferencesFail) {
  {
    WarehouseModel model;
    model.AddLogicalEntity({"L", {}, "NoSuchConceptual"});
    MetadataGraph graph;
    EXPECT_EQ(model.Compile(&graph, nullptr).code(), StatusCode::kNotFound);
  }
  {
    WarehouseModel model;
    model.AddTable({"t", "NoSuchLogical", {{"id", ValueType::kInt64, ""}}});
    MetadataGraph graph;
    EXPECT_EQ(model.Compile(&graph, nullptr).code(), StatusCode::kNotFound);
  }
  {
    WarehouseModel model;
    model.AddTable({"t", "", {{"id", ValueType::kInt64, ""}}});
    model.AddForeignKey({"t", "id", "missing", "id"});
    MetadataGraph graph;
    EXPECT_EQ(model.Compile(&graph, nullptr).code(), StatusCode::kNotFound);
  }
  {
    WarehouseModel model;
    model.AddTable({"t", "", {{"id", ValueType::kInt64, ""}}});
    model.AddInheritance({"t", {"missing_child"}});
    MetadataGraph graph;
    EXPECT_EQ(model.Compile(&graph, nullptr).code(), StatusCode::kNotFound);
  }
}

TEST(WarehouseCompileTest, IgnoredForeignKeyIsAnnotated) {
  WarehouseModel model = TinyModel();
  model.AddTable({"extra_td", "", {{"pid", ValueType::kInt64, ""}}});
  ForeignKeySpec fk{"extra_td", "pid", "party_td", "id"};
  fk.ignored = true;
  model.AddForeignKey(fk);
  MetadataGraph graph;
  ASSERT_TRUE(model.Compile(&graph, nullptr).ok());
  NodeId join = graph.FindNode(JoinUri("extra_td", "pid", "party_td", "id"));
  ASSERT_NE(join, kInvalidNode);
  auto annotation = graph.FirstText(join, vocab::kAnnotation);
  ASSERT_TRUE(annotation.has_value());
  EXPECT_EQ(*annotation, vocab::kIgnoreRelationship);
}

TEST(WarehouseCompileTest, StatsCountEverything) {
  WarehouseModel model = TinyModel();
  SchemaStats stats = model.Stats();
  EXPECT_EQ(stats.conceptual_entities, 1u);
  EXPECT_EQ(stats.conceptual_attributes, 1u);
  EXPECT_EQ(stats.logical_entities, 2u);
  EXPECT_EQ(stats.logical_attributes, 2u);
  EXPECT_EQ(stats.physical_tables, 2u);
  EXPECT_EQ(stats.physical_columns, 4u);
}

TEST(OntologyCompileTest, ScopedNameResolution) {
  WarehouseModel model = TinyModel();
  MetadataGraph graph;
  ASSERT_TRUE(model.Compile(&graph, nullptr).ok());
  EXPECT_TRUE(ResolveScopedName(graph, "concept:Party").ok());
  EXPECT_TRUE(ResolveScopedName(graph, "logical:Individual").ok());
  EXPECT_TRUE(ResolveScopedName(graph, "table:party_td").ok());
  EXPECT_FALSE(ResolveScopedName(graph, "logical:Ghost").ok());
  EXPECT_FALSE(ResolveScopedName(graph, "no-scope").ok());
  EXPECT_FALSE(ResolveScopedName(graph, "badscope:Party").ok());
}

TEST(OntologyCompileTest, ConceptHierarchyEdges) {
  WarehouseModel model = TinyModel();
  model.AddOntologyConcept({"customers", "", {"logical:Party"}});
  model.AddOntologyConcept(
      {"private customers", "customers", {"logical:Individual"}});
  MetadataGraph graph;
  ASSERT_TRUE(model.Compile(&graph, nullptr).ok());

  NodeId parent = graph.FindNode(OntologyConceptUri("customers"));
  NodeId child = graph.FindNode(OntologyConceptUri("private customers"));
  ASSERT_NE(parent, kInvalidNode);
  ASSERT_NE(child, kInvalidNode);
  EXPECT_TRUE(graph.HasEdge(child, vocab::kSubconceptOf, parent));
  // Downward edge for traversal.
  EXPECT_TRUE(graph.HasEdge(parent, vocab::kClassifies, child));
}

TEST(OntologyCompileTest, MetadataFilterNeedsExistingColumn) {
  WarehouseModel model = TinyModel();
  model.AddMetadataFilter({"vip", "party_td", "no_such_column", ">", "1"});
  MetadataGraph graph;
  EXPECT_EQ(model.Compile(&graph, nullptr).code(), StatusCode::kNotFound);
}

TEST(OntologyCompileTest, MetadataAggregationCompiles) {
  WarehouseModel model = TinyModel();
  model.AddTable({"pos_td", "", {{"amt", ValueType::kDouble, ""}}});
  model.AddMetadataAggregation({"volume", "sum", "pos_td", "amt"});
  MetadataGraph graph;
  ASSERT_TRUE(model.Compile(&graph, nullptr).ok());
  NodeId node = graph.FindNode(MetadataAggregationUri("volume"));
  ASSERT_NE(node, kInvalidNode);
  EXPECT_TRUE(graph.HasType(node, vocab::kMetadataAggregation));
  EXPECT_EQ(graph.FirstText(node, vocab::kAggFunc), "sum");
}

TEST(MiniBankModelTest, CompilesCleanly) {
  auto bank = BuildMiniBank();
  ASSERT_TRUE(bank.ok()) << bank.status();
  EXPECT_EQ((*bank)->db.num_tables(), 10u);
  EXPECT_GT((*bank)->db.TotalRows(), 500u);
  // Determinism: building twice yields identical row counts everywhere.
  auto again = BuildMiniBank();
  ASSERT_TRUE(again.ok());
  for (const Table* table : (*bank)->db.tables()) {
    const Table* other = (*again)->db.FindTable(table->name());
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->num_rows(), table->num_rows()) << table->name();
  }
}

}  // namespace
}  // namespace soda
