// Unit tests for the SQL parser (the subset SODA generates and the gold
// standards use).

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace soda {
namespace {

TEST(SqlParserTest, SelectStar) {
  auto stmt = ParseSql("SELECT * FROM parties");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->select_star());
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table, "parties");
}

TEST(SqlParserTest, PaperQuery1) {
  auto stmt = ParseSql(
      "SELECT * FROM parties, individuals "
      "WHERE parties.id = individuals.id "
      "AND individuals.firstName = 'Sara' "
      "AND individuals.lastName = 'Guttinger'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->from.size(), 2u);
  ASSERT_EQ(stmt->where.size(), 3u);
  EXPECT_TRUE(stmt->where[0].IsJoinCondition());
  EXPECT_FALSE(stmt->where[1].IsJoinCondition());
  EXPECT_EQ(stmt->where[1].rhs.literal, Value::Str("Sara"));
}

TEST(SqlParserTest, PaperQuery3Aggregation) {
  auto stmt = ParseSql(
      "SELECT sum(amount), transactiondate FROM fi_transactions "
      "GROUP BY transactiondate");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->items.size(), 2u);
  EXPECT_TRUE(stmt->items[0].expr.is_aggregate());
  EXPECT_EQ(stmt->items[0].expr.agg, AggFunc::kSum);
  ASSERT_EQ(stmt->group_by.size(), 1u);
  EXPECT_EQ(stmt->group_by[0].column, "transactiondate");
}

TEST(SqlParserTest, PaperQuery4OrderByDesc) {
  auto stmt = ParseSql(
      "SELECT count(fi_transactions.id), companyname "
      "FROM transactions, fi_transactions, organizations "
      "WHERE transactions.id = fi_transactions.id "
      "AND transactions.toParty = organizations.id "
      "GROUP BY organizations.companyname "
      "ORDER BY count(fi_transactions.id) desc");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_TRUE(stmt->order_by[0].expr.is_aggregate());
}

TEST(SqlParserTest, DateLiteral) {
  auto stmt = ParseSql(
      "SELECT * FROM t WHERE d > DATE '2011-09-01'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->where.size(), 1u);
  EXPECT_EQ(stmt->where[0].rhs.literal.type(), ValueType::kDate);
  EXPECT_EQ(stmt->where[0].op, CompareOp::kGt);
}

TEST(SqlParserTest, BetweenDesugarsToTwoConjuncts) {
  auto stmt = ParseSql(
      "SELECT * FROM t WHERE d BETWEEN DATE '2010-01-01' AND "
      "DATE '2010-12-31'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->where.size(), 2u);
  EXPECT_EQ(stmt->where[0].op, CompareOp::kGe);
  EXPECT_EQ(stmt->where[1].op, CompareOp::kLe);
}

TEST(SqlParserTest, CountDistinct) {
  auto stmt = ParseSql("SELECT count(DISTINCT indvl_td.id) FROM indvl_td");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->items[0].expr.agg_distinct);
}

TEST(SqlParserTest, CountStar) {
  auto stmt = ParseSql("SELECT count(*) FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->items[0].expr.agg_star);
}

TEST(SqlParserTest, SumStarRejected) {
  EXPECT_FALSE(ParseSql("SELECT sum(*) FROM t").ok());
}

TEST(SqlParserTest, Aliases) {
  auto stmt = ParseSql(
      "SELECT t.id AS pid FROM trades t WHERE t.id = 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->items[0].alias, "pid");
  EXPECT_EQ(stmt->from[0].alias, "t");
  EXPECT_EQ(stmt->from[0].qualifier(), "t");
}

TEST(SqlParserTest, DistinctLimit) {
  auto stmt = ParseSql("SELECT DISTINCT a FROM t LIMIT 20");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->distinct);
  EXPECT_EQ(stmt->limit, 20);
}

TEST(SqlParserTest, LikePredicate) {
  auto stmt = ParseSql("SELECT * FROM t WHERE name LIKE '%Suisse%'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where[0].op, CompareOp::kLike);
}

TEST(SqlParserTest, EscapedQuoteInString) {
  auto stmt = ParseSql("SELECT * FROM t WHERE name = 'O''Brien'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where[0].rhs.literal, Value::Str("O'Brien"));
}

TEST(SqlParserTest, CommentsAndSemicolon) {
  auto stmt = ParseSql(
      "SELECT * FROM t -- trailing comment\nWHERE a = 1;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
}

TEST(SqlParserTest, BooleanAndNullLiterals) {
  auto stmt = ParseSql("SELECT * FROM t WHERE a = TRUE AND b = NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where[0].rhs.literal, Value::Bool(true));
  EXPECT_TRUE(stmt->where[1].rhs.literal.is_null());
}

TEST(SqlParserTest, NumericLiterals) {
  auto stmt = ParseSql("SELECT * FROM t WHERE a >= 3.5 AND b <> 42");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where[0].rhs.literal.type(), ValueType::kDouble);
  EXPECT_EQ(stmt->where[1].op, CompareOp::kNe);
}

// Error cases: every malformed input must fail with kParseError, never
// crash or mis-parse.
class SqlParserErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlParserErrorTest, RejectsMalformed) {
  auto stmt = ParseSql(GetParam());
  EXPECT_FALSE(stmt.ok()) << "should reject: " << GetParam();
  EXPECT_EQ(stmt.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SqlParserErrorTest,
    ::testing::Values("", "SELECT", "SELECT FROM t", "SELECT * FROM",
                      "SELECT * WHERE a = 1", "SELECT * FROM t WHERE",
                      "SELECT * FROM t WHERE a", "SELECT * FROM t WHERE a =",
                      "SELECT * FROM t GROUP", "SELECT * FROM t LIMIT x",
                      "SELECT * FROM t ORDER a", "SELECT a, FROM t",
                      "SELECT * FROM t WHERE name = 'unterminated",
                      "SELECT * FROM t trailing garbage ! here",
                      "SELECT count(a FROM t",
                      "SELECT * FROM t WHERE d = DATE '2011-13-01'"));

}  // namespace
}  // namespace soda
