// Unit tests for the metadata graph.

#include <gtest/gtest.h>

#include "graph/metadata_graph.h"
#include "graph/vocab.h"

namespace soda {
namespace {

TEST(UriTableTest, InternIsIdempotent) {
  UriTable uris;
  UriId a = uris.Intern("table/parties");
  UriId b = uris.Intern("table/parties");
  EXPECT_EQ(a, b);
  EXPECT_EQ(uris.Lookup(a), "table/parties");
  EXPECT_EQ(uris.size(), 1u);
}

TEST(UriTableTest, FindWithoutIntern) {
  UriTable uris;
  EXPECT_FALSE(uris.Find("nope").has_value());
  uris.Intern("yes");
  EXPECT_TRUE(uris.Find("yes").has_value());
}

class MetadataGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = *graph_.AddNode("table/parties", MetadataLayer::kPhysicalSchema);
    column_ = *graph_.AddNode("column/parties.id",
                              MetadataLayer::kPhysicalSchema);
    concept_ = *graph_.AddNode("onto/customers",
                               MetadataLayer::kDomainOntology);
    graph_.AddEdge(table_, vocab::kColumn, column_);
    graph_.AddEdge(concept_, vocab::kClassifies, table_);
    graph_.AddTextEdge(table_, vocab::kTablename, "parties");
    graph_.AddTextEdge(table_, vocab::kLabel, "parties");
  }

  MetadataGraph graph_;
  NodeId table_ = kInvalidNode;
  NodeId column_ = kInvalidNode;
  NodeId concept_ = kInvalidNode;
};

TEST_F(MetadataGraphTest, DuplicateUriRejected) {
  auto dup = graph_.AddNode("table/parties", MetadataLayer::kPhysicalSchema);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(MetadataGraphTest, GetOrAddReusesNode) {
  NodeId again = graph_.GetOrAddNode("table/parties",
                                     MetadataLayer::kPhysicalSchema);
  EXPECT_EQ(again, table_);
  EXPECT_EQ(graph_.num_nodes(), 3u);
}

TEST_F(MetadataGraphTest, FindNode) {
  EXPECT_EQ(graph_.FindNode("table/parties"), table_);
  EXPECT_EQ(graph_.FindNode("nope"), kInvalidNode);
}

TEST_F(MetadataGraphTest, EdgesAreIndexedBothWays) {
  EXPECT_EQ(graph_.FirstTarget(table_, vocab::kColumn), column_);
  auto sources = graph_.Sources(column_, vocab::kColumn);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0], table_);
  EXPECT_TRUE(graph_.HasEdge(table_, vocab::kColumn, column_));
  EXPECT_FALSE(graph_.HasEdge(column_, vocab::kColumn, table_));
}

TEST_F(MetadataGraphTest, TextEdges) {
  auto name = graph_.FirstText(table_, vocab::kTablename);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "parties");
  EXPECT_FALSE(graph_.FirstText(column_, vocab::kTablename).has_value());
  EXPECT_EQ(graph_.num_text_edges(), 2u);
}

TEST_F(MetadataGraphTest, MissingPredicateIsEmpty) {
  EXPECT_EQ(graph_.FirstTarget(table_, "never_used"), kInvalidNode);
  EXPECT_TRUE(graph_.Targets(table_, "never_used").empty());
}

TEST_F(MetadataGraphTest, EdgesWithPredicate) {
  auto pairs = graph_.EdgesWithPredicate(vocab::kClassifies);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, concept_);
  EXPECT_EQ(pairs[0].second, table_);
}

TEST_F(MetadataGraphTest, LayersAndNames) {
  EXPECT_EQ(graph_.layer(concept_), MetadataLayer::kDomainOntology);
  EXPECT_STREQ(MetadataLayerName(MetadataLayer::kDbpedia), "DBpedia");
  auto in_layer = graph_.NodesInLayer(MetadataLayer::kPhysicalSchema);
  EXPECT_EQ(in_layer.size(), 2u);
}

TEST_F(MetadataGraphTest, HasType) {
  NodeId type_node = graph_.GetOrAddNode(vocab::kPhysicalTable,
                                         MetadataLayer::kOther);
  graph_.AddEdge(table_, vocab::kType, type_node);
  EXPECT_TRUE(graph_.HasType(table_, vocab::kPhysicalTable));
  EXPECT_FALSE(graph_.HasType(column_, vocab::kPhysicalTable));
  EXPECT_FALSE(graph_.HasType(table_, "no_such_type"));
}

TEST_F(MetadataGraphTest, DotExport) {
  std::string dot = graph_.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("table/parties"), std::string::npos);
  EXPECT_NE(dot.find(vocab::kClassifies), std::string::npos);
}

TEST(MetadataGraphScaleTest, ManyNodesAndEdges) {
  MetadataGraph graph;
  constexpr int kNodes = 2000;
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(graph.AddNode("n/" + std::to_string(i),
                              MetadataLayer::kPhysicalSchema)
                    .ok());
  }
  for (int i = 1; i < kNodes; ++i) {
    graph.AddEdge(i - 1, "next", i);
  }
  EXPECT_EQ(graph.num_nodes(), static_cast<size_t>(kNodes));
  EXPECT_EQ(graph.num_edges(), static_cast<size_t>(kNodes - 1));
  EXPECT_EQ(graph.Targets(0, "next").size(), 1u);
  EXPECT_EQ(graph.EdgesWithPredicate("next").size(),
            static_cast<size_t>(kNodes - 1));
}

}  // namespace
}  // namespace soda
