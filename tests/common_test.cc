// Unit tests for the common substrate: Status/Result, strings, dates, RNG.

#include <gtest/gtest.h>

#include "common/date.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace soda {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table 'x'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "not_found: table 'x'");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kParseError, StatusCode::kTypeError,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  SODA_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("Credit SUISSE"), "credit suisse");
  EXPECT_EQ(ToUpper("yen"), "YEN");
}

TEST(StringsTest, DiacriticFolding) {
  EXPECT_EQ(FoldForMatch("Zürich"), "zurich");
  EXPECT_EQ(FoldForMatch("Müller"), "muller");
  EXPECT_EQ(FoldForMatch("Génève"), "geneve");
  EXPECT_EQ(FoldForMatch("Straße"), "strasse");
  EXPECT_EQ(FoldForMatch("Nestlé"), "nestle");
  EXPECT_EQ(FoldForMatch("plain"), "plain");
}

TEST(StringsTest, EqualsFoldedMatchesAccentVariants) {
  EXPECT_TRUE(EqualsFolded("Zurich", "Zürich"));
  EXPECT_TRUE(EqualsFolded("ZÜRICH", "zurich"));
  EXPECT_FALSE(EqualsFolded("Zurich", "Geneva"));
}

TEST(StringsTest, ContainsFolded) {
  EXPECT_TRUE(ContainsFolded("Zürich Insurance", "zurich"));
  EXPECT_FALSE(ContainsFolded("Geneva", "zurich"));
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(Join(parts, "-"), "a-b-c");
  auto kept = Split("a,b,,c", ',', /*keep_empty=*/true);
  EXPECT_EQ(kept.size(), 4u);
}

TEST(StringsTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  Sara   Guttinger\t1981 ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "Sara");
  EXPECT_EQ(parts[2], "1981");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("matches-column", "matches-"));
  EXPECT_FALSE(StartsWith("col", "column"));
  EXPECT_TRUE(EndsWith("indvl_td", "_td"));
  EXPECT_FALSE(EndsWith("td", "_td"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a_b_c", "_", " "), "a b c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%05d", 42), "00042");
}

// ---------------------------------------------------------------------------
// dates
// ---------------------------------------------------------------------------

TEST(DateTest, EpochIsZero) {
  Date epoch = Date::FromYmd(1970, 1, 1);
  EXPECT_EQ(epoch.days_since_epoch(), 0);
  EXPECT_EQ(epoch.ToString(), "1970-01-01");
}

TEST(DateTest, RoundTripParseFormat) {
  for (const char* text : {"1981-04-23", "2011-09-01", "9999-12-31",
                           "2000-02-29", "1900-03-01"}) {
    auto date = Date::Parse(text);
    ASSERT_TRUE(date.ok()) << text;
    EXPECT_EQ(date->ToString(), text);
  }
}

TEST(DateTest, RejectsMalformed) {
  EXPECT_FALSE(Date::Parse("2011-9-1").ok());    // missing zero padding
  EXPECT_FALSE(Date::Parse("2011/09/01").ok());  // wrong separator
  EXPECT_FALSE(Date::Parse("2011-13-01").ok());  // month out of range
  EXPECT_FALSE(Date::Parse("2011-02-30").ok());  // day out of range
  EXPECT_FALSE(Date::Parse("1900-02-29").ok());  // 1900 is not leap
  EXPECT_FALSE(Date::Parse("").ok());
  EXPECT_FALSE(Date::Parse("abcd-ef-gh").ok());
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_TRUE(Date::Parse("2000-02-29").ok());   // 400-rule leap
  EXPECT_TRUE(Date::Parse("2012-02-29").ok());
  EXPECT_FALSE(Date::Parse("2100-02-29").ok());  // 100-rule non-leap
}

TEST(DateTest, OrderingAndArithmetic) {
  Date a = Date::FromYmd(2011, 9, 1);
  Date b = Date::FromYmd(2011, 9, 2);
  EXPECT_LT(a, b);
  EXPECT_EQ(a.AddDays(1), b);
  EXPECT_EQ(b.AddDays(-1), a);
}

TEST(DateTest, ComponentExtraction) {
  Date d = Date::FromYmd(1981, 4, 23);
  EXPECT_EQ(d.year(), 1981);
  EXPECT_EQ(d.month(), 4);
  EXPECT_EQ(d.day(), 23);
}

// Property sweep: FromYmd/components round-trip across a broad range.
class DateRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTripTest, YmdRoundTrips) {
  int year = GetParam();
  for (int month : {1, 2, 6, 12}) {
    for (int day : {1, 15, 28}) {
      Date d = Date::FromYmd(year, month, day);
      EXPECT_EQ(d.year(), year);
      EXPECT_EQ(d.month(), month);
      EXPECT_EQ(d.day(), day);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Years, DateRoundTripTest,
                         ::testing::Values(1900, 1950, 1970, 1999, 2000,
                                           2012, 2038, 2100, 9999));

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo |= v == 1;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace soda
