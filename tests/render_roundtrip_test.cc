// Property test: rendering a statement to SQL text and parsing it back
// yields the same AST (modulo nothing — the subset round-trips exactly).
// Statements are generated pseudo-randomly over the full AST surface.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace soda {
namespace {

Value RandomLiteral(Rng* rng) {
  switch (rng->Below(4)) {
    case 0:
      return Value::Int(rng->Range(-1000, 1000));
    case 1:
      return Value::Real(static_cast<double>(rng->Range(1, 400)) / 4.0);
    case 2:
      return Value::Str("v" + std::to_string(rng->Range(0, 99)));
    default:
      return Value::DateV(Date::FromYmd(
          static_cast<int>(rng->Range(1990, 2020)),
          static_cast<int>(rng->Range(1, 12)),
          static_cast<int>(rng->Range(1, 28))));
  }
}

ColumnRef RandomColumn(Rng* rng) {
  return ColumnRef{"t" + std::to_string(rng->Range(0, 3)),
                   "c" + std::to_string(rng->Range(0, 5))};
}

SelectStatement RandomStatement(Rng* rng) {
  SelectStatement stmt;
  stmt.distinct = rng->Chance(0.2);

  bool aggregate_query = rng->Chance(0.4);
  if (rng->Chance(0.25) && !aggregate_query) {
    stmt.items.push_back(SelectItem{Expr::MakeStar(), ""});
  } else if (aggregate_query) {
    size_t num_aggs = 1 + rng->Below(2);
    for (size_t i = 0; i < num_aggs; ++i) {
      Expr agg;
      switch (rng->Below(3)) {
        case 0:
          agg = Expr::MakeCountStar();
          break;
        case 1:
          agg = Expr::MakeAggregate(AggFunc::kSum, RandomColumn(rng));
          break;
        default:
          agg = Expr::MakeAggregate(AggFunc::kCount, RandomColumn(rng));
          agg.agg_distinct = rng->Chance(0.5);
      }
      stmt.items.push_back(SelectItem{std::move(agg), ""});
    }
    size_t num_groups = rng->Below(3);
    for (size_t i = 0; i < num_groups; ++i) {
      ColumnRef ref = RandomColumn(rng);
      stmt.items.push_back(SelectItem{Expr::MakeColumn(ref), ""});
      stmt.group_by.push_back(ref);
    }
  } else {
    size_t num_items = 1 + rng->Below(3);
    for (size_t i = 0; i < num_items; ++i) {
      stmt.items.push_back(
          SelectItem{Expr::MakeColumn(RandomColumn(rng)), ""});
    }
  }

  size_t num_tables = 1 + rng->Below(3);
  for (size_t i = 0; i < num_tables; ++i) {
    stmt.from.push_back(TableRef{"t" + std::to_string(i), ""});
  }

  size_t num_predicates = rng->Below(4);
  for (size_t i = 0; i < num_predicates; ++i) {
    Predicate p;
    p.lhs = Expr::MakeColumn(RandomColumn(rng));
    p.op = static_cast<CompareOp>(rng->Below(7));
    if (p.op == CompareOp::kLike) {
      p.rhs = Expr::MakeLiteral(Value::Str("%x%"));
    } else if (rng->Chance(0.4)) {
      p.rhs = Expr::MakeColumn(RandomColumn(rng));
    } else {
      p.rhs = Expr::MakeLiteral(RandomLiteral(rng));
    }
    stmt.where.push_back(std::move(p));
  }

  if (rng->Chance(0.4)) {
    OrderItem order;
    order.expr = stmt.items.empty() ||
                         stmt.items[0].expr.kind == Expr::Kind::kStar
                     ? Expr::MakeColumn(RandomColumn(rng))
                     : stmt.items[0].expr;
    order.descending = rng->Chance(0.5);
    stmt.order_by.push_back(std::move(order));
  }
  if (rng->Chance(0.3)) {
    stmt.limit = rng->Range(1, 100);
  }
  return stmt;
}

class RenderRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RenderRoundTripTest, ParseOfRenderIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    SelectStatement stmt = RandomStatement(&rng);
    std::string sql = stmt.ToSql();
    auto reparsed = ParseSql(sql);
    ASSERT_TRUE(reparsed.ok()) << "failed to re-parse:\n" << sql << "\n"
                               << reparsed.status();
    EXPECT_EQ(*reparsed, stmt) << "round-trip mismatch for:\n" << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenderRoundTripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// Double literals with fractional noise do not round-trip through %.6g in
// general; the generator above uses quarter values which do. This test
// documents the renderer's contract on the values SODA itself generates.
TEST(RenderTest, RendersPaperStyle) {
  SelectStatement stmt;
  stmt.items.push_back(SelectItem{Expr::MakeStar(), ""});
  stmt.from.push_back(TableRef{"parties", ""});
  stmt.from.push_back(TableRef{"individuals", ""});
  Predicate join;
  join.lhs = Expr::MakeColumn("parties", "id");
  join.rhs = Expr::MakeColumn("individuals", "id");
  stmt.where.push_back(join);
  Predicate filter;
  filter.lhs = Expr::MakeColumn("individuals", "firstName");
  filter.rhs = Expr::MakeLiteral(Value::Str("Sara"));
  stmt.where.push_back(filter);
  EXPECT_EQ(stmt.ToSql(),
            "SELECT *\n"
            "FROM parties, individuals\n"
            "WHERE parties.id = individuals.id\n"
            "  AND individuals.firstName = 'Sara'");
}

}  // namespace
}  // namespace soda
