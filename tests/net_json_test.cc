// Contract tests for the HTTP front end's JSON codec (net/json.h): the
// strict parser rejects garbage loudly with offset-bearing errors, and
// the append-style writers render identical bytes for identical inputs
// — the determinism the /search body contract leans on.

#include "net/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace soda {
namespace {

Result<JsonValue> Parse(std::string_view text) { return ParseJson(text); }

TEST(NetJsonParse, Scalars) {
  auto v = Parse("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  v = Parse("true");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_bool());
  EXPECT_TRUE(v->as_bool());

  v = Parse("false");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_bool());
  EXPECT_FALSE(v->as_bool());

  v = Parse("  42  ");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_number());
  EXPECT_EQ(v->as_number(), 42.0);

  v = Parse("-17.5e1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_number(), -175.0);

  v = Parse("\"hello\"");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_string());
  EXPECT_EQ(v->as_string(), "hello");
}

TEST(NetJsonParse, NestedDocument) {
  auto v = Parse(
      "{\"query\": \"addresses Sara\",\n"
      " \"options\": {\"limit\": 3, \"stream\": false},\n"
      " \"queries\": [\"a\", \"b\", []]}");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* query = v->Find("query");
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->as_string(), "addresses Sara");
  const JsonValue* options = v->Find("options");
  ASSERT_NE(options, nullptr);
  ASSERT_TRUE(options->is_object());
  ASSERT_NE(options->Find("limit"), nullptr);
  EXPECT_EQ(options->Find("limit")->as_number(), 3.0);
  const JsonValue* queries = v->Find("queries");
  ASSERT_NE(queries, nullptr);
  ASSERT_TRUE(queries->is_array());
  ASSERT_EQ(queries->as_array().size(), 3u);
  EXPECT_EQ(queries->as_array()[1].as_string(), "b");
  EXPECT_TRUE(queries->as_array()[2].is_array());
  // Find on a non-object / absent key answers nullptr, not a throw.
  EXPECT_EQ(queries->Find("x"), nullptr);
  EXPECT_EQ(v->Find("absent"), nullptr);
}

TEST(NetJsonParse, StringEscapes) {
  auto v = Parse("\"a\\\"b\\\\c\\/d\\b\\f\\n\\r\\te\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\b\f\n\r\te");

  // \u escapes: ASCII, 2-byte and 3-byte UTF-8 ranges, both hex cases.
  v = Parse("\"\\u0041\\u00fc\\u20AC\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "A\xC3\xBC\xE2\x82\xAC");

  // Raw UTF-8 passes through byte-for-byte.
  v = Parse("\"Z\xC3\xBCrich\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "Z\xC3\xBCrich");
}

TEST(NetJsonParse, RejectsGarbageWithOffsets) {
  const char* bad[] = {
      "",                      // empty
      "   ",                   // whitespace only
      "{",                     // unterminated object
      "{\"a\":1",              // missing '}'
      "{\"a\" 1}",             // missing ':'
      "{a: 1}",                // unquoted key
      "{\"a\":1,}",            // trailing comma → expected key
      "[1, 2",                 // unterminated array
      "[1 2]",                 // missing ','
      "\"abc",                 // unterminated string
      "\"a\\q\"",              // bad escape
      "\"a\\u12\"",            // truncated \u
      "\"a\\u12zz\"",          // non-hex \u
      "\"a\nb\"",              // unescaped control char
      "tru",                   // bad literal
      "fals",                  // bad literal
      "nul",                   // bad literal
      "1.2.3",                 // bad number
      "--1",                   // bad number
      "1e999",                 // overflows to inf
      "[] []",                 // trailing bytes
      "42 junk",               // trailing bytes
  };
  for (const char* text : bad) {
    auto v = Parse(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    EXPECT_NE(v.status().ToString().find("offset"), std::string::npos)
        << "no offset in error for: " << text;
  }
}

TEST(NetJsonParse, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep.push_back('[');
  for (int i = 0; i < 64; ++i) deep.push_back(']');
  auto v = Parse(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().ToString().find("nesting too deep"), std::string::npos);

  // Just-inside-the-bound documents parse fine.
  std::string shallow;
  for (int i = 0; i < 16; ++i) shallow.push_back('[');
  for (int i = 0; i < 16; ++i) shallow.push_back(']');
  EXPECT_TRUE(Parse(shallow).ok());
}

TEST(NetJsonWrite, QuotedStrings) {
  std::string out;
  AppendJsonQuoted(&out, "plain");
  EXPECT_EQ(out, "\"plain\"");

  out.clear();
  AppendJsonQuoted(&out, "a\"b\\c\b\f\n\r\t\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\b\\f\\n\\r\\t\\u0001\"");

  // UTF-8 passes through untouched — no normalization, no escaping.
  out.clear();
  AppendJsonQuoted(&out, "Z\xC3\xBCrich");
  EXPECT_EQ(out, "\"Z\xC3\xBCrich\"");
}

TEST(NetJsonWrite, Numbers) {
  std::string out;
  AppendJsonNumber(&out, 0.0);
  EXPECT_EQ(out, "0");

  out.clear();
  AppendJsonNumber(&out, -3.0);
  EXPECT_EQ(out, "-3");

  out.clear();
  AppendJsonNumber(&out, 1.5);
  EXPECT_EQ(out, "1.5");

  // Integral doubles render without exponent or trailing ".0".
  out.clear();
  AppendJsonNumber(&out, 1e15);
  EXPECT_EQ(out, "1000000000000000");

  // Non-finite values degrade to null (never emitted in practice).
  out.clear();
  AppendJsonNumber(&out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");

  // Determinism: same double, same bytes.
  std::string a, b;
  AppendJsonNumber(&a, 0.1);
  AppendJsonNumber(&b, 0.1);
  EXPECT_EQ(a, b);
}

TEST(NetJsonRoundTrip, WriterOutputReparses) {
  std::string doc = "{\"q\":";
  AppendJsonQuoted(&doc, "tab\there \"quoted\" Z\xC3\xBCrich");
  doc += ",\"n\":";
  AppendJsonNumber(&doc, 12.25);
  doc += "}";
  auto v = Parse(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("q")->as_string(), "tab\there \"quoted\" Z\xC3\xBCrich");
  EXPECT_EQ(v->Find("n")->as_number(), 12.25);
}

}  // namespace
}  // namespace soda
