// Tests for the SodaEngine service layer: deterministic results under the
// concurrent fan-out (same query -> byte-identical ranked SQL list at 1 vs
// N threads), LRU cache behavior, and construction-error propagation.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/soda.h"
#include "datasets/enterprise.h"
#include "datasets/minibank.h"
#include "eval/workload.h"
#include "pattern/library.h"

namespace soda {
namespace {

// Serializes everything rank-relevant about an output, snippets included,
// so "byte-identical" is literal.
std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

std::vector<std::string> MiniBankQueries() {
  return {
      "customers Zürich financial instruments",
      "trading volume transaction date between date(2010-01-01) "
      "date(2011-12-31)",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
}

class EngineMiniBankTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete bank_;
    bank_ = nullptr;
  }

  static std::unique_ptr<SodaEngine> MakeEngine(size_t threads,
                                                size_t cache_capacity) {
    SodaConfig config;
    config.num_threads = threads;
    config.cache_capacity = cache_capacity;
    auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                     CreditSuissePatternLibrary(), config);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  static MiniBank* bank_;
};

MiniBank* EngineMiniBankTest::bank_ = nullptr;

TEST_F(EngineMiniBankTest, ConcurrentEngineMatchesSerialPipeline) {
  auto serial = Soda::Create(&bank_->db, &bank_->graph,
                             CreditSuissePatternLibrary(), SodaConfig{});
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto engine = MakeEngine(/*threads=*/4, /*cache_capacity=*/0);
  EXPECT_EQ(engine->num_threads(), 4u);
  for (const std::string& query : MiniBankQueries()) {
    auto expected = (*serial)->Search(query);
    auto actual = engine->Search(query);
    ASSERT_TRUE(expected.ok()) << expected.status();
    ASSERT_TRUE(actual.ok()) << actual.status();
    EXPECT_EQ(Fingerprint(*expected), Fingerprint(*actual)) << query;
  }
}

TEST_F(EngineMiniBankTest, OneVsManyThreadsByteIdentical) {
  auto one = MakeEngine(/*threads=*/1, /*cache_capacity=*/0);
  auto many = MakeEngine(/*threads=*/8, /*cache_capacity=*/0);
  for (const std::string& query : MiniBankQueries()) {
    auto lhs = one->Search(query);
    auto rhs = many->Search(query);
    ASSERT_TRUE(lhs.ok()) << lhs.status();
    ASSERT_TRUE(rhs.ok()) << rhs.status();
    EXPECT_EQ(Fingerprint(*lhs), Fingerprint(*rhs)) << query;
  }
}

TEST_F(EngineMiniBankTest, RepeatedSearchesAreStable) {
  // The fan-out schedule is nondeterministic; the answer must not be.
  auto engine = MakeEngine(/*threads=*/4, /*cache_capacity=*/0);
  const std::string query = MiniBankQueries()[0];
  auto first = engine->Search(query);
  ASSERT_TRUE(first.ok()) << first.status();
  for (int round = 0; round < 5; ++round) {
    auto again = engine->Search(query);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(Fingerprint(*first), Fingerprint(*again)) << "round " << round;
  }
}

TEST_F(EngineMiniBankTest, CacheHitShortCircuitsAndCounts) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/8);
  const std::string query = MiniBankQueries()[0];

  auto miss = engine->Search(query);
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->from_cache);
  EXPECT_EQ(miss->cache_hits, 0u);
  EXPECT_EQ(miss->cache_misses, 1u);

  auto hit = engine->Search(query);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(hit->cache_hits, 1u);
  EXPECT_EQ(hit->cache_misses, 1u);
  EXPECT_EQ(Fingerprint(*miss), Fingerprint(*hit));

  // The key collapses whitespace (the tokenizer splits on it anyway)...
  auto respaced = engine->Search("  customers   Zürich financial instruments ");
  ASSERT_TRUE(respaced.ok()) << respaced.status();
  EXPECT_TRUE(respaced->from_cache);

  // ...but keeps case: comparison literals compare case-sensitively, so
  // a differently-cased query may have a different answer and must miss.
  auto recased = engine->Search("CUSTOMERS Zürich financial instruments");
  ASSERT_TRUE(recased.ok()) << recased.status();
  EXPECT_FALSE(recased->from_cache);

  engine->ClearCache();
  auto after_clear = engine->Search(query);
  ASSERT_TRUE(after_clear.ok()) << after_clear.status();
  EXPECT_FALSE(after_clear->from_cache);
}

TEST_F(EngineMiniBankTest, ZeroCapacityDisablesCache) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/0);
  const std::string query = MiniBankQueries()[0];
  ASSERT_TRUE(engine->Search(query).ok());
  auto second = engine->Search(query);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);
  EXPECT_EQ(engine->cache_stats().size, 0u);
}

TEST_F(EngineMiniBankTest, CreateFailsOnBrokenPatternLibrary) {
  // An empty library cannot harvest the join graph: Create must surface
  // the failure instead of silently swallowing it.
  auto broken = Soda::Create(&bank_->db, &bank_->graph, PatternLibrary{},
                             SodaConfig{});
  ASSERT_FALSE(broken.ok());

  auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                   PatternLibrary{}, SodaConfig{});
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), broken.status().code());
}

// SearchAll batch determinism (vs independent Search calls, dedup
// accounting, async streaming) lives in tests/batch_async_test.cc.

// The enterprise workload (paper Table 2) is the multi-interpretation
// stress: every query must come back byte-identical at 1 vs N threads.
TEST(EngineEnterpriseTest, WorkloadByteIdenticalAcrossThreadCounts) {
  auto built = BuildEnterpriseWarehouse();
  ASSERT_TRUE(built.ok()) << built.status();
  auto warehouse = std::move(built).value();

  SodaConfig config;
  config.execute_snippets = false;  // translation determinism is the point
  config.cache_capacity = 0;

  config.num_threads = 1;
  auto one = SodaEngine::Create(&warehouse->db, &warehouse->graph,
                                CreditSuissePatternLibrary(), config);
  ASSERT_TRUE(one.ok()) << one.status();
  config.num_threads = 4;
  auto four = SodaEngine::Create(&warehouse->db, &warehouse->graph,
                                 CreditSuissePatternLibrary(), config);
  ASSERT_TRUE(four.ok()) << four.status();

  for (const BenchmarkQuery& bench : EnterpriseWorkload()) {
    auto lhs = (*one)->Search(bench.keywords);
    auto rhs = (*four)->Search(bench.keywords);
    ASSERT_TRUE(lhs.ok()) << bench.id << ": " << lhs.status();
    ASSERT_TRUE(rhs.ok()) << bench.id << ": " << rhs.status();
    EXPECT_EQ(Fingerprint(*lhs), Fingerprint(*rhs)) << "query " << bench.id;
  }
}

}  // namespace
}  // namespace soda
