// Unit tests for the individual pipeline steps (tables, filters, SQL
// generation) against the mini-bank.

#include <gtest/gtest.h>

#include <memory>

#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace soda {
namespace {

class PipelineStepsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bank_ = BuildMiniBank().value().release();
    SodaConfig config;
    config.execute_snippets = false;
    soda_ = Soda::Create(&bank_->db, &bank_->graph, CreditSuissePatternLibrary(),
                         config)
                .value()
                .release();
  }
  static void TearDownTestSuite() {
    delete soda_;
    delete bank_;
  }

  static EntryPoint MetadataEntry(const std::string& phrase,
                                  MetadataLayer layer) {
    for (const auto& candidate : soda_->classification().Lookup(phrase)) {
      if (candidate.layer == layer) return candidate;
    }
    ADD_FAILURE() << "no entry for '" << phrase << "' in layer "
                  << MetadataLayerName(layer);
    return EntryPoint{};
  }

  static EntryPoint BaseDataEntry(const std::string& phrase) {
    for (const auto& candidate : soda_->classification().Lookup(phrase)) {
      if (candidate.kind == EntryPoint::Kind::kBaseData) return candidate;
    }
    ADD_FAILURE() << "no base-data entry for '" << phrase << "'";
    return EntryPoint{};
  }

  static bool HasTable(const TablesOutput& out, const std::string& name) {
    for (const auto& table : out.tables) {
      if (table == name) return true;
    }
    return false;
  }

  static MiniBank* bank_;
  static Soda* soda_;
};

MiniBank* PipelineStepsTest::bank_ = nullptr;
Soda* PipelineStepsTest::soda_ = nullptr;

// ---------------------------------------------------------------------------
// tables step
// ---------------------------------------------------------------------------

TEST_F(PipelineStepsTest, OntologyEntryExpandsThroughLayers) {
  auto out = soda_->tables_step().Run(
      {MetadataEntry("customers", MetadataLayer::kDomainOntology)});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(HasTable(*out, "parties"));
  EXPECT_TRUE(HasTable(*out, "individuals"));    // inheritance expansion
  EXPECT_TRUE(HasTable(*out, "organizations"));
}

TEST_F(PipelineStepsTest, LogicalEntitySplitAcrossTables) {
  auto out = soda_->tables_step().Run(
      {MetadataEntry("financial instruments", MetadataLayer::kLogicalSchema)});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(HasTable(*out, "fin_instruments"));
  EXPECT_TRUE(HasTable(*out, "securities"));
  EXPECT_TRUE(HasTable(*out, "fi_contains_sec"));
}

TEST_F(PipelineStepsTest, BaseDataEntryMapsToItsTable) {
  auto out = soda_->tables_step().Run({BaseDataEntry("Zürich")});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->tables_per_entry.size(), 1u);
  EXPECT_TRUE(HasTable(*out, "addresses"));
  ASSERT_TRUE(out->entry_columns[0].has_value());
  EXPECT_EQ(out->entry_columns[0]->ToString(), "addresses.city");
}

TEST_F(PipelineStepsTest, BaseDataOnInheritanceChildAddsParent) {
  auto out = soda_->tables_step().Run({BaseDataEntry("Sara")});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(HasTable(*out, "individuals"));
  EXPECT_TRUE(HasTable(*out, "parties"));  // inheritance parent
}

TEST_F(PipelineStepsTest, JoinsOnDirectPathBetweenEntries) {
  auto out = soda_->tables_step().Run(
      {MetadataEntry("customers", MetadataLayer::kDomainOntology),
       BaseDataEntry("Zürich")});
  ASSERT_TRUE(out.ok());
  bool address_join = false;
  for (const auto& join : out->joins) {
    if (join.ToString() == "addresses.party_id = individuals.id") {
      address_join = true;
    }
  }
  EXPECT_TRUE(address_join);
  EXPECT_TRUE(out->fully_connected);
}

TEST_F(PipelineStepsTest, MetadataFilterDiscovered) {
  auto out = soda_->tables_step().Run(
      {MetadataEntry("wealthy customers", MetadataLayer::kDomainOntology)});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->filters.size(), 1u);
  EXPECT_EQ(out->filters[0].column.ToString(), "individuals.salary");
  EXPECT_EQ(out->filters[0].op, ">=");
  EXPECT_EQ(out->filters[0].value, "1000000");
}

TEST_F(PipelineStepsTest, MetadataAggregationDiscovered) {
  auto out = soda_->tables_step().Run(
      {MetadataEntry("trading volume", MetadataLayer::kDomainOntology)});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->aggregations.size(), 1u);
  EXPECT_EQ(out->aggregations[0].func, AggFunc::kSum);
  EXPECT_EQ(out->aggregations[0].column.ToString(),
            "fi_transactions.amount");
}

// ---------------------------------------------------------------------------
// filters step
// ---------------------------------------------------------------------------

TEST_F(PipelineStepsTest, FiltersFromAllThreeSources) {
  std::vector<EntryPoint> entries = {
      BaseDataEntry("Zürich"),
      MetadataEntry("wealthy customers", MetadataLayer::kDomainOntology),
      MetadataEntry("salary", MetadataLayer::kLogicalSchema)};
  auto tables = soda_->tables_step().Run(entries);
  ASSERT_TRUE(tables.ok());

  OperatorBinding binding;
  binding.term_index = 2;  // "salary"
  binding.op = CompareOp::kLt;
  binding.literal = Value::Int(2000000);

  FiltersStep step(&bank_->db);
  auto filters = step.Run(entries, {binding}, *tables);
  ASSERT_TRUE(filters.ok()) << filters.status();
  ASSERT_EQ(filters->size(), 3u);
  // 1. base data equality.
  EXPECT_EQ((*filters)[0].column.ToString(), "addresses.city");
  EXPECT_EQ((*filters)[0].value, Value::Str("Zürich"));
  // 2. the input operator.
  EXPECT_EQ((*filters)[1].op, CompareOp::kLt);
  // 3. the metadata-defined filter, typed against the int column.
  EXPECT_EQ((*filters)[2].value, Value::Int(1000000));
}

TEST_F(PipelineStepsTest, TypeValueRespectsColumnTypes) {
  FiltersStep step(&bank_->db);
  EXPECT_EQ(step.TypeValue({"individuals", "salary"}, "100"),
            Value::Int(100));
  EXPECT_EQ(step.TypeValue({"individuals", "birthday"}, "1981-04-23"),
            Value::DateV(Date::FromYmd(1981, 4, 23)));
  EXPECT_EQ(step.TypeValue({"individuals", "firstName"}, "Sara"),
            Value::Str("Sara"));
  EXPECT_EQ(step.TypeValue({"fi_transactions", "amount"}, "1.5"),
            Value::Real(1.5));
  // Unknown table falls back to string.
  EXPECT_EQ(step.TypeValue({"ghost", "x"}, "1"), Value::Str("1"));
}

TEST_F(PipelineStepsTest, ParseCompareOpCoversAll) {
  EXPECT_EQ(ParseCompareOp(">"), CompareOp::kGt);
  EXPECT_EQ(ParseCompareOp(">="), CompareOp::kGe);
  EXPECT_EQ(ParseCompareOp("<"), CompareOp::kLt);
  EXPECT_EQ(ParseCompareOp("<="), CompareOp::kLe);
  EXPECT_EQ(ParseCompareOp("like"), CompareOp::kLike);
  EXPECT_EQ(ParseCompareOp("<>"), CompareOp::kNe);
  EXPECT_EQ(ParseCompareOp("whatever"), CompareOp::kEq);
}

// ---------------------------------------------------------------------------
// end-to-end statement shapes
// ---------------------------------------------------------------------------

TEST_F(PipelineStepsTest, PaperQuery3Shape) {
  auto output = soda_->Search("sum (amount) group by (transaction date)");
  ASSERT_TRUE(output.ok());
  ASSERT_FALSE(output->results.empty());
  const SelectStatement& stmt = output->results[0].statement;
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.items[0].expr.agg, AggFunc::kSum);
  ASSERT_EQ(stmt.group_by.size(), 1u);
  EXPECT_EQ(stmt.group_by[0].column, "transactiondate");
}

TEST_F(PipelineStepsTest, PaperQuery4ShapeWithOrderByDesc) {
  auto output =
      soda_->Search("count (transactions) group by (company name)");
  ASSERT_TRUE(output.ok());
  ASSERT_FALSE(output->results.empty());
  const SelectStatement& stmt = output->results[0].statement;
  // count over the transactions entity key, grouped by company name,
  // ordered descending (the paper's Query 4).
  ASSERT_GE(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.items[0].expr.agg, AggFunc::kCount);
  ASSERT_EQ(stmt.order_by.size(), 1u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  // The generator pulled in the join path to organizations.
  bool has_org = false;
  for (const auto& table : stmt.from) {
    has_org |= table.table == "organizations";
  }
  EXPECT_TRUE(has_org);
}

TEST_F(PipelineStepsTest, TopNAddsLimit) {
  auto output = soda_->Search(
      "top 10 trading volume group by (company name)");
  ASSERT_TRUE(output.ok());
  ASSERT_FALSE(output->results.empty());
  const SelectStatement& stmt = output->results[0].statement;
  EXPECT_EQ(stmt.limit, 10);
  ASSERT_FALSE(stmt.order_by.empty());
  EXPECT_TRUE(stmt.order_by[0].descending);
}

TEST_F(PipelineStepsTest, DisconnectedEntriesStillProduceSql) {
  // "securities" and "currency" have no join path in the mini-bank
  // (money_transactions.currency is reachable only through transactions
  // inheritance... which exists; use an actually disconnected pair).
  auto output = soda_->Search("isin currency");
  ASSERT_TRUE(output.ok());
  // Either a connected result or a cross product marked as such — the
  // pipeline must not crash and must report connectivity.
  for (const auto& result : output->results) {
    if (!result.fully_connected) {
      SUCCEED();
      return;
    }
  }
}

}  // namespace
}  // namespace soda
