// Unit tests for SODA's input pattern parser (Section 4.2.2 / 4.3).

#include <gtest/gtest.h>

#include "core/input_query.h"

namespace soda {
namespace {

using Kind = InputElement::Kind;

TEST(InputQueryTest, PlainKeywords) {
  auto q = ParseInputQuery("Private customers Switzerland");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 1u);
  EXPECT_EQ(q->elements[0].kind, Kind::kKeywords);
  EXPECT_EQ(q->elements[0].words.size(), 3u);
}

TEST(InputQueryTest, PaperQuery2) {
  // "salary >= x and birthday = date(1981-04-23)"
  auto q = ParseInputQuery("salary >= x and birthday = date(1981-04-23)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 7u);
  EXPECT_EQ(q->elements[0].kind, Kind::kKeywords);  // salary
  EXPECT_EQ(q->elements[1].kind, Kind::kComparison);
  EXPECT_EQ(q->elements[1].op, CompareOp::kGe);
  EXPECT_EQ(q->elements[2].kind, Kind::kKeywords);  // x (operand)
  EXPECT_EQ(q->elements[3].kind, Kind::kConnector);
  EXPECT_TRUE(q->elements[3].connector_is_and);
  EXPECT_EQ(q->elements[4].kind, Kind::kKeywords);  // birthday
  EXPECT_EQ(q->elements[5].kind, Kind::kComparison);
  EXPECT_EQ(q->elements[5].op, CompareOp::kEq);
  EXPECT_EQ(q->elements[6].kind, Kind::kDate);
  EXPECT_EQ(q->elements[6].date.ToString(), "1981-04-23");
}

TEST(InputQueryTest, DateOperator) {
  auto q = ParseInputQuery("period > date(2011-09-01)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 3u);
  EXPECT_EQ(q->elements[2].kind, Kind::kDate);
  EXPECT_EQ(q->elements[2].date.ToString(), "2011-09-01");
}

TEST(InputQueryTest, MalformedDateFails) {
  EXPECT_FALSE(ParseInputQuery("period > date(2011-13-01)").ok());
  EXPECT_FALSE(ParseInputQuery("period > date(yesterday)").ok());
}

TEST(InputQueryTest, BetweenRange) {
  auto q = ParseInputQuery(
      "transaction date between date(2010-01-01) date(2010-12-31)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 4u);
  EXPECT_EQ(q->elements[1].kind, Kind::kBetween);
  EXPECT_EQ(q->elements[2].kind, Kind::kDate);
  EXPECT_EQ(q->elements[3].kind, Kind::kDate);
}

TEST(InputQueryTest, AggregationWithArgument) {
  auto q = ParseInputQuery("sum(amount)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 1u);
  EXPECT_EQ(q->elements[0].kind, Kind::kAggregation);
  EXPECT_EQ(q->elements[0].agg, AggFunc::kSum);
  EXPECT_EQ(q->elements[0].agg_argument, "amount");
  EXPECT_TRUE(q->HasAggregation());
}

TEST(InputQueryTest, AggregationSeparatedParens) {
  // The paper writes "sum (amount)" with a space (Query 3).
  auto q = ParseInputQuery("sum (amount) group by (transaction date)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 2u);
  EXPECT_EQ(q->elements[0].kind, Kind::kAggregation);
  EXPECT_EQ(q->elements[0].agg_argument, "amount");
  EXPECT_EQ(q->elements[1].kind, Kind::kGroupBy);
  ASSERT_EQ(q->elements[1].group_by_phrases.size(), 1u);
  EXPECT_EQ(q->elements[1].group_by_phrases[0], "transaction date");
  EXPECT_TRUE(q->HasGroupBy());
}

TEST(InputQueryTest, EmptyCount) {
  auto q = ParseInputQuery("select count() private customers Switzerland");
  ASSERT_TRUE(q.ok()) << q.status();
  // "select" is a plain keyword (classification will ignore it).
  ASSERT_GE(q->elements.size(), 3u);
  EXPECT_EQ(q->elements[0].kind, Kind::kKeywords);
  EXPECT_EQ(q->elements[1].kind, Kind::kAggregation);
  EXPECT_TRUE(q->elements[1].agg_argument.empty());
  EXPECT_EQ(q->elements[2].kind, Kind::kKeywords);
}

TEST(InputQueryTest, GroupByMultipleAttributes) {
  auto q = ParseInputQuery("sum(investments) group by (currency, country)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 2u);
  ASSERT_EQ(q->elements[1].group_by_phrases.size(), 2u);
  EXPECT_EQ(q->elements[1].group_by_phrases[1], "country");
}

TEST(InputQueryTest, TopN) {
  auto q = ParseInputQuery("Top 10 trading volume customer");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_GE(q->elements.size(), 2u);
  EXPECT_EQ(q->elements[0].kind, Kind::kTopN);
  EXPECT_EQ(q->elements[0].integer, 10);
  EXPECT_EQ(q->elements[1].kind, Kind::kKeywords);
}

TEST(InputQueryTest, TopWithoutNumberIsKeyword) {
  auto q = ParseInputQuery("top performer");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 1u);
  EXPECT_EQ(q->elements[0].kind, Kind::kKeywords);
  EXPECT_EQ(q->elements[0].words[0], "top");
}

TEST(InputQueryTest, NumbersBecomeLiterals) {
  auto q = ParseInputQuery("salary >= 500000");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 3u);
  EXPECT_EQ(q->elements[2].kind, Kind::kNumber);
  EXPECT_TRUE(q->elements[2].number_is_integer);
  EXPECT_EQ(q->elements[2].integer, 500000);
}

TEST(InputQueryTest, FloatLiteral) {
  auto q = ParseInputQuery("rate >= 2.5");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->elements[2].kind, Kind::kNumber);
  EXPECT_FALSE(q->elements[2].number_is_integer);
  EXPECT_DOUBLE_EQ(q->elements[2].number, 2.5);
}

TEST(InputQueryTest, AllComparisonOperators) {
  for (const auto& [text, op] :
       std::initializer_list<std::pair<const char*, CompareOp>>{
           {">", CompareOp::kGt},
           {">=", CompareOp::kGe},
           {"=", CompareOp::kEq},
           {"<=", CompareOp::kLe},
           {"<", CompareOp::kLt},
           {"like", CompareOp::kLike}}) {
    auto q = ParseInputQuery(std::string("salary ") + text + " 100");
    ASSERT_TRUE(q.ok()) << text;
    ASSERT_GE(q->elements.size(), 2u) << text;
    EXPECT_EQ(q->elements[1].kind, Kind::kComparison) << text;
    EXPECT_EQ(q->elements[1].op, op) << text;
  }
}

TEST(InputQueryTest, OrConnector) {
  auto q = ParseInputQuery("Zurich or Geneva");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->elements.size(), 3u);
  EXPECT_EQ(q->elements[1].kind, Kind::kConnector);
  EXPECT_FALSE(q->elements[1].connector_is_and);
}

TEST(InputQueryTest, UnbalancedParensFail) {
  EXPECT_FALSE(ParseInputQuery("sum(amount").ok());
  EXPECT_FALSE(ParseInputQuery("group by (a, b").ok());
}

TEST(InputQueryTest, ToStringIsInformative) {
  auto q = ParseInputQuery("top 5 sum(amount) group by (currency)");
  ASSERT_TRUE(q.ok());
  std::string s = q->ToString();
  EXPECT_NE(s.find("top[5]"), std::string::npos);
  EXPECT_NE(s.find("agg[sum(amount)]"), std::string::npos);
  EXPECT_NE(s.find("groupby[currency]"), std::string::npos);
}

}  // namespace
}  // namespace soda
