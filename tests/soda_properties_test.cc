// Engine-level property tests: invariants that must hold for *every*
// query SODA answers, swept over a broad query corpus on both datasets.
//
//   1. every generated statement is executable SQL — it re-parses and
//      runs on the catalog (the paper's definition of "executable"),
//   2. searching twice yields identical results (determinism),
//   3. snippets never exceed the configured row limit,
//   4. deduplication holds: no two results share a canonical form
//      (weaker check here: rendered SQL strings are unique),
//   5. scores are within [0, 1] and descending.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/soda.h"
#include "datasets/enterprise.h"
#include "datasets/minibank.h"
#include "eval/workload.h"
#include "pattern/library.h"
#include "sql/parser.h"

namespace soda {
namespace {

class SodaPropertyTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    bank_ = BuildMiniBank().value().release();
    bank_soda_ = Soda::Create(&bank_->db, &bank_->graph,
                              CreditSuissePatternLibrary(), SodaConfig{})
                     .value()
                     .release();
    warehouse_ = BuildEnterpriseWarehouse().value().release();
    warehouse_soda_ = Soda::Create(&warehouse_->db, &warehouse_->graph,
                                   CreditSuissePatternLibrary(), SodaConfig{})
                          .value()
                          .release();
  }
  static void TearDownTestSuite() {
    delete warehouse_soda_;
    delete warehouse_;
    delete bank_soda_;
    delete bank_;
  }

  void CheckInvariants(const Soda& engine, const std::string& query) {
    auto output = engine.Search(query);
    ASSERT_TRUE(output.ok()) << query << ": " << output.status();

    Executor executor(engine.database());
    std::set<std::string> seen_sql;
    double previous_score = 1.0 + 1e-9;
    for (const SodaResult& result : output->results) {
      // 1. Executable: re-parses and runs.
      auto reparsed = ParseSql(result.sql);
      ASSERT_TRUE(reparsed.ok())
          << query << " produced unparseable SQL:\n" << result.sql;
      auto rs = executor.Execute(*reparsed);
      EXPECT_TRUE(rs.ok()) << query << " produced non-executable SQL:\n"
                           << result.sql << "\n" << rs.status();
      // 3. Snippet bound.
      if (result.executed) {
        EXPECT_LE(result.snippet.num_rows(), engine.config().snippet_rows)
            << query;
      }
      // 4. No duplicate statements.
      EXPECT_TRUE(seen_sql.insert(result.sql).second)
          << query << " produced a duplicate statement:\n" << result.sql;
      // 5. Scores in range and descending.
      EXPECT_GE(result.score, 0.0) << query;
      EXPECT_LE(result.score, 1.0 + 1e-9) << query;
      EXPECT_LE(result.score, previous_score) << query;
      previous_score = result.score;
    }

    // 2. Determinism.
    auto again = engine.Search(query);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->results.size(), output->results.size()) << query;
    for (size_t i = 0; i < output->results.size(); ++i) {
      EXPECT_EQ(again->results[i].sql, output->results[i].sql) << query;
    }
    EXPECT_EQ(again->complexity, output->complexity) << query;
  }

  static MiniBank* bank_;
  static Soda* bank_soda_;
  static EnterpriseWarehouse* warehouse_;
  static Soda* warehouse_soda_;
};

MiniBank* SodaPropertyTest::bank_ = nullptr;
Soda* SodaPropertyTest::bank_soda_ = nullptr;
EnterpriseWarehouse* SodaPropertyTest::warehouse_ = nullptr;
Soda* SodaPropertyTest::warehouse_soda_ = nullptr;

TEST_P(SodaPropertyTest, MiniBankInvariants) {
  CheckInvariants(*bank_soda_, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    MiniBankQueries, SodaPropertyTest,
    ::testing::Values(
        "Sara Guttinger", "customers Zürich financial instruments",
        "wealthy customers", "trading volume", "client",
        "salary >= 500000", "sum (amount) group by (transaction date)",
        "count (transactions) group by (company name)",
        "individuals", "securities", "Credit Suisse", "addresses Basel",
        "salary >= 100000 and birthday = date(1981-04-23)",
        "top 3 trading volume group by (company name)",
        "nonsense gibberish quux", "Zurich or Geneva",
        "instrument type", "money transactions YEN"));

class EnterprisePropertyTest : public SodaPropertyTest {};

TEST_P(EnterprisePropertyTest, EnterpriseInvariants) {
  CheckInvariants(*warehouse_soda_, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadQueries, EnterprisePropertyTest,
    ::testing::Values(
        "private customers family name", "Sara", "Sara given name",
        "Sara birth date", "Credit Suisse", "gold agreement",
        "customers names", "trade order period > date(2011-09-01)",
        "YEN trade order", "trade order investment product Lehman XYZ",
        "select count() private customers Switzerland",
        "sum(investments) group by (currency)", "wealthy customers",
        "corporate customers", "agreement", "currency"));

// The workload keywords must all be answerable (at least one result) —
// except none; even Q9.0 produces (wrong) statements.
TEST_F(SodaPropertyTest, EveryWorkloadQueryProducesResults) {
  for (const BenchmarkQuery& query : EnterpriseWorkload()) {
    auto output = warehouse_soda_->Search(query.keywords);
    ASSERT_TRUE(output.ok()) << query.id;
    EXPECT_FALSE(output->results.empty()) << query.id;
  }
}

}  // namespace
}  // namespace soda
