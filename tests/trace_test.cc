// Tests for the end-to-end tracing layer (common/trace.h) and its
// threading through the engine stack:
//
//   - trace-id formatting/parsing round trips; malformed ids rejected;
//   - span recording: attributes, events, status, parentage through
//     explicit contexts;
//   - head sampling is deterministic (1-in-N by admission order), and
//     slow or errored traces are always kept regardless of the sample
//     decision;
//   - the recorder ring wraps oldest-first at its capacity, and
//     concurrent StartTrace/FinishTrace from many threads is safe
//     (the TSan leg runs this suite);
//   - cross-thread parentage: snippet.stream spans recorded on pool
//     threads in SearchAllAsync parent under the batch span;
//   - ranked output is byte-identical with tracing off vs sample-all,
//     at shards {1,4} x threads {1,4};
//   - a deliberately stalled query (snippet.execute failpoint) surfaces
//     through the slow filter with its stage, shard and cache outcome.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/trace.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datasets/minibank.h"
#include "net/search_json.h"
#include "pattern/library.h"

namespace soda {
namespace {

/// Configures the process-wide recorder for one test and restores the
/// sampled-off default on exit.
class ScopedRecorder {
 public:
  ScopedRecorder(size_t sample_every, double slow_threshold_ms,
                 size_t capacity = 64) {
    TraceRecorder::Instance().SetCapacity(capacity);
    TraceRecorder::Instance().Clear();
    TraceRecorder::Instance().Configure(sample_every, slow_threshold_ms);
  }
  ~ScopedRecorder() {
    TraceRecorder::Instance().Configure(0, 0.0);
    TraceRecorder::Instance().SetCapacity(64);
    TraceRecorder::Instance().Clear();
  }
};

class TraceEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete bank_;
    bank_ = nullptr;
  }

  static std::unique_ptr<SodaEngine> MakeEngine(size_t threads) {
    SodaConfig config;
    config.num_threads = threads;
    config.cache_capacity = 32;
    auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                     CreditSuissePatternLibrary(), config);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  static std::unique_ptr<ShardedSodaEngine> MakeSharded(size_t shards,
                                                        size_t threads) {
    SodaConfig config;
    config.num_shards = shards;
    config.num_threads = threads;
    config.cache_capacity = 32;
    auto engine = ShardedSodaEngine::Create(
        &bank_->db, &bank_->graph, CreditSuissePatternLibrary(), config);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  static MiniBank* bank_;
};

MiniBank* TraceEngineTest::bank_ = nullptr;

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

TEST(TraceIdTest, FormatAndParseRoundTrip) {
  uint64_t id = 0;
  ASSERT_TRUE(ParseTraceId("deadbeef", &id));
  EXPECT_EQ(id, 0xdeadbeefu);
  EXPECT_EQ(FormatTraceId(id), "00000000deadbeef");
  ASSERT_TRUE(ParseTraceId(FormatTraceId(0x1234abcd5678ef09ull), &id));
  EXPECT_EQ(id, 0x1234abcd5678ef09ull);
  ASSERT_TRUE(ParseTraceId("A", &id));  // case-insensitive hex
  EXPECT_EQ(id, 0xAu);
}

TEST(TraceIdTest, RejectsMalformedIds) {
  uint64_t id = 0;
  EXPECT_FALSE(ParseTraceId("", &id));
  EXPECT_FALSE(ParseTraceId("0", &id));  // zero is "no trace", not an id
  EXPECT_FALSE(ParseTraceId("0000000000000000", &id));
  EXPECT_FALSE(ParseTraceId("xyz", &id));
  EXPECT_FALSE(ParseTraceId("12345678901234567", &id));  // 17 digits
  EXPECT_FALSE(ParseTraceId("dead beef", &id));
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(TraceSpanTest, RecordsAttrsEventsStatusAndParentage) {
  ScopedRecorder recorder(/*sample_every=*/1, /*slow_threshold_ms=*/0.0);
  TraceContext ctx = TraceRecorder::Instance().StartTrace("test", 0xab);
  ASSERT_TRUE(ctx.active());
  EXPECT_EQ(ctx.data->trace_id(), 0xabu);  // client-chosen id adopted
  {
    Span root(ctx, "root");
    root.SetAttr("query", "addresses");
    root.SetAttr("count", static_cast<int64_t>(3));
    root.SetAttr("ratio", 0.5);
    root.SetAttr("hit", true);
    {
      Span child(root.context(), "child");
      child.AddEvent("retry", "attempt 1");
      child.SetStatus("stage failed");  // span-local: trace NOT errored
    }
  }
  EXPECT_FALSE(ctx.data->error());
  std::vector<SpanRecord> spans = ctx.data->spans();
  ASSERT_EQ(spans.size(), 2u);
  // Children finish (and append) before their parents.
  EXPECT_EQ(spans[0].name, "child");
  EXPECT_EQ(spans[1].name, "root");
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[1].attrs.size(), 4u);
  ASSERT_EQ(spans[0].events.size(), 1u);
  EXPECT_EQ(spans[0].events[0].name, "retry");
  EXPECT_EQ(spans[0].status, "stage failed");
  TraceVerdict verdict =
      TraceRecorder::Instance().FinishTrace(ctx, ctx.data->ElapsedMs());
  EXPECT_TRUE(verdict.kept);
  EXPECT_FALSE(verdict.error);
  EXPECT_EQ(verdict.spans, 2u);
}

TEST(TraceSpanTest, DisabledRecorderYieldsInactiveFreeSpans) {
  // Sampled-off default: StartTrace hands back an inactive context and
  // every span operation is a guarded no-op.
  ASSERT_FALSE(TraceRecorder::Instance().enabled());
  TraceContext ctx = TraceRecorder::Instance().StartTrace("off");
  EXPECT_FALSE(ctx.active());
  Span span(ctx, "noop");
  EXPECT_FALSE(span.active());
  span.SetAttr("k", "v");
  span.AddEvent("e");
  span.SetError("ignored");
  span.End();
  EXPECT_FALSE(CurrentTraceContext().active());
}

// ---------------------------------------------------------------------------
// Sampling, slow/error capture, ring
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, HeadSamplingIsDeterministic) {
  ScopedRecorder recorder(/*sample_every=*/3, /*slow_threshold_ms=*/0.0);
  std::vector<bool> kept;
  for (int i = 0; i < 6; ++i) {
    TraceContext ctx = TraceRecorder::Instance().StartTrace("t");
    ASSERT_TRUE(ctx.active());
    Span root(ctx, "t");
    root.End();
    kept.push_back(
        TraceRecorder::Instance().FinishTrace(ctx, 0.1).kept);
  }
  // Admission order decides: 1-in-3 starting at the first admission.
  EXPECT_EQ(kept, (std::vector<bool>{true, false, false, true, false, false}));
  EXPECT_EQ(TraceRecorder::Instance().traces_started(), 6u);
  EXPECT_EQ(TraceRecorder::Instance().traces_kept(), 2u);
  EXPECT_EQ(TraceRecorder::Instance().traces_dropped(), 4u);
  EXPECT_EQ(TraceRecorder::Instance().Snapshot().size(), 2u);
}

TEST(TraceRecorderTest, SlowAndErroredTracesAreAlwaysKept) {
  // Sample 1-in-a-million: head sampling would drop everything after the
  // first admission, so anything else kept got there via slow/error.
  ScopedRecorder recorder(/*sample_every=*/1000000,
                          /*slow_threshold_ms=*/5.0);
  // Burn the head-sampled first admission.
  TraceContext first = TraceRecorder::Instance().StartTrace("first");
  (void)TraceRecorder::Instance().FinishTrace(first, 0.1);

  TraceContext fast = TraceRecorder::Instance().StartTrace("fast");
  EXPECT_FALSE(TraceRecorder::Instance().FinishTrace(fast, 0.1).kept);

  TraceContext slow = TraceRecorder::Instance().StartTrace("slow");
  TraceVerdict slow_verdict =
      TraceRecorder::Instance().FinishTrace(slow, 25.0);
  EXPECT_TRUE(slow_verdict.kept);
  EXPECT_TRUE(slow_verdict.slow);

  TraceContext errored = TraceRecorder::Instance().StartTrace("errored");
  {
    Span root(errored, "root");
    root.SetError("boom");
  }
  TraceVerdict error_verdict =
      TraceRecorder::Instance().FinishTrace(errored, 0.1);
  EXPECT_TRUE(error_verdict.kept);
  EXPECT_TRUE(error_verdict.error);

  // The slow-query log captured exactly the slow one.
  std::vector<std::string> log = TraceRecorder::Instance().SlowLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].find("root=slow"), std::string::npos) << log[0];
}

TEST(TraceRecorderTest, RingWrapsOldestFirst) {
  ScopedRecorder recorder(/*sample_every=*/1, /*slow_threshold_ms=*/0.0,
                          /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceContext ctx = TraceRecorder::Instance().StartTrace("t");
    Span root(ctx, "t");
    root.SetAttr("index", static_cast<int64_t>(i));
    root.End();
    (void)TraceRecorder::Instance().FinishTrace(ctx, 0.1);
  }
  auto traces = TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(traces.size(), 4u);
  // Oldest-first of the survivors: 6, 7, 8, 9.
  for (size_t i = 0; i < traces.size(); ++i) {
    std::vector<SpanRecord> spans = traces[i]->spans();
    ASSERT_EQ(spans.size(), 1u);
    ASSERT_EQ(spans[0].attrs.size(), 1u);
    EXPECT_EQ(spans[0].attrs[0].int_value, static_cast<int64_t>(6 + i));
  }
  EXPECT_EQ(TraceRecorder::Instance().traces_kept(), 10u);
}

TEST(TraceRecorderTest, ConcurrentRecordingIsSafe) {
  ScopedRecorder recorder(/*sample_every=*/2, /*slow_threshold_ms=*/0.0,
                          /*capacity=*/16);
  constexpr int kThreads = 8;
  constexpr int kTracesPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kTracesPerThread; ++i) {
        TraceContext ctx = TraceRecorder::Instance().StartTrace("c");
        ScopedTraceContext scoped(ctx);
        {
          Span root(CurrentTraceContext(), "root");
          Span child(root.context(), "child");
          child.AddEvent("tick");
        }
        (void)TraceRecorder::Instance().FinishTrace(ctx,
                                                    ctx.data->ElapsedMs());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(TraceRecorder::Instance().traces_started(),
            static_cast<uint64_t>(kThreads * kTracesPerThread));
  EXPECT_EQ(TraceRecorder::Instance().traces_kept() +
                TraceRecorder::Instance().traces_dropped(),
            static_cast<uint64_t>(kThreads * kTracesPerThread));
  EXPECT_EQ(TraceRecorder::Instance().Snapshot().size(), 16u);
}

// ---------------------------------------------------------------------------
// Engine threading
// ---------------------------------------------------------------------------

TEST_F(TraceEngineTest, AsyncSnippetSpansParentUnderTheBatchSpan) {
  ScopedRecorder recorder(/*sample_every=*/1, /*slow_threshold_ms=*/0.0);
  auto engine = MakeEngine(/*threads=*/4);
  TraceContext ctx = TraceRecorder::Instance().StartTrace("test");
  ASSERT_TRUE(ctx.active());
  {
    Span root(ctx, "test.root");
    ScopedTraceContext scoped(root.context());
    std::vector<std::string> queries = {"addresses Sara Guttinger",
                                        "customers Zürich financial "
                                        "instruments"};
    std::atomic<size_t> delivered{0};
    SnippetBarrier barrier;
    auto outputs = engine->SearchAllAsync(
        queries,
        [&delivered](size_t, size_t, const SodaResult&) {
          delivered.fetch_add(1);
        },
        &barrier);
    barrier.Wait();
    ASSERT_EQ(outputs.size(), queries.size());
    EXPECT_GT(delivered.load(), 0u);
  }
  // snippet.stream spans end on pool threads at closure exit — give any
  // straggler past the barrier a moment to append its record.
  uint64_t batch_span_id = 0;
  size_t child_streams = 0;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::vector<SpanRecord> spans = ctx.data->spans();
    batch_span_id = 0;
    child_streams = 0;
    for (const SpanRecord& span : spans) {
      if (span.name == "engine.search_all_async") batch_span_id = span.span_id;
    }
    for (const SpanRecord& span : spans) {
      if (span.name == "snippet.stream" && span.parent_id == batch_span_id) {
        ++child_streams;
      }
    }
    if (batch_span_id != 0 && child_streams > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(batch_span_id, 0u) << "batch span missing from the trace";
  EXPECT_GT(child_streams, 0u)
      << "no pool-thread snippet span parented under the batch span";
  (void)TraceRecorder::Instance().FinishTrace(ctx, ctx.data->ElapsedMs());
}

TEST_F(TraceEngineTest, RankedOutputIsByteIdenticalWithTracingOnOrOff) {
  const std::vector<std::string> queries = {
      "customers Zürich financial instruments",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
  for (size_t shards : {1u, 4u}) {
    for (size_t threads : {1u, 4u}) {
      std::string untraced;
      {
        ASSERT_FALSE(TraceRecorder::Instance().enabled());
        auto engine = MakeSharded(shards, threads);
        auto outputs = engine->SearchAll(queries);
        untraced = RenderSearchResponseJson(queries, outputs);
      }
      std::string traced;
      {
        ScopedRecorder recorder(/*sample_every=*/1,
                                /*slow_threshold_ms=*/0.0);
        auto engine = MakeSharded(shards, threads);
        auto outputs = engine->SearchAll(queries);
        traced = RenderSearchResponseJson(queries, outputs);
      }
      EXPECT_EQ(untraced, traced)
          << "tracing changed ranked output at shards=" << shards
          << " threads=" << threads;
    }
  }
}

// The acceptance scenario: a query stalled by an armed failpoint
// surfaces through the slow filter, and its span tree names the stalled
// stage, the shard that served it, and the cache outcome.
TEST_F(TraceEngineTest, StalledQuerySurfacesThroughTheSlowFilter) {
  if (!Failpoints::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  ScopedRecorder recorder(/*sample_every=*/1, /*slow_threshold_ms=*/10.0);
  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kSleep;
  spec.sleep_ms = 50.0;
  spec.max_fires = 1;
  Failpoints::Instance().Arm("snippet.execute", spec);

  auto engine = MakeSharded(/*shards=*/2, /*threads=*/2);
  TraceContext ctx = TraceRecorder::Instance().StartTrace("test");
  double wall_ms = 0.0;
  {
    Span root(ctx, "test.root");
    ScopedTraceContext scoped(root.context());
    auto output = engine->Search("addresses Sara Guttinger");
    ASSERT_TRUE(output.ok()) << output.status();
    wall_ms = ctx.data->ElapsedMs();
  }
  TraceVerdict verdict = TraceRecorder::Instance().FinishTrace(ctx, wall_ms);
  Failpoints::Instance().DisarmAll();
  ASSERT_GE(wall_ms, 50.0) << "failpoint stall did not take effect";
  EXPECT_TRUE(verdict.kept);
  EXPECT_TRUE(verdict.slow);

  // The slow filter keeps the stalled query and drops nothing-burgers.
  std::string json =
      RenderTraceJson(TraceRecorder::Instance().Snapshot(), /*min_ms=*/25.0);
  EXPECT_NE(json.find("\"router.route\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine.search\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stage.execute\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"miss\""), std::string::npos) << json;
  // And the plain-text slow log recorded it.
  std::vector<std::string> log = TraceRecorder::Instance().SlowLog();
  ASSERT_FALSE(log.empty());
  EXPECT_NE(log.back().find("SLOW"), std::string::npos) << log.back();
}

}  // namespace
}  // namespace soda
