// Tests for the compiled closure layer (PR 4): closure-on output must be
// Fingerprint-identical to closure-off across workloads, engines and
// shard/thread sweeps; the APSP join-path closure must agree with the
// per-call BFS fallback on random subgraphs; the count-only index probes
// must agree with the materializing lookups; and the closure counters
// must surface through the engine metrics snapshots.

#include <gtest/gtest.h>

#include <algorithm>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/closure.h"
#include "core/engine.h"
#include "core/join_graph.h"
#include "core/sharded_engine.h"
#include "core/soda.h"
#include "datasets/enterprise.h"
#include "datasets/minibank.h"
#include "eval/workload.h"
#include "pattern/library.h"
#include "schema/warehouse_model.h"

namespace soda {
namespace {

// Serializes everything rank-relevant about an output, snippets included,
// so "byte-identical" is literal (cache/thread counters excluded — they
// are engine-lifetime bookkeeping, not answer content).
std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

std::vector<std::string> MiniBankQueries() {
  return {
      "customers Zürich financial instruments",
      "trading volume transaction date between date(2010-01-01) "
      "date(2011-12-31)",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
}

std::vector<std::string> EnterpriseQueries() {
  std::vector<std::string> queries;
  for (const BenchmarkQuery& bench : EnterpriseWorkload()) {
    queries.push_back(bench.keywords);
  }
  return queries;
}

class PipelineClosureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bank_ = BuildMiniBank().value().release();
    enterprise_ = BuildEnterpriseWarehouse().value().release();
    // One enterprise translator per closure mode, shared by every test
    // in this suite: building a full enterprise Soda is the dominant
    // cost under the sanitizer legs' ctest timeout (snippets off — the
    // snippet-inclusive fingerprint is held by the minibank tests).
    SodaConfig on_config = Config(true);
    SodaConfig off_config = Config(false);
    on_config.execute_snippets = false;
    off_config.execute_snippets = false;
    enterprise_on_ = Soda::Create(&enterprise_->db, &enterprise_->graph,
                                  CreditSuissePatternLibrary(), on_config)
                         .value()
                         .release();
    enterprise_off_ = Soda::Create(&enterprise_->db, &enterprise_->graph,
                                   CreditSuissePatternLibrary(), off_config)
                          .value()
                          .release();
  }
  static void TearDownTestSuite() {
    delete enterprise_off_;
    delete enterprise_on_;
    delete enterprise_;
    delete bank_;
  }

  static SodaConfig Config(bool closures) {
    SodaConfig config;
    config.enable_closures = closures;
    return config;
  }

  static MiniBank* bank_;
  static EnterpriseWarehouse* enterprise_;
  static Soda* enterprise_on_;
  static Soda* enterprise_off_;
};

MiniBank* PipelineClosureTest::bank_ = nullptr;
EnterpriseWarehouse* PipelineClosureTest::enterprise_ = nullptr;
Soda* PipelineClosureTest::enterprise_on_ = nullptr;
Soda* PipelineClosureTest::enterprise_off_ = nullptr;

// ---------------------------------------------------------------------------
// Fingerprint identity, serial driver
// ---------------------------------------------------------------------------

TEST_F(PipelineClosureTest, SerialMiniBankClosureOnMatchesOff) {
  auto on = Soda::Create(&bank_->db, &bank_->graph,
                         CreditSuissePatternLibrary(), Config(true));
  auto off = Soda::Create(&bank_->db, &bank_->graph,
                          CreditSuissePatternLibrary(), Config(false));
  ASSERT_TRUE(on.ok()) << on.status();
  ASSERT_TRUE(off.ok()) << off.status();
  for (const std::string& query : MiniBankQueries()) {
    auto with = (*on)->Search(query);
    auto without = (*off)->Search(query);
    ASSERT_TRUE(with.ok()) << with.status();
    ASSERT_TRUE(without.ok()) << without.status();
    EXPECT_EQ(Fingerprint(*with), Fingerprint(*without)) << query;
  }
}

TEST_F(PipelineClosureTest, SerialEnterpriseClosureOnMatchesOff) {
  for (const std::string& query : EnterpriseQueries()) {
    auto with = enterprise_on_->Search(query);
    auto without = enterprise_off_->Search(query);
    ASSERT_TRUE(with.ok()) << with.status();
    ASSERT_TRUE(without.ok()) << without.status();
    EXPECT_EQ(Fingerprint(*with), Fingerprint(*without)) << query;
  }
}

// ---------------------------------------------------------------------------
// Fingerprint identity, sharded engines across shards x threads
// ---------------------------------------------------------------------------

TEST_F(PipelineClosureTest, ShardedMiniBankSweepClosureOnMatchesSerialOff) {
  auto baseline = Soda::Create(&bank_->db, &bank_->graph,
                               CreditSuissePatternLibrary(), Config(false));
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  std::vector<std::string> queries = MiniBankQueries();
  std::vector<std::string> expected;
  for (const std::string& query : queries) {
    auto output = (*baseline)->Search(query);
    ASSERT_TRUE(output.ok()) << output.status();
    expected.push_back(Fingerprint(*output));
  }
  for (size_t shards : {1u, 4u}) {
    for (size_t threads : {1u, 4u}) {
      SodaConfig config = Config(true);
      config.num_shards = shards;
      config.num_threads = threads;
      auto router = ShardedSodaEngine::Create(&bank_->db, &bank_->graph,
                                              CreditSuissePatternLibrary(),
                                              config);
      ASSERT_TRUE(router.ok()) << router.status();
      auto outputs = (*router)->SearchAll(queries);
      for (size_t q = 0; q < queries.size(); ++q) {
        ASSERT_TRUE(outputs[q].ok()) << outputs[q].status();
        EXPECT_EQ(Fingerprint(*outputs[q]), expected[q])
            << "shards=" << shards << " threads=" << threads << " query="
            << queries[q];
      }
    }
  }
}

// The enterprise-workload router comparison lives in
// closure_enterprise_test.cc: it builds several more enterprise engines,
// which does not fit the sanitizer legs' per-binary ctest timeout, and
// the concurrency surface it would cover is already held under TSan by
// the minibank sweep above.

TEST_F(PipelineClosureTest, ShardsShareOneEntryPointClosure) {
  SodaConfig config = Config(true);
  config.num_shards = 2;
  config.num_threads = 1;
  auto router = ShardedSodaEngine::Create(&bank_->db, &bank_->graph,
                                          CreditSuissePatternLibrary(),
                                          config);
  ASSERT_TRUE(router.ok()) << router.status();
  const auto& closure0 = (*router)->shard(0).soda().entry_point_closure();
  const auto& closure1 = (*router)->shard(1).soda().entry_point_closure();
  ASSERT_NE(closure0, nullptr);
  EXPECT_EQ(closure0.get(), closure1.get());
}

// ---------------------------------------------------------------------------
// APSP closure vs BFS fallback on random subgraphs
// ---------------------------------------------------------------------------

TEST_F(PipelineClosureTest, ApspMatchesBfsOnRandomSubgraphs) {
  Rng rng(0x50DA'C105'0001ull);
  for (int round = 0; round < 12; ++round) {
    // A random physical schema: `num_tables` tables, each with an id
    // column and a few fk columns, wired by random (sometimes ignored)
    // foreign keys. Sparse enough to leave disconnected islands.
    size_t num_tables = 4 + rng.Below(20);
    size_t num_edges = rng.Below(2 * num_tables);
    WarehouseModel model;
    std::vector<std::string> names;
    for (size_t t = 0; t < num_tables; ++t) {
      std::string name = "t" + std::to_string(t);
      names.push_back(name);
      TableSpec spec;
      spec.name = name;
      spec.columns.push_back(ColumnSpec{"id", ValueType::kInt64, ""});
      for (size_t k = 0; k < 4; ++k) {
        spec.columns.push_back(
            ColumnSpec{"fk" + std::to_string(k), ValueType::kInt64, ""});
      }
      model.AddTable(std::move(spec));
    }
    std::vector<std::string> used;  // dedupe: join URIs must be unique
    for (size_t e = 0; e < num_edges; ++e) {
      ForeignKeySpec fk;
      fk.from_table = rng.Pick(names);
      fk.from_column = "fk" + std::to_string(rng.Below(4));
      fk.to_table = rng.Pick(names);
      fk.to_column = "id";
      fk.via_join_node = rng.Chance(0.5);
      fk.ignored = rng.Chance(0.15);
      std::string key = fk.from_table + "." + fk.from_column + "->" +
                        fk.to_table + "." + fk.to_column;
      if (std::find(used.begin(), used.end(), key) != used.end()) continue;
      used.push_back(key);
      model.AddForeignKey(std::move(fk));
    }
    MetadataGraph graph;
    ASSERT_TRUE(model.Compile(&graph, nullptr).ok());
    PatternLibrary library = CreditSuissePatternLibrary();
    PatternMatcher matcher(&graph, &library);
    JoinGraph with_closure;
    JoinGraph without_closure;
    ASSERT_TRUE(with_closure.Build(matcher, /*precompute_paths=*/true).ok());
    ASSERT_TRUE(
        without_closure.Build(matcher, /*precompute_paths=*/false).ok());
    ASSERT_TRUE(with_closure.has_path_closure());
    ASSERT_FALSE(without_closure.has_path_closure());

    for (int probe = 0; probe < 40; ++probe) {
      std::vector<std::string> from_set;
      std::vector<std::string> to_set;
      for (size_t i = 0, n = 1 + rng.Below(3); i < n; ++i) {
        from_set.push_back(rng.Pick(names));
      }
      for (size_t i = 0, n = 1 + rng.Below(3); i < n; ++i) {
        to_set.push_back(rng.Chance(0.1) ? "unknown_table"
                                         : rng.Pick(names));
      }
      std::vector<JoinEdge> apsp_edges, bfs_edges;
      std::vector<std::string> apsp_tables, bfs_tables;
      bool apsp = with_closure.DirectPath(from_set, to_set, &apsp_edges,
                                          &apsp_tables);
      bool bfs = without_closure.DirectPath(from_set, to_set, &bfs_edges,
                                            &bfs_tables);
      ASSERT_EQ(apsp, bfs);
      ASSERT_EQ(apsp_edges, bfs_edges);
      ASSERT_EQ(apsp_tables, bfs_tables);
    }
  }
}

// ---------------------------------------------------------------------------
// Count-only probes agree with the materializing lookups
// ---------------------------------------------------------------------------

TEST_F(PipelineClosureTest, CountProbesMatchMaterializedLookups) {
  const Soda& soda = *enterprise_on_;
  std::vector<std::string> phrases = {
      "customers",       "family name", "trading volume", "currency",
      "transactions",    "investments", "Sara",           "organizations",
      "no such phrase",  "",            "private customers",
  };
  for (const std::string& phrase : phrases) {
    EXPECT_EQ(soda.classification().CountMatches(phrase),
              soda.classification().Lookup(phrase).size())
        << phrase;
    EXPECT_EQ(soda.classification().Matches(phrase),
              !soda.classification().Lookup(phrase).empty())
        << phrase;
    EXPECT_EQ(soda.inverted_index().CountPhrase(phrase),
              soda.inverted_index().LookupPhrase(phrase).size())
        << phrase;
    EXPECT_EQ(soda.inverted_index().ContainsPhrase(phrase),
              !soda.inverted_index().LookupPhrase(phrase).empty())
        << phrase;
  }
}

// ---------------------------------------------------------------------------
// Closure counters surface through both engines' metrics snapshots
// ---------------------------------------------------------------------------

TEST_F(PipelineClosureTest, ClosureCountersSurfaceOnEngine) {
  SodaConfig config = Config(true);
  config.num_threads = 2;
  config.cache_capacity = 0;  // repeats must re-run the pipeline
  auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                   CreditSuissePatternLibrary(), config);
  ASSERT_TRUE(engine.ok()) << engine.status();
  const std::string query = "customers Zürich financial instruments";
  ASSERT_TRUE((*engine)->Search(query).ok());
  ASSERT_TRUE((*engine)->Search(query).ok());
  MetricsSnapshot snapshot = (*engine)->metrics_snapshot();
  EXPECT_GT(snapshot.counter("closure.traverse_misses"), 0u);
  EXPECT_GT(snapshot.counter("closure.traverse_hits"), 0u);
  EXPECT_GT(snapshot.counter("closure.path_lookups"), 0u);
}

TEST_F(PipelineClosureTest, ClosureCountersSurfaceOnShardedEngine) {
  SodaConfig config = Config(true);
  config.num_shards = 2;
  config.num_threads = 1;
  config.cache_capacity = 0;
  auto router = ShardedSodaEngine::Create(&bank_->db, &bank_->graph,
                                          CreditSuissePatternLibrary(),
                                          config);
  ASSERT_TRUE(router.ok()) << router.status();
  std::vector<std::string> queries = MiniBankQueries();
  for (const auto& output : (*router)->SearchAll(queries)) {
    ASSERT_TRUE(output.ok()) << output.status();
  }
  MetricsSnapshot snapshot = (*router)->metrics_snapshot();
  EXPECT_GT(snapshot.counter("closure.traverse_misses"), 0u);
  EXPECT_GT(snapshot.counter("closure.path_lookups"), 0u);
}

TEST_F(PipelineClosureTest, ClosuresOffBooksNoClosureCounters) {
  SodaConfig config = Config(false);
  config.cache_capacity = 0;
  auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                   CreditSuissePatternLibrary(), config);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_EQ((*engine)->soda().entry_point_closure(), nullptr);
  ASSERT_TRUE((*engine)->Search("customers Zürich").ok());
  MetricsSnapshot snapshot = (*engine)->metrics_snapshot();
  EXPECT_EQ(snapshot.counter("closure.traverse_hits"), 0u);
  EXPECT_EQ(snapshot.counter("closure.traverse_misses"), 0u);
  EXPECT_EQ(snapshot.counter("closure.path_lookups"), 0u);
}

}  // namespace
}  // namespace soda
