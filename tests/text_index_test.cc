// Unit tests for the tokenizer and the base-data inverted index.

#include <gtest/gtest.h>

#include "storage/table.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace soda {
namespace {

TEST(TokenizerTest, SplitsAndFolds) {
  auto tokens = Tokenize("Zürich Insurance, AG!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "zurich");
  EXPECT_EQ(tokens[1], "insurance");
  EXPECT_EQ(tokens[2], "ag");
}

TEST(TokenizerTest, KeepsDigits) {
  auto tokens = Tokenize("Basel III 2011-09");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2], "2011");
  EXPECT_EQ(tokens[3], "09");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("--- !!! ---").empty());
}

TEST(TokenizerTest, NormalizeToken) {
  EXPECT_EQ(NormalizeToken("Zürich"), "zurich");
  EXPECT_EQ(NormalizeToken("  x  "), "x");
  EXPECT_EQ(NormalizeToken("!!!"), "");
}

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* orgs = *db_.CreateTable(
        "organizations",
        {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
    ASSERT_TRUE(orgs->Append({Value::Int(1),
                              Value::Str("Credit Suisse")}).ok());
    ASSERT_TRUE(orgs->Append({Value::Int(2),
                              Value::Str("Credit Suisse")}).ok());
    ASSERT_TRUE(
        orgs->Append({Value::Int(3), Value::Str("Swiss Re")}).ok());
    Table* addresses = *db_.CreateTable(
        "addresses",
        {{"id", ValueType::kInt64}, {"city", ValueType::kString}});
    ASSERT_TRUE(
        addresses->Append({Value::Int(1), Value::Str("Zürich")}).ok());
    ASSERT_TRUE(
        addresses->Append({Value::Int(2), Value::Str("Geneva")}).ok());
    ASSERT_TRUE(addresses->Append({Value::Int(3), Value::Null()}).ok());
    index_.Build(db_);
  }

  Database db_;
  InvertedIndex index_;
};

TEST_F(InvertedIndexTest, SingleTokenLookup) {
  auto postings = index_.LookupPhrase("suisse");
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].table, "organizations");
  EXPECT_EQ(postings[0].column, "name");
  EXPECT_EQ(postings[0].value, "Credit Suisse");
  EXPECT_EQ(postings[0].row_count, 2);  // two rows share the value
}

TEST_F(InvertedIndexTest, PhraseMustBeConsecutive) {
  EXPECT_EQ(index_.LookupPhrase("credit suisse").size(), 1u);
  EXPECT_TRUE(index_.LookupPhrase("suisse credit").empty());
}

TEST_F(InvertedIndexTest, DiacriticFoldedLookup) {
  auto postings = index_.LookupPhrase("zurich");
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].value, "Zürich");  // original spelling preserved
}

TEST_F(InvertedIndexTest, MissLookup) {
  EXPECT_TRUE(index_.LookupPhrase("basel").empty());
  EXPECT_TRUE(index_.LookupPhrase("").empty());
  EXPECT_FALSE(index_.ContainsToken("basel"));
  EXPECT_TRUE(index_.ContainsToken("geneva"));
}

TEST_F(InvertedIndexTest, NullsAndNonTextColumnsSkipped) {
  // Only 5 non-null string values were indexed (ids are int columns).
  EXPECT_EQ(index_.num_records(), 5u);
  EXPECT_TRUE(index_.LookupPhrase("1").empty());
}

TEST_F(InvertedIndexTest, IncrementalIndexTable) {
  Table* extra = *db_.CreateTable(
      "products", {{"name", ValueType::kString}});
  ASSERT_TRUE(extra->Append({Value::Str("Gold Certificate")}).ok());
  index_.IndexTable(*extra);
  EXPECT_EQ(index_.LookupPhrase("gold certificate").size(), 1u);
}

// Property sweep: every token of every indexed value must be findable,
// and the posting must report the original value.
class IndexCompletenessTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(IndexCompletenessTest, EveryTokenFindsItsValue) {
  Database db;
  Table* t = *db.CreateTable("t", {{"v", ValueType::kString}});
  ASSERT_TRUE(t->Append({Value::Str(GetParam())}).ok());
  InvertedIndex index;
  index.Build(db);
  for (const auto& token : Tokenize(GetParam())) {
    auto postings = index.LookupPhrase(token);
    ASSERT_FALSE(postings.empty()) << token;
    EXPECT_EQ(postings[0].value, GetParam());
  }
  // The full phrase also matches.
  EXPECT_FALSE(index.LookupPhrase(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Values, IndexCompletenessTest,
    ::testing::Values("Credit Suisse First Boston", "Sara Guttinger",
                      "Zürich", "Gold Hedging Agreement", "YEN",
                      "Lehman XYZ", "Müller-Straße 42",
                      "Global Tech Fund 2011"));

}  // namespace
}  // namespace soda
