// Unit tests for the join graph: harvesting join conditions and bridges
// through the patterns, direct-path search, and ignore annotations.

#include <gtest/gtest.h>

#include <memory>

#include "core/join_graph.h"
#include "graph/vocab.h"
#include "datasets/minibank.h"
#include "pattern/library.h"
#include "pattern/matcher.h"

namespace soda {
namespace {

class JoinGraphTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bank_ = BuildMiniBank().value().release();
    library_ = new PatternLibrary(CreditSuissePatternLibrary());
    matcher_ = new PatternMatcher(&bank_->graph, library_);
    join_graph_ = new JoinGraph();
    ASSERT_TRUE(join_graph_->Build(*matcher_).ok());
  }
  static void TearDownTestSuite() {
    delete join_graph_;
    delete matcher_;
    delete library_;
    delete bank_;
  }

  static MiniBank* bank_;
  static PatternLibrary* library_;
  static PatternMatcher* matcher_;
  static JoinGraph* join_graph_;
};

MiniBank* JoinGraphTest::bank_ = nullptr;
PatternLibrary* JoinGraphTest::library_ = nullptr;
PatternMatcher* JoinGraphTest::matcher_ = nullptr;
JoinGraph* JoinGraphTest::join_graph_ = nullptr;

TEST_F(JoinGraphTest, HarvestsAllDeclaredForeignKeys) {
  // The mini-bank declares 10 foreign keys, all via join nodes.
  EXPECT_EQ(join_graph_->num_edges(), 10u);
}

TEST_F(JoinGraphTest, AdjacencyCoversBothSides) {
  EXPECT_FALSE(join_graph_->EdgesOf("parties").empty());
  EXPECT_FALSE(join_graph_->EdgesOf("individuals").empty());
  EXPECT_TRUE(join_graph_->EdgesOf("no_such_table").empty());
}

TEST_F(JoinGraphTest, DetectsBridgeTables) {
  // fi_contains_sec bridges fin_instruments and securities.
  bool found = false;
  for (const BridgeInfo& bridge : join_graph_->bridges()) {
    if (bridge.bridge_table == "fi_contains_sec") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(JoinGraphTest, TransactionsIsNotABridgeOntoItself) {
  // transactions has two FKs to the same table (parties); the bridge
  // pattern requires two distinct targets (p1 distinct p2).
  for (const BridgeInfo& bridge : join_graph_->bridges()) {
    EXPECT_NE(bridge.bridge_table, "transactions");
  }
}

TEST_F(JoinGraphTest, DirectPathSingleHop) {
  std::vector<JoinEdge> path;
  std::vector<std::string> tables;
  ASSERT_TRUE(join_graph_->DirectPath({"individuals"}, {"parties"}, &path,
                                      &tables));
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0].ToString(), "individuals.id = parties.id");
}

TEST_F(JoinGraphTest, DirectPathMultiHop) {
  std::vector<JoinEdge> path;
  std::vector<std::string> tables;
  ASSERT_TRUE(join_graph_->DirectPath({"addresses"}, {"fin_instruments"},
                                      &path, &tables));
  // addresses - individuals - parties - transactions - fi_transactions -
  // fin_instruments.
  EXPECT_EQ(path.size(), 5u);
}

TEST_F(JoinGraphTest, MultiSourcePathPicksShortest) {
  std::vector<JoinEdge> path;
  std::vector<std::string> tables;
  ASSERT_TRUE(join_graph_->DirectPath({"addresses", "parties"},
                                      {"transactions"}, &path, &tables));
  ASSERT_EQ(path.size(), 1u);  // parties -> transactions directly
}

TEST_F(JoinGraphTest, OverlappingSetsNeedNoPath) {
  std::vector<JoinEdge> path;
  std::vector<std::string> tables;
  ASSERT_TRUE(join_graph_->DirectPath({"parties", "individuals"},
                                      {"individuals"}, &path, &tables));
  EXPECT_TRUE(path.empty());
}

TEST_F(JoinGraphTest, DisconnectedTablesReportFalse) {
  MetadataGraph isolated_graph;
  PatternLibrary lib = CreditSuissePatternLibrary();
  PatternMatcher matcher(&isolated_graph, &lib);
  JoinGraph empty;
  ASSERT_TRUE(empty.Build(matcher).ok());
  std::vector<JoinEdge> path;
  EXPECT_FALSE(empty.DirectPath({"a"}, {"b"}, &path, nullptr));
}

TEST_F(JoinGraphTest, IgnoredEdgesAreNotUsedForPaths) {
  // Annotate the addresses join as ignored in a scratch copy of the
  // mini-bank and verify the path router avoids it.
  auto bank = BuildMiniBank().value();
  NodeId join = bank->graph.FindNode(
      JoinUri("addresses", "party_id", "individuals", "id"));
  ASSERT_NE(join, kInvalidNode);
  bank->graph.AddTextEdge(join, vocab::kAnnotation,
                          vocab::kIgnoreRelationship);
  PatternLibrary lib = CreditSuissePatternLibrary();
  PatternMatcher matcher(&bank->graph, &lib);
  JoinGraph jg;
  ASSERT_TRUE(jg.Build(matcher).ok());
  std::vector<JoinEdge> path;
  EXPECT_FALSE(jg.DirectPath({"addresses"}, {"individuals"}, &path,
                             nullptr));
}

}  // namespace
}  // namespace soda
