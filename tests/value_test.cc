// Unit tests for the relational Value type.

#include <gtest/gtest.h>

#include "sql/value.h"

namespace soda {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToSqlLiteral(), "NULL");
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(1).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Real(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_EQ(Value::DateV(Date()).type(), ValueType::kDate);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Null(), Value::Str(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3), Value::Real(3.0));
  EXPECT_LT(Value::Int(3), Value::Real(3.5));
  EXPECT_LT(Value::Real(2.9), Value::Int(3));
  EXPECT_EQ(Value::Bool(true), Value::Int(1));
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^53 + 1 is not representable as double; exact int path must hold.
  int64_t big = (1LL << 53) + 1;
  EXPECT_LT(Value::Int(big), Value::Int(big + 1));
  EXPECT_NE(Value::Int(big), Value::Int(big + 1));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("Sara"), Value::Str("Sarah"));
  EXPECT_EQ(Value::Str("x"), Value::Str("x"));
}

TEST(ValueTest, DateComparison) {
  Value early = Value::DateV(Date::FromYmd(2010, 1, 1));
  Value late = Value::DateV(Date::FromYmd(2011, 9, 1));
  EXPECT_LT(early, late);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Real(3.0).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  // Distinct values should (overwhelmingly) hash differently.
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
}

TEST(ValueTest, SqlLiteralRendering) {
  EXPECT_EQ(Value::Int(42).ToSqlLiteral(), "42");
  EXPECT_EQ(Value::Bool(false).ToSqlLiteral(), "FALSE");
  EXPECT_EQ(Value::Str("O'Brien").ToSqlLiteral(), "'O''Brien'");
  EXPECT_EQ(Value::DateV(Date::FromYmd(2011, 9, 1)).ToSqlLiteral(),
            "DATE '2011-09-01'");
}

TEST(ValueTest, DisplayStringOmitsQuotes) {
  EXPECT_EQ(Value::Str("Zürich").ToDisplayString(), "Zürich");
  EXPECT_EQ(Value::DateV(Date::FromYmd(2011, 9, 1)).ToDisplayString(),
            "2011-09-01");
}

TEST(ValueTest, NumericValuePromotion) {
  EXPECT_DOUBLE_EQ(Value::Int(7).NumericValue(), 7.0);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).NumericValue(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Bool(true).NumericValue(), 1.0);
}

// Property sweep: comparison is a total order (antisymmetry and
// transitivity spot-checked over a representative value set).
class ValueOrderTest : public ::testing::Test {
 protected:
  std::vector<Value> values_ = {
      Value::Null(),        Value::Bool(false),  Value::Bool(true),
      Value::Int(-5),       Value::Int(0),       Value::Int(3),
      Value::Real(-5.5),    Value::Real(3.0),    Value::Real(3.5),
      Value::Str(""),       Value::Str("Sara"),  Value::Str("Zürich"),
      Value::DateV(Date::FromYmd(1981, 4, 23)),
      Value::DateV(Date::FromYmd(2011, 9, 1)),
  };
};

TEST_F(ValueOrderTest, Antisymmetry) {
  for (const auto& a : values_) {
    for (const auto& b : values_) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a))
          << a.ToSqlLiteral() << " vs " << b.ToSqlLiteral();
    }
  }
}

TEST_F(ValueOrderTest, Transitivity) {
  for (const auto& a : values_) {
    for (const auto& b : values_) {
      for (const auto& c : values_) {
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << a.ToSqlLiteral() << " " << b.ToSqlLiteral() << " "
              << c.ToSqlLiteral();
        }
      }
    }
  }
}

TEST_F(ValueOrderTest, EqualValuesHashEqual) {
  for (const auto& a : values_) {
    for (const auto& b : values_) {
      if (a.Compare(b) == 0) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToSqlLiteral() << " vs " << b.ToSqlLiteral();
      }
    }
  }
}

}  // namespace
}  // namespace soda
