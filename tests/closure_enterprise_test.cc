// Enterprise-workload closure identity through the sharded router —
// the heavyweight companion of pipeline_closure_test.cc. Kept in its
// own binary (name deliberately outside the sanitizer ctest filter):
// it builds several full enterprise engines, which does not fit the
// sanitizer legs' per-binary timeout; the closure concurrency surface
// runs under TSan/ASan via pipeline_closure_test's minibank sweep.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/sharded_engine.h"
#include "core/soda.h"
#include "datasets/enterprise.h"
#include "eval/workload.h"
#include "pattern/library.h"

namespace soda {
namespace {

std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

TEST(ClosureEnterpriseTest, ShardedClosureOnMatchesSerialOff) {
  auto warehouse = BuildEnterpriseWarehouse().value();
  SodaConfig off_config;
  off_config.enable_closures = false;
  off_config.execute_snippets = false;
  auto baseline = Soda::Create(&warehouse->db, &warehouse->graph,
                               CreditSuissePatternLibrary(), off_config);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  std::vector<std::string> queries;
  for (const BenchmarkQuery& bench : EnterpriseWorkload()) {
    queries.push_back(bench.keywords);
  }
  for (size_t shards : {1u, 4u}) {
    for (size_t threads : {1u, 4u}) {
      SodaConfig config;
      config.enable_closures = true;
      config.execute_snippets = false;
      config.num_shards = shards;
      config.num_threads = threads;
      auto router = ShardedSodaEngine::Create(&warehouse->db,
                                              &warehouse->graph,
                                              CreditSuissePatternLibrary(),
                                              config);
      ASSERT_TRUE(router.ok()) << router.status();
      auto outputs = (*router)->SearchAll(queries);
      for (size_t q = 0; q < queries.size(); ++q) {
        auto expected = (*baseline)->Search(queries[q]);
        ASSERT_TRUE(expected.ok()) << expected.status();
        ASSERT_TRUE(outputs[q].ok()) << outputs[q].status();
        EXPECT_EQ(Fingerprint(*outputs[q]), Fingerprint(*expected))
            << "shards=" << shards << " threads=" << threads << " query="
            << queries[q];
      }
    }
  }
}

}  // namespace
}  // namespace soda
