// Unit tests for the pattern language: parser, library expansion, and the
// backtracking matcher — including the paper's verbatim pattern texts.

#include <gtest/gtest.h>

#include "graph/metadata_graph.h"
#include "graph/vocab.h"
#include "pattern/library.h"
#include "pattern/matcher.h"
#include "pattern/pattern.h"

#include <set>

namespace soda {
namespace {

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

TEST(PatternParserTest, PaperTablePattern) {
  auto pattern = ParsePattern("table",
                              "( x tablename t:y ) &\n"
                              "( x type physical_table )");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  ASSERT_EQ(pattern->triples.size(), 2u);
  EXPECT_EQ(pattern->triples[0].subject.kind, PatternTerm::Kind::kVariable);
  EXPECT_EQ(pattern->triples[0].subject.name, "x");
  EXPECT_EQ(pattern->triples[0].predicate, "tablename");
  EXPECT_EQ(pattern->triples[0].object.kind,
            PatternTerm::Kind::kTextVariable);
  EXPECT_EQ(pattern->triples[1].object.kind, PatternTerm::Kind::kUri);
  EXPECT_EQ(pattern->triples[1].object.name, "physical_table");
}

TEST(PatternParserTest, ReferenceTriple) {
  auto pattern = ParsePattern("foreign_key",
                              "( x foreign_key y ) &\n"
                              "( x matches-column ) &\n"
                              "( y matches-column )");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  ASSERT_EQ(pattern->triples.size(), 3u);
  EXPECT_TRUE(pattern->triples[1].is_reference);
  EXPECT_EQ(pattern->triples[1].reference_name, "column");
}

TEST(PatternParserTest, DistinctConstraint) {
  auto pattern = ParsePattern("p",
                              "( y inheritance_child c1 ) &\n"
                              "( y inheritance_child c2 ) &\n"
                              "( c1 distinct c2 )");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  EXPECT_EQ(pattern->triples.size(), 2u);
  ASSERT_EQ(pattern->distinct_constraints.size(), 1u);
  EXPECT_EQ(pattern->distinct_constraints[0].first, "c1");
  EXPECT_EQ(pattern->distinct_constraints[0].second, "c2");
}

TEST(PatternParserTest, TextLiteral) {
  auto pattern = ParsePattern("p", "( x label t:\"wealthy customers\" )");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  EXPECT_EQ(pattern->triples[0].object.kind,
            PatternTerm::Kind::kTextLiteral);
  EXPECT_EQ(pattern->triples[0].object.name, "wealthy customers");
}

TEST(PatternParserTest, ExplicitVariableMarker) {
  auto pattern = ParsePattern("p", "( ?mynode type physical_table )");
  ASSERT_TRUE(pattern.ok()) << pattern.status();
  EXPECT_EQ(pattern->triples[0].subject.kind, PatternTerm::Kind::kVariable);
  EXPECT_EQ(pattern->triples[0].subject.name, "mynode");
}

TEST(PatternParserTest, VariableTokenHeuristic) {
  EXPECT_TRUE(IsVariableToken("x"));
  EXPECT_TRUE(IsVariableToken("c1"));
  EXPECT_TRUE(IsVariableToken("p42"));
  EXPECT_TRUE(IsVariableToken("?anything"));
  EXPECT_FALSE(IsVariableToken("physical_table"));
  EXPECT_FALSE(IsVariableToken("tablename"));
  EXPECT_FALSE(IsVariableToken(""));
}

TEST(PatternParserTest, Errors) {
  EXPECT_FALSE(ParsePattern("p", "").ok());
  EXPECT_FALSE(ParsePattern("p", "( x tablename t:y").ok());  // unterminated
  EXPECT_FALSE(ParsePattern("p", "( x y )").ok());  // 2 terms, no matches-
  EXPECT_FALSE(ParsePattern("p", "( x a b c d )").ok());
  EXPECT_FALSE(ParsePattern("p", "( t:x type y )").ok());  // text subject
  EXPECT_FALSE(
      ParsePattern("p", "( x type a ) ( x type b )").ok());  // missing &
}

TEST(PatternParserTest, ToStringRoundTrips) {
  const char* text =
      "( x columnname t:y ) &\n"
      "( x type physical_column ) &\n"
      "( z column x )";
  auto pattern = ParsePattern("column", text);
  ASSERT_TRUE(pattern.ok());
  auto reparsed = ParsePattern("column", pattern->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->triples, pattern->triples);
}

// ---------------------------------------------------------------------------
// library expansion
// ---------------------------------------------------------------------------

TEST(PatternLibraryTest, DefaultSetRegistered) {
  PatternLibrary lib = CreditSuissePatternLibrary();
  for (const char* name :
       {patterns::kTable, patterns::kColumn, patterns::kForeignKey,
        patterns::kJoinRelationship, patterns::kInheritanceChild,
        patterns::kBridgeTable, patterns::kBridgeTableJoin,
        patterns::kMetadataFilter}) {
    EXPECT_NE(lib.Find(name), nullptr) << name;
  }
}

TEST(PatternLibraryTest, DuplicateRejected) {
  PatternLibrary lib;
  ASSERT_TRUE(lib.RegisterText("p", "( x type y )").ok());
  EXPECT_EQ(lib.RegisterText("p", "( x type z )").code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(lib.Replace(*ParsePattern("p", "( x type z )")).ok());
}

TEST(PatternLibraryTest, ExpansionInlinesReferences) {
  PatternLibrary lib = CreditSuissePatternLibrary();
  auto expanded = lib.Expand(patterns::kForeignKey);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  // foreign_key has 1 own triple + 2 x 3 column triples.
  EXPECT_EQ(expanded->triples.size(), 7u);
  // No references remain.
  for (const auto& triple : expanded->triples) {
    EXPECT_FALSE(triple.is_reference);
  }
}

TEST(PatternLibraryTest, ExpansionRenamesFreshVariables) {
  PatternLibrary lib = CreditSuissePatternLibrary();
  auto expanded = lib.Expand(patterns::kForeignKey);
  ASSERT_TRUE(expanded.ok());
  // The two inlined column patterns must not share their z variable.
  std::set<std::string> z_variables;
  for (const auto& triple : expanded->triples) {
    if (triple.predicate == vocab::kColumn) {
      z_variables.insert(triple.subject.name);
    }
  }
  EXPECT_EQ(z_variables.size(), 2u);
}

TEST(PatternLibraryTest, UnknownReferenceFails) {
  PatternLibrary lib;
  ASSERT_TRUE(lib.RegisterText("p", "( x matches-ghost )").ok());
  EXPECT_EQ(lib.Expand("p").status().code(), StatusCode::kNotFound);
}

TEST(PatternLibraryTest, ReferenceCycleFails) {
  PatternLibrary lib;
  ASSERT_TRUE(lib.RegisterText("a", "( x matches-b )").ok());
  ASSERT_TRUE(lib.RegisterText("b", "( x matches-a )").ok());
  EXPECT_FALSE(lib.Expand("a").ok());
}

// ---------------------------------------------------------------------------
// matcher
// ---------------------------------------------------------------------------

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lib_ = CreditSuissePatternLibrary();
    type_table_ = graph_.GetOrAddNode(vocab::kPhysicalTable,
                                      MetadataLayer::kOther);
    type_column_ = graph_.GetOrAddNode(vocab::kPhysicalColumn,
                                       MetadataLayer::kOther);
    type_inh_ = graph_.GetOrAddNode(vocab::kInheritanceNode,
                                    MetadataLayer::kOther);

    parties_ = AddTable("parties");
    individuals_ = AddTable("individuals");
    organizations_ = AddTable("organizations");
    parties_id_ = AddColumn(parties_, "parties", "id");
    individuals_id_ = AddColumn(individuals_, "individuals", "id");
    graph_.AddEdge(individuals_id_, vocab::kForeignKey, parties_id_);

    inh_ = *graph_.AddNode("inh/parties", MetadataLayer::kPhysicalSchema);
    graph_.AddEdge(inh_, vocab::kType, type_inh_);
    graph_.AddEdge(inh_, vocab::kInheritanceParent, parties_);
    graph_.AddEdge(inh_, vocab::kInheritanceChild, individuals_);
    graph_.AddEdge(inh_, vocab::kInheritanceChild, organizations_);

    matcher_ = std::make_unique<PatternMatcher>(&graph_, &lib_);
  }

  NodeId AddTable(const std::string& name) {
    NodeId node = *graph_.AddNode("table/" + name,
                                  MetadataLayer::kPhysicalSchema);
    graph_.AddEdge(node, vocab::kType, type_table_);
    graph_.AddTextEdge(node, vocab::kTablename, name);
    return node;
  }

  NodeId AddColumn(NodeId table, const std::string& table_name,
                   const std::string& name) {
    NodeId node = *graph_.AddNode("column/" + table_name + "." + name,
                                  MetadataLayer::kPhysicalSchema);
    graph_.AddEdge(node, vocab::kType, type_column_);
    graph_.AddTextEdge(node, vocab::kColumnname, name);
    graph_.AddEdge(table, vocab::kColumn, node);
    return node;
  }

  MetadataGraph graph_;
  PatternLibrary lib_;
  std::unique_ptr<PatternMatcher> matcher_;
  NodeId type_table_, type_column_, type_inh_;
  NodeId parties_, individuals_, organizations_;
  NodeId parties_id_, individuals_id_, inh_;
};

TEST_F(MatcherTest, TablePatternMatchesTables) {
  EXPECT_TRUE(matcher_->Matches(patterns::kTable, parties_));
  EXPECT_FALSE(matcher_->Matches(patterns::kTable, parties_id_));
  EXPECT_FALSE(matcher_->Matches(patterns::kTable, inh_));
}

TEST_F(MatcherTest, TablePatternBindsName) {
  auto matches = matcher_->MatchAt(patterns::kTable, parties_);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ(matches->front().text("y"), "parties");
}

TEST_F(MatcherTest, ColumnPatternRequiresOwningTable) {
  EXPECT_TRUE(matcher_->Matches(patterns::kColumn, parties_id_));
  // A column node without an incoming `column` edge must not match.
  NodeId orphan = *graph_.AddNode("column/orphan.c",
                                  MetadataLayer::kPhysicalSchema);
  graph_.AddEdge(orphan, vocab::kType, type_column_);
  graph_.AddTextEdge(orphan, vocab::kColumnname, "c");
  EXPECT_FALSE(matcher_->Matches(patterns::kColumn, orphan));
}

TEST_F(MatcherTest, ForeignKeyPatternBindsBothColumns) {
  auto matches = matcher_->MatchAt(patterns::kForeignKey, individuals_id_);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  EXPECT_EQ(matches->front().node("y"), parties_id_);
}

TEST_F(MatcherTest, InheritanceChildMatchesViaIncomingEdge) {
  // The pattern's first triple has an unbound subject (the inheritance
  // node), exercising the in-edge enumeration path of the matcher.
  auto matches = matcher_->MatchAt(patterns::kInheritanceChild,
                                   individuals_);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ(matches->front().node("p"), parties_);
  // c1 and c2 must bind to distinct children.
  for (const auto& match : *matches) {
    EXPECT_NE(match.node("c1"), match.node("c2"));
  }
}

TEST_F(MatcherTest, InheritanceChildRequiresTwoChildren) {
  // An inheritance node with a single child cannot satisfy c1 != c2.
  NodeId lonely_parent = AddTable("orders");
  NodeId lonely_child = AddTable("trade_orders");
  NodeId inh = *graph_.AddNode("inh/orders",
                               MetadataLayer::kPhysicalSchema);
  graph_.AddEdge(inh, vocab::kType, type_inh_);
  graph_.AddEdge(inh, vocab::kInheritanceParent, lonely_parent);
  graph_.AddEdge(inh, vocab::kInheritanceChild, lonely_child);
  EXPECT_FALSE(matcher_->Matches(patterns::kInheritanceChild, lonely_child));
}

TEST_F(MatcherTest, ParentIsNotAChild) {
  EXPECT_FALSE(matcher_->Matches(patterns::kInheritanceChild, parties_));
}

TEST_F(MatcherTest, MatchAllEnumeratesEverything) {
  auto matches = matcher_->MatchAll(patterns::kTable);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 3u);  // parties, individuals, organizations
}

TEST_F(MatcherTest, MaxMatchesCapRespected) {
  auto matches = matcher_->MatchAll(patterns::kTable, /*max_matches=*/2);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);
}

TEST_F(MatcherTest, UnknownPatternFails) {
  auto matches = matcher_->MatchAt("no_such_pattern", parties_);
  EXPECT_FALSE(matches.ok());
  EXPECT_FALSE(matcher_->Matches("no_such_pattern", parties_));
}

TEST_F(MatcherTest, TextLiteralConstraint) {
  PatternLibrary lib;
  ASSERT_TRUE(lib.RegisterText(
      "parties_only", "( x tablename t:\"parties\" )").ok());
  PatternMatcher matcher(&graph_, &lib);
  EXPECT_TRUE(matcher.Matches("parties_only", parties_));
  EXPECT_FALSE(matcher.Matches("parties_only", individuals_));
}

}  // namespace
}  // namespace soda
