// Tests for the interactive-session layer (core/session.h): structured
// explanations that can never drift from the rendered line, pin/ban/bind
// constraint enforcement, constraint-keyed cache isolation, and the
// acceptance bar — Refine resumes the captured TranslationPlan (skipping
// stages per the constraint-change matrix) yet answers byte-identically
// to a cold constrained translation, at any shards x threads, closures
// on and off; a base-data mutation invalidates the plan and the next
// Refine silently runs the full pipeline again.
//
// Minibank only, deliberately: this binary is inside the sanitizer ctest
// filter (ci.sh adds 'session'); the enterprise explanation identity
// check lives in enterprise_eval_test.cc with the other heavy suites.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/freshness.h"
#include "core/session.h"
#include "core/sharded_engine.h"
#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"
#include "sql/value.h"

namespace soda {
namespace {

// Order-sensitive answer fingerprint (snippets included): "byte-identical"
// is literal; engine bookkeeping (cache counters, stages_skipped) is
// deliberately excluded — a resumed plan is an optimization, never a
// semantic.
std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

std::vector<std::string> MiniBankQueries() {
  return {
      "customers Zürich financial instruments",
      "trading volume transaction date between date(2010-01-01) "
      "date(2011-12-31)",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
}

// The query every bind test steers: complexity 2 (paper Figure 5), with
// two candidates for "financial instruments" to bind between.
const char kSteerable[] = "customers Zürich financial instruments";

// The query the pin/ban tests steer: three results whose FROM lists
// differ, so there is a table read by some results and not others.
const char kMultiResult[] = "private customers family name";

// Same mutation the freshness tests replay: a new individual with a
// Zürich address, touching tables and tokens the steerable query reads.
void AppendZebraQuuxville(Database* db) {
  Table* individuals = db->FindTable("individuals");
  Table* addresses = db->FindTable("addresses");
  ASSERT_NE(individuals, nullptr);
  ASSERT_NE(addresses, nullptr);
  int64_t id = static_cast<int64_t>(individuals->num_rows()) + 1000;
  ASSERT_TRUE(individuals
                  ->Append({Value::Int(id), Value::Str("Zebra"),
                            Value::Str("Quuxville"), Value::Int(90000),
                            Value::DateV(Date::FromYmd(1980, 1, 1))})
                  .ok());
  ASSERT_TRUE(addresses
                  ->Append({Value::Int(id), Value::Int(id),
                            Value::Str("Teststrasse 1"), Value::Str("Zürich"),
                            Value::Str("CH")})
                  .ok());
}

bool ResultReadsTable(const SodaResult& result, const std::string& table) {
  for (const TableRef& ref : result.statement.from) {
    if (ref.table == table) return true;
  }
  return false;
}

// A table read by at least one result but not by all of them — banning
// it leaves survivors, pinning it drops some, so both levers can be
// observed doing real work. Empty when the results are table-uniform.
std::string PartialTable(const SearchOutput& output) {
  std::set<std::string> all;
  for (const SodaResult& result : output.results) {
    for (const TableRef& ref : result.statement.from) all.insert(ref.table);
  }
  for (const std::string& table : all) {
    size_t readers = 0;
    for (const SodaResult& result : output.results) {
      if (ResultReadsTable(result, table)) ++readers;
    }
    if (readers > 0 && readers < output.results.size()) return table;
  }
  return "";
}

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete bank_;
    bank_ = nullptr;
  }

  static SodaConfig Config(size_t threads = 2, size_t cache = 0) {
    SodaConfig config;
    config.num_threads = threads;
    config.cache_capacity = cache;
    return config;
  }

  static std::unique_ptr<SodaEngine> Engine(const SodaConfig& config) {
    auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                     CreditSuissePatternLibrary(), config);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  static MiniBank* bank_;
};

MiniBank* SessionTest::bank_ = nullptr;

// ---------------------------------------------------------------------------
// Structured explanations
// ---------------------------------------------------------------------------

// The legacy one-line explanation is rendered from the structured record,
// so the two can never disagree; the record's tables mirror the emitted
// statement's FROM list and every matched term names a bindable entry.
TEST_F(SessionTest, ExplanationMatchesRenderedLine) {
  auto engine = Engine(Config());
  size_t total_results = 0;
  for (const std::string& query : MiniBankQueries()) {
    auto output = engine->Search(query);
    ASSERT_TRUE(output.ok()) << query << ": " << output.status();
    total_results += output->results.size();
    for (const SodaResult& result : output->results) {
      EXPECT_EQ(result.explanation, result.provenance.Render()) << query;
      // Pure operator queries consume every term into predicates and
      // legitimately explain nothing.
      EXPECT_EQ(result.provenance.terms.empty(), result.explanation.empty())
          << query;
      for (const ExplanationTerm& term : result.provenance.terms) {
        EXPECT_FALSE(term.phrase.empty()) << query;
        EXPECT_EQ(term.entry_key, EntryPointKey(term.entry)) << query;
      }
      ASSERT_EQ(result.provenance.tables.size(),
                result.statement.from.size())
          << query;
      for (size_t i = 0; i < result.statement.from.size(); ++i) {
        EXPECT_EQ(result.provenance.tables[i], result.statement.from[i].table)
            << query;
      }
    }
  }
  EXPECT_GT(total_results, 0u);
}

// ---------------------------------------------------------------------------
// Constraint semantics
// ---------------------------------------------------------------------------

TEST_F(SessionTest, BanAndPinEnforced) {
  auto engine = Engine(Config());
  SodaSession session(engine.get());
  auto first = session.Ask(kMultiResult);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_GT(first->results.size(), 1u);

  const std::string target = PartialTable(*first);
  ASSERT_FALSE(target.empty())
      << "expected a table read by some but not all results";

  auto banned = session.BanTable(target).Refine();
  ASSERT_TRUE(banned.ok()) << banned.status();
  ASSERT_FALSE(banned->results.empty());
  for (const SodaResult& result : banned->results) {
    EXPECT_FALSE(ResultReadsTable(result, target)) << result.sql;
  }

  auto pinned = session.UnbanTable(target).PinTable(target).Refine();
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  ASSERT_FALSE(pinned->results.empty());
  for (const SodaResult& result : pinned->results) {
    EXPECT_TRUE(ResultReadsTable(result, target)) << result.sql;
  }
  // The two constrained answers partition the unconstrained one.
  EXPECT_EQ(banned->results.size() + pinned->results.size(),
            first->results.size());
}

TEST_F(SessionTest, BindTermRestrictsChosenEntryPoints) {
  auto engine = Engine(Config());
  SodaSession session(engine.get());
  ASSERT_TRUE(session.Ask(kSteerable).ok());

  auto candidates = session.TermCandidates("financial instruments");
  ASSERT_EQ(candidates.size(), 2u);  // paper Figure 5: 1 x 1 x 2
  EXPECT_NE(candidates[0].first, candidates[1].first);

  std::set<std::string> keys_seen;
  for (const auto& [entry_key, description] : candidates) {
    SCOPED_TRACE(description);
    auto bound = session.BindTerm("financial instruments", entry_key)
                     .Refine();
    ASSERT_TRUE(bound.ok()) << bound.status();
    ASSERT_FALSE(bound->results.empty());
    for (const SodaResult& result : bound->results) {
      for (const ExplanationTerm& term : result.provenance.terms) {
        if (term.phrase == "financial instruments") {
          EXPECT_EQ(term.entry_key, entry_key);
          keys_seen.insert(term.entry_key);
        }
      }
    }
  }
  // Binding to the second candidate surfaced the other interpretation.
  EXPECT_EQ(keys_seen.size(), 2u);

  // A binding whose term matches nothing is inert: same answer bytes as
  // the unconstrained translation.
  auto unconstrained = engine->Search(kSteerable);
  ASSERT_TRUE(unconstrained.ok());
  auto inert = session.ClearConstraints()
                   .BindTerm("no such term", candidates[0].first)
                   .Refine();
  ASSERT_TRUE(inert.ok()) << inert.status();
  EXPECT_EQ(Fingerprint(*inert), Fingerprint(*unconstrained));
}

TEST_F(SessionTest, RefineBeforeAskErrors) {
  auto engine = Engine(Config());
  SodaSession session(engine.get());
  auto refined = session.Refine();
  EXPECT_FALSE(refined.ok());
  EXPECT_EQ(session.refines(), 0u);
}

// ---------------------------------------------------------------------------
// Acceptance bar: Refine == cold constrained translation, byte for byte
// ---------------------------------------------------------------------------

TEST_F(SessionTest, RefineMatchesColdConstrainedTranslation) {
  for (size_t shards : {1u, 4u}) {
    for (size_t threads : {1u, 4u}) {
      for (bool closures : {true, false}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads) +
                     " closures=" + std::to_string(closures));
        SodaConfig config;
        config.num_shards = shards;
        config.num_threads = threads;
        config.enable_closures = closures;
        config.cache_capacity = 0;  // every serve translates
        auto router = ShardedSodaEngine::Create(&bank_->db, &bank_->graph,
                                                CreditSuissePatternLibrary(),
                                                config);
        ASSERT_TRUE(router.ok()) << router.status();
        SodaService* service = router->get();

        SodaSession session(service);
        auto first = session.Ask(kMultiResult);
        ASSERT_TRUE(first.ok()) << first.status();
        EXPECT_EQ(session.last_stages_skipped(), 0u);

        // Pin/ban change: Step 5 only.
        const std::string target = PartialTable(*first);
        ASSERT_FALSE(target.empty());
        auto refined = session.BanTable(target).Refine();
        ASSERT_TRUE(refined.ok()) << refined.status();
        EXPECT_GT(session.last_stages_skipped(), 0u);
        EXPECT_NE(Fingerprint(*refined), Fingerprint(*first));
        auto cold = service->Search(kMultiResult, session.constraints());
        ASSERT_TRUE(cold.ok()) << cold.status();
        EXPECT_EQ(Fingerprint(*refined), Fingerprint(*cold));

        // Binding change on top: re-ranks from the cached lookup.
        auto candidates = session.TermCandidates("name");
        ASSERT_EQ(candidates.size(), 7u);
        auto rebound = session.BindTerm("name", candidates[2].first).Refine();
        ASSERT_TRUE(rebound.ok()) << rebound.status();
        EXPECT_GT(session.last_stages_skipped(), 0u);
        auto cold_bound = service->Search(kMultiResult, session.constraints());
        ASSERT_TRUE(cold_bound.ok()) << cold_bound.status();
        EXPECT_EQ(Fingerprint(*rebound), Fingerprint(*cold_bound));

        MetricsSnapshot snapshot = service->metrics_snapshot();
        EXPECT_GT(snapshot.counter("session.stages_skipped"), 0u);
        EXPECT_EQ(snapshot.counter("session.refines"), 2u);
        EXPECT_EQ(snapshot.counter("router.session_queries"), 3u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Constraint-keyed caching
// ---------------------------------------------------------------------------

TEST_F(SessionTest, ConstraintedAnswersCacheSeparately) {
  auto engine = Engine(Config(/*threads=*/2, /*cache=*/64));
  auto miss = engine->Search(kMultiResult);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->from_cache);
  auto hit = engine->Search(kMultiResult);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->from_cache);

  const std::string target = PartialTable(*miss);
  ASSERT_FALSE(target.empty());
  SessionConstraints constraints;
  constraints.BanTable(target);
  auto constrained = engine->Search(kMultiResult, constraints);
  ASSERT_TRUE(constrained.ok());
  // Same question, different constraints: a fresh translation, not the
  // cached unconstrained answer.
  EXPECT_FALSE(constrained->from_cache);
  EXPECT_NE(Fingerprint(*constrained), Fingerprint(*miss));

  auto constrained_again = engine->Search(kMultiResult, constraints);
  ASSERT_TRUE(constrained_again.ok());
  EXPECT_TRUE(constrained_again->from_cache);
  EXPECT_EQ(Fingerprint(*constrained_again), Fingerprint(*constrained));

  // And the unconstrained entry survived untouched.
  auto still_cached = engine->Search(kMultiResult);
  ASSERT_TRUE(still_cached.ok());
  EXPECT_TRUE(still_cached->from_cache);

  MetricsSnapshot snapshot = engine->metrics_snapshot();
  EXPECT_EQ(snapshot.counter("session.constraint_hits"), 1u);
}

// ---------------------------------------------------------------------------
// Stage-skip accounting and plan freshness
// ---------------------------------------------------------------------------

TEST_F(SessionTest, StageSkipMatrixAndCounters) {
  auto engine = Engine(Config(/*threads=*/2, /*cache=*/0));
  SodaSession session(engine.get());
  ASSERT_TRUE(session.Ask(kSteerable).ok());
  EXPECT_EQ(session.last_stages_skipped(), 0u);

  const std::string target = "fi_contains_sec";
  // Pin/ban-only change: everything up to Step 5 is reused.
  ASSERT_TRUE(session.BanTable(target).Refine().ok());
  EXPECT_EQ(session.last_stages_skipped(), 4u);

  // Binding change: only Step 1 is reused.
  auto candidates = session.TermCandidates("financial instruments");
  ASSERT_EQ(candidates.size(), 2u);
  ASSERT_TRUE(session.BindTerm("financial instruments", candidates[0].first)
                  .Refine()
                  .ok());
  EXPECT_EQ(session.last_stages_skipped(), 1u);

  // No change since the recapture: back to the Step-5-only resume.
  ASSERT_TRUE(session.Refine().ok());
  EXPECT_EQ(session.last_stages_skipped(), 4u);

  // A new question cannot resume anything.
  ASSERT_TRUE(session.Refine("addresses Sara Guttinger").ok());
  EXPECT_EQ(session.last_stages_skipped(), 0u);

  EXPECT_EQ(session.refines(), 4u);
  MetricsSnapshot snapshot = engine->metrics_snapshot();
  EXPECT_EQ(snapshot.counter("session.refines"), 4u);
  EXPECT_EQ(snapshot.counter("session.stages_skipped"), 4u + 1u + 4u);
}

TEST_F(SessionTest, MutationInvalidatesPlanAndRefineMatchesColdEngine) {
  // This test mutates the database, so it builds its own mini-bank.
  auto bank = BuildMiniBank().value();
  SodaConfig config = Config(/*threads=*/2, /*cache=*/0);
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(), config)
                    .value();
  FreshnessManager freshness(&bank->db.change_log());
  freshness.Track(engine.get());

  {
    SodaSession session(engine.get());
    ASSERT_TRUE(session.Ask(kSteerable).ok());
    ASSERT_TRUE(session.BanTable("fi_contains_sec").Refine().ok());
    EXPECT_EQ(session.last_stages_skipped(), 4u);
    MetricsSnapshot before = freshness.metrics_snapshot();
    EXPECT_GT(before.counter("freshness.plans_tracked"), 0u);

    // The appended rows carry tokens the plan's lookup probed ("zürich"):
    // the freshness hook flips the plan, and the next Refine quietly runs
    // the full pipeline against the new base data.
    AppendZebraQuuxville(&bank->db);
    MetricsSnapshot after = freshness.metrics_snapshot();
    EXPECT_GT(after.counter("freshness.plans_invalidated"), 0u);

    auto refined = session.Refine();
    ASSERT_TRUE(refined.ok()) << refined.status();
    EXPECT_EQ(session.last_stages_skipped(), 0u);

    auto cold_engine = SodaEngine::Create(&bank->db, &bank->graph,
                                          CreditSuissePatternLibrary(), config)
                           .value();
    auto cold = cold_engine->Search(kSteerable, session.constraints());
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(Fingerprint(*refined), Fingerprint(*cold));

    // Recaptured against the mutated data: refining resumes again.
    ASSERT_TRUE(session.UnbanTable("fi_contains_sec")
                    .BanTable("securities")
                    .Refine()
                    .ok());
    EXPECT_EQ(session.last_stages_skipped(), 4u);
  }  // session (and its plan) deregister before the manager dies
}

}  // namespace
}  // namespace soda
