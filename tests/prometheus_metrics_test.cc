// Tests for the Prometheus text-exposition exporter and snapshot
// diffing: golden-checks the exact rendered format (TYPE headers,
// cumulative buckets over the shared grid, name sanitization), and
// DeltaSince's per-interval semantics for counters and histograms.

#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "common/prometheus_sink.h"
#include "core/engine.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace soda {
namespace {

TEST(PrometheusRenderTest, GoldenCounterAndHistogram) {
  InMemoryMetricsSink sink;
  sink.IncrementCounter("cache.hit", 41);
  sink.IncrementCounter("cache.hit", 1);
  sink.IncrementCounter("engine.search", 7);
  // Binary-exact sample values so the `_sum` line is reproducible.
  sink.Observe("stage.lookup.ms", 0.015625);  // second bucket (le=0.025)
  sink.Observe("stage.lookup.ms", 0.015625);
  sink.Observe("stage.lookup.ms", 256.0);     // +Inf overflow bucket

  const std::string expected =
      "# TYPE soda_cache_hit_total counter\n"
      "soda_cache_hit_total 42\n"
      "# TYPE soda_engine_search_total counter\n"
      "soda_engine_search_total 7\n"
      "# TYPE soda_stage_lookup_ms histogram\n"
      "soda_stage_lookup_ms_bucket{le=\"0.01\"} 0\n"
      "soda_stage_lookup_ms_bucket{le=\"0.025\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"0.05\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"0.1\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"0.25\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"0.5\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"1\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"2.5\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"5\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"10\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"25\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"50\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"100\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"250\"} 2\n"
      "soda_stage_lookup_ms_bucket{le=\"+Inf\"} 3\n"
      "soda_stage_lookup_ms_sum 256.03125\n"
      "soda_stage_lookup_ms_count 3\n";
  EXPECT_EQ(RenderPrometheusText(sink.Snapshot()), expected);
}

TEST(PrometheusRenderTest, SanitizesNamesAndHonorsPrefix) {
  MetricsSnapshot snapshot;
  snapshot.counters["router.shard-queries/total"] = 5;
  std::string text = RenderPrometheusText(snapshot, "fleet");
  EXPECT_NE(text.find("fleet_router_shard_queries_total_total 5"),
            std::string::npos);
}

TEST(PrometheusRenderTest, SinkAggregatesAndRenders) {
  PrometheusTextMetricsSink sink("soda");
  sink.IncrementCounter("freshness.events", 3);
  sink.Observe("pool.queue_depth", 2.0);
  std::string text = sink.RenderText();
  EXPECT_NE(text.find("soda_freshness_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("soda_pool_queue_depth_count 1"), std::string::npos);
}

TEST(PrometheusRenderTest, WorksAsEngineSink) {
  auto bank = BuildMiniBank().value();
  SodaConfig config;
  config.num_threads = 1;
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(), config)
                    .value();
  auto prometheus = std::make_shared<PrometheusTextMetricsSink>();
  engine->set_metrics_sink(prometheus);
  ASSERT_TRUE(engine->Search("addresses Sara Guttinger").ok());
  std::string text = prometheus->RenderText();
  EXPECT_NE(text.find("soda_cache_miss_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE soda_search_wall_ms histogram"),
            std::string::npos);
}

// Every series the engine ever writes must already be present — at
// zero — on a freshly built engine, so the very first /metrics scrape
// exports the complete inventory (dashboards and alerts key on series
// existence; a series that appears only under traffic reads as a broken
// exporter during quiet hours).
TEST(PrometheusRenderTest, EngineExportsEverySeriesBeforeAnyTraffic) {
  auto bank = BuildMiniBank().value();
  SodaConfig config;
  config.num_threads = 1;
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(), config)
                    .value();
  const char* expected_counters[] = {
      "engine.search", "engine.search_all", "engine.search_all_async",
      "engine.task_exceptions",
      "cache.hit", "cache.miss", "cache.invalidated",
      "cache.stale_insert_skipped",
      "batch.queries", "batch.unique", "batch.interpretations",
      "batch.dedup_hits",
      "session.refines", "session.stages_skipped", "session.constraint_hits",
      "snippet.executed", "snippet.failed", "snippet.exception",
      "snippet.streamed", "snippet.callback_exception",
      "index.probe_memo_hits", "index.probe_memo_misses",
      "closure.traverse_hits", "closure.traverse_misses",
      "closure.path_lookups",
      "trace.spans", "trace.sampled", "trace.dropped", "trace.slow_queries",
  };
  const char* expected_histograms[] = {
      "search.wall.ms", "batch.wall.ms", "stage.execute.ms",
      "pool.queue_depth", "executor.rows", "executor.tables",
      "stage.lookup.ms", "stage.rank.ms", "stage.tables.ms",
      "stage.filters.ms", "stage.sql.ms",
  };
  MetricsSnapshot snapshot = engine->metrics_snapshot();
  for (const char* name : expected_counters) {
    EXPECT_EQ(snapshot.counters.count(name), 1u) << "missing " << name;
    EXPECT_EQ(snapshot.counter(name), 0u) << name << " not zero";
  }
  for (const char* name : expected_histograms) {
    EXPECT_NE(snapshot.histogram(name), nullptr) << "missing " << name;
  }

  // A replacement sink inherits the same zero-traffic counter inventory
  // (histograms register through the concrete sink type only).
  auto fresh = std::make_shared<InMemoryMetricsSink>();
  engine->set_metrics_sink(fresh);
  MetricsSnapshot replaced = fresh->Snapshot();
  for (const char* name : expected_counters) {
    EXPECT_EQ(replaced.counters.count(name), 1u)
        << "missing " << name << " after set_metrics_sink";
  }
}

TEST(MetricsDeltaTest, CountersSubtractAndDropWhenUnchanged) {
  InMemoryMetricsSink sink;
  sink.IncrementCounter("a", 10);
  sink.IncrementCounter("b", 2);
  MetricsSnapshot before = sink.Snapshot();
  sink.IncrementCounter("a", 5);
  sink.IncrementCounter("c", 1);  // new metric passes through whole
  MetricsSnapshot delta = sink.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counter("a"), 5u);
  EXPECT_EQ(delta.counters.count("b"), 0u);  // unchanged → absent
  EXPECT_EQ(delta.counter("c"), 1u);
}

TEST(MetricsDeltaTest, HistogramsSubtractExactlyOnTheSharedGrid) {
  InMemoryMetricsSink sink;
  sink.Observe("lat", 0.02);
  sink.Observe("lat", 4.0);
  MetricsSnapshot before = sink.Snapshot();
  sink.Observe("lat", 4.0);
  sink.Observe("lat", 40.0);
  MetricsSnapshot now = sink.Snapshot();

  MetricsSnapshot delta = now.DeltaSince(before);
  const HistogramSnapshot* h = delta.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 44.0);
  // Exactly the two interval samples, in their grid buckets (4.0 →
  // le=5, 40.0 → le=50).
  uint64_t total = 0;
  for (uint64_t b : h->buckets) total += b;
  EXPECT_EQ(total, 2u);
  // Interval min/max are bucket-edge bounds clamped to lifetime extremes.
  EXPECT_GE(h->min, 2.5);
  EXPECT_LE(h->max, 50.0);

  // No new samples → the histogram drops out of the delta.
  MetricsSnapshot empty_delta = now.DeltaSince(now);
  EXPECT_EQ(empty_delta.histogram("lat"), nullptr);
  EXPECT_TRUE(empty_delta.counters.empty());
}

TEST(MetricsDeltaTest, RenderDeltaTextShowsOnlyTheInterval) {
  PrometheusTextMetricsSink sink;
  sink.IncrementCounter("freshness.events", 2);
  MetricsSnapshot before = sink.Snapshot();
  sink.IncrementCounter("freshness.events", 3);
  sink.IncrementCounter("freshness.keys_invalidated", 7);
  std::string text = sink.RenderDeltaText(before);
  EXPECT_NE(text.find("soda_freshness_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("soda_freshness_keys_invalidated_total 7"),
            std::string::npos);
  EXPECT_EQ(text.find("soda_freshness_events_total 5"), std::string::npos);
}

}  // namespace
}  // namespace soda
