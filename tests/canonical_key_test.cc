// Deduplication semantics of CanonicalKey (core/pipeline.h): different
// entry-point choices that collapse to the same logical statement must map
// to one key, while genuinely different statements must stay distinct.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sql/parser.h"

namespace soda {
namespace {

std::string KeyOf(const char* sql) {
  auto stmt = ParseSql(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status() << " for: " << sql;
  return CanonicalKey(*stmt);
}

TEST(CanonicalKeyTest, FromOrderInvariant) {
  EXPECT_EQ(KeyOf("SELECT a.x FROM a, b WHERE a.id = b.id"),
            KeyOf("SELECT a.x FROM b, a WHERE a.id = b.id"));
}

TEST(CanonicalKeyTest, FromTableCaseInvariant) {
  // SQL identifiers compare case-insensitively; the FROM list is folded.
  EXPECT_EQ(KeyOf("SELECT a.x FROM Accounts a"),
            KeyOf("SELECT a.x FROM accounts a"));
}

TEST(CanonicalKeyTest, SymmetricEqualityPredicates) {
  EXPECT_EQ(KeyOf("SELECT a.x FROM a, b WHERE a.id = b.id"),
            KeyOf("SELECT a.x FROM a, b WHERE b.id = a.id"));
}

TEST(CanonicalKeyTest, AsymmetricComparisonIsDirectional) {
  EXPECT_NE(KeyOf("SELECT a.x FROM a WHERE a.v > 10"),
            KeyOf("SELECT a.x FROM a WHERE a.v < 10"));
}

TEST(CanonicalKeyTest, ConjunctOrderInvariant) {
  EXPECT_EQ(KeyOf("SELECT a.x FROM a WHERE a.v > 1 AND a.w < 2"),
            KeyOf("SELECT a.x FROM a WHERE a.w < 2 AND a.v > 1"));
}

TEST(CanonicalKeyTest, SelectItemOrderInvariant) {
  EXPECT_EQ(KeyOf("SELECT a.x, a.y FROM a"), KeyOf("SELECT a.y, a.x FROM a"));
}

TEST(CanonicalKeyTest, DifferentFiltersDiffer) {
  EXPECT_NE(KeyOf("SELECT a.x FROM a WHERE a.v = 1"),
            KeyOf("SELECT a.x FROM a WHERE a.v = 2"));
}

TEST(CanonicalKeyTest, GroupByDiscriminates) {
  EXPECT_NE(KeyOf("SELECT sum(a.v), a.g FROM a GROUP BY a.g"),
            KeyOf("SELECT sum(a.v), a.g FROM a"));
}

TEST(CanonicalKeyTest, LimitDiscriminates) {
  EXPECT_NE(KeyOf("SELECT a.x FROM a LIMIT 5"),
            KeyOf("SELECT a.x FROM a LIMIT 6"));
  EXPECT_NE(KeyOf("SELECT a.x FROM a LIMIT 5"), KeyOf("SELECT a.x FROM a"));
}

TEST(CanonicalKeyTest, ExtraTableDiffers) {
  EXPECT_NE(KeyOf("SELECT a.x FROM a"), KeyOf("SELECT a.x FROM a, b"));
}

}  // namespace
}  // namespace soda
