// Tests for the HTTP front end (net/http_server.h):
//
//   - wire-level byte-identity: the POST /search body equals
//     RenderSearchResponseJson over a direct SearchAll of the same
//     queries, at 1 and 4 shards — and the two HTTP bodies are identical
//     to each other (the determinism contract survives the network);
//   - concurrent clients all read identical bytes;
//   - admission control: with the watermark filled by a blocked
//     in-flight search, the next request observes 503 + Retry-After and
//     the server's shed book, and is admitted after the window clears;
//   - graceful drain: Stop() lets an in-flight (slow) request complete
//     and deliver its full response;
//   - robustness: malformed request lines (400), bad JSON (400),
//     oversized bodies (413), oversized headers (431), wrong method
//     (405), unknown path (404), and stalled half-requests (408) — all
//     answered, none crash the server;
//   - chunked streaming: /search?stream=1 opens with the byte-identical
//     translation payload and closes with the done event;
//   - /healthz and /metrics (every server_* series present).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datasets/minibank.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/search_json.h"
#include "pattern/library.h"

namespace soda {
namespace {

std::vector<std::string> MiniBankQueries() {
  return {
      "customers Zürich financial instruments",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
}

std::string BatchBody(const std::vector<std::string>& queries) {
  std::string body = "{\"queries\":[";
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i > 0) body += ",";
    body += "\"" + queries[i] + "\"";
  }
  body += "]}";
  return body;
}

class HttpServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete bank_;
    bank_ = nullptr;
  }

  static std::unique_ptr<ShardedSodaEngine> MakeEngine(size_t shards) {
    SodaConfig config;
    config.num_shards = shards;
    config.num_threads = 2;
    config.cache_capacity = 32;
    auto engine = ShardedSodaEngine::Create(
        &bank_->db, &bank_->graph, CreditSuissePatternLibrary(), config);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  static std::unique_ptr<SodaHttpServer> StartServer(
      SodaService* service, HttpServerOptions options = {}) {
    auto server = std::make_unique<SodaHttpServer>(service, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
    return server;
  }

  static HttpClient Connect(const SodaHttpServer& server) {
    return HttpClient("127.0.0.1", server.port());
  }

  static MiniBank* bank_;
};

MiniBank* HttpServerTest::bank_ = nullptr;

// ---------------------------------------------------------------------------
// Decorators for deterministic shed / drain scenarios. Everything above
// the engines programs against SodaService, so a test can interpose on
// the serving path the same way the router does.
// ---------------------------------------------------------------------------

class ForwardingService : public SodaService {
 public:
  explicit ForwardingService(SodaService* wrapped) : wrapped_(wrapped) {}

  using SodaService::Search;
  using SodaService::SearchAll;

  Result<SearchOutput> Search(
      const std::string& query,
      const SessionConstraints& constraints) const override {
    return wrapped_->Search(query, constraints);
  }
  std::vector<Result<SearchOutput>> SearchAll(
      std::span<const std::string> queries) const override {
    return wrapped_->SearchAll(queries);
  }
  Result<SearchOutput> SearchAsync(const std::string& query,
                                   SnippetCallback on_snippet,
                                   SnippetBarrier* barrier) const override {
    return wrapped_->SearchAsync(query, std::move(on_snippet), barrier);
  }
  std::vector<Result<SearchOutput>> SearchAllAsync(
      std::span<const std::string> queries, SnippetCallback on_snippet,
      SnippetBarrier* barrier) const override {
    return wrapped_->SearchAllAsync(queries, std::move(on_snippet), barrier);
  }
  Result<SearchOutput> SearchSession(
      const std::string& query, const SessionConstraints& constraints,
      std::shared_ptr<TranslationPlan>* plan) const override {
    return wrapped_->SearchSession(query, constraints, plan);
  }
  CacheStats cache_stats() const override { return wrapped_->cache_stats(); }
  void ClearCache() const override { wrapped_->ClearCache(); }
  size_t InvalidateWhere(
      const std::function<bool(const std::string&)>& pred) const override {
    return wrapped_->InvalidateWhere(pred);
  }
  size_t ApplyBaseDataDelta(const ChangeEvent& event) override {
    return wrapped_->ApplyBaseDataDelta(event);
  }
  void set_freshness(FreshnessManager* freshness) override {
    wrapped_->set_freshness(freshness);
  }
  void set_metrics_sink(std::shared_ptr<MetricsSink> sink) override {
    wrapped_->set_metrics_sink(std::move(sink));
  }
  MetricsSnapshot metrics_snapshot() const override {
    return wrapped_->metrics_snapshot();
  }
  size_t num_threads() const override { return wrapped_->num_threads(); }
  size_t queue_depth() const override { return wrapped_->queue_depth(); }

 protected:
  SodaService* wrapped_;
};

/// Blocks every SearchAll until Release() — fills the admission window
/// deterministically.
class BlockingService : public ForwardingService {
 public:
  using ForwardingService::ForwardingService;
  using ForwardingService::SearchAll;

  std::vector<Result<SearchOutput>> SearchAll(
      std::span<const std::string> queries) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      released_cv_.wait(lock, [this] { return released_; });
    }
    return wrapped_->SearchAll(queries);
  }

  void WaitUntilEntered(size_t n) const {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    released_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable released_cv_;
  mutable size_t entered_ = 0;
  bool released_ = false;
};

/// Delays every SearchAll — an in-flight request that outlives Stop().
class DelayService : public ForwardingService {
 public:
  DelayService(SodaService* wrapped, int delay_ms)
      : ForwardingService(wrapped), delay_ms_(delay_ms) {}
  using ForwardingService::SearchAll;

  std::vector<Result<SearchOutput>> SearchAll(
      std::span<const std::string> queries) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return wrapped_->SearchAll(queries);
  }

 private:
  int delay_ms_;
};

// ---------------------------------------------------------------------------
// Byte-identity over the wire
// ---------------------------------------------------------------------------

TEST_F(HttpServerTest, SearchBodyIsByteIdenticalToDirectSearchAllAcrossShards) {
  const std::vector<std::string> queries = MiniBankQueries();
  std::vector<std::string> http_bodies;

  for (size_t shards : {size_t{1}, size_t{4}}) {
    auto engine = MakeEngine(shards);
    // The reference bytes: a direct in-process SearchAll rendered with
    // the shared renderer. Computed on a second engine so the HTTP
    // request's cache is cold (from_cache must not leak into the body).
    auto reference_engine = MakeEngine(shards);
    auto outputs = reference_engine->SearchAll(queries);
    std::string expected = RenderSearchResponseJson(queries, outputs);

    auto server = StartServer(engine.get());
    HttpClient client = Connect(*server);
    auto response = client.Post("/search", BatchBody(queries));
    ASSERT_TRUE(response.ok()) << response.status() << " shards=" << shards;
    ASSERT_EQ(response->status, 200) << "shards=" << shards;
    EXPECT_EQ(response->body, expected) << "shards=" << shards;
    EXPECT_EQ(response->header("Content-Type"), "application/json");
    // Observability rides in headers, never the body.
    EXPECT_FALSE(response->header("X-Soda-Wall-Ms").empty());
    EXPECT_EQ(response->header("X-Soda-Queries"),
              std::to_string(queries.size()));
    http_bodies.push_back(response->body);

    // A repeat of the same request — now cache-warm — must not change a
    // byte.
    auto warm = client.Post("/search", BatchBody(queries));
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(warm->body, expected) << "cache state leaked into the body";
  }
  // 1-shard and 4-shard serving produce identical wire bytes.
  ASSERT_EQ(http_bodies.size(), 2u);
  EXPECT_EQ(http_bodies[0], http_bodies[1]);
}

TEST_F(HttpServerTest, ConcurrentClientsReadIdenticalBytes) {
  auto engine = MakeEngine(2);
  auto server = StartServer(engine.get());
  const std::vector<std::string> queries = MiniBankQueries();
  const std::string body = BatchBody(queries);

  constexpr size_t kClients = 6;
  constexpr size_t kRounds = 5;
  std::vector<std::string> bodies(kClients);
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client = Connect(*server);
      for (size_t round = 0; round < kRounds; ++round) {
        auto response = client.Post("/search", body);
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          return;
        }
        if (round == 0) {
          bodies[c] = response->body;
        } else if (bodies[c] != response->body) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  ASSERT_EQ(failures.load(), 0u);
  for (size_t c = 1; c < kClients; ++c) {
    EXPECT_EQ(bodies[c], bodies[0]) << "client " << c;
  }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST_F(HttpServerTest, OverWatermarkRequestsAreShedWithRetryAfter) {
  auto engine = MakeEngine(1);
  BlockingService blocking(engine.get());
  HttpServerOptions options;
  options.shed_watermark = 1;  // one admitted search fills the window
  auto server = StartServer(&blocking, options);

  // Client A occupies the window (blocked inside SearchAll).
  std::thread occupier([&] {
    HttpClient client = Connect(*server);
    auto response = client.Post("/search", "{\"query\":\"addresses\"}");
    EXPECT_TRUE(response.ok()) << response.status();
    if (response.ok()) EXPECT_EQ(response->status, 200);
  });
  blocking.WaitUntilEntered(1);

  // Client B arrives over the watermark: 503, Retry-After, booked shed.
  HttpClient client = Connect(*server);
  auto shed = client.Post("/search", "{\"query\":\"addresses\"}");
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_EQ(shed->status, 503);
  EXPECT_EQ(shed->header("Retry-After"), "1");
  MetricsSnapshot books = server->server_metrics();
  EXPECT_GE(books.counter("server.shed"), 1u);

  // Window clears; the same client is admitted. queue_depth() is a
  // sticky load signal, not an exact token bucket: ParallelFor helper
  // tasks that lost the index race to the calling thread linger in the
  // pool queue as no-ops until a worker claims them, so on a loaded box
  // the watermark can briefly still read the drained search. Retry for
  // a bounded moment rather than assert the first post-drain sample.
  blocking.Release();
  occupier.join();
  auto admitted = client.Post("/search", "{\"query\":\"addresses\"}");
  for (int attempt = 0;
       attempt < 100 && admitted.ok() && admitted->status == 503; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    admitted = client.Post("/search", "{\"query\":\"addresses\"}");
  }
  ASSERT_TRUE(admitted.ok()) << admitted.status();
  EXPECT_EQ(admitted->status, 200);
}

TEST_F(HttpServerTest, HealthzAndMetricsAreNeverShed) {
  auto engine = MakeEngine(1);
  HttpServerOptions options;
  options.shed_watermark = 0;  // shed every search
  auto server = StartServer(engine.get(), options);
  HttpClient client = Connect(*server);

  auto search = client.Post("/search", "{\"query\":\"addresses\"}");
  ASSERT_TRUE(search.ok()) << search.status();
  EXPECT_EQ(search->status, 503);

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  // Verdict first line, then per-shard breaker detail (this service is a
  // one-shard router; a plain engine answers a bare "ok\n").
  EXPECT_EQ(health->body.compare(0, 3, "ok\n"), 0) << health->body;
  EXPECT_NE(health->body.find("shard 0: closed"), std::string::npos)
      << health->body;

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->status, 200);
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

TEST_F(HttpServerTest, StopCompletesInflightRequests) {
  auto engine = MakeEngine(1);
  DelayService slow(engine.get(), /*delay_ms=*/300);
  auto server = StartServer(&slow);

  const std::vector<std::string> queries = {"addresses Sara Guttinger"};
  auto outputs = engine->SearchAll(queries);
  std::string expected = RenderSearchResponseJson(queries, outputs);

  std::atomic<bool> got_response{false};
  std::thread inflight([&] {
    HttpClient client = Connect(*server);
    auto response =
        client.Post("/search", "{\"query\":\"addresses Sara Guttinger\"}");
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, expected);
    got_response.store(true);
  });

  // Wait until the request is admitted, then drain. Stop() must block
  // until the slow search delivers its full response.
  while (server->search_inflight() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server->Stop();
  EXPECT_EQ(server->search_inflight(), 0u);
  inflight.join();
  EXPECT_TRUE(got_response.load());

  // The listener is gone: new connections fail.
  HttpClient late("127.0.0.1", server->port(), /*timeout_ms=*/1000.0);
  auto refused = late.Get("/healthz");
  EXPECT_FALSE(refused.ok());
}

// ---------------------------------------------------------------------------
// Robustness: malformed, oversized, stalled
// ---------------------------------------------------------------------------

TEST_F(HttpServerTest, MalformedRequestLineGets400) {
  auto engine = MakeEngine(1);
  auto server = StartServer(engine.get());
  HttpClient client = Connect(*server);
  ASSERT_TRUE(client.SendRaw("THIS IS NOT HTTP\r\n\r\n").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 400);
}

TEST_F(HttpServerTest, BadJsonBodyGets400) {
  auto engine = MakeEngine(1);
  auto server = StartServer(engine.get());
  HttpClient client = Connect(*server);
  auto response = client.Post("/search", "{not json");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 400);

  auto missing = client.Post("/search", "{\"other\":1}");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing->status, 400);

  // The connection survives client errors on well-framed requests.
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
}

TEST_F(HttpServerTest, OversizedBodyGets413) {
  auto engine = MakeEngine(1);
  HttpServerOptions options;
  options.max_body_bytes = 512;
  auto server = StartServer(engine.get(), options);
  HttpClient client = Connect(*server);
  std::string big = "{\"query\":\"" + std::string(1024, 'x') + "\"}";
  auto response = client.Post("/search", big);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 413);
}

TEST_F(HttpServerTest, OversizedHeadersGet431) {
  auto engine = MakeEngine(1);
  HttpServerOptions options;
  options.max_header_bytes = 256;
  auto server = StartServer(engine.get(), options);
  HttpClient client = Connect(*server);
  std::string request = "GET /healthz HTTP/1.1\r\nX-Big: " +
                        std::string(512, 'y') + "\r\n\r\n";
  ASSERT_TRUE(client.SendRaw(request).ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 431);
}

TEST_F(HttpServerTest, WrongMethodGets405UnknownPathGets404) {
  auto engine = MakeEngine(1);
  auto server = StartServer(engine.get());
  HttpClient client = Connect(*server);

  auto wrong_method = client.Get("/search");
  ASSERT_TRUE(wrong_method.ok()) << wrong_method.status();
  EXPECT_EQ(wrong_method->status, 405);
  EXPECT_EQ(wrong_method->header("Allow"), "POST");

  auto unknown = client.Get("/nope");
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_EQ(unknown->status, 404);
}

TEST_F(HttpServerTest, StalledHalfRequestGets408) {
  auto engine = MakeEngine(1);
  HttpServerOptions options;
  options.request_deadline_ms = 200.0;
  auto server = StartServer(engine.get(), options);
  HttpClient client = Connect(*server);
  // Half a request, then silence: the read deadline must answer 408
  // rather than hold the connection open forever.
  ASSERT_TRUE(client.SendRaw("POST /search HTTP/1.1\r\nContent-").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 408);
  MetricsSnapshot books = server->server_metrics();
  EXPECT_GE(books.counter("server.timeouts"), 1u);
}

// ---------------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------------

TEST_F(HttpServerTest, StreamingSearchDeliversTranslationsThenDone) {
  auto engine = MakeEngine(2);
  auto server = StartServer(engine.get());
  const std::vector<std::string> queries = MiniBankQueries();

  // The stream's opening payload renders the async translations —
  // snippets are not executed yet (they arrive as events), so the
  // reference comes from the same entry point the server uses.
  auto reference_engine = MakeEngine(2);
  SnippetBarrier reference_barrier;
  auto outputs = reference_engine->SearchAllAsync(
      queries, [](size_t, size_t, const SodaResult&) {}, &reference_barrier);
  reference_barrier.Wait();
  std::string expected_head = RenderSearchResponseJson(queries, outputs);

  HttpClient client = Connect(*server);
  auto response = client.Post("/search?stream=1", BatchBody(queries));
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(response->header("Content-Type"), "application/x-ndjson");

  // The stream opens with the byte-identical translation payload...
  ASSERT_GE(response->body.size(), expected_head.size());
  EXPECT_EQ(response->body.substr(0, expected_head.size()), expected_head);
  // ...and closes with the done event after every snippet event.
  size_t last_line_start = response->body.rfind('\n', response->body.size() - 2);
  std::string last_line = response->body.substr(last_line_start + 1);
  EXPECT_NE(last_line.find("\"event\":\"done\""), std::string::npos)
      << last_line;
}

// ---------------------------------------------------------------------------
// Health and metrics
// ---------------------------------------------------------------------------

TEST_F(HttpServerTest, MetricsExposesEveryServerSeries) {
  auto engine = MakeEngine(1);
  auto server = StartServer(engine.get());
  HttpClient client = Connect(*server);
  // One search so engine-side series exist alongside the pre-registered
  // server ones.
  auto search = client.Post("/search", "{\"query\":\"addresses\"}");
  ASSERT_TRUE(search.ok()) << search.status();

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  ASSERT_EQ(metrics->status, 200);
  for (const char* series :
       {"soda_server_requests_total", "soda_server_accepted_total",
        "soda_server_shed_total", "soda_server_timeouts_total",
        "soda_server_inflight"}) {
    EXPECT_NE(metrics->body.find(series), std::string::npos)
        << "missing " << series;
  }
}

// ---------------------------------------------------------------------------
// Tracing: X-Soda-Trace-Id echo + rejection, /debug introspection
// ---------------------------------------------------------------------------

/// Configures the process-wide TraceRecorder for one test and restores
/// the sampled-off default on exit — the recorder is a singleton, so a
/// leaked config would bleed into unrelated tests.
class ScopedRecorder {
 public:
  ScopedRecorder(size_t sample_every, double slow_threshold_ms) {
    TraceRecorder::Instance().Clear();
    TraceRecorder::Instance().Configure(sample_every, slow_threshold_ms);
  }
  ~ScopedRecorder() {
    TraceRecorder::Instance().Configure(0, 0.0);
    TraceRecorder::Instance().Clear();
  }
};

TEST_F(HttpServerTest, TraceIdEchoDoesNotDependOnSampling) {
  // Recorder stays at the sampled-off default: the echo is a correlation
  // contract, not a sampling side effect.
  auto engine = MakeEngine(1);
  auto server = StartServer(engine.get());
  HttpClient client = Connect(*server);
  client.set_trace_id("00000000deadbeef");
  auto response = client.Post("/search", "{\"query\":\"addresses\"}");
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(response->header("X-Soda-Trace-Id"), "00000000deadbeef");

  // Short ids are legal (1-16 hex digits) and echo zero-padded — the
  // canonical form is what /debug/traces prints.
  client.set_trace_id("ab");
  auto padded = client.Post("/search", "{\"query\":\"addresses\"}");
  ASSERT_TRUE(padded.ok()) << padded.status();
  EXPECT_EQ(padded->header("X-Soda-Trace-Id"), "00000000000000ab");

  // The streaming handler writes its own head; the echo must ride it.
  client.set_trace_id("00000000deadbeef");
  auto streamed = client.Post("/search?stream=1", "{\"query\":\"addresses\"}");
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  ASSERT_EQ(streamed->status, 200);
  EXPECT_EQ(streamed->header("X-Soda-Trace-Id"), "00000000deadbeef");

  // Without an inbound id and with tracing off there is nothing to echo.
  client.set_trace_id("");
  auto plain = client.Post("/search", "{\"query\":\"addresses\"}");
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->header("X-Soda-Trace-Id"), "");
}

TEST_F(HttpServerTest, MalformedTraceIdGets400) {
  auto engine = MakeEngine(1);
  auto server = StartServer(engine.get());
  HttpClient client = Connect(*server);
  // Non-hex, zero, and over-long ids are all rejected before routing —
  // silently re-keying a client's correlation id would be worse than
  // failing loudly.
  for (const char* bad : {"xyz", "0", "12345678901234567", "dead beef"}) {
    client.set_trace_id(bad);
    auto response = client.Post("/search", "{\"query\":\"addresses\"}");
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->status, 400) << "id '" << bad << "'";
    EXPECT_NE(response->body.find("malformed X-Soda-Trace-Id"),
              std::string::npos)
        << response->body;
    EXPECT_EQ(response->header("X-Soda-Trace-Id"), "");
  }
}

TEST_F(HttpServerTest, DebugTracesShowsRequestSpanTree) {
  ScopedRecorder recorder(/*sample_every=*/1, /*slow_threshold_ms=*/0.0);
  auto engine = MakeEngine(2);
  auto server = StartServer(engine.get());
  HttpClient client = Connect(*server);
  client.set_trace_id("00000000000000ab");
  auto search = client.Post("/search", "{\"query\":\"addresses\"}");
  ASSERT_TRUE(search.ok()) << search.status();
  ASSERT_EQ(search->status, 200);

  auto traces = client.Get("/debug/traces?min_ms=0");
  ASSERT_TRUE(traces.ok()) << traces.status();
  ASSERT_EQ(traces->status, 200);
  EXPECT_EQ(traces->header("Content-Type"), "application/json");
  auto doc = ParseJson(traces->body);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* listing = doc->Find("traces");
  ASSERT_NE(listing, nullptr);
  ASSERT_TRUE(listing->is_array());
  // The search request was adopted under the client's id, rooted at the
  // server's span with the engine's work parented beneath it.
  EXPECT_NE(traces->body.find("\"00000000000000ab\""), std::string::npos)
      << traces->body;
  EXPECT_NE(traces->body.find("\"http.request\""), std::string::npos)
      << traces->body;
  EXPECT_NE(traces->body.find("\"batch.query\""), std::string::npos)
      << traces->body;

  // Filters: nothing errored, and nothing took a million ms.
  auto errored = client.Get("/debug/traces?error=1");
  ASSERT_TRUE(errored.ok()) << errored.status();
  EXPECT_EQ(errored->body.find("\"http.request\""), std::string::npos)
      << errored->body;
  auto slow = client.Get("/debug/traces?min_ms=1000000");
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_EQ(slow->body.find("\"http.request\""), std::string::npos);
  // Bad filter values are rejected, not defaulted.
  auto bad = client.Get("/debug/traces?min_ms=banana");
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_EQ(bad->status, 400);

  // Chrome export: same ring, trace_event framing.
  auto chrome = client.Get("/debug/traces?chrome=1");
  ASSERT_TRUE(chrome.ok()) << chrome.status();
  ASSERT_EQ(chrome->status, 200);
  EXPECT_NE(chrome->body.find("\"traceEvents\""), std::string::npos);
}

TEST_F(HttpServerTest, DebugVarsReportsConfigAndTraceState) {
  ScopedRecorder recorder(/*sample_every=*/1, /*slow_threshold_ms=*/0.0);
  auto engine = MakeEngine(2);
  auto server = StartServer(engine.get());
  HttpClient client = Connect(*server);

  auto vars = client.Get("/debug/vars");
  ASSERT_TRUE(vars.ok()) << vars.status();
  ASSERT_EQ(vars->status, 200);
  EXPECT_EQ(vars->header("Content-Type"), "application/json");
  auto doc = ParseJson(vars->body);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_object());
  for (const char* section : {"server", "service", "trace", "build"}) {
    EXPECT_NE(doc->Find(section), nullptr) << "missing " << section;
  }
  // Spot-check live values against what the test actually configured.
  EXPECT_NE(vars->body.find("\"port\":" + std::to_string(server->port())),
            std::string::npos)
      << vars->body;
  EXPECT_NE(vars->body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(vars->body.find("\"sample_every\":1"), std::string::npos);
  // Two shard breakers, both closed.
  EXPECT_NE(vars->body.find("\"shards\":[{"), std::string::npos);
  EXPECT_NE(vars->body.find("\"state\":\"closed\""), std::string::npos);
}

}  // namespace
}  // namespace soda
