// Unit tests for the SQL executor.

#include <gtest/gtest.h>

#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/table.h"

namespace soda {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* parties = *db_.CreateTable(
        "parties", {{"id", ValueType::kInt64}, {"type", ValueType::kString}});
    Table* individuals = *db_.CreateTable(
        "individuals", {{"id", ValueType::kInt64},
                        {"name", ValueType::kString},
                        {"salary", ValueType::kInt64},
                        {"birthday", ValueType::kDate}});
    Table* orders = *db_.CreateTable(
        "orders", {{"id", ValueType::kInt64},
                   {"party", ValueType::kInt64},
                   {"amount", ValueType::kDouble},
                   {"currency", ValueType::kString}});
    struct P {
      int64_t id;
      const char* name;
      int64_t salary;
      const char* birthday;
    };
    for (const P& p : std::initializer_list<P>{
             {1, "Sara", 900, "1981-04-23"},
             {2, "Bruno", 500, "1975-01-15"},
             {3, "Carla", 1200, "1990-07-30"}}) {
      ASSERT_TRUE(parties->Append({Value::Int(p.id),
                                   Value::Str("individual")}).ok());
      ASSERT_TRUE(individuals
                      ->Append({Value::Int(p.id), Value::Str(p.name),
                                Value::Int(p.salary),
                                Value::DateV(*Date::Parse(p.birthday))})
                      .ok());
    }
    struct O {
      int64_t id, party;
      double amount;
      const char* currency;
    };
    for (const O& o : std::initializer_list<O>{{10, 1, 100.0, "CHF"},
                                               {11, 1, 250.0, "YEN"},
                                               {12, 2, 75.0, "CHF"},
                                               {13, 3, 300.0, "YEN"},
                                               {14, 3, 125.0, "YEN"}}) {
      ASSERT_TRUE(orders
                      ->Append({Value::Int(o.id), Value::Int(o.party),
                                Value::Real(o.amount),
                                Value::Str(o.currency)})
                      .ok());
    }
    executor_ = std::make_unique<Executor>(&db_);
  }

  ResultSet Run(const std::string& sql) {
    auto rs = executor_->ExecuteSql(sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    return rs.ok() ? *rs : ResultSet{};
  }

  Database db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, FullScan) {
  ResultSet rs = Run("SELECT * FROM individuals");
  EXPECT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.num_columns(), 4u);
  EXPECT_EQ(rs.column_names[1], "individuals.name");
}

TEST_F(ExecutorTest, FilterEquality) {
  ResultSet rs = Run("SELECT * FROM individuals WHERE name = 'Sara'");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
}

TEST_F(ExecutorTest, FilterRange) {
  ResultSet rs = Run("SELECT * FROM individuals WHERE salary >= 900");
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(ExecutorTest, FilterDate) {
  ResultSet rs = Run(
      "SELECT * FROM individuals WHERE birthday > DATE '1980-01-01'");
  EXPECT_EQ(rs.num_rows(), 2u);  // Sara and Carla
}

TEST_F(ExecutorTest, HashJoin) {
  ResultSet rs = Run(
      "SELECT individuals.name, orders.amount FROM individuals, orders "
      "WHERE orders.party = individuals.id");
  EXPECT_EQ(rs.num_rows(), 5u);
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  ResultSet rs = Run(
      "SELECT * FROM parties, individuals, orders "
      "WHERE individuals.id = parties.id "
      "AND orders.party = individuals.id "
      "AND orders.currency = 'YEN'");
  EXPECT_EQ(rs.num_rows(), 3u);
}

TEST_F(ExecutorTest, CrossProductWhenNoJoinCondition) {
  ResultSet rs = Run("SELECT * FROM parties, orders");
  EXPECT_EQ(rs.num_rows(), 15u);  // 3 x 5
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  ResultSet rs = Run(
      "SELECT sum(orders.amount), count(*), orders.currency FROM orders "
      "GROUP BY orders.currency ORDER BY orders.currency");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][2], Value::Str("CHF"));
  EXPECT_EQ(rs.rows[0][0], Value::Real(175.0));
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));
  EXPECT_EQ(rs.rows[1][0], Value::Real(675.0));
}

TEST_F(ExecutorTest, AggregateWithoutGroupBy) {
  ResultSet rs = Run("SELECT count(*), sum(amount), avg(amount), "
                     "min(amount), max(amount) FROM orders");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(5));
  EXPECT_EQ(rs.rows[0][1], Value::Real(850.0));
  EXPECT_EQ(rs.rows[0][2], Value::Real(170.0));
  EXPECT_EQ(rs.rows[0][3], Value::Real(75.0));
  EXPECT_EQ(rs.rows[0][4], Value::Real(300.0));
}

TEST_F(ExecutorTest, CountDistinct) {
  ResultSet rs = Run("SELECT count(DISTINCT orders.party) FROM orders");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
}

TEST_F(ExecutorTest, CountStarOnEmptyInputIsZero) {
  ResultSet rs = Run("SELECT count(*) FROM orders WHERE amount > 99999");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(0));
}

TEST_F(ExecutorTest, SumOfEmptyIsNull) {
  ResultSet rs = Run("SELECT sum(amount) FROM orders WHERE amount > 99999");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST_F(ExecutorTest, OrderByDescWithLimit) {
  ResultSet rs = Run(
      "SELECT orders.id, orders.amount FROM orders "
      "ORDER BY orders.amount DESC LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][1], Value::Real(300.0));
  EXPECT_EQ(rs.rows[1][1], Value::Real(250.0));
}

TEST_F(ExecutorTest, OrderByAggregate) {
  ResultSet rs = Run(
      "SELECT count(*), orders.party FROM orders GROUP BY orders.party "
      "ORDER BY count(*) DESC, orders.party");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][1], Value::Int(1));  // parties 1 and 3 tie at 2
  EXPECT_EQ(rs.rows[1][1], Value::Int(3));
}

TEST_F(ExecutorTest, Distinct) {
  ResultSet rs = Run("SELECT DISTINCT orders.currency FROM orders");
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(ExecutorTest, LikeFilter) {
  ResultSet rs = Run("SELECT * FROM individuals WHERE name LIKE 'S%'");
  EXPECT_EQ(rs.num_rows(), 1u);
}

TEST_F(ExecutorTest, UnknownTableFails) {
  auto rs = executor_->ExecuteSql("SELECT * FROM missing");
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, UnknownColumnFails) {
  auto rs = executor_->ExecuteSql("SELECT nope FROM orders");
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, AmbiguousColumnFails) {
  auto rs = executor_->ExecuteSql(
      "SELECT id FROM parties, individuals "
      "WHERE parties.id = individuals.id");
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, UngroupedColumnWithAggregateFails) {
  auto rs = executor_->ExecuteSql(
      "SELECT orders.currency, count(*) FROM orders");
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, DuplicateQualifierFails) {
  auto rs = executor_->ExecuteSql("SELECT * FROM orders, orders");
  EXPECT_EQ(rs.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, NullNeverJoins) {
  Table* t = *db_.CreateTable("with_nulls", {{"ref", ValueType::kInt64}});
  t->AppendUnchecked({Value::Null()});
  t->AppendUnchecked({Value::Int(1)});
  ResultSet rs = Run(
      "SELECT * FROM with_nulls, individuals "
      "WHERE with_nulls.ref = individuals.id");
  EXPECT_EQ(rs.num_rows(), 1u);
}

// SQL LIKE semantics.
struct LikeCase {
  const char* text;
  const char* pattern;
  bool expected;
};

class SqlLikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(SqlLikeTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(SqlLikeMatch(c.text, c.pattern), c.expected)
      << c.text << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SqlLikeTest,
    ::testing::Values(LikeCase{"Credit Suisse", "%Suisse%", true},
                      LikeCase{"Credit Suisse", "Credit%", true},
                      LikeCase{"Credit Suisse", "%Credit", false},
                      LikeCase{"Sara", "S_ra", true},
                      LikeCase{"Sara", "S_r", false},
                      LikeCase{"", "%", true},
                      LikeCase{"", "_", false},
                      LikeCase{"abc", "abc", true},
                      LikeCase{"abc", "ABC", false},  // case-sensitive
                      LikeCase{"a%b", "a%b", true},
                      LikeCase{"xyz", "%%%", true},
                      LikeCase{"mississippi", "%iss%ppi", true}));

}  // namespace
}  // namespace soda
