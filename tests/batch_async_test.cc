// Tests for the batched and asynchronous SodaEngine entry points:
//
//   - SearchAll determinism: output order and bytes match N independent
//     Search calls at num_threads 1 and 4;
//   - batch cache accounting: a repeated normalized query inside one
//     batch books one miss + N-1 hits (dedup before the cache);
//   - per-query error isolation inside a batch;
//   - async streaming: snippet callbacks arrive exactly once per
//     (query, result) pair and the barrier drains even when callbacks
//     throw.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace soda {
namespace {

// Serializes everything rank-relevant about an output, snippets included,
// so "byte-identical" is literal.
std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

std::vector<std::string> MiniBankQueries() {
  return {
      "customers Zürich financial instruments",
      "trading volume transaction date between date(2010-01-01) "
      "date(2011-12-31)",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
}

class BatchAsyncTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete bank_;
    bank_ = nullptr;
  }

  static std::unique_ptr<SodaEngine> MakeEngine(size_t threads,
                                                size_t cache_capacity) {
    SodaConfig config;
    config.num_threads = threads;
    config.cache_capacity = cache_capacity;
    auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                     CreditSuissePatternLibrary(), config);
    EXPECT_TRUE(engine.ok()) << engine.status();
    return std::move(engine).value();
  }

  static MiniBank* bank_;
};

MiniBank* BatchAsyncTest::bank_ = nullptr;

// ---------------------------------------------------------------------------
// SearchAll determinism and ordering
// ---------------------------------------------------------------------------

TEST_F(BatchAsyncTest, SearchAllMatchesIndependentSearchesAtAnyThreadCount) {
  const std::vector<std::string> queries = MiniBankQueries();
  // Reference bytes from a cache-free engine's serial-equivalent answers.
  auto reference = MakeEngine(/*threads=*/1, /*cache_capacity=*/0);
  std::vector<std::string> expected;
  for (const std::string& query : queries) {
    auto output = reference->Search(query);
    ASSERT_TRUE(output.ok()) << output.status();
    expected.push_back(Fingerprint(*output));
  }

  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto engine = MakeEngine(threads, /*cache_capacity=*/0);
    auto outputs = engine->SearchAll(queries);
    ASSERT_EQ(outputs.size(), queries.size()) << "threads=" << threads;
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(outputs[i].ok())
          << "threads=" << threads << " query=" << queries[i] << ": "
          << outputs[i].status();
      EXPECT_EQ(Fingerprint(*outputs[i]), expected[i])
          << "threads=" << threads << " query=" << queries[i];
    }
  }
}

TEST_F(BatchAsyncTest, SearchAllPreservesInputOrderWithDuplicates) {
  auto engine = MakeEngine(/*threads=*/4, /*cache_capacity=*/8);
  const std::vector<std::string> queries = {
      "addresses Sara Guttinger",
      "customers Zürich financial instruments",
      "addresses Sara Guttinger",       // exact repeat
      "  addresses   Sara Guttinger ",  // whitespace-variant repeat
  };
  auto outputs = engine->SearchAll(queries);
  ASSERT_EQ(outputs.size(), 4u);
  for (const auto& output : outputs) ASSERT_TRUE(output.ok());
  EXPECT_EQ(Fingerprint(*outputs[0]), Fingerprint(*outputs[2]));
  EXPECT_EQ(Fingerprint(*outputs[0]), Fingerprint(*outputs[3]));
  EXPECT_NE(Fingerprint(*outputs[0]), Fingerprint(*outputs[1]));
}

TEST_F(BatchAsyncTest, SearchAllEmptyBatch) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/0);
  const std::vector<std::string> empty;
  EXPECT_TRUE(engine->SearchAll(empty).empty());
}

TEST_F(BatchAsyncTest, SearchAllIsolatesPerQueryErrors) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/0);
  const std::vector<std::string> queries = {
      "addresses Sara Guttinger",
      "sum(investments",  // unbalanced '(' — parse error
      "private customers family name",
  };
  auto outputs = engine->SearchAll(queries);
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_TRUE(outputs[0].ok()) << outputs[0].status();
  ASSERT_FALSE(outputs[1].ok());
  EXPECT_EQ(outputs[1].status().code(), StatusCode::kParseError);
  EXPECT_TRUE(outputs[2].ok()) << outputs[2].status();
}

// ---------------------------------------------------------------------------
// Batch cache accounting (dedup before the cache)
// ---------------------------------------------------------------------------

TEST_F(BatchAsyncTest, RepeatedQueryInBatchCountsOneMissAndRestHits) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/8);
  const std::string query = "addresses Sara Guttinger";
  const std::vector<std::string> queries = {query, query, query, query};

  auto outputs = engine->SearchAll(queries);
  ASSERT_EQ(outputs.size(), 4u);
  for (const auto& output : outputs) ASSERT_TRUE(output.ok());

  CacheStats stats = engine->cache_stats();
  EXPECT_EQ(stats.misses, 1u);  // one probe for the unique key
  EXPECT_EQ(stats.hits, 3u);    // the three in-batch repeats
  EXPECT_EQ(stats.size, 1u);    // one entry, keyed on the normalized query

  // First occurrence ran the pipeline; repeats were served.
  EXPECT_FALSE(outputs[0]->from_cache);
  EXPECT_TRUE(outputs[1]->from_cache);
  EXPECT_TRUE(outputs[2]->from_cache);
  EXPECT_TRUE(outputs[3]->from_cache);

  // Every response carries the post-batch lifetime counters.
  for (const auto& output : outputs) {
    EXPECT_EQ(output->cache_hits, 3u);
    EXPECT_EQ(output->cache_misses, 1u);
  }

  // A whole-batch repeat is now all hits: 1 probe hit + 3 dedup hits.
  auto again = engine->SearchAll(queries);
  for (const auto& output : again) {
    ASSERT_TRUE(output.ok());
    EXPECT_TRUE(output->from_cache);
  }
  stats = engine->cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
}

TEST_F(BatchAsyncTest, WhitespaceVariantsShareOneCacheEntry) {
  auto engine = MakeEngine(/*threads=*/1, /*cache_capacity=*/8);
  const std::vector<std::string> queries = {
      "addresses Sara Guttinger",
      "addresses   Sara   Guttinger",
      "  addresses Sara Guttinger  ",
  };
  auto outputs = engine->SearchAll(queries);
  for (const auto& output : outputs) ASSERT_TRUE(output.ok());
  CacheStats stats = engine->cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.size, 1u);
}

TEST_F(BatchAsyncTest, DisabledCacheStillDedupsButBooksNothing) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/0);
  const std::string query = "addresses Sara Guttinger";
  auto outputs = engine->SearchAll({query, query, query});
  ASSERT_EQ(outputs.size(), 3u);
  for (const auto& output : outputs) ASSERT_TRUE(output.ok());
  // Identical bytes either way; with the cache off nothing is booked as
  // a hit and nothing claims to come from the cache.
  EXPECT_EQ(Fingerprint(*outputs[0]), Fingerprint(*outputs[1]));
  EXPECT_FALSE(outputs[1]->from_cache);
  EXPECT_EQ(engine->cache_stats().hits, 0u);
  // The dedup still amortized the pipeline: one batch.unique for three
  // batch.queries.
  MetricsSnapshot snapshot = engine->metrics_snapshot();
  EXPECT_EQ(snapshot.counter("batch.queries"), 3u);
  EXPECT_EQ(snapshot.counter("batch.unique"), 1u);
}

TEST_F(BatchAsyncTest, BatchSeedsCacheForLaterSingleSearches) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/8);
  const std::string query = "private customers family name";
  auto outputs = engine->SearchAll({query});
  ASSERT_TRUE(outputs[0].ok());
  auto single = engine->Search(query);
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(single->from_cache);
  EXPECT_EQ(Fingerprint(*outputs[0]), Fingerprint(*single));
}

// ---------------------------------------------------------------------------
// Async snippet streaming
// ---------------------------------------------------------------------------

// Thread-safe recorder asserting the exactly-once delivery contract.
class CallbackRecorder {
 public:
  SnippetCallback Callback() {
    return [this](size_t query_index, size_t result_index,
                  const SodaResult& result) {
      std::lock_guard<std::mutex> lock(mu_);
      ++deliveries_[{query_index, result_index}];
      executed_and_nonempty_sql_ &= !result.sql.empty();
    };
  }

  std::map<std::pair<size_t, size_t>, int> deliveries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return deliveries_;
  }
  bool sql_always_present() const {
    std::lock_guard<std::mutex> lock(mu_);
    return executed_and_nonempty_sql_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<size_t, size_t>, int> deliveries_;
  bool executed_and_nonempty_sql_ = true;
};

TEST_F(BatchAsyncTest, AsyncDeliversExactlyOncePerResult) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto engine = MakeEngine(threads, /*cache_capacity=*/0);
    const std::vector<std::string> queries = MiniBankQueries();
    CallbackRecorder recorder;
    SnippetBarrier barrier;
    auto outputs =
        engine->SearchAllAsync(queries, recorder.Callback(), &barrier);
    ASSERT_EQ(outputs.size(), queries.size());
    barrier.Wait();
    EXPECT_EQ(barrier.pending(), 0u);
    EXPECT_EQ(barrier.callback_exceptions(), 0u);

    size_t expected_total = 0;
    auto deliveries = recorder.deliveries();
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_TRUE(outputs[q].ok()) << queries[q];
      for (size_t r = 0; r < outputs[q]->results.size(); ++r) {
        auto it = deliveries.find({q, r});
        ASSERT_NE(it, deliveries.end())
            << "threads=" << threads << " missing callback for query " << q
            << " result " << r;
        EXPECT_EQ(it->second, 1)
            << "threads=" << threads << " duplicate callback for query " << q
            << " result " << r;
        ++expected_total;
      }
    }
    EXPECT_EQ(deliveries.size(), expected_total) << "threads=" << threads;
    EXPECT_EQ(barrier.delivered(), expected_total) << "threads=" << threads;
    EXPECT_TRUE(recorder.sql_always_present());
  }
}

TEST_F(BatchAsyncTest, AsyncReturnsTranslationImmediatelyAndExecutesLater) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/0);
  const std::string query = "addresses Sara Guttinger";
  std::atomic<size_t> executed_callbacks{0};
  SnippetBarrier barrier;
  auto output = engine->SearchAsync(
      query,
      [&](size_t query_index, size_t, const SodaResult& result) {
        EXPECT_EQ(query_index, 0u);
        if (result.executed) executed_callbacks.fetch_add(1);
      },
      &barrier);
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());
  // The immediate return carries translated, ranked SQL with execution
  // still pending.
  for (const SodaResult& result : output->results) {
    EXPECT_FALSE(result.sql.empty());
    EXPECT_FALSE(result.executed);
  }
  barrier.Wait();
  EXPECT_EQ(executed_callbacks.load(), output->results.size());
}

TEST_F(BatchAsyncTest, AsyncStreamedBytesMatchSyncSearch) {
  auto sync_engine = MakeEngine(/*threads=*/1, /*cache_capacity=*/0);
  auto async_engine = MakeEngine(/*threads=*/4, /*cache_capacity=*/0);
  for (const std::string& query : MiniBankQueries()) {
    auto expected = sync_engine->Search(query);
    ASSERT_TRUE(expected.ok());

    std::mutex mu;
    std::vector<SodaResult> streamed(expected->results.size());
    SnippetBarrier barrier;
    auto output = async_engine->SearchAsync(
        query,
        [&](size_t, size_t result_index, const SodaResult& result) {
          std::lock_guard<std::mutex> lock(mu);
          ASSERT_LT(result_index, streamed.size());
          streamed[result_index] = result;
        },
        &barrier);
    ASSERT_TRUE(output.ok());
    barrier.Wait();

    ASSERT_EQ(streamed.size(), expected->results.size()) << query;
    for (size_t r = 0; r < streamed.size(); ++r) {
      EXPECT_EQ(streamed[r].sql, expected->results[r].sql) << query;
      EXPECT_EQ(streamed[r].executed, expected->results[r].executed) << query;
      if (streamed[r].executed) {
        EXPECT_EQ(streamed[r].snippet.ToAsciiTable(),
                  expected->results[r].snippet.ToAsciiTable())
            << query;
      }
    }
  }
}

TEST_F(BatchAsyncTest, BarrierDrainsWhenCallbacksThrow) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto engine = MakeEngine(threads, /*cache_capacity=*/0);
    const std::vector<std::string> queries = MiniBankQueries();
    std::atomic<size_t> calls{0};
    SnippetBarrier barrier;
    auto outputs = engine->SearchAllAsync(
        queries,
        [&](size_t, size_t, const SodaResult&) {
          calls.fetch_add(1);
          throw std::runtime_error("sink is on fire");
        },
        &barrier);
    // Must not hang: every callback (all throwing) still drains.
    barrier.Wait();
    EXPECT_EQ(barrier.pending(), 0u) << "threads=" << threads;
    EXPECT_EQ(barrier.callback_exceptions(), calls.load())
        << "threads=" << threads;
    ASSERT_GT(calls.load(), 0u);
    ASSERT_NE(barrier.first_exception(), nullptr);
    try {
      std::rethrow_exception(barrier.first_exception());
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "sink is on fire");
    }
  }
}

TEST_F(BatchAsyncTest, AsyncDuplicateQueriesShareExecutionButGetOwnCallbacks) {
  auto engine = MakeEngine(/*threads=*/4, /*cache_capacity=*/8);
  const std::string query = "addresses Sara Guttinger";
  const std::vector<std::string> queries = {query, query};
  CallbackRecorder recorder;
  SnippetBarrier barrier;
  auto outputs = engine->SearchAllAsync(queries, recorder.Callback(), &barrier);
  ASSERT_EQ(outputs.size(), 2u);
  ASSERT_TRUE(outputs[0].ok());
  ASSERT_TRUE(outputs[1].ok());
  barrier.Wait();

  auto deliveries = recorder.deliveries();
  size_t results = outputs[0]->results.size();
  ASSERT_GT(results, 0u);
  EXPECT_EQ(deliveries.size(), 2 * results);  // both indices, every result
  for (size_t r = 0; r < results; ++r) {
    EXPECT_EQ((deliveries[{0, r}]), 1);
    EXPECT_EQ((deliveries[{1, r}]), 1);
  }
  // One translation + one execution, two bookings: 1 miss + 1 dedup hit.
  CacheStats stats = engine->cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(BatchAsyncTest, AsyncPopulatesCacheAfterStreaming) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/8);
  const std::string query = "private customers family name";
  SnippetBarrier barrier;
  auto output = engine->SearchAsync(query, nullptr, &barrier);
  ASSERT_TRUE(output.ok());
  barrier.Wait();

  // After the barrier the materialized (snippet-bearing) answer is in
  // the cache; a sync Search must hit and carry executed snippets.
  auto cached = engine->Search(query);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
  for (const SodaResult& result : cached->results) {
    EXPECT_TRUE(result.executed);
  }
}

TEST_F(BatchAsyncTest, AsyncErrorQueriesProduceNoCallbacks) {
  auto engine = MakeEngine(/*threads=*/2, /*cache_capacity=*/0);
  const std::vector<std::string> queries = {"sum(investments"};
  CallbackRecorder recorder;
  SnippetBarrier barrier;
  auto outputs = engine->SearchAllAsync(queries, recorder.Callback(), &barrier);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_FALSE(outputs[0].ok());
  barrier.Wait();  // returns immediately: nothing was expected
  EXPECT_TRUE(recorder.deliveries().empty());
  EXPECT_EQ(barrier.delivered(), 0u);
}

}  // namespace
}  // namespace soda
