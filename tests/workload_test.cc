// Validation of the benchmark workload definition: every gold statement
// parses and executes on the enterprise warehouse, extractors are
// non-empty, and the paper reference numbers are present.

#include <gtest/gtest.h>

#include <memory>

#include "datasets/enterprise.h"
#include "eval/workload.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "text/inverted_index.h"

namespace soda {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    warehouse_ = BuildEnterpriseWarehouse().value().release();
  }
  static void TearDownTestSuite() { delete warehouse_; }

  static EnterpriseWarehouse* warehouse_;
};

EnterpriseWarehouse* WorkloadTest::warehouse_ = nullptr;

TEST_F(WorkloadTest, ThirteenQueries) {
  EXPECT_EQ(EnterpriseWorkload().size(), 13u);
}

TEST_F(WorkloadTest, GoldStatementsParseAndExecute) {
  Executor executor(&warehouse_->db);
  for (const BenchmarkQuery& query : EnterpriseWorkload()) {
    for (const std::string& sql : query.gold_sql) {
      auto stmt = ParseSql(sql);
      ASSERT_TRUE(stmt.ok()) << "Q" << query.id << ": " << stmt.status()
                             << "\n" << sql;
      auto rs = executor.Execute(*stmt);
      ASSERT_TRUE(rs.ok()) << "Q" << query.id << ": " << rs.status();
      EXPECT_GT(rs->num_rows(), 0u) << "Q" << query.id
                                    << " gold result is empty:\n" << sql;
    }
  }
}

TEST_F(WorkloadTest, EveryQueryHasExtractorsAndPaperNumbers) {
  for (const BenchmarkQuery& query : EnterpriseWorkload()) {
    EXPECT_FALSE(query.keywords.empty()) << query.id;
    EXPECT_FALSE(query.extractors.empty()) << query.id;
    EXPECT_FALSE(query.types.empty()) << query.id;
    EXPECT_GE(query.paper_precision, 0.0) << query.id;
    EXPECT_LE(query.paper_precision, 1.0) << query.id;
    EXPECT_GT(query.paper_complexity, 0) << query.id;
    EXPECT_GT(query.paper_soda_seconds, 0.0) << query.id;
  }
}

TEST_F(WorkloadTest, GoldStandardsEncodeTheKnownCardinalities) {
  Executor executor(&warehouse_->db);
  // Q2.1 gold: the five name-history versions of Sara.
  auto sara = executor.ExecuteSql(EnterpriseWorkload()[1].gold_sql[0]);
  ASSERT_TRUE(sara.ok());
  EXPECT_EQ(sara->num_rows(), static_cast<size_t>(kEntNameVersions));

  // Q5.0 gold: one current name per customer, both legs.
  auto leg1 = executor.ExecuteSql(EnterpriseWorkload()[7].gold_sql[0]);
  auto leg2 = executor.ExecuteSql(EnterpriseWorkload()[7].gold_sql[1]);
  ASSERT_TRUE(leg1.ok());
  ASSERT_TRUE(leg2.ok());
  EXPECT_EQ(leg1->num_rows(), static_cast<size_t>(kEntIndividuals));
  EXPECT_EQ(leg2->num_rows(), static_cast<size_t>(kEntOrganizations));

  // Q7.0 gold: orders with both currencies YEN.
  auto yen = executor.ExecuteSql(EnterpriseWorkload()[9].gold_sql[0]);
  ASSERT_TRUE(yen.ok());
  EXPECT_EQ(yen->num_rows(),
            static_cast<size_t>(kEntYenSettledYenOrders));

  // Q9.0 gold: the distinct count of Swiss private customers.
  auto swiss = executor.ExecuteSql(EnterpriseWorkload()[11].gold_sql[0]);
  ASSERT_TRUE(swiss.ok());
  ASSERT_EQ(swiss->num_rows(), 1u);
  EXPECT_EQ(swiss->rows[0][0],
            Value::Int(kEntSwissIndividuals));
}

TEST_F(WorkloadTest, EnterpriseIsDeterministic) {
  auto again = BuildEnterpriseWarehouse();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->db.TotalRows(), warehouse_->db.TotalRows());
  EXPECT_EQ((*again)->graph.num_nodes(), warehouse_->graph.num_nodes());
  EXPECT_EQ((*again)->graph.num_edges(), warehouse_->graph.num_edges());
}

TEST_F(WorkloadTest, PlantedValuesExactCardinalities) {
  // "Credit Suisse" occurs in exactly 12 distinct (table, column, value)
  // homes — the paper's Q3.x complexity.
  InvertedIndex index;
  index.Build(warehouse_->db);
  EXPECT_EQ(index.LookupPhrase("credit suisse").size(), 12u);
  // "Sara" in exactly 4.
  EXPECT_EQ(index.LookupPhrase("sara").size(), 4u);
  // "Lehman XYZ" in exactly 2.
  EXPECT_EQ(index.LookupPhrase("lehman xyz").size(), 2u);
}

}  // namespace
}  // namespace soda
