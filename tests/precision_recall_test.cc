// Unit tests for the evaluation harness building blocks.

#include <gtest/gtest.h>

#include "eval/precision_recall.h"

namespace soda {
namespace {

ResultSet MakeResult(std::vector<std::string> columns,
                     std::vector<std::vector<Value>> rows) {
  ResultSet rs;
  rs.column_names = std::move(columns);
  rs.rows = std::move(rows);
  return rs;
}

TEST(PrecisionRecallTest, PerfectMatch) {
  std::set<std::string> gold = {"a", "b", "c"};
  PrScore score = ComputePr(gold, gold);
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
  EXPECT_DOUBLE_EQ(score.f1(), 1.0);
}

TEST(PrecisionRecallTest, Subset) {
  PrScore score = ComputePr({"a"}, {"a", "b", "c", "d", "e"});
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.recall, 0.2);  // the paper's Q2.1 shape
}

TEST(PrecisionRecallTest, Superset) {
  PrScore score = ComputePr({"a", "b"}, {"a"});
  EXPECT_DOUBLE_EQ(score.precision, 0.5);  // the paper's Q7.0 shape
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
}

TEST(PrecisionRecallTest, Disjoint) {
  PrScore score = ComputePr({"x", "y"}, {"a", "b"});
  EXPECT_DOUBLE_EQ(score.precision, 0.0);
  EXPECT_DOUBLE_EQ(score.recall, 0.0);
  EXPECT_DOUBLE_EQ(score.f1(), 0.0);
}

TEST(PrecisionRecallTest, EmptyResult) {
  PrScore score = ComputePr({}, {"a"});
  EXPECT_DOUBLE_EQ(score.precision, 0.0);
  EXPECT_DOUBLE_EQ(score.recall, 0.0);
}

TEST(ExtractTuplesTest, ExactColumnMatch) {
  ResultSet rs = MakeResult({"id", "name"},
                            {{Value::Int(1), Value::Str("Sara")},
                             {Value::Int(2), Value::Str("Bruno")}});
  auto tuples = ExtractTuples(rs, {{"id", "name"}});
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(ExtractTuplesTest, SuffixMatchAtDotBoundary) {
  ResultSet rs = MakeResult(
      {"indvl_nm_hist_td.family_name", "indvl_td.id"},
      {{Value::Str("Guttinger"), Value::Int(7)}});
  auto tuples = ExtractTuples(rs, {{"id", "family_name"}});
  EXPECT_EQ(tuples.size(), 1u);
  // But not a non-boundary suffix:
  ResultSet trap = MakeResult({"t.a_family_name"}, {{Value::Str("x")}});
  EXPECT_TRUE(ExtractTuples(trap, {{"family_name"}}).empty());
}

TEST(ExtractTuplesTest, AlternativesTryInOrder) {
  ResultSet rs = MakeResult({"indvl_id"}, {{Value::Int(7)}});
  auto tuples = ExtractTuples(rs, {{"indvl_td.id|indvl_id"}});
  EXPECT_EQ(tuples.size(), 1u);
}

TEST(ExtractTuplesTest, MissingColumnYieldsNothing) {
  ResultSet rs = MakeResult({"id"}, {{Value::Int(1)}});
  EXPECT_TRUE(ExtractTuples(rs, {{"id", "missing"}}).empty());
}

TEST(ExtractTuplesTest, MultipleExtractorsUnion) {
  ResultSet rs = MakeResult(
      {"party_td.id", "family_name", "org_name"},
      {{Value::Int(1), Value::Str("Meier"), Value::Str("Acme")}});
  auto tuples = ExtractTuples(
      rs, {{"party_td.id", "family_name"}, {"party_td.id", "org_name"}});
  EXPECT_EQ(tuples.size(), 2u);  // the Q5.0 evaluation mechanism
}

TEST(ExtractTuplesTest, DistinctTuplesOnly) {
  ResultSet rs = MakeResult({"id"}, {{Value::Int(1)},
                                     {Value::Int(1)},
                                     {Value::Int(2)}});
  auto tuples = ExtractTuples(rs, {{"id"}});
  EXPECT_EQ(tuples.size(), 2u);  // set semantics
}

TEST(AllTuplesTest, WholeRowKeys) {
  ResultSet rs = MakeResult({"a", "b"},
                            {{Value::Int(1), Value::Str("x")},
                             {Value::Int(1), Value::Str("x")},
                             {Value::Int(1), Value::Str("y")}});
  EXPECT_EQ(AllTuples(rs).size(), 2u);
}

TEST(AllTuplesTest, TypedTuplesDistinguished) {
  // Int 1 and string "1" must not collide as tuples.
  ResultSet a = MakeResult({"v"}, {{Value::Int(1)}});
  ResultSet b = MakeResult({"v"}, {{Value::Str("1")}});
  PrScore score = ComputePr(AllTuples(a), AllTuples(b));
  EXPECT_DOUBLE_EQ(score.precision, 0.0);
}

}  // namespace
}  // namespace soda
