// Tests for the MetricsSink observability surface: the in-memory sink's
// counter/histogram aggregation, snapshot consistency under concurrency,
// the pipeline drivers' per-stage latency export, and the SodaEngine's
// service-level counters (cache, batch dedup, snippets, queue depth).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace soda {
namespace {

// ---------------------------------------------------------------------------
// InMemoryMetricsSink
// ---------------------------------------------------------------------------

TEST(InMemoryMetricsSinkTest, CountersAccumulate) {
  InMemoryMetricsSink sink;
  sink.IncrementCounter("a", 1);
  sink.IncrementCounter("a", 2);
  sink.IncrementCounter("b", 5);
  MetricsSnapshot snapshot = sink.Snapshot();
  EXPECT_EQ(snapshot.counter("a"), 3u);
  EXPECT_EQ(snapshot.counter("b"), 5u);
  EXPECT_EQ(snapshot.counter("missing"), 0u);
}

TEST(InMemoryMetricsSinkTest, HistogramStatistics) {
  InMemoryMetricsSink sink;
  for (double v : {0.5, 1.5, 2.0, 8.0, 40.0}) sink.Observe("lat", v);
  MetricsSnapshot snapshot = sink.Snapshot();
  const HistogramSnapshot* h = snapshot.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
  EXPECT_DOUBLE_EQ(h->sum, 52.0);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 40.0);
  EXPECT_DOUBLE_EQ(h->mean(), 52.0 / 5);
  // Percentiles are bucket upper bounds: p0 lands in the 0.5 bucket, the
  // median sample (2.0) lands in the 2.5 bucket, p100 in the 50 bucket.
  EXPECT_DOUBLE_EQ(h->Percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(h->Percentile(50), 2.5);
  EXPECT_DOUBLE_EQ(h->Percentile(100), 50.0);
}

TEST(InMemoryMetricsSinkTest, HistogramOverflowBucketUsesObservedMax) {
  InMemoryMetricsSink sink;
  sink.Observe("lat", 10000.0);  // beyond the last finite bound
  MetricsSnapshot snapshot = sink.Snapshot();
  const HistogramSnapshot* h = snapshot.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->buckets.back(), 1u);
  EXPECT_DOUBLE_EQ(h->Percentile(99), 10000.0);
}

TEST(InMemoryMetricsSinkTest, EmptyHistogramPercentileIsZero) {
  HistogramSnapshot h;
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(InMemoryMetricsSinkTest, ResetClearsEverything) {
  InMemoryMetricsSink sink;
  sink.IncrementCounter("a", 1);
  sink.Observe("lat", 1.0);
  sink.Reset();
  MetricsSnapshot snapshot = sink.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(InMemoryMetricsSinkTest, ToStringListsEveryMetric) {
  InMemoryMetricsSink sink;
  sink.IncrementCounter("cache.hit", 7);
  sink.Observe("stage.lookup.ms", 1.25);
  std::string text = sink.Snapshot().ToString();
  EXPECT_NE(text.find("cache.hit"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("stage.lookup.ms"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(InMemoryMetricsSinkTest, ConcurrentObservationsAreLossless) {
  InMemoryMetricsSink sink;
  const int kThreads = 4;
  const int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.IncrementCounter("events", 1);
        sink.Observe("value", 1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MetricsSnapshot snapshot = sink.Snapshot();
  EXPECT_EQ(snapshot.counter("events"),
            static_cast<uint64_t>(kThreads * kPerThread));
  const HistogramSnapshot* h = snapshot.histogram("value");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h->sum, static_cast<double>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// Pipeline + engine integration
// ---------------------------------------------------------------------------

class MetricsIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
  }
  static void TearDownTestSuite() {
    delete bank_;
    bank_ = nullptr;
  }

  static MiniBank* bank_;
};

MiniBank* MetricsIntegrationTest::bank_ = nullptr;

TEST_F(MetricsIntegrationTest, SerialSearchExportsPerStageLatencies) {
  auto soda =
      Soda::Create(&bank_->db, &bank_->graph, CreditSuissePatternLibrary(),
                   SodaConfig{});
  ASSERT_TRUE(soda.ok()) << soda.status();
  InMemoryMetricsSink sink;
  auto output = (*soda)->Search("private customers family name", &sink);
  ASSERT_TRUE(output.ok()) << output.status();

  MetricsSnapshot snapshot = sink.Snapshot();
  // Query-level stages observe once; per-interpretation stages observe
  // once per surviving interpretation.
  for (const char* stage :
       {"stage.lookup.ms", "stage.rank.ms", "stage.tables.ms",
        "stage.filters.ms", "stage.sql.ms"}) {
    const HistogramSnapshot* h = snapshot.histogram(stage);
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_GE(h->count, 1u) << stage;
  }
  EXPECT_EQ(snapshot.counter("soda.search"), 1u);
  EXPECT_GE(snapshot.counter("snippet.executed") +
                snapshot.counter("snippet.failed"),
            output->results.size());
  ASSERT_NE(snapshot.histogram("search.wall.ms"), nullptr);
  ASSERT_NE(snapshot.histogram("executor.rows"), nullptr);
}

TEST_F(MetricsIntegrationTest, EngineRecordsCacheAndBatchCounters) {
  SodaConfig config;
  config.num_threads = 2;
  config.cache_capacity = 8;
  auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                   CreditSuissePatternLibrary(), config);
  ASSERT_TRUE(engine.ok()) << engine.status();

  const std::string query = "addresses Sara Guttinger";
  ASSERT_TRUE((*engine)->Search(query).ok());  // miss
  ASSERT_TRUE((*engine)->Search(query).ok());  // hit
  auto batch = (*engine)->SearchAll({query, query});  // hit + dedup hit

  MetricsSnapshot snapshot = (*engine)->metrics_snapshot();
  EXPECT_EQ(snapshot.counter("engine.search"), 2u);
  EXPECT_EQ(snapshot.counter("engine.search_all"), 1u);
  EXPECT_EQ(snapshot.counter("cache.miss"), 1u);
  EXPECT_EQ(snapshot.counter("cache.hit"), 2u);
  EXPECT_EQ(snapshot.counter("batch.queries"), 2u);
  EXPECT_EQ(snapshot.counter("batch.unique"), 1u);
  EXPECT_EQ(snapshot.counter("batch.dedup_hits"), 1u);
  // The sink's view agrees with the cache's own books.
  CacheStats stats = (*engine)->cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
  // Stage latencies flowed through the concurrent drivers too.
  ASSERT_NE(snapshot.histogram("stage.lookup.ms"), nullptr);
  ASSERT_NE(snapshot.histogram("stage.tables.ms"), nullptr);
  ASSERT_NE(snapshot.histogram("pool.queue_depth"), nullptr);
}

TEST_F(MetricsIntegrationTest, CustomSinkReceivesEngineTraffic) {
  SodaConfig config;
  config.num_threads = 1;
  config.cache_capacity = 4;
  auto engine = SodaEngine::Create(&bank_->db, &bank_->graph,
                                   CreditSuissePatternLibrary(), config);
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto custom = std::make_shared<InMemoryMetricsSink>();
  (*engine)->set_metrics_sink(custom);
  ASSERT_TRUE((*engine)->Search("addresses Sara Guttinger").ok());

  // Traffic lands in the custom sink, not the (now frozen) default one.
  EXPECT_EQ(custom->Snapshot().counter("engine.search"), 1u);
  EXPECT_EQ((*engine)->metrics_snapshot().counter("engine.search"), 0u);

  // nullptr restores the built-in sink.
  (*engine)->set_metrics_sink(nullptr);
  ASSERT_TRUE((*engine)->Search("addresses Sara Guttinger").ok());
  EXPECT_EQ((*engine)->metrics_snapshot().counter("engine.search"), 1u);
  EXPECT_EQ(custom->Snapshot().counter("engine.search"), 1u);
}

}  // namespace
}  // namespace soda
