// Unit tests for the concurrency substrate of the SodaEngine: the
// fixed-size ThreadPool and the bounded thread-safe LruCache.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/lru_cache.h"
#include "common/thread_pool.h"

namespace soda {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ZeroAndOneThreadRunInline) {
  for (size_t n : {size_t{0}, size_t{1}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), 0u);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.Submit([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, caller);
  }
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable done;
  const int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (count.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        done.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait_for(lock, std::chrono::seconds(30),
                [&] { return count.load() == kTasks; });
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForSerialOrderWithoutWorkers) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForEmptyAndNested) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "body must not run"; });
  // The calling thread participates, so ParallelFor makes progress even
  // when issued from within a pool task.
  std::atomic<int> inner{0};
  std::atomic<bool> finished{false};
  pool.Submit([&] {
    pool.ParallelFor(8, [&](size_t) { inner.fetch_add(1); });
    finished.store(true);
  });
  for (int spin = 0; spin < 3000 && !finished.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(finished.load());
  EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
  }  // join
  EXPECT_EQ(count.load(), 50);
}

// ---------------------------------------------------------------------------
// LruCache
// ---------------------------------------------------------------------------

TEST(LruCacheTest, MissThenHit) {
  LruCache<std::string, int> cache(4);
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", std::make_shared<const int>(1));
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", std::make_shared<const int>(1));
  cache.Put("b", std::make_shared<const int>(2));
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh a; b is now LRU
  cache.Put("c", std::make_shared<const int>(3));
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutReplacesValue) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", std::make_shared<const int>(1));
  cache.Put("a", std::make_shared<const int>(9));
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 9);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  LruCache<std::string, int> cache(0);
  cache.Put("a", std::make_shared<const int>(1));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, EvictionDoesNotInvalidateReaders) {
  LruCache<std::string, int> cache(1);
  cache.Put("a", std::make_shared<const int>(42));
  auto held = cache.Get("a");
  cache.Put("b", std::make_shared<const int>(7));  // evicts a
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*held, 42);  // reader's shared_ptr keeps the value alive
}

TEST(LruCacheTest, EraseIfDropsExactlyMatchingKeys) {
  LruCache<std::string, int> cache(8);
  cache.Put("orders today", std::make_shared<const int>(1));
  cache.Put("orders open", std::make_shared<const int>(2));
  cache.Put("customers Zürich", std::make_shared<const int>(3));
  size_t erased = cache.EraseIf([](const std::string& key) {
    return key.rfind("orders", 0) == 0;
  });
  EXPECT_EQ(erased, 2u);
  EXPECT_EQ(cache.Get("orders today"), nullptr);
  EXPECT_EQ(cache.Get("orders open"), nullptr);
  EXPECT_NE(cache.Get("customers Zürich"), nullptr);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.evictions, 0u);  // keyed eviction is booked separately
  EXPECT_EQ(stats.size, 1u);
}

TEST(LruCacheTest, EraseIfPreservesRecencyOrderOfSurvivors) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", std::make_shared<const int>(1));
  cache.Put("b", std::make_shared<const int>(2));
  cache.Put("c", std::make_shared<const int>(3));  // evicts a; order c,b
  EXPECT_EQ(cache.EraseIf([](const std::string& key) { return key == "x"; }),
            0u);
  cache.Put("d", std::make_shared<const int>(4));  // must evict b, not c
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(LruCacheTest, EraseIfDoesNotInvalidateReaders) {
  LruCache<std::string, int> cache(4);
  cache.Put("a", std::make_shared<const int>(42));
  auto held = cache.Get("a");
  EXPECT_EQ(cache.EraseIf([](const std::string&) { return true; }), 1u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*held, 42);
}

TEST(LruCacheTest, ConcurrentEraseIfAgainstMixedTraffic) {
  LruCache<std::string, int> cache(16);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        std::string key = "k" + std::to_string((i * 7 + t) % 32);
        if (i % 3 == 0) {
          cache.Put(key, std::make_shared<const int>(i));
        } else {
          auto hit = cache.Get(key);
          if (hit && (*hit < 0 || *hit >= 2000)) failed.store(true);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      cache.EraseIf([i](const std::string& key) {
        return key == "k" + std::to_string(i % 32);
      });
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  CacheStats stats = cache.stats();
  EXPECT_LE(stats.size, 16u);
}

TEST(LruCacheTest, ConcurrentMixedTraffic) {
  LruCache<std::string, int> cache(16);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        std::string key = "k" + std::to_string((i * 7 + t) % 32);
        if (i % 3 == 0) {
          cache.Put(key, std::make_shared<const int>(i));
        } else {
          auto hit = cache.Get(key);
          if (hit && (*hit < 0 || *hit >= 2000)) failed.store(true);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  CacheStats stats = cache.stats();
  EXPECT_LE(stats.size, 16u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace soda
