// End-to-end evaluation tests on the enterprise warehouse: these assert
// the precision/recall *shape* of paper Table 3 (who wins, which queries
// collapse and why), plus the Table 1 schema cardinalities.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>

#include "core/soda.h"
#include "datasets/enterprise.h"
#include "eval/harness.h"
#include "eval/workload.h"
#include "pattern/library.h"

namespace soda {
namespace {

class EnterpriseEvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildEnterpriseWarehouse();
    ASSERT_TRUE(built.ok()) << built.status();
    warehouse_ = built.value().release();
    SodaConfig config;
    config.execute_snippets = false;
    soda_ = Soda::Create(&warehouse_->db, &warehouse_->graph,
                         CreditSuissePatternLibrary(), config)
                .value()
                .release();
    auto evaluations = EvaluateWorkload(*soda_, EnterpriseWorkload());
    ASSERT_TRUE(evaluations.ok()) << evaluations.status();
    for (auto& evaluation : *evaluations) {
      (*by_id_)[evaluation.id] = evaluation;
    }
  }
  static void TearDownTestSuite() {
    delete soda_;
    delete warehouse_;
    soda_ = nullptr;
    warehouse_ = nullptr;
    by_id_->clear();
  }

  static const QueryEvaluation& Eval(const std::string& id) {
    auto it = by_id_->find(id);
    EXPECT_NE(it, by_id_->end()) << "no evaluation for query " << id;
    return it->second;
  }

  static EnterpriseWarehouse* warehouse_;
  static Soda* soda_;
  static std::map<std::string, QueryEvaluation>* by_id_;
};

EnterpriseWarehouse* EnterpriseEvalTest::warehouse_ = nullptr;
Soda* EnterpriseEvalTest::soda_ = nullptr;
std::map<std::string, QueryEvaluation>* EnterpriseEvalTest::by_id_ =
    new std::map<std::string, QueryEvaluation>();

TEST_F(EnterpriseEvalTest, Table1SchemaCardinalities) {
  SchemaStats stats = warehouse_->model.Stats();
  EXPECT_EQ(stats.conceptual_entities, kPaperConceptualEntities);
  EXPECT_EQ(stats.conceptual_attributes, kPaperConceptualAttributes);
  EXPECT_EQ(stats.conceptual_relationships, kPaperConceptualRelationships);
  EXPECT_EQ(stats.logical_entities, kPaperLogicalEntities);
  EXPECT_EQ(stats.logical_attributes, kPaperLogicalAttributes);
  EXPECT_EQ(stats.logical_relationships, kPaperLogicalRelationships);
  EXPECT_EQ(stats.physical_tables, kPaperPhysicalTables);
  EXPECT_EQ(stats.physical_columns, kPaperPhysicalColumns);
}

// Prints the full Table-3-style summary on failure for debugging.
TEST_F(EnterpriseEvalTest, PrintSummary) {
  for (const auto& [id, evaluation] : *by_id_) {
    std::printf(
        "Q%-5s P=%.2f R=%.2f  results=%zu (nz=%d z=%d)  complexity=%zu  "
        "soda=%.1fms exec=%.1fms\n",
        id.c_str(), evaluation.best.precision, evaluation.best.recall,
        evaluation.num_results, evaluation.results_nonzero,
        evaluation.results_zero, evaluation.complexity, evaluation.soda_ms,
        evaluation.execute_ms);
  }
}

TEST_F(EnterpriseEvalTest, Q1PerfectPrecisionRecall) {
  EXPECT_DOUBLE_EQ(Eval("1.0").best.precision, 1.0);
  EXPECT_DOUBLE_EQ(Eval("1.0").best.recall, 1.0);
}

// The bi-temporal historization hazard: SODA only reaches the current
// name version (paper: recall 0.2 on Q2.1/Q2.2).
TEST_F(EnterpriseEvalTest, Q21BitemporalRecallLoss) {
  EXPECT_DOUBLE_EQ(Eval("2.1").best.precision, 1.0);
  EXPECT_NEAR(Eval("2.1").best.recall, 0.2, 1e-9);
  EXPECT_EQ(Eval("2.1").complexity, 4u);
}

TEST_F(EnterpriseEvalTest, Q22BitemporalRecallLoss) {
  EXPECT_DOUBLE_EQ(Eval("2.2").best.precision, 1.0);
  EXPECT_NEAR(Eval("2.2").best.recall, 0.2, 1e-9);
  EXPECT_EQ(Eval("2.2").complexity, 12u);
}

TEST_F(EnterpriseEvalTest, Q23CurrentStateQuestionsUnaffected) {
  EXPECT_DOUBLE_EQ(Eval("2.3").best.precision, 1.0);
  EXPECT_DOUBLE_EQ(Eval("2.3").best.recall, 1.0);
}

TEST_F(EnterpriseEvalTest, Q3BothIntentsServed) {
  EXPECT_DOUBLE_EQ(Eval("3.1").best.precision, 1.0);
  EXPECT_DOUBLE_EQ(Eval("3.1").best.recall, 1.0);
  EXPECT_DOUBLE_EQ(Eval("3.2").best.precision, 1.0);
  EXPECT_DOUBLE_EQ(Eval("3.2").best.recall, 1.0);
  EXPECT_EQ(Eval("3.1").complexity, 12u);
}

TEST_F(EnterpriseEvalTest, Q4BaseDataPlusSchema) {
  EXPECT_DOUBLE_EQ(Eval("4.0").best.precision, 1.0);
  EXPECT_DOUBLE_EQ(Eval("4.0").best.recall, 1.0);
}

// The sibling-bridge hazard (paper: P=0.12, R=0.56).
TEST_F(EnterpriseEvalTest, Q5SiblingBridgePrecisionCollapse) {
  EXPECT_NEAR(Eval("5.0").best.precision, 0.125, 0.01);
  EXPECT_NEAR(Eval("5.0").best.recall, 0.5625, 0.01);
  EXPECT_EQ(Eval("5.0").complexity, 4u);
}

TEST_F(EnterpriseEvalTest, Q6RangePredicate) {
  EXPECT_DOUBLE_EQ(Eval("6.0").best.precision, 1.0);
  EXPECT_DOUBLE_EQ(Eval("6.0").best.recall, 1.0);
  EXPECT_EQ(Eval("6.0").results_zero, 0);
}

// SODA restricts only the order currency (paper: P=0.5, R=1.0).
TEST_F(EnterpriseEvalTest, Q7SupersetResult) {
  EXPECT_NEAR(Eval("7.0").best.precision, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(Eval("7.0").best.recall, 1.0);
}

TEST_F(EnterpriseEvalTest, Q8FiveWayJoin) {
  EXPECT_DOUBLE_EQ(Eval("8.0").best.precision, 1.0);
  EXPECT_DOUBLE_EQ(Eval("8.0").best.recall, 1.0);
  EXPECT_EQ(Eval("8.0").complexity, 8u);
}

// COUNT(*) over the address bridge double-counts (paper: all zero).
TEST_F(EnterpriseEvalTest, Q9AllCountsWrong) {
  EXPECT_DOUBLE_EQ(Eval("9.0").best.precision, 0.0);
  EXPECT_DOUBLE_EQ(Eval("9.0").best.recall, 0.0);
  EXPECT_EQ(Eval("9.0").results_nonzero, 0);
}

TEST_F(EnterpriseEvalTest, Q10ExplicitAggregation) {
  EXPECT_DOUBLE_EQ(Eval("10.0").best.precision, 1.0);
  EXPECT_DOUBLE_EQ(Eval("10.0").best.recall, 1.0);
}

// Enterprise half of the explanation-identity check (the minibank half
// lives in session_test.cc, inside the sanitizer filter): the rendered
// provenance line equals the structured record's rendering on every
// workload answer, the record's tables mirror the emitted FROM list, and
// every matched term names a bindable entry point.
TEST_F(EnterpriseEvalTest, ExplanationMatchesRenderedLine) {
  size_t total_results = 0;
  for (const BenchmarkQuery& query : EnterpriseWorkload()) {
    auto output = soda_->Search(query.keywords);
    ASSERT_TRUE(output.ok()) << query.id << ": " << output.status();
    total_results += output->results.size();
    for (const SodaResult& result : output->results) {
      EXPECT_EQ(result.explanation, result.provenance.Render()) << query.id;
      // Pure operator queries (e.g. Q10.0's explicit aggregation) consume
      // every term into predicates and legitimately explain nothing.
      EXPECT_EQ(result.provenance.terms.empty(), result.explanation.empty())
          << query.id;
      for (const ExplanationTerm& term : result.provenance.terms) {
        EXPECT_EQ(term.entry_key, EntryPointKey(term.entry)) << query.id;
      }
      ASSERT_EQ(result.provenance.tables.size(), result.statement.from.size())
          << query.id;
      for (size_t i = 0; i < result.statement.from.size(); ++i) {
        EXPECT_EQ(result.provenance.tables[i], result.statement.from[i].table)
            << query.id;
      }
    }
  }
  EXPECT_GT(total_results, 0u);
}

}  // namespace
}  // namespace soda
