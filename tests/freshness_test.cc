// Tests for the live-base-data freshness subsystem (change log → index
// deltas → keyed cache invalidation): epoch coalescing, ChangeEvent
// contents, incremental-vs-rebuilt index equivalence on random mutation
// sequences, and the acceptance bar — an engine that stayed up across a
// mutation (auto-invalidated by the FreshnessManager) answers
// byte-identically to a freshly created engine over the mutated
// database, at any shards × threads, closures on and off, while
// unaffected cache entries survive.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/freshness.h"
#include "core/sharded_engine.h"
#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"
#include "storage/change_log.h"
#include "text/inverted_index.h"

namespace soda {
namespace {

// Order-sensitive answer fingerprint (snippets included): "byte-identical"
// is literal; engine-lifetime cache counters are bookkeeping, not answer
// content, and are deliberately excluded.
std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

std::vector<std::string> Dashboard() {
  return {
      "customers Zürich financial instruments",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };
}

// Captures every published event.
class RecordingListener : public ChangeListener {
 public:
  void OnChange(const ChangeEvent& event) override {
    events.push_back(event);
  }
  std::vector<ChangeEvent> events;
};

// Applies every published event to one index (what the FreshnessManager
// does for each tracked engine).
class IndexingListener : public ChangeListener {
 public:
  explicit IndexingListener(InvertedIndex* index) : index_(index) {}
  void OnChange(const ChangeEvent& event) override {
    index_->ApplyDelta(event);
  }

 private:
  InvertedIndex* index_;
};

// The new-individual mutation the engine tests replay: one individual
// with an unmistakably fresh name and one Zürich address for them. Both
// tables already back cached dashboard answers.
void AppendZebraQuuxville(Database* db) {
  Table* individuals = db->FindTable("individuals");
  Table* addresses = db->FindTable("addresses");
  ASSERT_NE(individuals, nullptr);
  ASSERT_NE(addresses, nullptr);
  int64_t id = static_cast<int64_t>(individuals->num_rows()) + 1000;
  ASSERT_TRUE(individuals
                  ->Append({Value::Int(id), Value::Str("Zebra"),
                            Value::Str("Quuxville"), Value::Int(90000),
                            Value::DateV(Date::FromYmd(1980, 1, 1))})
                  .ok());
  ASSERT_TRUE(addresses
                  ->Append({Value::Int(id), Value::Int(id),
                            Value::Str("Teststrasse 1"), Value::Str("Zürich"),
                            Value::Str("CH")})
                  .ok());
}

// ---------------------------------------------------------------------------
// Change log: publication, epochs, event contents
// ---------------------------------------------------------------------------

TEST(ChangeLogFreshnessTest, AppendPublishesOneEventPerRow) {
  Database db;
  Table* t = db.CreateTable("t", {{"name", ValueType::kString}}).value();
  RecordingListener listener;
  db.change_log().Subscribe(&listener);

  ASSERT_TRUE(t->Append({Value::Str("alpha")}).ok());
  t->AppendUnchecked({Value::Str("beta")});  // fast path publishes too

  ASSERT_EQ(listener.events.size(), 2u);
  EXPECT_EQ(listener.events[0].table, "t");
  EXPECT_EQ(listener.events[0].row_begin, 0u);
  EXPECT_EQ(listener.events[0].row_end, 1u);
  EXPECT_EQ(listener.events[0].sequence, 1u);
  EXPECT_EQ(listener.events[1].sequence, 2u);
  EXPECT_EQ(db.change_log().sequence(), 2u);
  EXPECT_EQ(db.change_log().rows_recorded(), 2u);
  db.change_log().Unsubscribe(&listener);
}

TEST(ChangeLogFreshnessTest, EpochCoalescesToOneEventPerTable) {
  Database db;
  Table* a = db.CreateTable("a", {{"v", ValueType::kString}}).value();
  Table* b = db.CreateTable("b", {{"v", ValueType::kString}}).value();
  RecordingListener listener;
  db.change_log().Subscribe(&listener);

  {
    ChangeLog::EpochGuard epoch(db.change_log());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(a->Append({Value::Str("a" + std::to_string(i))}).ok());
    }
    {
      ChangeLog::EpochGuard nested(db.change_log());  // nesting is a no-op
      ASSERT_TRUE(b->Append({Value::Str("b0")}).ok());
    }
    ASSERT_TRUE(a->Append({Value::Str("a5")}).ok());
    EXPECT_TRUE(listener.events.empty());  // deferred until outermost close
  }

  ASSERT_EQ(listener.events.size(), 2u);  // first-touch order: a then b
  EXPECT_EQ(listener.events[0].table, "a");
  EXPECT_EQ(listener.events[0].row_begin, 0u);
  EXPECT_EQ(listener.events[0].row_end, 6u);
  EXPECT_EQ(listener.events[1].table, "b");
  EXPECT_EQ(db.change_log().events_published(), 2u);
  db.change_log().Unsubscribe(&listener);
}

TEST(ChangeLogFreshnessTest, EventCarriesStringDeltasOnly) {
  Database db;
  Table* t = db.CreateTable("mix", {{"id", ValueType::kInt64},
                                    {"name", ValueType::kString},
                                    {"city", ValueType::kString}})
                 .value();
  RecordingListener listener;
  db.change_log().Subscribe(&listener);

  {
    ChangeLog::EpochGuard epoch(db.change_log());
    ASSERT_TRUE(
        t->Append({Value::Int(1), Value::Str("ada"), Value::Str("bern")})
            .ok());
    ASSERT_TRUE(
        t->Append({Value::Int(2), Value::Null(), Value::Str("")}).ok());
    ASSERT_TRUE(
        t->Append({Value::Int(3), Value::Str("bob"), Value::Null()}).ok());
  }

  ASSERT_EQ(listener.events.size(), 1u);
  const ChangeEvent& event = listener.events[0];
  ASSERT_EQ(event.deltas.size(), 2u);  // int column absent
  EXPECT_EQ(event.deltas[0].column, "name");
  EXPECT_EQ(event.deltas[0].column_index, 1u);
  EXPECT_EQ(event.deltas[0].values, (std::vector<std::string>{"ada", "bob"}));
  EXPECT_EQ(event.deltas[0].rows, (std::vector<size_t>{0, 2}));
  // Values ship pre-tokenized as interned ids against the database's
  // shared dictionary, so consumers never re-tokenize under the
  // exclusive data lock.
  ASSERT_EQ(event.dict, db.token_dict());
  ASSERT_EQ(event.deltas[0].token_ids.size(), 2u);
  ASSERT_EQ(event.deltas[0].token_ids[0].size(), 1u);
  EXPECT_EQ(event.dict->Spelling(event.deltas[0].token_ids[0][0]), "ada");
  EXPECT_EQ(event.deltas[1].column, "city");
  EXPECT_EQ(event.deltas[1].values, (std::vector<std::string>{"bern"}));
  EXPECT_EQ(event.NumValues(), 3u);
  db.change_log().Unsubscribe(&listener);
}

// ---------------------------------------------------------------------------
// Incremental index maintenance ≡ from-scratch rebuild
// ---------------------------------------------------------------------------

TEST(IncrementalIndexFreshnessTest, RandomMutationSequencesMatchRebuild) {
  Rng rng(0xF5E5);
  const std::vector<std::string> words = {"alpha", "beta",  "gamma", "delta",
                                          "credit", "suisse", "zurich",
                                          "bond",  "fund"};
  auto random_value = [&]() {
    std::string value = words[rng.Below(words.size())];
    size_t extra = rng.Below(3);  // 0-2 extra tokens → phrases too
    for (size_t i = 0; i < extra; ++i) {
      value += " " + words[rng.Below(words.size())];
    }
    return value;
  };

  for (int round = 0; round < 5; ++round) {
    Database db;
    Table* a = db.CreateTable("customers", {{"name", ValueType::kString},
                                            {"city", ValueType::kString}})
                   .value();
    Table* b = db.CreateTable("products", {{"label", ValueType::kString}})
                   .value();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          a->Append({Value::Str(random_value()), Value::Str(random_value())})
              .ok());
      ASSERT_TRUE(b->Append({Value::Str(random_value())}).ok());
    }

    // Live index, built before the mutations, kept fresh via deltas.
    InvertedIndex live;
    live.Build(db);
    IndexingListener listener(&live);
    db.change_log().Subscribe(&listener);

    size_t mutations = 10 + rng.Below(20);
    for (size_t m = 0; m < mutations; ++m) {
      Table* target = rng.Below(2) == 0 ? a : b;
      bool epoch_batch = rng.Below(4) == 0;
      size_t rows = epoch_batch ? 1 + rng.Below(4) : 1;
      std::unique_ptr<ChangeLog::EpochGuard> epoch;
      if (epoch_batch) {
        epoch = std::make_unique<ChangeLog::EpochGuard>(db.change_log());
      }
      for (size_t r = 0; r < rows; ++r) {
        if (target == a) {
          // Occasionally NULL a column — deltas must skip the hole.
          Value city = rng.Below(5) == 0 ? Value::Null()
                                         : Value::Str(random_value());
          ASSERT_TRUE(
              a->Append({Value::Str(random_value()), city}).ok());
        } else {
          ASSERT_TRUE(b->Append({Value::Str(random_value())}).ok());
        }
      }
    }
    db.change_log().Unsubscribe(&listener);

    InvertedIndex rebuilt;
    rebuilt.Build(db);

    EXPECT_EQ(live.num_tokens(), rebuilt.num_tokens());
    EXPECT_EQ(live.num_values(), rebuilt.num_values());
    EXPECT_EQ(live.num_records(), rebuilt.num_records());

    // Probe every single token and a sample of two-token phrases; the
    // postings must match the rebuild exactly — ordering included (the
    // pipeline's candidate enumeration depends on it).
    std::vector<std::string> probes = words;
    for (const std::string& w1 : words) {
      for (const std::string& w2 : words) {
        probes.push_back(w1 + " " + w2);
      }
    }
    for (const std::string& probe : probes) {
      EXPECT_EQ(live.ContainsPhrase(probe), rebuilt.ContainsPhrase(probe))
          << probe;
      EXPECT_EQ(live.CountPhrase(probe), rebuilt.CountPhrase(probe)) << probe;
      std::vector<ValuePosting> lhs = live.LookupPhrase(probe);
      std::vector<ValuePosting> rhs = rebuilt.LookupPhrase(probe);
      ASSERT_EQ(lhs.size(), rhs.size()) << probe;
      for (size_t i = 0; i < lhs.size(); ++i) {
        EXPECT_EQ(lhs[i].table, rhs[i].table) << probe << " #" << i;
        EXPECT_EQ(lhs[i].column, rhs[i].column) << probe << " #" << i;
        EXPECT_EQ(lhs[i].value, rhs[i].value) << probe << " #" << i;
        EXPECT_EQ(lhs[i].row_count, rhs[i].row_count) << probe << " #" << i;
      }
    }
    for (const std::string& word : words) {
      EXPECT_EQ(live.ContainsToken(word), rebuilt.ContainsToken(word));
    }
  }
}

// ---------------------------------------------------------------------------
// End to end: stayed-up engine ≡ cold engine on the mutated database
// ---------------------------------------------------------------------------

// Every engine test mutates its own mini-bank (a shared fixture would
// leak mutations across tests), so there is no static dataset here.
class FreshnessEngineTest : public ::testing::Test {
 protected:
  static SodaConfig Config(size_t threads, size_t shards,
                           bool closures = true) {
    SodaConfig config;
    config.num_threads = threads;
    config.num_shards = shards;
    config.cache_capacity = 64;
    config.enable_closures = closures;
    return config;
  }
};

TEST_F(FreshnessEngineTest, AutoInvalidationMatchesColdEngineAndIsKeyed) {
  // A fresh mini-bank: this test mutates the database, so it builds its
  // own instead of the shared fixture.
  auto bank = BuildMiniBank().value();
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(),
                                   Config(/*threads=*/2, /*shards=*/1))
                    .value();
  FreshnessManager freshness(&bank->db.change_log());
  freshness.Track(engine.get());

  // Warm the cache: every dashboard query plus one the mutation must not
  // touch.
  const std::vector<std::string> queries = Dashboard();
  const std::string unaffected = "sum(investments) group by (currency)";
  for (const std::string& query : queries) {
    ASSERT_TRUE(engine->Search(query).ok());
  }
  EXPECT_EQ(freshness.tracked_keys(), queries.size());
  uint64_t events_before = freshness.events_seen();

  AppendZebraQuuxville(&bank->db);

  // Two events (individuals, addresses), keys invalidated automatically.
  EXPECT_EQ(freshness.events_seen(), events_before + 2);
  EXPECT_GT(freshness.keys_invalidated(), 0u);

  // Keyed, not a clear: the aggregation query shares no token with the
  // appended values and its SQL does not read the mutated tables, so its
  // entry must still be served from cache.
  auto unaffected_output = engine->Search(unaffected);
  ASSERT_TRUE(unaffected_output.ok());
  EXPECT_TRUE(unaffected_output->from_cache);

  // The Zürich query depends on the appended value's tokens, so its
  // entry must be gone — the re-serve below runs the pipeline again.
  auto zurich = engine->Search(queries[0]);
  ASSERT_TRUE(zurich.ok());
  EXPECT_FALSE(zurich->from_cache);

  // The acceptance bar: byte-identical to an engine created after the
  // mutation, for every dashboard query.
  auto cold = SodaEngine::Create(&bank->db, &bank->graph,
                                 CreditSuissePatternLibrary(),
                                 Config(/*threads=*/2, /*shards=*/1))
                  .value();
  for (const std::string& query : queries) {
    auto stayed_up = engine->Search(query);
    auto fresh = cold->Search(query);
    ASSERT_TRUE(stayed_up.ok()) << query;
    ASSERT_TRUE(fresh.ok()) << query;
    EXPECT_EQ(Fingerprint(*stayed_up), Fingerprint(*fresh)) << query;
  }
}

TEST_F(FreshnessEngineTest, IgnoredWordGainsBaseDataMatch) {
  auto bank = BuildMiniBank().value();
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(),
                                   Config(/*threads=*/1, /*shards=*/1))
                    .value();
  FreshnessManager freshness(&bank->db.change_log());
  freshness.Track(engine.get());

  // "Quuxville" matches nothing yet: the word is ignored and cached so.
  const std::string query = "addresses Quuxville";
  auto before = engine->Search(query);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->ignored_words.size(), 1u);

  AppendZebraQuuxville(&bank->db);

  // The append made "Quuxville" a base-data value, so the cached answer
  // (keyed on the then-ignored token) was invalidated; re-serving must
  // match a cold engine that never saw the stale world.
  auto after = engine->Search(query);
  auto cold = SodaEngine::Create(&bank->db, &bank->graph,
                                 CreditSuissePatternLibrary(),
                                 Config(/*threads=*/1, /*shards=*/1))
                  .value();
  auto fresh = cold->Search(query);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(after->from_cache);
  EXPECT_TRUE(after->ignored_words.empty());
  EXPECT_EQ(Fingerprint(*after), Fingerprint(*fresh));
}

TEST_F(FreshnessEngineTest, ShardedSweepMatchesColdEngine) {
  for (size_t shards : {1, 4}) {
    for (size_t threads : {1, 4}) {
      // Closures off once on the smallest config; on everywhere else.
      bool closures = !(shards == 1 && threads == 1);
      auto bank = BuildMiniBank().value();
      auto router = ShardedSodaEngine::Create(
                        &bank->db, &bank->graph, CreditSuissePatternLibrary(),
                        Config(threads, shards, closures))
                        .value();
      FreshnessManager freshness(&bank->db.change_log());
      freshness.Track(router.get());

      const std::vector<std::string> queries = Dashboard();
      for (const auto& output : router->SearchAll(queries)) {
        ASSERT_TRUE(output.ok());
      }

      AppendZebraQuuxville(&bank->db);
      EXPECT_EQ(freshness.events_seen(), 2u);

      auto cold = SodaEngine::Create(&bank->db, &bank->graph,
                                     CreditSuissePatternLibrary(),
                                     Config(/*threads=*/1, /*shards=*/1,
                                            closures))
                      .value();
      std::vector<Result<SearchOutput>> stayed_up =
          router->SearchAll(queries);
      for (size_t i = 0; i < queries.size(); ++i) {
        auto fresh = cold->Search(queries[i]);
        ASSERT_TRUE(stayed_up[i].ok()) << queries[i];
        ASSERT_TRUE(fresh.ok()) << queries[i];
        EXPECT_EQ(Fingerprint(*stayed_up[i]), Fingerprint(*fresh))
            << "shards=" << shards << " threads=" << threads << " "
            << queries[i];
      }
    }
  }
}

TEST_F(FreshnessEngineTest, ConcurrentAppendDuringSearchAllIsConsistent) {
  auto bank = BuildMiniBank().value();
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(),
                                   Config(/*threads=*/2, /*shards=*/1))
                    .value();
  FreshnessManager freshness(&bank->db.change_log());
  freshness.Track(engine.get());

  const std::vector<std::string> queries = Dashboard();
  std::atomic<bool> stop{false};
  std::atomic<size_t> batches{0};

  std::thread searcher([&] {
    while (!stop.load()) {
      for (const auto& output : engine->SearchAll(queries)) {
        ASSERT_TRUE(output.ok());
      }
      batches.fetch_add(1);
    }
  });

  // Appends race the batches: every row lands under the exclusive data
  // lock, so each batch sees a consistent prefix of the mutation stream.
  Table* securities = bank->db.FindTable("securities");
  ASSERT_NE(securities, nullptr);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(securities
                    ->Append({Value::Int(1000 + i),
                              Value::Str("Racer Bond " + std::to_string(i)),
                              Value::Str("RACE" + std::to_string(i))})
                    .ok());
    if (i == 10) {
      // Let at least one batch land mid-stream.
      while (batches.load() == 0 && !stop.load()) std::this_thread::yield();
    }
  }
  stop.store(true);
  searcher.join();

  // Quiesced: the stayed-up engine must now agree with a cold engine
  // over the final database, for the mutated vocabulary too.
  std::vector<std::string> final_queries = queries;
  final_queries.push_back("securities Racer Bond");
  auto cold = SodaEngine::Create(&bank->db, &bank->graph,
                                 CreditSuissePatternLibrary(),
                                 Config(/*threads=*/2, /*shards=*/1))
                  .value();
  for (const std::string& query : final_queries) {
    auto stayed_up = engine->Search(query);
    auto fresh = cold->Search(query);
    ASSERT_TRUE(stayed_up.ok()) << query;
    ASSERT_TRUE(fresh.ok()) << query;
    EXPECT_EQ(Fingerprint(*stayed_up), Fingerprint(*fresh)) << query;
  }
  EXPECT_EQ(freshness.events_seen(), 20u);
}

TEST_F(FreshnessEngineTest, DisabledCacheTracksNothingAndStaysSafe) {
  auto bank = BuildMiniBank().value();
  SodaConfig config = Config(/*threads=*/1, /*shards=*/1);
  config.cache_capacity = 0;
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(), config)
                    .value();
  FreshnessManager freshness(&bank->db.change_log());
  freshness.Track(engine.get());

  ASSERT_TRUE(engine->Search("addresses Sara Guttinger").ok());
  EXPECT_EQ(freshness.tracked_keys(), 0u);  // nothing cached → no deps

  AppendZebraQuuxville(&bank->db);
  EXPECT_EQ(freshness.events_seen(), 2u);
  EXPECT_EQ(freshness.keys_invalidated(), 0u);
  ASSERT_TRUE(engine->Search("addresses Quuxville").ok());
}

TEST_F(FreshnessEngineTest, CapacityEvictionForgetsDependencies) {
  auto bank = BuildMiniBank().value();
  SodaConfig config = Config(/*threads=*/1, /*shards=*/1);
  config.cache_capacity = 2;
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(), config)
                    .value();
  FreshnessManager freshness(&bank->db.change_log());
  freshness.Track(engine.get());

  // Three unique queries through a 2-entry cache: the LRU eviction must
  // drop the first key's dependency record too, so the reverse maps stay
  // bounded by the cache, not by every key ever served.
  ASSERT_TRUE(engine->Search("addresses Sara Guttinger").ok());
  ASSERT_TRUE(engine->Search("private customers family name").ok());
  ASSERT_TRUE(engine->Search("customers Zürich financial instruments").ok());
  EXPECT_EQ(engine->cache_stats().evictions, 1u);
  EXPECT_EQ(freshness.tracked_keys(), 2u);
}

TEST_F(FreshnessEngineTest, DestroyedManagerDetachesFromEngines) {
  auto bank = BuildMiniBank().value();
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(),
                                   Config(/*threads=*/1, /*shards=*/1))
                    .value();
  {
    FreshnessManager freshness(&bank->db.change_log());
    freshness.Track(engine.get());
    ASSERT_TRUE(engine->Search("addresses Sara Guttinger").ok());
    EXPECT_EQ(freshness.tracked_keys(), 1u);
  }
  // The manager is gone; the engine must have been detached — a cache
  // insert after this point must not call into freed memory (ASan leg
  // guards the negative).
  ASSERT_TRUE(engine->Search("customers Zürich financial instruments").ok());
}

TEST_F(FreshnessEngineTest, FreshnessCountersSurfaceThroughSink) {
  auto bank = BuildMiniBank().value();
  auto engine = SodaEngine::Create(&bank->db, &bank->graph,
                                   CreditSuissePatternLibrary(),
                                   Config(/*threads=*/1, /*shards=*/1))
                    .value();
  // Book the freshness counters into the engine's own sink, the way a
  // served deployment would.
  FreshnessManager freshness(
      &bank->db.change_log(),
      std::shared_ptr<MetricsSink>(engine->metrics_sink(),
                                   [](MetricsSink*) {}));
  freshness.Track(engine.get());

  ASSERT_TRUE(engine->Search("customers Zürich financial instruments").ok());
  AppendZebraQuuxville(&bank->db);

  MetricsSnapshot snapshot = engine->metrics_snapshot();
  EXPECT_EQ(snapshot.counter("freshness.events"), 2u);
  EXPECT_GT(snapshot.counter("freshness.delta_postings"), 0u);
  EXPECT_GT(snapshot.counter("freshness.keys_invalidated"), 0u);
  EXPECT_GT(snapshot.counter("freshness.keys_tracked"), 0u);
}

}  // namespace
}  // namespace soda
