// End-to-end tests of the SODA pipeline on the paper's running example
// (mini-bank, Sections 2 and 4.4).

#include <gtest/gtest.h>

#include <memory>

#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace soda {
namespace {

class MiniBankSodaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildMiniBank();
    ASSERT_TRUE(built.ok()) << built.status();
    bank_ = built.value().release();
    soda_ = Soda::Create(&bank_->db, &bank_->graph, CreditSuissePatternLibrary(),
                         SodaConfig{})
                .value()
                .release();
  }
  static void TearDownTestSuite() {
    delete soda_;
    delete bank_;
    soda_ = nullptr;
    bank_ = nullptr;
  }

  static MiniBank* bank_;
  static Soda* soda_;
};

MiniBank* MiniBankSodaTest::bank_ = nullptr;
Soda* MiniBankSodaTest::soda_ = nullptr;

// Paper Query 1: "Sara Guttinger" should generate a parties/individuals
// join filtered on first and last name.
TEST_F(MiniBankSodaTest, SaraGuttingerKeywordQuery) {
  auto output = soda_->Search("Sara Guttinger");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());

  const SodaResult& best = output->results[0];
  EXPECT_NE(best.sql.find("individuals"), std::string::npos) << best.sql;
  EXPECT_NE(best.sql.find("parties"), std::string::npos) << best.sql;
  EXPECT_NE(best.sql.find("'Sara'"), std::string::npos) << best.sql;
  EXPECT_NE(best.sql.find("'Guttinger'"), std::string::npos) << best.sql;

  ASSERT_TRUE(best.executed) << best.execution_status;
  ASSERT_EQ(best.snippet.num_rows(), 1u);  // exactly one Sara Guttinger
}

// Figure 5: "customers Zürich financial instruments" has complexity
// 1 x 1 x 2 = 2 (ontology, base data, conceptual+logical schema).
TEST_F(MiniBankSodaTest, QueryClassificationComplexity) {
  auto output = soda_->Search("customers Zürich financial instruments");
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->complexity, 2u);
}

// The diacritic-folded query spelling ("Zurich") matches the stored value
// "Zürich".
TEST_F(MiniBankSodaTest, DiacriticInsensitiveLookup) {
  auto output = soda_->Search("customers Zurich financial instruments");
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->complexity, 2u);
  ASSERT_FALSE(output->results.empty());
  EXPECT_NE(output->results[0].sql.find("Zürich"), std::string::npos)
      << output->results[0].sql;
}

// Paper Query 2: comparison operators and date().
TEST_F(MiniBankSodaTest, ComparisonOperators) {
  auto output = soda_->Search("salary >= 500000");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());
  const SodaResult& best = output->results[0];
  EXPECT_NE(best.sql.find("salary >= 500000"), std::string::npos) << best.sql;
  ASSERT_TRUE(best.executed) << best.execution_status;
}

// Paper Query 3: sum (amount) group by (transaction date).
TEST_F(MiniBankSodaTest, AggregationWithGroupBy) {
  auto output = soda_->Search("sum (amount) group by (transaction date)");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());
  const SodaResult& best = output->results[0];
  EXPECT_NE(best.sql.find("sum("), std::string::npos) << best.sql;
  EXPECT_NE(best.sql.find("GROUP BY"), std::string::npos) << best.sql;
  ASSERT_TRUE(best.executed) << best.execution_status;
  EXPECT_GT(best.snippet.num_rows(), 0u);
}

// Metadata-defined filter: "wealthy customers" expands to the salary
// predicate stored in the domain ontology.
TEST_F(MiniBankSodaTest, MetadataFilterWealthyCustomers) {
  auto output = soda_->Search("wealthy customers");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());
  const SodaResult& best = output->results[0];
  EXPECT_NE(best.sql.find("salary >= 1000000"), std::string::npos)
      << best.sql;
}

// Metadata-defined aggregation: "trading volume" expands to
// sum(fi_transactions.amount) (paper Section 4.4.2).
TEST_F(MiniBankSodaTest, MetadataAggregationTradingVolume) {
  auto output = soda_->Search("trading volume");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());
  const SodaResult& best = output->results[0];
  EXPECT_NE(best.sql.find("sum(fi_transactions.amount)"), std::string::npos)
      << best.sql;
}

// DBpedia synonym: "client" maps to parties.
TEST_F(MiniBankSodaTest, DbpediaSynonym) {
  auto output = soda_->Search("client");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());
  EXPECT_NE(output->results[0].sql.find("parties"), std::string::npos);
}

// Inheritance: a keyword matching an inheritance child pulls in the
// parent table and the join (paper Query 1 joins parties).
TEST_F(MiniBankSodaTest, InheritanceParentCollected) {
  auto output = soda_->Search("individuals");
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_FALSE(output->results.empty());
  const SodaResult& best = output->results[0];
  EXPECT_NE(best.sql.find("parties"), std::string::npos) << best.sql;
  EXPECT_NE(best.sql.find("individuals.id = parties.id"), std::string::npos)
      << best.sql;
}

}  // namespace
}  // namespace soda
