// Unit tests for the storage catalog and tables.

#include <gtest/gtest.h>

#include "storage/table.h"

namespace soda {
namespace {

std::vector<ColumnDef> PersonColumns() {
  return {{"id", ValueType::kInt64},
          {"name", ValueType::kString},
          {"birthday", ValueType::kDate}};
}

TEST(TableTest, ColumnIndexIsCaseInsensitive) {
  Table t("persons", PersonColumns());
  EXPECT_EQ(t.ColumnIndex("id"), 0);
  EXPECT_EQ(t.ColumnIndex("NAME"), 1);
  EXPECT_EQ(t.ColumnIndex("Birthday"), 2);
  EXPECT_EQ(t.ColumnIndex("missing"), -1);
  EXPECT_TRUE(t.HasColumn("name"));
  EXPECT_FALSE(t.HasColumn("salary"));
}

TEST(TableTest, AppendValidatesArity) {
  Table t("persons", PersonColumns());
  Status st = t.Append({Value::Int(1), Value::Str("Sara")});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, AppendValidatesTypes) {
  Table t("persons", PersonColumns());
  Status st = t.Append({Value::Str("one"), Value::Str("Sara"),
                        Value::DateV(Date())});
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(TableTest, NullAllowedInAnyColumn) {
  Table t("persons", PersonColumns());
  EXPECT_TRUE(t.Append({Value::Null(), Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, ValueAtResolvesByName) {
  Table t("persons", PersonColumns());
  ASSERT_TRUE(t.Append({Value::Int(7), Value::Str("Sara"),
                        Value::DateV(Date::FromYmd(1981, 4, 23))})
                  .ok());
  EXPECT_EQ(t.ValueAt(0, "name"), Value::Str("Sara"));
  EXPECT_TRUE(t.ValueAt(0, "missing").is_null());
  EXPECT_TRUE(t.ValueAt(5, "name").is_null());  // row out of range
}

TEST(DatabaseTest, CreateAndFind) {
  Database db;
  auto created = db.CreateTable("persons", PersonColumns());
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(db.FindTable("persons"), *created);
  EXPECT_EQ(db.FindTable("PERSONS"), *created);  // case-insensitive
  EXPECT_EQ(db.FindTable("missing"), nullptr);
}

TEST(DatabaseTest, DuplicateNameRejected) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"a", ValueType::kInt64}}).ok());
  auto dup = db.CreateTable("T", {{"b", ValueType::kInt64}});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, TablesPreserveCreationOrder) {
  Database db;
  ASSERT_TRUE(db.CreateTable("zeta", {{"a", ValueType::kInt64}}).ok());
  ASSERT_TRUE(db.CreateTable("alpha", {{"a", ValueType::kInt64}}).ok());
  auto tables = db.tables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0]->name(), "zeta");
  EXPECT_EQ(tables[1]->name(), "alpha");
}

TEST(DatabaseTest, TotalRows) {
  Database db;
  Table* a = *db.CreateTable("a", {{"x", ValueType::kInt64}});
  Table* b = *db.CreateTable("b", {{"x", ValueType::kInt64}});
  for (int i = 0; i < 3; ++i) a->AppendUnchecked({Value::Int(i)});
  for (int i = 0; i < 5; ++i) b->AppendUnchecked({Value::Int(i)});
  EXPECT_EQ(db.TotalRows(), 8u);
}

}  // namespace
}  // namespace soda
