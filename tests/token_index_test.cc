// Tests for the interned-token index core: the TokenDict contract, a
// randomized equivalence sweep of the packed phrase matcher against a
// naive string-compare reference, ApplyDelta equivalence when the event
// dictionary is foreign to the receiving index, and the shard sweep —
// every replica of a ShardedSodaEngine shares ONE dictionary instance
// while answering byte-identically at any shards × threads.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sharded_engine.h"
#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"
#include "storage/change_log.h"
#include "storage/table.h"
#include "text/inverted_index.h"
#include "text/token_dict.h"
#include "text/tokenizer.h"

namespace soda {
namespace {

// ---------------------------------------------------------------------------
// TokenDict contract
// ---------------------------------------------------------------------------

TEST(TokenDictTest, InternIsIdempotentAndDense) {
  TokenDict dict;
  TokenId credit = dict.Intern("credit");
  TokenId suisse = dict.Intern("suisse");
  EXPECT_EQ(credit, 0u);
  EXPECT_EQ(suisse, 1u);
  EXPECT_EQ(dict.Intern("credit"), credit);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Spelling(credit), "credit");
  EXPECT_EQ(dict.Spelling(suisse), "suisse");
}

TEST(TokenDictTest, FindNeverInterns) {
  TokenDict dict;
  EXPECT_EQ(dict.Find("zurich"), kNoToken);
  EXPECT_EQ(dict.size(), 0u);
  dict.Intern("zurich");
  EXPECT_EQ(dict.Find("zurich"), 0u);
}

TEST(TokenDictTest, InternTextFoldsLikeTokenize) {
  TokenDict dict;
  std::vector<TokenId> ids;
  dict.InternText("Zürich Insurance, AG!", &ids);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(dict.Spelling(ids[0]), "zurich");
  EXPECT_EQ(dict.Spelling(ids[1]), "insurance");
  EXPECT_EQ(dict.Spelling(ids[2]), "ag");
}

TEST(TokenDictTest, FindTextFailsOnUnknownToken) {
  TokenDict dict;
  std::vector<TokenId> seed;
  dict.InternText("credit suisse", &seed);
  std::vector<TokenId> ids;
  EXPECT_TRUE(dict.FindText("Credit SUISSE", &ids));
  EXPECT_EQ(ids.size(), 2u);
  ids.clear();
  EXPECT_FALSE(dict.FindText("credit lyonnais", &ids));
}

TEST(TokenDictTest, SpellingsSurviveGrowth) {
  TokenDict dict;
  const std::string& first = dict.Spelling(dict.Intern("anchor"));
  for (int i = 0; i < 5000; ++i) {
    dict.Intern("filler" + std::to_string(i));
  }
  // Deque-backed storage: the earliest spelling's address is stable and
  // the id map still resolves it.
  EXPECT_EQ(first, "anchor");
  EXPECT_EQ(dict.Find("anchor"), 0u);
  EXPECT_GT(dict.ApproxMemoryBytes(), 5000u * sizeof(TokenId));
}

// ---------------------------------------------------------------------------
// Randomized property sweep: packed matcher ≡ naive string reference
// ---------------------------------------------------------------------------

// The reference model: distinct values in first-occurrence order with
// row counts, phrase matching by naive string-compare over the token
// vectors — exactly the pre-interning index semantics.
struct ReferenceCorpus {
  struct Entry {
    std::string value;
    std::vector<std::string> tokens;
    int64_t row_count = 0;
  };
  std::vector<Entry> entries;  // first-occurrence order == order_key order

  void Add(const std::string& value) {
    for (Entry& entry : entries) {
      if (entry.value == value) {
        ++entry.row_count;
        return;
      }
    }
    Entry entry;
    entry.value = value;
    entry.tokens = Tokenize(value);
    entry.row_count = 1;
    if (!entry.tokens.empty()) entries.push_back(std::move(entry));
  }

  std::vector<const Entry*> Matches(const std::string& phrase) const {
    std::vector<std::string> query = Tokenize(phrase);
    std::vector<const Entry*> out;
    if (query.empty()) return out;
    for (const Entry& entry : entries) {
      if (entry.tokens.size() < query.size()) continue;
      for (size_t start = 0;
           start + query.size() <= entry.tokens.size(); ++start) {
        bool all = true;
        for (size_t k = 0; k < query.size(); ++k) {
          if (entry.tokens[start + k] != query[k]) {
            all = false;
            break;
          }
        }
        if (all) {
          out.push_back(&entry);
          break;
        }
      }
    }
    return out;
  }
};

TEST(PackedMatcherPropertyTest, MatchesNaiveReferenceOnRandomCorpus) {
  const std::vector<std::string> words = {
      "alpha", "beta",  "gamma",  "delta",  "credit", "suisse",
      "bond",  "fund",  "zürich", "geneva", "2011",   "gold"};
  Rng rng(0xC0FFEE);

  Database db;
  Table* t = db.CreateTable("corpus", {{"v", ValueType::kString}}).value();
  ReferenceCorpus reference;
  for (int i = 0; i < 400; ++i) {
    size_t len = 1 + rng.Below(5);
    std::string value;
    for (size_t k = 0; k < len; ++k) {
      if (k > 0) value += " ";
      value += words[rng.Below(words.size())];
    }
    ASSERT_TRUE(t->Append({Value::Str(value)}).ok());
    reference.Add(value);
  }
  InvertedIndex index;
  index.Build(db);
  ASSERT_EQ(index.token_dict(), db.token_dict());

  for (int probe = 0; probe < 500; ++probe) {
    size_t len = 1 + rng.Below(4);
    std::string phrase;
    for (size_t k = 0; k < len; ++k) {
      if (k > 0) phrase += " ";
      phrase += words[rng.Below(words.size())];
    }
    auto expected = reference.Matches(phrase);
    auto actual = index.LookupPhrase(phrase);
    ASSERT_EQ(actual.size(), expected.size()) << phrase;
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].table, "corpus") << phrase;
      EXPECT_EQ(actual[i].column, "v") << phrase;
      // Order-sensitive: the packed matcher must emit values in the same
      // first-occurrence order the string-scan reference uses.
      EXPECT_EQ(actual[i].value, expected[i]->value) << phrase;
      EXPECT_EQ(actual[i].row_count, expected[i]->row_count) << phrase;
    }
    EXPECT_EQ(index.CountPhrase(phrase), expected.size()) << phrase;
    EXPECT_EQ(index.ContainsPhrase(phrase), !expected.empty()) << phrase;
  }

  // Tokens the corpus never saw resolve to "no match", not a crash.
  EXPECT_TRUE(index.LookupPhrase("unseen alpha").empty());
  EXPECT_FALSE(index.ContainsToken("unseen"));
  EXPECT_TRUE(index.ContainsToken("zurich"));
}

// ---------------------------------------------------------------------------
// ApplyDelta across dictionaries
// ---------------------------------------------------------------------------

class IndexingListener : public ChangeListener {
 public:
  explicit IndexingListener(InvertedIndex* index) : index_(index) {}
  void OnChange(const ChangeEvent& event) override {
    index_->ApplyDelta(event);
  }

 private:
  InvertedIndex* index_;
};

// Probes both indexes with every word and every stored value and demands
// identical answers, ordering included.
void ExpectIndexesEquivalent(const InvertedIndex& a, const InvertedIndex& b,
                             const std::vector<std::string>& phrases) {
  EXPECT_EQ(a.num_values(), b.num_values());
  EXPECT_EQ(a.num_records(), b.num_records());
  EXPECT_EQ(a.num_tokens(), b.num_tokens());
  for (const std::string& phrase : phrases) {
    auto pa = a.LookupPhrase(phrase);
    auto pb = b.LookupPhrase(phrase);
    ASSERT_EQ(pa.size(), pb.size()) << phrase;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].table, pb[i].table) << phrase;
      EXPECT_EQ(pa[i].column, pb[i].column) << phrase;
      EXPECT_EQ(pa[i].value, pb[i].value) << phrase;
      EXPECT_EQ(pa[i].row_count, pb[i].row_count) << phrase;
    }
    EXPECT_EQ(a.CountPhrase(phrase), b.CountPhrase(phrase)) << phrase;
  }
}

TEST(TokenDictDeltaTest, ForeignDictionaryEventsTranslate) {
  Database db;
  Table* t = db.CreateTable(
                   "t", {{"name", ValueType::kString},
                         {"city", ValueType::kString}})
                 .value();

  // A live index with a deliberately PRIVATE vocabulary, kept up to date
  // through the change log: events arrive interned against the
  // database's dictionary, so every apply takes the translation path.
  InvertedIndex live;
  live.set_token_dict(std::make_shared<TokenDict>());
  live.Build(db);
  ASSERT_NE(live.token_dict(), db.token_dict());
  IndexingListener listener(&live);
  db.change_log().Subscribe(&listener);

  const std::vector<std::vector<std::string>> rows = {
      {"Credit Suisse", "Zürich"},
      {"Swiss Re", "Zürich"},
      {"Credit Suisse", "Geneva"},
      {"Gold Fund 2011", ""},
  };
  for (const auto& row : rows) {
    ASSERT_TRUE(t->Append({Value::Str(row[0]),
                           row[1].empty() ? Value::Null()
                                          : Value::Str(row[1])})
                    .ok());
  }
  db.change_log().Unsubscribe(&listener);

  // Rebuilt from scratch over the same data, sharing the db dictionary.
  InvertedIndex rebuilt;
  rebuilt.Build(db);
  ASSERT_EQ(rebuilt.token_dict(), db.token_dict());

  ExpectIndexesEquivalent(
      live, rebuilt,
      {"credit", "suisse", "credit suisse", "zurich", "swiss re", "geneva",
       "gold fund 2011", "fund 2011", "suisse credit", "absent"});
}

TEST(TokenDictDeltaTest, SharedDictionaryEventsApplyVerbatim) {
  Database db;
  Table* t = db.CreateTable("t", {{"v", ValueType::kString}}).value();
  ASSERT_TRUE(t->Append({Value::Str("seed value")}).ok());

  // Built over the database BEFORE the mutations: adopts the shared
  // dictionary, so the events' ids are already its own.
  InvertedIndex live;
  live.Build(db);
  ASSERT_EQ(live.token_dict(), db.token_dict());
  IndexingListener listener(&live);
  db.change_log().Subscribe(&listener);
  ASSERT_TRUE(t->Append({Value::Str("appended seed")}).ok());
  ASSERT_TRUE(t->Append({Value::Str("seed value")}).ok());  // row_count bump
  db.change_log().Unsubscribe(&listener);

  InvertedIndex rebuilt;
  rebuilt.Build(db);
  ExpectIndexesEquivalent(live, rebuilt,
                          {"seed", "value", "appended", "seed value",
                           "appended seed", "value seed"});
}

// ---------------------------------------------------------------------------
// Shard sweep: one dictionary instance fleet-wide, identical answers
// ---------------------------------------------------------------------------

std::string Fingerprint(const SearchOutput& output) {
  std::string fp = "complexity=" + std::to_string(output.complexity) + "\n";
  for (const std::string& word : output.ignored_words) {
    fp += "ignored=" + word + "\n";
  }
  for (const SodaResult& result : output.results) {
    fp += result.sql + "\n";
    fp += "score=" + std::to_string(result.score) + "\n";
    fp += "explanation=" + result.explanation + "\n";
    fp += "connected=" + std::to_string(result.fully_connected) + "\n";
    fp += "executed=" + std::to_string(result.executed) + "\n";
    if (result.executed) fp += result.snippet.ToAsciiTable() + "\n";
  }
  return fp;
}

TEST(SharedDictShardSweepTest, ReplicasShareOneDictionaryByteIdentically) {
  const std::vector<std::string> queries = {
      "customers Zürich financial instruments",
      "addresses Sara Guttinger",
      "sum(investments) group by (currency)",
      "private customers family name",
  };

  // Baseline: serial 1×1.
  std::vector<std::string> baseline;
  {
    auto bank = std::move(BuildMiniBank()).value();
    SodaConfig config;
    config.num_shards = 1;
    config.num_threads = 1;
    auto engine = std::move(ShardedSodaEngine::Create(
                                &bank->db, &bank->graph,
                                CreditSuissePatternLibrary(), config))
                      .value();
    for (const std::string& query : queries) {
      auto output = engine->Search(query);
      ASSERT_TRUE(output.ok()) << query;
      baseline.push_back(Fingerprint(*output));
    }
  }

  for (size_t shards : {1u, 4u}) {
    for (size_t threads : {1u, 4u}) {
      auto bank = std::move(BuildMiniBank()).value();
      SodaConfig config;
      config.num_shards = shards;
      config.num_threads = threads;
      auto engine = std::move(ShardedSodaEngine::Create(
                                  &bank->db, &bank->graph,
                                  CreditSuissePatternLibrary(), config))
                        .value();
      // One dictionary instance across the whole fleet: every replica's
      // index AND the database point at the same TokenDict.
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        EXPECT_EQ(engine->shard(s).soda().inverted_index().token_dict().get(),
                  bank->db.token_dict().get())
            << shards << "x" << threads << " shard " << s;
      }
      for (size_t q = 0; q < queries.size(); ++q) {
        auto output = engine->Search(queries[q]);
        ASSERT_TRUE(output.ok()) << queries[q];
        EXPECT_EQ(Fingerprint(*output), baseline[q])
            << queries[q] << " at " << shards << "x" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace soda
