// Unit tests for classification, the lookup step, and ranking — on the
// mini-bank (shared across the suite to amortize setup).

#include <gtest/gtest.h>

#include <memory>

#include "core/classification.h"
#include "core/lookup.h"
#include "core/soda.h"
#include "datasets/minibank.h"
#include "pattern/library.h"

namespace soda {
namespace {

class LookupRankTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bank_ = BuildMiniBank().value().release();
    soda_ = Soda::Create(&bank_->db, &bank_->graph, CreditSuissePatternLibrary(),
                         SodaConfig{})
                .value()
                .release();
  }
  static void TearDownTestSuite() {
    delete soda_;
    delete bank_;
  }

  static LookupOutput Lookup(const std::string& query) {
    SodaConfig config;
    LookupStep step(&soda_->classification(), &config_);
    auto parsed = ParseInputQuery(query);
    EXPECT_TRUE(parsed.ok());
    auto output = step.Run(*parsed);
    EXPECT_TRUE(output.ok()) << output.status();
    return output.ok() ? *output : LookupOutput{};
  }

  static MiniBank* bank_;
  static Soda* soda_;
  static SodaConfig config_;
};

MiniBank* LookupRankTest::bank_ = nullptr;
Soda* LookupRankTest::soda_ = nullptr;
SodaConfig LookupRankTest::config_;

// ---------------------------------------------------------------------------
// classification
// ---------------------------------------------------------------------------

TEST_F(LookupRankTest, ClassificationFindsAllMetadataKinds) {
  const ClassificationIndex& index = soda_->classification();
  // Ontology concept.
  auto customers = index.Lookup("customers");
  ASSERT_EQ(customers.size(), 1u);
  EXPECT_EQ(customers[0].layer, MetadataLayer::kDomainOntology);
  // Conceptual + logical entity.
  EXPECT_EQ(index.Lookup("financial instruments").size(), 2u);
  // Physical table name.
  bool physical_found = false;
  for (const auto& ep : index.Lookup("individuals")) {
    physical_found |= ep.layer == MetadataLayer::kPhysicalSchema;
  }
  EXPECT_TRUE(physical_found);
  // Metadata filter label.
  EXPECT_FALSE(index.Lookup("wealthy customers").empty());
  // DBpedia term.
  auto client = index.Lookup("client");
  ASSERT_FALSE(client.empty());
  EXPECT_EQ(client[0].layer, MetadataLayer::kDbpedia);
  // Base data.
  auto zurich = index.Lookup("Zurich");
  ASSERT_EQ(zurich.size(), 1u);
  EXPECT_EQ(zurich[0].kind, EntryPoint::Kind::kBaseData);
  EXPECT_EQ(zurich[0].value, "Zürich");
}

TEST_F(LookupRankTest, MetadataBeforeBaseData) {
  // When a phrase matches both, metadata candidates come first.
  auto results = soda_->classification().Lookup("individuals");
  ASSERT_GE(results.size(), 1u);
  EXPECT_EQ(results[0].kind, EntryPoint::Kind::kMetadataNode);
}

TEST_F(LookupRankTest, SegmentationPrefersLongestCombination) {
  std::vector<std::string> ignored;
  auto phrases = soda_->classification().SegmentKeywords(
      {"financial", "instruments", "Zurich"}, &ignored);
  ASSERT_EQ(phrases.size(), 2u);
  EXPECT_EQ(phrases[0], "financial instruments");
  EXPECT_EQ(phrases[1], "Zurich");  // original spelling preserved
  EXPECT_TRUE(ignored.empty());
}

TEST_F(LookupRankTest, UnknownWordsIgnored) {
  std::vector<std::string> ignored;
  auto phrases = soda_->classification().SegmentKeywords(
      {"frobnicate", "customers"}, &ignored);
  ASSERT_EQ(phrases.size(), 1u);
  EXPECT_EQ(phrases[0], "customers");
  ASSERT_EQ(ignored.size(), 1u);
  EXPECT_EQ(ignored[0], "frobnicate");
}

// ---------------------------------------------------------------------------
// lookup step
// ---------------------------------------------------------------------------

TEST_F(LookupRankTest, CombinatorialProduct) {
  LookupOutput out = Lookup("customers Zürich financial instruments");
  ASSERT_EQ(out.terms.size(), 3u);
  EXPECT_EQ(out.complexity, 2u);  // 1 x 1 x 2 (paper Figure 5)
  EXPECT_EQ(out.interpretations.size(), 2u);
}

TEST_F(LookupRankTest, OperatorBindsToPrecedingTerm) {
  LookupOutput out = Lookup("salary >= 500000");
  ASSERT_EQ(out.operators.size(), 1u);
  EXPECT_EQ(out.operators[0].op, CompareOp::kGe);
  EXPECT_EQ(out.operators[0].literal, Value::Int(500000));
  EXPECT_EQ(out.terms[out.operators[0].term_index].phrase, "salary");
  EXPECT_TRUE(out.terms[out.operators[0].term_index].has_operator);
}

TEST_F(LookupRankTest, BetweenBindsTwoLiterals) {
  LookupOutput out = Lookup(
      "transaction date between date(2010-01-01) date(2010-12-31)");
  ASSERT_EQ(out.operators.size(), 1u);
  EXPECT_TRUE(out.operators[0].is_between);
  EXPECT_EQ(out.operators[0].literal.type(), ValueType::kDate);
  EXPECT_EQ(out.operators[0].literal_high.type(), ValueType::kDate);
}

TEST_F(LookupRankTest, ComparisonWithoutLhsFails) {
  SodaConfig config;
  LookupStep step(&soda_->classification(), &config);
  auto parsed = ParseInputQuery(">= 100");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(step.Run(*parsed).ok());
}

// ---------------------------------------------------------------------------
// ranking
// ---------------------------------------------------------------------------

TEST_F(LookupRankTest, LayerWeightsOrdered) {
  SodaConfig config;
  EXPECT_GT(LayerWeight(MetadataLayer::kDomainOntology, config),
            LayerWeight(MetadataLayer::kConceptualSchema, config));
  EXPECT_GT(LayerWeight(MetadataLayer::kConceptualSchema, config),
            LayerWeight(MetadataLayer::kLogicalSchema, config));
  EXPECT_GT(LayerWeight(MetadataLayer::kBaseData, config),
            LayerWeight(MetadataLayer::kDbpedia, config));
}

TEST_F(LookupRankTest, RankingPrefersOntologyOverDbpedia) {
  // "customer" matches only DBpedia; "customers" only the ontology. Build
  // an artificial lookup with both candidates for one term and check the
  // ordering of interpretations.
  LookupOutput out = Lookup("financial instruments");
  ASSERT_EQ(out.terms.size(), 1u);
  ASSERT_EQ(out.terms[0].candidates.size(), 2u);
  SodaConfig config;
  auto ranked = RankAndTopN(out, config);
  ASSERT_EQ(ranked.size(), 2u);
  // Conceptual (0.85) must come before logical (0.80).
  const EntryPoint& first =
      out.terms[0].candidates[ranked[0].choice[0]];
  EXPECT_EQ(first.layer, MetadataLayer::kConceptualSchema);
  EXPECT_GT(ranked[0].score, ranked[1].score);
}

TEST_F(LookupRankTest, TopNCapsInterpretations) {
  LookupOutput out = Lookup("Sara");  // several base-data homes
  SodaConfig config;
  config.top_n = 1;
  auto ranked = RankAndTopN(out, config);
  EXPECT_EQ(ranked.size(), 1u);
}

// ---------------------------------------------------------------------------
// end-to-end step timing sanity
// ---------------------------------------------------------------------------

TEST_F(LookupRankTest, SearchReportsTimings) {
  auto output = soda_->Search("customers Zürich financial instruments");
  ASSERT_TRUE(output.ok());
  EXPECT_GE(output->timings.soda_total_ms(), 0.0);
  EXPECT_GE(output->timings.lookup_ms, 0.0);
}

}  // namespace
}  // namespace soda
