#!/usr/bin/env bash
# Tier-1 verify: configure, build, test — exactly what CI runs on every
# push.
#
# Knobs:
#   BUILD_TYPE={RelWithDebInfo,Release,Debug}   (default RelWithDebInfo)
#   SANITIZE={tsan,asan}  sanitizer leg: Debug build with TSan or
#       ASan+UBSan, running the concurrency-facing suites (thread pool,
#       cache, engine, batch/async streaming, metrics, pipeline) under
#       the sanitizer runtime.
#   BUILD_DIR, JOBS       as usual.
#
# BUILD_TYPE=Release additionally smoke-runs the end-to-end bench, tees
# its output to ${BUILD_DIR}/bench_smoke.txt (uploaded as a CI artifact)
# and fails if the bench crashed or any required counter is missing from
# the output — the guard for the engine's metrics/batch counters.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
SANITIZE="${SANITIZE:-}"
JOBS="${JOBS:-$(nproc)}"

CMAKE_ARGS=()
CTEST_ARGS=()
case "${SANITIZE}" in
  "")
    BUILD_DIR="${BUILD_DIR:-build}"
    ;;
  tsan)
    BUILD_TYPE=Debug
    BUILD_DIR="${BUILD_DIR:-build-tsan}"
    CMAKE_ARGS+=(-DSODA_SANITIZE=thread)
    # The concurrency surface is what TSan is here for; the serial suites
    # (and the slow property-based sweep) run in the plain legs.
    CTEST_ARGS+=(-R 'concurrency|engine|batch_async|metrics|pipeline')
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
    ;;
  asan)
    BUILD_TYPE=Debug
    BUILD_DIR="${BUILD_DIR:-build-asan}"
    CMAKE_ARGS+=(-DSODA_SANITIZE=address,undefined)
    CTEST_ARGS+=(-R 'concurrency|engine|batch_async|metrics|pipeline')
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}"
    ;;
  *)
    echo "unknown SANITIZE='${SANITIZE}' (want tsan or asan)" >&2
    exit 2
    ;;
esac

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
      "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
# --timeout: a deadlocked async/barrier test fails in 2 minutes instead
# of hanging the runner until the job-level timeout. --no-tests=error:
# a sanitizer leg whose -R filter matches nothing (or a tree configured
# without GTest) must fail loudly, not pass vacuously.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
      --timeout 120 --no-tests=error "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

if [[ "${BUILD_TYPE}" == "Release" &&
      -x "${BUILD_DIR}/bench_micro_end_to_end" ]]; then
  # Smoke-run: one fast repetition, enough to catch crashes and record
  # the thread-sweep + cache + batch/async numbers in CI logs.
  BENCH_OUT="${BUILD_DIR}/bench_smoke.txt"
  "${BUILD_DIR}/bench_micro_end_to_end" \
      --benchmark_min_time=0.05 \
      --benchmark_counters_tabular=true 2>&1 | tee "${BENCH_OUT}"

  # Counter guard: the sweep and the new batch/async/metrics surfaces
  # must all have reported. A missing counter means a bench silently
  # stopped exercising (or exporting) that path.
  for counter in threads interpretations hit_rate batch_queries \
                 dedup_hits snippets_streamed cache_hits stage_samples; do
    if ! grep -q "${counter}" "${BENCH_OUT}"; then
      echo "bench smoke-run output is missing counter '${counter}'" >&2
      exit 1
    fi
  done
  echo "bench smoke-run OK: all required counters present"
fi
