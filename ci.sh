#!/usr/bin/env bash
# Tier-1 verify: configure, build, test — exactly what CI runs on every
# push. Pass BUILD_TYPE=Release to also smoke-run the end-to-end bench.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

if [[ "${BUILD_TYPE}" == "Release" &&
      -x "${BUILD_DIR}/bench_micro_end_to_end" ]]; then
  # Smoke-run: one fast repetition, enough to catch crashes and record
  # the thread-sweep + cache numbers in CI logs.
  "${BUILD_DIR}/bench_micro_end_to_end" \
      --benchmark_min_time=0.05 \
      --benchmark_counters_tabular=true
fi
