#!/usr/bin/env bash
# Tier-1 verify: configure, build, test — exactly what CI runs on every
# push.
#
# Knobs:
#   BUILD_TYPE={RelWithDebInfo,Release,Debug}   (default RelWithDebInfo)
#   SANITIZE={tsan,asan}  sanitizer leg: Debug build with TSan or
#       ASan+UBSan, running the concurrency-facing suites (thread pool,
#       cache, engine, sharded router, batch/async streaming, metrics,
#       pipeline) under the sanitizer runtime.
#   FORMAT=1              lint leg: clang-format --dry-run --Werror over
#       every tracked C++ file in src/ tests/ bench/ examples/ (the
#       committed .clang-format is the single source of truth). No build.
#   COVERAGE=1            coverage leg: Debug build instrumented with
#       --coverage, full ctest run, then line coverage of src/core/ is
#       computed (gcovr when available, plain gcov otherwise), written to
#       ${BUILD_DIR}/coverage/ and compared against COVERAGE_FLOOR — the
#       leg fails if the core pipeline's coverage drops below the floor.
#   COVERAGE_FLOOR=<pct>  recorded floor for src/core/ line coverage.
#   BUILD_DIR, JOBS       as usual.
#
# BUILD_TYPE=Release additionally smoke-runs the end-to-end bench, tees
# its output to ${BUILD_DIR}/bench_smoke.txt (uploaded as a CI artifact)
# and fails if the bench crashed or any required counter is missing from
# the output — the guard for the engine's metrics/batch/router counters.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
SANITIZE="${SANITIZE:-}"
FORMAT="${FORMAT:-}"
COVERAGE="${COVERAGE:-}"
JOBS="${JOBS:-$(nproc)}"

# Recorded floor for src/core/ line coverage (percent): measured 92.0%
# with the gcov fallback when the gate landed, floored with slack for
# gcovr-vs-gcov line accounting differences. Raise it as tests grow;
# never lower it to make a red leg green without a written-down reason
# in the PR.
COVERAGE_FLOOR="${COVERAGE_FLOOR:-85.0}"

# --------------------------------------------------------------------------
# Lint leg: formatting is a build-free check, reproducible locally with
# FORMAT=1 ./ci.sh (requires clang-format; CI installs it).
# --------------------------------------------------------------------------
if [[ -n "${FORMAT}" ]]; then
  # Pinned major version first: formatting verdicts must not flip when a
  # distro bumps its default clang-format. CI installs clang-format-18;
  # override with CLANG_FORMAT=... locally.
  CLANG_FORMAT="${CLANG_FORMAT:-}"
  if [[ -z "${CLANG_FORMAT}" ]]; then
    for candidate in clang-format-18 clang-format; do
      if command -v "${candidate}" >/dev/null; then
        CLANG_FORMAT="${candidate}"
        break
      fi
    done
  fi
  if [[ -z "${CLANG_FORMAT}" ]]; then
    echo "FORMAT=1 requires clang-format on PATH (CI: apt-get install" \
         "clang-format-18)" >&2
    exit 2
  fi
  "${CLANG_FORMAT}" --version
  mapfile -t files < <(git ls-files \
      'src/**/*.h' 'src/**/*.cc' \
      'tests/*.cc' 'bench/*.cc' 'bench/*.h' 'examples/*.cpp')
  if [[ "${#files[@]}" -eq 0 ]]; then
    echo "FORMAT=1 matched no files — tree layout changed?" >&2
    exit 2
  fi
  echo "checking formatting of ${#files[@]} files"
  "${CLANG_FORMAT}" --dry-run --Werror "${files[@]}"
  echo "clang-format OK"
  exit 0
fi

CMAKE_ARGS=()
CTEST_ARGS=()

# The coverage leg claims its build dir before the default-dir fallback
# below can: instrumented objects must never land in (and poison the
# CMake cache of) the plain build/ tree.
if [[ -n "${COVERAGE}" ]]; then
  if [[ -n "${SANITIZE}" ]]; then
    echo "COVERAGE=1 and SANITIZE are mutually exclusive legs" >&2
    exit 2
  fi
  BUILD_TYPE=Debug
  BUILD_DIR="${BUILD_DIR:-build-coverage}"
  CMAKE_ARGS+=(-DSODA_COVERAGE=ON)
fi

case "${SANITIZE}" in
  "")
    BUILD_DIR="${BUILD_DIR:-build}"
    ;;
  tsan)
    BUILD_TYPE=Debug
    BUILD_DIR="${BUILD_DIR:-build-tsan}"
    CMAKE_ARGS+=(-DSODA_SANITIZE=thread)
    # The concurrency surface is what TSan is here for; the serial suites
    # (and the slow property-based sweep) run in the plain legs.
    CTEST_ARGS+=(-R 'concurrency|engine|batch_async|metrics|pipeline|freshness|session')
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
    ;;
  asan)
    BUILD_TYPE=Debug
    BUILD_DIR="${BUILD_DIR:-build-asan}"
    CMAKE_ARGS+=(-DSODA_SANITIZE=address,undefined)
    CTEST_ARGS+=(-R 'concurrency|engine|batch_async|metrics|pipeline|freshness|session')
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}"
    ;;
  *)
    echo "unknown SANITIZE='${SANITIZE}' (want tsan or asan)" >&2
    exit 2
    ;;
esac

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
      "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
# --timeout: a deadlocked async/barrier test fails in 2 minutes instead
# of hanging the runner until the job-level timeout. --no-tests=error:
# a sanitizer leg whose -R filter matches nothing (or a tree configured
# without GTest) must fail loudly, not pass vacuously.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
      --timeout 120 --no-tests=error "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

# --------------------------------------------------------------------------
# Coverage leg: aggregate line coverage of src/core/ (the pipeline and
# both engines — the part of the tree the paper's algorithm lives in) and
# fail below the recorded floor. gcovr gives the pretty per-file report
# for the artifact; the gcov fallback computes the same aggregate so the
# gate works on a bare toolchain.
# --------------------------------------------------------------------------
if [[ -n "${COVERAGE}" ]]; then
  COV_DIR="${BUILD_DIR}/coverage"
  mkdir -p "${COV_DIR}"
  core_pct=""
  if command -v gcovr >/dev/null; then
    gcovr --root . --filter 'src/' --print-summary \
          --html-details "${COV_DIR}/coverage.html" \
          --xml "${COV_DIR}/coverage.xml" \
          --txt "${COV_DIR}/coverage.txt" "${BUILD_DIR}"
    core_pct=$(gcovr --root . --filter 'src/core/' "${BUILD_DIR}" \
               | tee "${COV_DIR}/coverage_core.txt" \
               | awk '/^TOTAL/ { gsub(/%/, "", $4); print $4 }')
  else
    echo "gcovr not found — falling back to plain gcov aggregation"
    # The library objects accumulate every test binary's execution counts
    # in their .gcda files; `gcov -n` prints per-source summaries without
    # writing .gcov files. Aggregate the lines of every file under
    # src/core/ (headers included — the engine templates live there).
    # gcov emits one entry per (file, including TU) pair, so shared
    # headers appear once per includer: dedupe by keeping each file's
    # best-covered entry — an approximation of the cross-TU union (gcovr
    # merges exactly), which is what the floor's slack is for.
    core_pct=$(
      find "${BUILD_DIR}/CMakeFiles/soda.dir" -name '*.gcda' \
           -path '*src/core*' -print0 |
      xargs -0 -r gcov -n 2>/dev/null |
      awk "
        /^File '.*src\/core\// { file = \$0; keep = 1; next }
        /^File /               { keep = 0; next }
        keep && /^Lines executed:/ {
          gsub(/Lines executed:|% of /, \" \");
          c = \$1 / 100.0 * \$2
          if (!(file in best) || c > best[file]) {
            best[file] = c; tot[file] = \$2
          }
          keep = 0
        }
        END {
          for (f in best) { covered += best[f]; total += tot[f] }
          if (total > 0) printf \"%.2f\", covered * 100.0 / total
        }
      "
    )
    echo "src/core/ aggregate line coverage: ${core_pct}%" \
        | tee "${COV_DIR}/coverage_core.txt"
  fi
  if [[ -z "${core_pct}" ]]; then
    echo "failed to compute src/core/ coverage (no .gcda data?)" >&2
    exit 1
  fi
  echo "src/core/ line coverage: ${core_pct}% (floor: ${COVERAGE_FLOOR}%)"
  awk -v pct="${core_pct}" -v floor="${COVERAGE_FLOOR}" 'BEGIN {
    if (pct + 0 < floor + 0) {
      printf "coverage gate FAILED: %.2f%% < %.2f%% floor\n", pct, floor
      exit 1
    }
    printf "coverage gate OK: %.2f%% >= %.2f%% floor\n", pct, floor
  }'
fi

if [[ "${BUILD_TYPE}" == "Release" &&
      -x "${BUILD_DIR}/bench_micro_end_to_end" ]]; then
  # Smoke-run: one fast repetition, enough to catch crashes and record
  # the thread-sweep + cache + batch/async + sharded-router numbers in
  # CI logs.
  BENCH_OUT="${BUILD_DIR}/bench_smoke.txt"
  "${BUILD_DIR}/bench_micro_end_to_end" \
      --benchmark_min_time=0.05 \
      --benchmark_counters_tabular=true 2>&1 | tee "${BENCH_OUT}"

  # Counter guard: the sweep and the batch/async/metrics/router surfaces
  # must all have reported. A missing counter means a bench silently
  # stopped exercising (or exporting) that path.
  for counter in threads interpretations hit_rate batch_queries \
                 dedup_hits snippets_streamed cache_hits stage_samples \
                 shards router_shard_queries router_shard_batches \
                 closure_traverse_hits closure_path_lookups \
                 freshness_events freshness_keys_invalidated \
                 probe_memo_hits session_refines session_stages_skipped; do
    if ! grep -q "${counter}" "${BENCH_OUT}"; then
      echo "bench smoke-run output is missing counter '${counter}'" >&2
      exit 1
    fi
  done
  echo "bench smoke-run OK: all required counters present"
fi

if [[ "${BUILD_TYPE}" == "Release" &&
      -x "${BUILD_DIR}/bench_micro_index_lookup" ]]; then
  # Index micro-bench artifact: the phrase-length × postings-skew sweep
  # and the memory-accounting counters, recorded as JSON for comparison
  # across PRs (uploaded alongside bench_smoke.txt).
  "${BUILD_DIR}/bench_micro_index_lookup" \
      --benchmark_min_time=0.05 \
      --benchmark_counters_tabular=true \
      --benchmark_out="${BUILD_DIR}/bench_index_lookup.json" \
      --benchmark_out_format=json
  echo "index lookup bench OK: JSON at ${BUILD_DIR}/bench_index_lookup.json"
fi
