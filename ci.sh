#!/usr/bin/env bash
# Tier-1 verify: configure, build, test — exactly what CI runs on every
# push.
#
# Knobs:
#   BUILD_TYPE={RelWithDebInfo,Release,Debug}   (default RelWithDebInfo)
#   SANITIZE={tsan,asan}  sanitizer leg: Debug build with TSan or
#       ASan+UBSan, running the concurrency-facing suites (thread pool,
#       cache, engine, sharded router, batch/async streaming, metrics,
#       pipeline, HTTP server) under the sanitizer runtime.
#   FORMAT=1              lint leg: clang-format --dry-run --Werror over
#       every tracked C++ file in src/ tests/ bench/ examples/ (the
#       committed .clang-format is the single source of truth). No build.
#   FAULTS=1              fault leg: runs the failpoint sweep
#       (fault_injection_test — armed throw/error/stall failpoints,
#       shard quarantine + re-routing, degraded-mode serving) under BOTH
#       TSan and ASan by re-entering this script once per sanitizer with
#       the ctest filter narrowed to the fault suite. The full sanitizer
#       legs also pick the suite up via their own filters; this leg is
#       the cheap, targeted re-run CI gates on.
#   COVERAGE=1            coverage leg: Debug build instrumented with
#       --coverage, full ctest run, then line coverage of src/core/ and
#       src/net/ is computed (gcovr when available, plain gcov
#       otherwise), written to ${BUILD_DIR}/coverage/ and compared
#       against the recorded floors — the leg fails if either subtree's
#       coverage drops below its floor.
#   COVERAGE_FLOOR=<pct>      recorded floor for src/core/ line coverage.
#   COVERAGE_FLOOR_NET=<pct>  recorded floor for src/net/ line coverage.
#   SERVER_SMOKE={1,only} server smoke stage: boots the demo's HTTP
#       serving mode on an ephemeral port, curls /healthz, a /search
#       round-trip and /metrics (every server_* series must be present),
#       then requires a clean graceful-drain exit on SIGTERM. "1" adds
#       the stage to the current leg; "only" runs just the stage against
#       an already-built ${BUILD_DIR} (what the CI job step uses).
#       Release legs run it automatically.
#   BUILD_DIR, JOBS       as usual.
#
# BUILD_TYPE=Release additionally smoke-runs the end-to-end bench, tees
# its output to ${BUILD_DIR}/bench_smoke.txt (uploaded as a CI artifact)
# and fails if the bench crashed or any required counter is missing from
# the output — the guard for the engine's metrics/batch/router counters.
# The Release leg also drives the closed-loop HTTP load harness
# (bench_http_load) against a live server, recording latency percentiles
# to ${BUILD_DIR}/BENCH_http_load.json (a CI artifact) and failing on any
# dropped request, shed-accounting mismatch or missing counter.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
SANITIZE="${SANITIZE:-}"
FORMAT="${FORMAT:-}"
FAULTS="${FAULTS:-}"
COVERAGE="${COVERAGE:-}"
SERVER_SMOKE="${SERVER_SMOKE:-}"
CTEST_FILTER="${CTEST_FILTER:-}"
JOBS="${JOBS:-$(nproc)}"

# Recorded floors for aggregate line coverage (percent). Never lower one
# to make a red leg green without a written-down reason in the PR.
#
# src/core/: measured 92.0% with the gcov fallback when the gate landed,
# re-measured 92.71% after the queue_depth() surface was added (the new
# lines are exercised by the shedding tests), floored at 85 with slack
# for gcovr-vs-gcov line accounting differences.
COVERAGE_FLOOR="${COVERAGE_FLOOR:-85.0}"
# src/net/: the HTTP front end. http_server_test drives the parser,
# serializer, client and server paths over real sockets and
# net_json_test covers the JSON codec; what stays uncovered is mostly
# syscall-error plumbing (ENOMEM-class socket failures) that a unit
# suite can't provoke. Measured 84.41% with the gcov fallback when the
# front end landed; floored at 78.
COVERAGE_FLOOR_NET="${COVERAGE_FLOOR_NET:-78.0}"

# --------------------------------------------------------------------------
# Lint leg: formatting is a build-free check, reproducible locally with
# FORMAT=1 ./ci.sh (requires clang-format; CI installs it).
# --------------------------------------------------------------------------
if [[ -n "${FORMAT}" ]]; then
  # Pinned major version first: formatting verdicts must not flip when a
  # distro bumps its default clang-format. CI installs clang-format-18;
  # override with CLANG_FORMAT=... locally.
  CLANG_FORMAT="${CLANG_FORMAT:-}"
  if [[ -z "${CLANG_FORMAT}" ]]; then
    for candidate in clang-format-18 clang-format; do
      if command -v "${candidate}" >/dev/null; then
        CLANG_FORMAT="${candidate}"
        break
      fi
    done
  fi
  if [[ -z "${CLANG_FORMAT}" ]]; then
    echo "FORMAT=1 requires clang-format on PATH (CI: apt-get install" \
         "clang-format-18)" >&2
    exit 2
  fi
  "${CLANG_FORMAT}" --version
  mapfile -t files < <(git ls-files \
      'src/**/*.h' 'src/**/*.cc' \
      'tests/*.cc' 'bench/*.cc' 'bench/*.h' 'examples/*.cpp')
  if [[ "${#files[@]}" -eq 0 ]]; then
    echo "FORMAT=1 matched no files — tree layout changed?" >&2
    exit 2
  fi
  echo "checking formatting of ${#files[@]} files"
  "${CLANG_FORMAT}" --dry-run --Werror "${files[@]}"
  echo "clang-format OK"
  exit 0
fi

# --------------------------------------------------------------------------
# Fault leg: the failpoint sweep must be clean under both sanitizers —
# TSan for the quarantine/re-route/abandon concurrency, ASan+LSan for
# leaks on the abandoned-attempt and contained-exception paths. Reuses
# the standard sanitizer build dirs so a box that already ran those legs
# only pays the (filtered) test time.
# --------------------------------------------------------------------------
if [[ -n "${FAULTS}" ]]; then
  FAULTS= SANITIZE=tsan CTEST_FILTER=fault "$0"
  FAULTS= SANITIZE=asan CTEST_FILTER=fault "$0"
  echo "fault leg OK: fault_injection_test clean under TSan and ASan"
  exit 0
fi

CMAKE_ARGS=()
CTEST_ARGS=()

# The coverage leg claims its build dir before the default-dir fallback
# below can: instrumented objects must never land in (and poison the
# CMake cache of) the plain build/ tree.
if [[ -n "${COVERAGE}" ]]; then
  if [[ -n "${SANITIZE}" ]]; then
    echo "COVERAGE=1 and SANITIZE are mutually exclusive legs" >&2
    exit 2
  fi
  BUILD_TYPE=Debug
  BUILD_DIR="${BUILD_DIR:-build-coverage}"
  CMAKE_ARGS+=(-DSODA_COVERAGE=ON)
fi

case "${SANITIZE}" in
  "")
    BUILD_DIR="${BUILD_DIR:-build}"
    ;;
  tsan)
    BUILD_TYPE=Debug
    BUILD_DIR="${BUILD_DIR:-build-tsan}"
    CMAKE_ARGS+=(-DSODA_SANITIZE=thread)
    # The concurrency surface is what TSan is here for; the serial suites
    # (and the slow property-based sweep) run in the plain legs.
    # CTEST_FILTER narrows further (the FAULTS leg passes 'fault').
    CTEST_ARGS+=(-R "${CTEST_FILTER:-concurrency|engine|batch_async|metrics|pipeline|freshness|session|http|server|net|fault|trace}")
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
    ;;
  asan)
    BUILD_TYPE=Debug
    BUILD_DIR="${BUILD_DIR:-build-asan}"
    CMAKE_ARGS+=(-DSODA_SANITIZE=address,undefined)
    CTEST_ARGS+=(-R "${CTEST_FILTER:-concurrency|engine|batch_async|metrics|pipeline|freshness|session|http|server|net|fault|trace}")
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}"
    ;;
  *)
    echo "unknown SANITIZE='${SANITIZE}' (want tsan or asan)" >&2
    exit 2
    ;;
esac

# --------------------------------------------------------------------------
# Server smoke stage: boots the demo's HTTP serving mode on an ephemeral
# port and proves the whole front end over real sockets — /healthz
# answers, /search round-trips a query, /metrics exports every server_*
# series — then SIGTERMs the process and requires a clean graceful-drain
# exit. bench_http_load --probe performs the same checks through the
# in-tree HTTP client, so the stage keeps its teeth on a curl-less box
# (and cross-checks curl when both are present).
# --------------------------------------------------------------------------
run_server_smoke() {
  local demo="${BUILD_DIR}/example_service_demo"
  if [[ ! -x "${demo}" ]]; then
    echo "server smoke: ${demo} not built" >&2
    return 1
  fi
  local log="${BUILD_DIR}/server_smoke.log"
  "${demo}" --serve >"${log}" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's|.*serving on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' \
               "${log}" | head -n 1)
    [[ -n "${port}" ]] && break
    if ! kill -0 "${pid}" 2>/dev/null; then
      echo "server smoke: demo exited before announcing its port" >&2
      cat "${log}" >&2
      return 1
    fi
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "server smoke: no port announced within 10s" >&2
    kill "${pid}" 2>/dev/null || true
    return 1
  fi
  echo "server smoke: demo serving on 127.0.0.1:${port}"

  local status=0
  if [[ -x "${BUILD_DIR}/bench_http_load" ]]; then
    "${BUILD_DIR}/bench_http_load" --probe --port "${port}" || status=1
  fi
  if command -v curl >/dev/null; then
    curl -fsS --max-time 10 "http://127.0.0.1:${port}/healthz" \
        | grep -qx 'ok' \
        || { echo "server smoke: /healthz check failed" >&2; status=1; }
    curl -fsS --max-time 30 -X POST \
        -d '{"query":"addresses Sara Guttinger"}' \
        "http://127.0.0.1:${port}/search" \
        | grep -q '"outputs"' \
        || { echo "server smoke: /search round-trip failed" >&2; status=1; }
    local metrics series
    metrics=$(curl -fsS --max-time 10 "http://127.0.0.1:${port}/metrics") \
        || status=1
    for series in soda_server_requests_total soda_server_accepted_total \
                  soda_server_shed_total soda_server_timeouts_total \
                  soda_server_inflight; do
      if ! grep -q "${series}" <<<"${metrics}"; then
        echo "server smoke: /metrics is missing series '${series}'" >&2
        status=1
      fi
    done
    curl -fsS --max-time 10 "http://127.0.0.1:${port}/debug/vars" \
        | grep -q '"trace"' \
        || { echo "server smoke: /debug/vars check failed" >&2; status=1; }
    curl -fsS --max-time 10 "http://127.0.0.1:${port}/debug/traces?min_ms=0" \
        | grep -q '"traces"' \
        || { echo "server smoke: /debug/traces check failed" >&2; status=1; }
  elif [[ ! -x "${BUILD_DIR}/bench_http_load" ]]; then
    echo "server smoke: neither curl nor bench_http_load available" >&2
    status=1
  fi

  kill -TERM "${pid}" 2>/dev/null || true
  if ! wait "${pid}"; then
    echo "server smoke: demo did not drain cleanly on SIGTERM" >&2
    cat "${log}" >&2
    return 1
  fi
  if [[ "${status}" -ne 0 ]]; then
    cat "${log}" >&2
    return 1
  fi
  echo "server smoke OK: healthz + search round-trip" \
       "+ metrics series + debug endpoints + clean drain"
}

# The CI job step re-enters ci.sh with SERVER_SMOKE=only after the
# build/test leg so the smoke shows up as its own step — no reconfigure,
# no rebuild, just the stage against the existing tree.
if [[ "${SERVER_SMOKE}" == "only" ]]; then
  run_server_smoke
  exit 0
fi

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
      "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
# --timeout: a deadlocked async/barrier test fails in 2 minutes instead
# of hanging the runner until the job-level timeout. --no-tests=error:
# a sanitizer leg whose -R filter matches nothing (or a tree configured
# without GTest) must fail loudly, not pass vacuously.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
      --timeout 120 --no-tests=error "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"

# --------------------------------------------------------------------------
# Coverage leg: aggregate line coverage per gated subtree — src/core/
# (the pipeline and both engines, where the paper's algorithm lives) and
# src/net/ (the HTTP front end) — each against its recorded floor.
# gcovr gives the pretty per-file report for the artifact; the gcov
# fallback computes the same aggregate so the gates work on a bare
# toolchain.
# --------------------------------------------------------------------------

# Aggregate line coverage (percent, 2 decimals) of one source subtree,
# e.g. `subtree_pct src/core core`. The library objects accumulate every
# test binary's execution counts in their .gcda files; `gcov -n` prints
# per-source summaries without writing .gcov files. Headers under the
# subtree are included (the engine templates live there). gcov emits one
# entry per (file, including TU) pair, so shared headers appear once per
# includer: dedupe by keeping each file's best-covered entry — an
# approximation of the cross-TU union (gcovr merges exactly), which is
# what the floors' slack is for.
subtree_pct() {
  local subtree="$1" label="$2"
  if command -v gcovr >/dev/null; then
    gcovr --root . --filter "${subtree}/" "${BUILD_DIR}" \
        | tee "${COV_DIR}/coverage_${label}.txt" \
        | awk '/^TOTAL/ { gsub(/%/, "", $4); print $4 }'
    return
  fi
  local pct
  pct=$(
    find "${BUILD_DIR}/CMakeFiles/soda.dir" -name '*.gcda' \
         -path "*${subtree}*" -print0 |
    xargs -0 -r gcov -n 2>/dev/null |
    awk -v subtree="${subtree}/" '
      /^File /            { file = $0; keep = index($0, subtree) > 0; next }
      keep && /^Lines executed:/ {
        gsub(/Lines executed:|% of /, " ");
        c = $1 / 100.0 * $2
        if (!(file in best) || c > best[file]) {
          best[file] = c; tot[file] = $2
        }
        keep = 0
      }
      END {
        for (f in best) { covered += best[f]; total += tot[f] }
        if (total > 0) printf "%.2f", covered * 100.0 / total
      }
    '
  )
  echo "${subtree}/ aggregate line coverage: ${pct}%" \
      | tee "${COV_DIR}/coverage_${label}.txt" >&2
  echo "${pct}"
}

# Fails the leg when a subtree's measured coverage is missing or under
# its floor.
check_floor() {
  local subtree="$1" pct="$2" floor="$3"
  if [[ -z "${pct}" ]]; then
    echo "failed to compute ${subtree}/ coverage (no .gcda data?)" >&2
    exit 1
  fi
  echo "${subtree}/ line coverage: ${pct}% (floor: ${floor}%)"
  awk -v pct="${pct}" -v floor="${floor}" -v subtree="${subtree}" 'BEGIN {
    if (pct + 0 < floor + 0) {
      printf "coverage gate FAILED: %s %.2f%% < %.2f%% floor\n",
             subtree, pct, floor
      exit 1
    }
    printf "coverage gate OK: %s %.2f%% >= %.2f%% floor\n",
           subtree, pct, floor
  }'
}

if [[ -n "${COVERAGE}" ]]; then
  COV_DIR="${BUILD_DIR}/coverage"
  mkdir -p "${COV_DIR}"
  if command -v gcovr >/dev/null; then
    gcovr --root . --filter 'src/' --print-summary \
          --html-details "${COV_DIR}/coverage.html" \
          --xml "${COV_DIR}/coverage.xml" \
          --txt "${COV_DIR}/coverage.txt" "${BUILD_DIR}"
  else
    echo "gcovr not found — falling back to plain gcov aggregation"
  fi
  core_pct=$(subtree_pct src/core core)
  net_pct=$(subtree_pct src/net net)
  check_floor src/core "${core_pct}" "${COVERAGE_FLOOR}"
  check_floor src/net "${net_pct}" "${COVERAGE_FLOOR_NET}"
fi

if [[ "${BUILD_TYPE}" == "Release" &&
      -x "${BUILD_DIR}/bench_micro_end_to_end" ]]; then
  # Smoke-run: one fast repetition, enough to catch crashes and record
  # the thread-sweep + cache + batch/async + sharded-router numbers in
  # CI logs.
  BENCH_OUT="${BUILD_DIR}/bench_smoke.txt"
  "${BUILD_DIR}/bench_micro_end_to_end" \
      --benchmark_min_time=0.05 \
      --benchmark_counters_tabular=true 2>&1 | tee "${BENCH_OUT}"

  # Counter guard: the sweep and the batch/async/metrics/router surfaces
  # must all have reported. A missing counter means a bench silently
  # stopped exercising (or exporting) that path.
  for counter in threads interpretations hit_rate batch_queries \
                 dedup_hits snippets_streamed cache_hits stage_samples \
                 shards router_shard_queries router_shard_batches \
                 router_shard_failures router_rerouted_queries \
                 closure_traverse_hits closure_path_lookups \
                 freshness_events freshness_keys_invalidated \
                 probe_memo_hits session_refines session_stages_skipped \
                 trace_spans trace_sampled trace_dropped; do
    if ! grep -q "${counter}" "${BENCH_OUT}"; then
      echo "bench smoke-run output is missing counter '${counter}'" >&2
      exit 1
    fi
  done
  echo "bench smoke-run OK: all required counters present"
fi

if [[ "${BUILD_TYPE}" == "Release" &&
      -x "${BUILD_DIR}/bench_micro_index_lookup" ]]; then
  # Index micro-bench artifact: the phrase-length × postings-skew sweep
  # and the memory-accounting counters, recorded as JSON for comparison
  # across PRs (uploaded alongside bench_smoke.txt).
  "${BUILD_DIR}/bench_micro_index_lookup" \
      --benchmark_min_time=0.05 \
      --benchmark_counters_tabular=true \
      --benchmark_out="${BUILD_DIR}/bench_index_lookup.json" \
      --benchmark_out_format=json
  echo "index lookup bench OK: JSON at ${BUILD_DIR}/bench_index_lookup.json"
fi

if [[ "${BUILD_TYPE}" == "Release" && -x "${BUILD_DIR}/bench_http_load" ]]; then
  # Closed-loop HTTP load sweep over a live server: mixed hit/miss and
  # mutation traffic through the freshness path, exact latency
  # percentiles recorded to BENCH_http_load.json (uploaded as a CI
  # artifact). The harness itself exits nonzero on any dropped
  # (non-shed) request or a shed-accounting mismatch between client and
  # server; the guard below additionally requires the latency and shed
  # counters to have reported at all.
  LOAD_OUT="${BUILD_DIR}/bench_http_load.txt"
  "${BUILD_DIR}/bench_http_load" \
      --requests 120 --concurrency 1,4 \
      --out "${BUILD_DIR}/BENCH_http_load.json" 2>&1 | tee "${LOAD_OUT}"
  for token in server_requests= server_shed= load_p50_ms= load_p99_ms= \
               load_p999_ms=; do
    if ! grep -q "${token}" "${LOAD_OUT}"; then
      echo "http load output is missing '${token}'" >&2
      exit 1
    fi
  done
  echo "http load harness OK: JSON at ${BUILD_DIR}/BENCH_http_load.json"
fi

# The Release leg always proves the serving front end end-to-end;
# SERVER_SMOKE=1 adds the stage to any other leg.
if [[ -n "${SERVER_SMOKE}" || "${BUILD_TYPE}" == "Release" ]]; then
  run_server_smoke
fi
