#include "ontology/ontology.h"

#include "common/strings.h"
#include "graph/vocab.h"

namespace soda {

namespace {

std::string Slug(const std::string& label) {
  std::string out;
  for (char c : FoldForMatch(label)) {
    out.push_back(c == ' ' ? '_' : c);
  }
  return out;
}

}  // namespace

std::string OntologyConceptUri(const std::string& label) {
  return "onto/" + Slug(label);
}

std::string MetadataFilterUri(const std::string& label) {
  return "filter/" + Slug(label);
}

std::string DbpediaTermUri(const std::string& term) {
  return "dbp/" + Slug(term);
}

Result<NodeId> ResolveScopedName(const MetadataGraph& graph,
                                 const std::string& scoped_name) {
  auto colon = scoped_name.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("scoped name '" + scoped_name +
                                   "' needs a scope prefix");
  }
  std::string scope = scoped_name.substr(0, colon);
  std::string name = scoped_name.substr(colon + 1);
  std::string uri;
  if (scope == "concept") {
    uri = "concept/" + name;
  } else if (scope == "logical") {
    uri = "logical/" + name;
  } else if (scope == "table") {
    uri = "table/" + name;
  } else if (scope == "onto") {
    uri = OntologyConceptUri(name);
  } else {
    return Status::InvalidArgument("unknown scope '" + scope + "' in '" +
                                   scoped_name + "'");
  }
  NodeId node = graph.FindNode(uri);
  if (node == kInvalidNode) {
    return Status::NotFound("scoped name '" + scoped_name +
                            "' resolves to missing node '" + uri + "'");
  }
  return node;
}

Status CompileOntology(const std::vector<OntologyConceptSpec>& concepts,
                       MetadataGraph* graph) {
  // Two passes so parents can be declared after children.
  for (const auto& spec : concepts) {
    SODA_ASSIGN_OR_RETURN(
        NodeId node, graph->AddNode(OntologyConceptUri(spec.label),
                                    MetadataLayer::kDomainOntology));
    NodeId type_node =
        graph->GetOrAddNode(vocab::kOntologyConcept, MetadataLayer::kOther);
    graph->AddEdge(node, vocab::kType, type_node);
    graph->AddTextEdge(node, vocab::kLabel, spec.label);
  }
  for (const auto& spec : concepts) {
    NodeId node = graph->FindNode(OntologyConceptUri(spec.label));
    if (!spec.parent.empty()) {
      NodeId parent = graph->FindNode(OntologyConceptUri(spec.parent));
      if (parent == kInvalidNode) {
        return Status::NotFound("ontology concept '" + spec.label +
                                "' has unknown parent '" + spec.parent +
                                "'");
      }
      graph->AddEdge(node, vocab::kSubconceptOf, parent);
      // The traversal follows outgoing edges from entry points, so the
      // parent concept also needs a path down to its subconcepts.
      graph->AddEdge(parent, vocab::kClassifies, node);
    }
    for (const auto& target : spec.classifies) {
      SODA_ASSIGN_OR_RETURN(NodeId target_node,
                            ResolveScopedName(*graph, target));
      graph->AddEdge(node, vocab::kClassifies, target_node);
    }
  }
  return Status::OK();
}

Status CompileMetadataFilters(const std::vector<MetadataFilterSpec>& filters,
                              MetadataGraph* graph) {
  for (const auto& filter : filters) {
    NodeId column = graph->FindNode("column/" + filter.table + "." +
                                    filter.column);
    if (column == kInvalidNode) {
      return Status::NotFound("metadata filter '" + filter.label +
                              "' references missing column " + filter.table +
                              "." + filter.column);
    }
    SODA_ASSIGN_OR_RETURN(
        NodeId node, graph->AddNode(MetadataFilterUri(filter.label),
                                    MetadataLayer::kDomainOntology));
    NodeId type_node =
        graph->GetOrAddNode(vocab::kMetadataFilter, MetadataLayer::kOther);
    graph->AddEdge(node, vocab::kType, type_node);
    graph->AddTextEdge(node, vocab::kLabel, filter.label);
    graph->AddEdge(node, vocab::kFilterColumn, column);
    graph->AddTextEdge(node, vocab::kFilterOp, filter.op);
    graph->AddTextEdge(node, vocab::kFilterValue, filter.value);
  }
  return Status::OK();
}

std::string MetadataAggregationUri(const std::string& label) {
  return "agg/" + Slug(label);
}

Status CompileMetadataAggregations(
    const std::vector<MetadataAggregationSpec>& aggregations,
    MetadataGraph* graph) {
  for (const auto& agg : aggregations) {
    NodeId column =
        graph->FindNode("column/" + agg.table + "." + agg.column);
    if (column == kInvalidNode) {
      return Status::NotFound("metadata aggregation '" + agg.label +
                              "' references missing column " + agg.table +
                              "." + agg.column);
    }
    SODA_ASSIGN_OR_RETURN(
        NodeId node, graph->AddNode(MetadataAggregationUri(agg.label),
                                    MetadataLayer::kDomainOntology));
    NodeId type_node = graph->GetOrAddNode(vocab::kMetadataAggregation,
                                           MetadataLayer::kOther);
    graph->AddEdge(node, vocab::kType, type_node);
    graph->AddTextEdge(node, vocab::kLabel, agg.label);
    graph->AddEdge(node, vocab::kAggColumn, column);
    graph->AddTextEdge(node, vocab::kAggFunc, agg.func);
  }
  return Status::OK();
}

Status CompileDbpedia(const std::vector<DbpediaSynonymSpec>& synonyms,
                      MetadataGraph* graph) {
  for (const auto& synonym : synonyms) {
    NodeId node = graph->GetOrAddNode(DbpediaTermUri(synonym.term),
                                      MetadataLayer::kDbpedia);
    NodeId type_node =
        graph->GetOrAddNode(vocab::kDbpediaTerm, MetadataLayer::kOther);
    if (!graph->HasEdge(node, vocab::kType, type_node)) {
      graph->AddEdge(node, vocab::kType, type_node);
      graph->AddTextEdge(node, vocab::kLabel, synonym.term);
    }
    for (const auto& target : synonym.schema_targets) {
      SODA_ASSIGN_OR_RETURN(NodeId target_node,
                            ResolveScopedName(*graph, target));
      graph->AddEdge(node, vocab::kSynonymOf, target_node);
    }
  }
  return Status::OK();
}

}  // namespace soda
