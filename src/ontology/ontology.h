// Domain ontologies, metadata-defined filters, and the DBpedia lexicon
// (paper Section 2.2).
//
// Domain ontologies classify schema objects for a business domain: the
// concept "private customers" classifies the Individuals entity, "corporate
// customers" the Organizations entity. Metadata filters are business terms
// that expand to predicates ("wealthy customers" = customers with salary
// above a threshold). DBpedia supplies synonyms attached to schema terms
// ("customer", "client" -> Parties).
//
// All three compile into the metadata graph; SODA discovers them through
// the ontology-concept and metadata-filter patterns during lookup and the
// filters step.

#ifndef SODA_ONTOLOGY_ONTOLOGY_H_
#define SODA_ONTOLOGY_ONTOLOGY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/metadata_graph.h"

namespace soda {

/// One concept of a domain ontology.
struct OntologyConceptSpec {
  /// Business label, e.g. "private customers". Also the lookup key.
  std::string label;
  /// Optional parent concept label (subconcept_of edge).
  std::string parent;
  /// Schema objects this concept classifies, written as scoped names:
  ///   "concept:<Name>"  — conceptual entity
  ///   "logical:<Name>"  — logical entity
  ///   "table:<name>"    — physical table
  std::vector<std::string> classifies;
};

/// A business term that expands to a predicate over a physical column,
/// e.g. label="wealthy customers", table="individuals", column="salary",
/// op=">=", value="1000000".
struct MetadataFilterSpec {
  std::string label;
  std::string table;
  std::string column;
  std::string op;     // one of > >= = <= < like
  std::string value;  // literal text; typed by the column
};

/// A DBpedia synonym: `term` is what users type, `schema_targets` are the
/// scoped names (same syntax as OntologyConceptSpec::classifies) the term
/// maps onto.
struct DbpediaSynonymSpec {
  std::string term;
  std::vector<std::string> schema_targets;
};

/// A business measure that expands to an aggregation over a physical
/// column (paper Section 4.4.2: "trading volume" = sum of the transaction
/// amount). label="trading volume", func="sum", table="fi_transactions",
/// column="amount".
struct MetadataAggregationSpec {
  std::string label;
  std::string func;  // sum | count | avg | min | max
  std::string table;
  std::string column;
};

/// Resolves a scoped name ("logical:Individual") to the graph node created
/// by the warehouse compiler. Fails when the target does not exist.
Result<NodeId> ResolveScopedName(const MetadataGraph& graph,
                                 const std::string& scoped_name);

/// URI helpers shared with the warehouse compiler.
std::string OntologyConceptUri(const std::string& label);
std::string MetadataFilterUri(const std::string& label);
std::string DbpediaTermUri(const std::string& term);

/// Compiles ontology concepts into `graph`. Targets must already exist.
Status CompileOntology(const std::vector<OntologyConceptSpec>& concepts,
                       MetadataGraph* graph);

/// Compiles metadata filters into `graph` (filter nodes live in the domain
/// ontology layer and point at physical columns).
Status CompileMetadataFilters(const std::vector<MetadataFilterSpec>& filters,
                              MetadataGraph* graph);

/// Compiles DBpedia synonyms into `graph`.
Status CompileDbpedia(const std::vector<DbpediaSynonymSpec>& synonyms,
                      MetadataGraph* graph);

/// Compiles metadata aggregations into `graph`.
Status CompileMetadataAggregations(
    const std::vector<MetadataAggregationSpec>& aggregations,
    MetadataGraph* graph);

std::string MetadataAggregationUri(const std::string& label);

}  // namespace soda

#endif  // SODA_ONTOLOGY_ONTOLOGY_H_
