#include "schema/warehouse_model.h"

#include "common/strings.h"
#include "graph/vocab.h"

namespace soda {

std::string ConceptUri(const std::string& entity) { return "concept/" + entity; }
std::string ConceptAttrUri(const std::string& entity,
                           const std::string& attribute) {
  return "concept/" + entity + "/attr/" + attribute;
}
std::string LogicalUri(const std::string& entity) { return "logical/" + entity; }
std::string LogicalAttrUri(const std::string& entity,
                           const std::string& attribute) {
  return "logical/" + entity + "/attr/" + attribute;
}
std::string TableUri(const std::string& table) { return "table/" + table; }
std::string ColumnUri(const std::string& table, const std::string& column) {
  return "column/" + table + "." + column;
}
std::string InheritanceUri(const std::string& parent_table) {
  return "inh/" + parent_table;
}
std::string JoinUri(const std::string& from_table,
                    const std::string& from_column,
                    const std::string& to_table,
                    const std::string& to_column) {
  return "join/" + from_table + "." + from_column + "->" + to_table + "." +
         to_column;
}

WarehouseModel& WarehouseModel::AddConceptualEntity(EntitySpec entity) {
  conceptual_entities_.push_back(std::move(entity));
  return *this;
}
WarehouseModel& WarehouseModel::AddConceptualRelationship(
    RelationshipSpec rel) {
  conceptual_relationships_.push_back(std::move(rel));
  return *this;
}
WarehouseModel& WarehouseModel::AddLogicalEntity(EntitySpec entity) {
  logical_entities_.push_back(std::move(entity));
  return *this;
}
WarehouseModel& WarehouseModel::AddLogicalRelationship(RelationshipSpec rel) {
  logical_relationships_.push_back(std::move(rel));
  return *this;
}
WarehouseModel& WarehouseModel::AddTable(TableSpec table) {
  tables_.push_back(std::move(table));
  return *this;
}
WarehouseModel& WarehouseModel::AddForeignKey(ForeignKeySpec fk) {
  foreign_keys_.push_back(std::move(fk));
  return *this;
}
WarehouseModel& WarehouseModel::AddInheritance(InheritanceSpec inheritance) {
  inheritances_.push_back(std::move(inheritance));
  return *this;
}
WarehouseModel& WarehouseModel::AddOntologyConcept(OntologyConceptSpec c) {
  ontology_concepts_.push_back(std::move(c));
  return *this;
}
WarehouseModel& WarehouseModel::AddMetadataFilter(MetadataFilterSpec filter) {
  metadata_filters_.push_back(std::move(filter));
  return *this;
}
WarehouseModel& WarehouseModel::AddDbpediaSynonym(DbpediaSynonymSpec synonym) {
  dbpedia_synonyms_.push_back(std::move(synonym));
  return *this;
}
WarehouseModel& WarehouseModel::AddMetadataAggregation(
    MetadataAggregationSpec aggregation) {
  metadata_aggregations_.push_back(std::move(aggregation));
  return *this;
}

namespace {

// Replaces '_' with ' ' so "birth_dt" also carries the label "birth dt".
// Business users type spaces; physical names use underscores.
std::string Humanize(const std::string& name) {
  return ReplaceAll(name, "_", " ");
}

}  // namespace

Status WarehouseModel::CompileConceptual(MetadataGraph* graph) const {
  NodeId type_entity =
      graph->GetOrAddNode(vocab::kConceptualEntity, MetadataLayer::kOther);
  NodeId type_attr =
      graph->GetOrAddNode(vocab::kConceptualAttribute, MetadataLayer::kOther);
  for (const auto& entity : conceptual_entities_) {
    SODA_ASSIGN_OR_RETURN(NodeId node,
                          graph->AddNode(ConceptUri(entity.name),
                                         MetadataLayer::kConceptualSchema));
    graph->AddEdge(node, vocab::kType, type_entity);
    graph->AddTextEdge(node, vocab::kEntityname, entity.name);
    graph->AddTextEdge(node, vocab::kLabel, Humanize(entity.name));
    for (const auto& attr : entity.attributes) {
      SODA_ASSIGN_OR_RETURN(
          NodeId attr_node,
          graph->AddNode(ConceptAttrUri(entity.name, attr.name),
                         MetadataLayer::kConceptualSchema));
      graph->AddEdge(attr_node, vocab::kType, type_attr);
      graph->AddTextEdge(attr_node, vocab::kAttributename, attr.name);
      graph->AddTextEdge(attr_node, vocab::kLabel, Humanize(attr.name));
      graph->AddEdge(node, vocab::kAttribute, attr_node);
    }
  }
  NodeId type_rel =
      graph->GetOrAddNode(vocab::kRelationshipNode, MetadataLayer::kOther);
  for (const auto& rel : conceptual_relationships_) {
    NodeId from = graph->FindNode(ConceptUri(rel.from));
    NodeId to = graph->FindNode(ConceptUri(rel.to));
    if (from == kInvalidNode || to == kInvalidNode) {
      return Status::NotFound("conceptual relationship '" + rel.name +
                              "' references unknown entity");
    }
    SODA_ASSIGN_OR_RETURN(NodeId node,
                          graph->AddNode("rel/c/" + rel.name,
                                         MetadataLayer::kConceptualSchema));
    graph->AddEdge(node, vocab::kType, type_rel);
    graph->AddTextEdge(node, vocab::kLabel, Humanize(rel.name));
    graph->AddEdge(node, vocab::kRelFrom, from);
    graph->AddEdge(node, vocab::kRelTo, to);
    // Entities can reach their relationships while traversing outward.
    graph->AddEdge(from, "related_via", node);
    graph->AddEdge(to, "related_via", node);
  }
  return Status::OK();
}

Status WarehouseModel::CompileLogical(MetadataGraph* graph) const {
  NodeId type_entity =
      graph->GetOrAddNode(vocab::kLogicalEntity, MetadataLayer::kOther);
  NodeId type_attr =
      graph->GetOrAddNode(vocab::kLogicalAttribute, MetadataLayer::kOther);
  for (const auto& entity : logical_entities_) {
    SODA_ASSIGN_OR_RETURN(NodeId node,
                          graph->AddNode(LogicalUri(entity.name),
                                         MetadataLayer::kLogicalSchema));
    graph->AddEdge(node, vocab::kType, type_entity);
    graph->AddTextEdge(node, vocab::kEntityname, entity.name);
    graph->AddTextEdge(node, vocab::kLabel, Humanize(entity.name));
    for (const auto& attr : entity.attributes) {
      SODA_ASSIGN_OR_RETURN(
          NodeId attr_node,
          graph->AddNode(LogicalAttrUri(entity.name, attr.name),
                         MetadataLayer::kLogicalSchema));
      graph->AddEdge(attr_node, vocab::kType, type_attr);
      graph->AddTextEdge(attr_node, vocab::kAttributename, attr.name);
      graph->AddTextEdge(attr_node, vocab::kLabel, Humanize(attr.name));
      graph->AddEdge(node, vocab::kAttribute, attr_node);
    }
    if (!entity.implements.empty()) {
      NodeId conceptual = graph->FindNode(ConceptUri(entity.implements));
      if (conceptual == kInvalidNode) {
        return Status::NotFound("logical entity '" + entity.name +
                                "' implements unknown conceptual entity '" +
                                entity.implements + "'");
      }
      graph->AddEdge(conceptual, vocab::kImplementedBy, node);
      // Attribute-level mapping by the modeling-tool convention: a logical
      // attribute implements the same-named conceptual attribute of the
      // implemented entity. This lets SODA traverse from a conceptual
      // attribute entry point down to the physical column.
      for (const auto& attr : entity.attributes) {
        NodeId conceptual_attr = graph->FindNode(
            ConceptAttrUri(entity.implements, attr.name));
        if (conceptual_attr != kInvalidNode) {
          graph->AddEdge(conceptual_attr, vocab::kImplementedBy,
                         graph->FindNode(LogicalAttrUri(entity.name,
                                                        attr.name)));
        }
      }
    }
  }
  NodeId type_rel =
      graph->GetOrAddNode(vocab::kRelationshipNode, MetadataLayer::kOther);
  for (const auto& rel : logical_relationships_) {
    NodeId from = graph->FindNode(LogicalUri(rel.from));
    NodeId to = graph->FindNode(LogicalUri(rel.to));
    if (from == kInvalidNode || to == kInvalidNode) {
      return Status::NotFound("logical relationship '" + rel.name +
                              "' references unknown entity");
    }
    SODA_ASSIGN_OR_RETURN(
        NodeId node,
        graph->AddNode("rel/l/" + rel.name, MetadataLayer::kLogicalSchema));
    graph->AddEdge(node, vocab::kType, type_rel);
    graph->AddTextEdge(node, vocab::kLabel, Humanize(rel.name));
    graph->AddEdge(node, vocab::kRelFrom, from);
    graph->AddEdge(node, vocab::kRelTo, to);
    graph->AddEdge(from, "related_via", node);
    graph->AddEdge(to, "related_via", node);
  }
  return Status::OK();
}

Status WarehouseModel::CompilePhysical(MetadataGraph* graph,
                                       Database* db) const {
  NodeId type_table =
      graph->GetOrAddNode(vocab::kPhysicalTable, MetadataLayer::kOther);
  NodeId type_column =
      graph->GetOrAddNode(vocab::kPhysicalColumn, MetadataLayer::kOther);
  for (const auto& table : tables_) {
    SODA_ASSIGN_OR_RETURN(
        NodeId node,
        graph->AddNode(TableUri(table.name), MetadataLayer::kPhysicalSchema));
    graph->AddEdge(node, vocab::kType, type_table);
    graph->AddTextEdge(node, vocab::kTablename, table.name);
    graph->AddTextEdge(node, vocab::kLabel, Humanize(table.name));
    std::vector<std::string> implemented = table.also_implements;
    if (!table.implements.empty()) {
      implemented.insert(implemented.begin(), table.implements);
    }
    for (const auto& entity_name : implemented) {
      NodeId logical = graph->FindNode(LogicalUri(entity_name));
      if (logical == kInvalidNode) {
        return Status::NotFound("table '" + table.name +
                                "' implements unknown logical entity '" +
                                entity_name + "'");
      }
      graph->AddEdge(logical, vocab::kImplementedBy, node);
    }
    std::vector<ColumnDef> defs;
    for (const auto& column : table.columns) {
      SODA_ASSIGN_OR_RETURN(
          NodeId col_node,
          graph->AddNode(ColumnUri(table.name, column.name),
                         MetadataLayer::kPhysicalSchema));
      graph->AddEdge(col_node, vocab::kType, type_column);
      graph->AddTextEdge(col_node, vocab::kColumnname, column.name);
      graph->AddTextEdge(col_node, vocab::kLabel, Humanize(column.name));
      graph->AddEdge(node, vocab::kColumn, col_node);
      if (!column.realizes.empty()) {
        auto dot = column.realizes.find('.');
        if (dot == std::string::npos) {
          return Status::InvalidArgument(
              "column realizes must be 'Entity.attribute', got '" +
              column.realizes + "'");
        }
        NodeId attr = graph->FindNode(LogicalAttrUri(
            column.realizes.substr(0, dot), column.realizes.substr(dot + 1)));
        if (attr == kInvalidNode) {
          return Status::NotFound("column " + table.name + "." + column.name +
                                  " realizes unknown logical attribute '" +
                                  column.realizes + "'");
        }
        graph->AddEdge(attr, vocab::kRealizedBy, col_node);
      }
      defs.push_back(ColumnDef{column.name, column.type});
    }
    if (db != nullptr) {
      SODA_ASSIGN_OR_RETURN(Table * t,
                            db->CreateTable(table.name, std::move(defs)));
      (void)t;
    }
  }
  return Status::OK();
}

Status WarehouseModel::CompileForeignKeys(MetadataGraph* graph) const {
  NodeId type_join =
      graph->GetOrAddNode(vocab::kJoinRelationship, MetadataLayer::kOther);
  for (const auto& fk : foreign_keys_) {
    NodeId from = graph->FindNode(ColumnUri(fk.from_table, fk.from_column));
    NodeId to = graph->FindNode(ColumnUri(fk.to_table, fk.to_column));
    if (from == kInvalidNode || to == kInvalidNode) {
      return Status::NotFound(
          StrFormat("foreign key %s.%s -> %s.%s references missing column",
                    fk.from_table.c_str(), fk.from_column.c_str(),
                    fk.to_table.c_str(), fk.to_column.c_str()));
    }
    if (fk.via_join_node) {
      SODA_ASSIGN_OR_RETURN(
          NodeId join,
          graph->AddNode(JoinUri(fk.from_table, fk.from_column, fk.to_table,
                                 fk.to_column),
                         MetadataLayer::kPhysicalSchema));
      graph->AddEdge(join, vocab::kType, type_join);
      graph->AddEdge(join, vocab::kJoinForeignKey, from);
      graph->AddEdge(join, vocab::kJoinPrimaryKey, to);
      if (fk.ignored) {
        graph->AddTextEdge(join, vocab::kAnnotation,
                           vocab::kIgnoreRelationship);
      }
    } else {
      graph->AddEdge(from, vocab::kForeignKey, to);
      if (fk.ignored) {
        graph->AddTextEdge(from, vocab::kAnnotation,
                           vocab::kIgnoreRelationship);
      }
    }
  }
  return Status::OK();
}

Status WarehouseModel::CompileInheritances(MetadataGraph* graph) const {
  NodeId type_inh =
      graph->GetOrAddNode(vocab::kInheritanceNode, MetadataLayer::kOther);
  for (const auto& inheritance : inheritances_) {
    NodeId parent = graph->FindNode(TableUri(inheritance.parent_table));
    if (parent == kInvalidNode) {
      return Status::NotFound("inheritance parent table '" +
                              inheritance.parent_table + "' missing");
    }
    SODA_ASSIGN_OR_RETURN(
        NodeId node, graph->AddNode(InheritanceUri(inheritance.parent_table),
                                    MetadataLayer::kPhysicalSchema));
    graph->AddEdge(node, vocab::kType, type_inh);
    graph->AddEdge(node, vocab::kInheritanceParent, parent);
    for (const auto& child : inheritance.child_tables) {
      NodeId child_node = graph->FindNode(TableUri(child));
      if (child_node == kInvalidNode) {
        return Status::NotFound("inheritance child table '" + child +
                                "' missing");
      }
      graph->AddEdge(node, vocab::kInheritanceChild, child_node);
      // Children reach the inheritance node when traversing outward, so
      // the Inheritance-Child pattern can fire from a child entry point.
      graph->AddEdge(child_node, "child_of", node);
      graph->AddEdge(parent, "parent_of", node);
    }
  }
  return Status::OK();
}

Status WarehouseModel::Compile(MetadataGraph* graph, Database* db) const {
  MetadataGraph scratch;
  MetadataGraph* g = graph != nullptr ? graph : &scratch;
  SODA_RETURN_NOT_OK(CompileConceptual(g));
  SODA_RETURN_NOT_OK(CompileLogical(g));
  SODA_RETURN_NOT_OK(CompilePhysical(g, db));
  SODA_RETURN_NOT_OK(CompileForeignKeys(g));
  SODA_RETURN_NOT_OK(CompileInheritances(g));
  SODA_RETURN_NOT_OK(CompileOntology(ontology_concepts_, g));
  SODA_RETURN_NOT_OK(CompileMetadataFilters(metadata_filters_, g));
  SODA_RETURN_NOT_OK(CompileDbpedia(dbpedia_synonyms_, g));
  SODA_RETURN_NOT_OK(CompileMetadataAggregations(metadata_aggregations_, g));
  return Status::OK();
}

SchemaStats WarehouseModel::Stats() const {
  SchemaStats stats;
  stats.conceptual_entities = conceptual_entities_.size();
  for (const auto& e : conceptual_entities_) {
    stats.conceptual_attributes += e.attributes.size();
  }
  stats.conceptual_relationships = conceptual_relationships_.size();
  stats.logical_entities = logical_entities_.size();
  for (const auto& e : logical_entities_) {
    stats.logical_attributes += e.attributes.size();
  }
  stats.logical_relationships = logical_relationships_.size();
  stats.physical_tables = tables_.size();
  for (const auto& t : tables_) {
    stats.physical_columns += t.columns.size();
  }
  return stats;
}

}  // namespace soda
