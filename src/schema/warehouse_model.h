// The layered warehouse schema model and its compiler.
//
// A WarehouseModel describes a data warehouse the way the Credit Suisse
// modeling tools do (paper Section 2.2): a conceptual schema for business
// communication, a logical schema that adds inheritance and entity
// splitting, and a physical schema of tables and columns, plus domain
// ontologies, metadata filters and DBpedia synonyms. Compile() lowers the
// model into (a) the extended metadata graph that SODA's patterns match
// against and (b) empty physical tables in the storage catalog.
//
// URI scheme produced by the compiler:
//   concept/<Entity>                  conceptual entity
//   concept/<Entity>/attr/<name>      conceptual attribute
//   logical/<Entity>                  logical entity
//   logical/<Entity>/attr/<name>      logical attribute
//   table/<name>                      physical table
//   column/<table>.<column>           physical column
//   rel/c/<name>, rel/l/<name>        relationship nodes
//   inh/<parent_table>                inheritance node
//   join/<t1>.<c1>-><t2>.<c2>         explicit join-relationship node
//   onto/<slug>, filter/<slug>, dbp/<slug>   (see ontology/ontology.h)

#ifndef SODA_SCHEMA_WAREHOUSE_MODEL_H_
#define SODA_SCHEMA_WAREHOUSE_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/metadata_graph.h"
#include "ontology/ontology.h"
#include "storage/table.h"

namespace soda {

/// A named, typed attribute (conceptual or logical layer).
struct AttributeSpec {
  std::string name;
  ValueType type = ValueType::kString;
};

/// An entity of the conceptual or logical schema.
struct EntitySpec {
  std::string name;
  std::vector<AttributeSpec> attributes;
  /// For logical entities: the conceptual entity this one implements
  /// (empty for purely technical entities).
  std::string implements;
};

/// A relationship between two entities of the same layer.
struct RelationshipSpec {
  std::string name;
  std::string from;
  std::string to;
  bool many_to_many = false;
};

/// One physical column.
struct ColumnSpec {
  std::string name;
  ValueType type = ValueType::kString;
  /// Logical attribute realized by this column, as "Entity.attribute"
  /// (empty for purely technical columns such as surrogate keys).
  std::string realizes;
};

/// One physical table.
struct TableSpec {
  std::string name;
  /// Logical entity this table implements (empty for technical tables).
  std::string implements;
  std::vector<ColumnSpec> columns;
  /// Additional logical entities this table also implements — entity
  /// splitting can share a physical table across several logical views
  /// (e.g. a securities table backing both the Securities entity and the
  /// structured-instrument decomposition of Financial_Instruments).
  std::vector<std::string> also_implements;
};

/// A foreign-key relationship between physical columns.
struct ForeignKeySpec {
  std::string from_table;
  std::string from_column;
  std::string to_table;
  std::string to_column;
  /// True: modeled as an explicit join-relationship node (Credit Suisse
  /// style). False: a direct foreign_key edge between the columns.
  bool via_join_node = true;
  /// War-story annotation (Section 5.3.1): mark the relationship as
  /// ignored (e.g. the bridge table is not populated yet). SODA's join
  /// discovery skips annotated relationships.
  bool ignored = false;
};

/// A physical inheritance structure: mutually exclusive child tables.
struct InheritanceSpec {
  std::string parent_table;
  std::vector<std::string> child_tables;
};

/// Cardinalities of the compiled schema graph — paper Table 1.
struct SchemaStats {
  size_t conceptual_entities = 0;
  size_t conceptual_attributes = 0;
  size_t conceptual_relationships = 0;
  size_t logical_entities = 0;
  size_t logical_attributes = 0;
  size_t logical_relationships = 0;
  size_t physical_tables = 0;
  size_t physical_columns = 0;
};

/// Builder for a layered warehouse. All Add* methods return *this for
/// chaining; referential errors surface at Compile() time.
class WarehouseModel {
 public:
  WarehouseModel& AddConceptualEntity(EntitySpec entity);
  WarehouseModel& AddConceptualRelationship(RelationshipSpec rel);
  WarehouseModel& AddLogicalEntity(EntitySpec entity);
  WarehouseModel& AddLogicalRelationship(RelationshipSpec rel);
  WarehouseModel& AddTable(TableSpec table);
  WarehouseModel& AddForeignKey(ForeignKeySpec fk);
  WarehouseModel& AddInheritance(InheritanceSpec inheritance);
  WarehouseModel& AddOntologyConcept(OntologyConceptSpec spec);
  WarehouseModel& AddMetadataFilter(MetadataFilterSpec filter);
  WarehouseModel& AddDbpediaSynonym(DbpediaSynonymSpec synonym);
  WarehouseModel& AddMetadataAggregation(MetadataAggregationSpec aggregation);

  /// Lowers the model into the metadata graph and creates the physical
  /// tables (empty) in `db`. Both outputs may be nullptr when not needed.
  Status Compile(MetadataGraph* graph, Database* db) const;

  /// Schema-graph cardinalities (paper Table 1).
  SchemaStats Stats() const;

  const std::vector<TableSpec>& tables() const { return tables_; }
  const std::vector<ForeignKeySpec>& foreign_keys() const {
    return foreign_keys_;
  }
  const std::vector<InheritanceSpec>& inheritances() const {
    return inheritances_;
  }

 private:
  Status CompileConceptual(MetadataGraph* graph) const;
  Status CompileLogical(MetadataGraph* graph) const;
  Status CompilePhysical(MetadataGraph* graph, Database* db) const;
  Status CompileForeignKeys(MetadataGraph* graph) const;
  Status CompileInheritances(MetadataGraph* graph) const;

  std::vector<EntitySpec> conceptual_entities_;
  std::vector<RelationshipSpec> conceptual_relationships_;
  std::vector<EntitySpec> logical_entities_;
  std::vector<RelationshipSpec> logical_relationships_;
  std::vector<TableSpec> tables_;
  std::vector<ForeignKeySpec> foreign_keys_;
  std::vector<InheritanceSpec> inheritances_;
  std::vector<OntologyConceptSpec> ontology_concepts_;
  std::vector<MetadataFilterSpec> metadata_filters_;
  std::vector<DbpediaSynonymSpec> dbpedia_synonyms_;
  std::vector<MetadataAggregationSpec> metadata_aggregations_;
};

/// Canonical URI helpers (shared with datasets and the SODA pipeline).
std::string ConceptUri(const std::string& entity);
std::string ConceptAttrUri(const std::string& entity,
                           const std::string& attribute);
std::string LogicalUri(const std::string& entity);
std::string LogicalAttrUri(const std::string& entity,
                           const std::string& attribute);
std::string TableUri(const std::string& table);
std::string ColumnUri(const std::string& table, const std::string& column);
std::string InheritanceUri(const std::string& parent_table);
std::string JoinUri(const std::string& from_table,
                    const std::string& from_column,
                    const std::string& to_table,
                    const std::string& to_column);

}  // namespace soda

#endif  // SODA_SCHEMA_WAREHOUSE_MODEL_H_
