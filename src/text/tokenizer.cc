#include "text/tokenizer.h"

#include <cctype>

#include "common/strings.h"

namespace soda {

std::vector<std::string> Tokenize(std::string_view text) {
  std::string folded = FoldForMatch(text);
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < folded.size()) {
    while (i < folded.size() &&
           !std::isalnum(static_cast<unsigned char>(folded[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < folded.size() &&
           std::isalnum(static_cast<unsigned char>(folded[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(folded.substr(start, i - start));
  }
  return tokens;
}

std::string NormalizeToken(std::string_view word) {
  auto tokens = Tokenize(word);
  if (tokens.empty()) return std::string();
  std::string out = tokens[0];
  for (size_t i = 1; i < tokens.size(); ++i) {
    out += tokens[i];
  }
  return out;
}

}  // namespace soda
