#include "text/tokenizer.h"

#include <algorithm>

#include "common/strings.h"

namespace soda {

std::vector<std::string> Tokenize(std::string_view text) {
  std::string folded = FoldForMatch(text);
  std::vector<std::string> tokens;
  ForEachTokenRun(folded, [&tokens](std::string_view run) {
    tokens.emplace_back(run);
    return true;
  });
  return tokens;
}

std::string NormalizeToken(std::string_view word) {
  // Single pass: fold once, then squeeze out the non-alphanumeric
  // characters in place — same result as concatenating Tokenize(word),
  // without the token vector and per-token substrings.
  std::string out = FoldForMatch(word);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](unsigned char c) { return !std::isalnum(c); }),
            out.end());
  return out;
}

}  // namespace soda
