// The interned token vocabulary shared by the text-index stack.
//
// Every folded token the indexes ever see is registered here once and
// addressed by a dense uint32 TokenId from then on: stored-value token
// sequences, postings lists and phrase probes all operate on ids, so
// phrase verification is an integer-sequence search instead of a
// string-compare scan, and N shard replicas over one database share ONE
// vocabulary instead of holding N private copies.
//
// Concurrency contract. The dictionary is append-only and NOT internally
// synchronized; it inherits the change log's readers-writer discipline
// (storage/change_log.h): every Intern/InternText call runs under the
// log's exclusive data lock (index builds, delta publication), every
// Find/FindText/Spelling call under the shared lock (query probes) or on
// a quiesced dictionary. Probes therefore never observe a dictionary
// mid-append, and the read side must never intern — an unknown token on
// a probe simply means "no match".

#ifndef SODA_TEXT_TOKEN_DICT_H_
#define SODA_TEXT_TOKEN_DICT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace soda {

/// Dense handle of one folded token. Ids are assigned in first-intern
/// order and never reused or reordered.
using TokenId = uint32_t;

/// Sentinel for "token not in the dictionary" on the read-only path.
inline constexpr TokenId kNoToken = 0xFFFFFFFFu;

class TokenDict {
 public:
  TokenDict() = default;
  // The id map holds string_views into spellings_; copying or moving
  // would leave them aimed at the source instance.
  TokenDict(const TokenDict&) = delete;
  TokenDict& operator=(const TokenDict&) = delete;

  /// Id of `token` (an already-folded token), interning it when new.
  /// Mutating: callers hold the exclusive data lock.
  TokenId Intern(std::string_view token);

  /// Id of `token` or kNoToken when it was never interned. Read-only.
  TokenId Find(std::string_view token) const;

  /// The folded spelling behind an id. `id` must be < size().
  const std::string& Spelling(TokenId id) const { return spellings_[id]; }

  /// Folds `text` and appends the id of every token to `out`, interning
  /// new ones — the single-pass indexing form of Tokenize + Intern (no
  /// per-token string materialization for already-known tokens).
  /// Mutating: callers hold the exclusive data lock.
  void InternText(std::string_view text, std::vector<TokenId>* out);

  /// Folds `text` and appends the id of every token to `out`. Returns
  /// false as soon as one token is unknown (out is then partial) — for a
  /// phrase probe an unknown token already means "no match". Read-only.
  bool FindText(std::string_view text, std::vector<TokenId>* out) const;

  size_t size() const { return spellings_.size(); }

  /// Approximate heap footprint (spelling storage + id map), for the
  /// shared-vocabulary accounting in service_demo. Approximate: small
  /// strings below the SSO threshold are charged their capacity anyway.
  size_t ApproxMemoryBytes() const;

 private:
  // Deque, not vector: the id map's keys are views into the stored
  // spellings, so their addresses must survive appends.
  std::deque<std::string> spellings_;
  std::unordered_map<std::string_view, TokenId> ids_;
};

}  // namespace soda

#endif  // SODA_TEXT_TOKEN_DICT_H_
