// Inverted index over the text columns of the base data.
//
// The paper builds an inverted index over all 472 base tables, restricted
// to columns of type "text" (Section 5.1.2). SODA's lookup step probes the
// index with keyword phrases; a hit identifies (table, column, stored
// value) triples that become base-data entry points with equality filters.
//
// Postings are kept at value granularity: token -> set of distinct
// (table, column, value) occurrences with row counts. Phrase queries
// ("credit suisse") require the tokens to appear consecutively in the
// stored value.

#ifndef SODA_TEXT_INVERTED_INDEX_H_
#define SODA_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace soda {

/// One distinct (table, column, value) occurrence.
struct ValuePosting {
  std::string table;
  std::string column;
  std::string value;      // the stored value, original spelling
  int64_t row_count = 0;  // number of base rows carrying this value
};

class InvertedIndex {
 public:
  /// Indexes every string column of every table in `db`.
  void Build(const Database& db);

  /// Indexes one table (incremental build).
  void IndexTable(const Table& table);

  /// All distinct values whose token sequence contains `phrase` (a
  /// space-separated token phrase) as a consecutive subsequence.
  /// An empty result means the phrase does not occur in the base data.
  std::vector<ValuePosting> LookupPhrase(const std::string& phrase) const;

  /// True when the single token occurs anywhere.
  bool ContainsToken(const std::string& token) const;

  size_t num_tokens() const { return postings_.size(); }
  size_t num_values() const { return values_.size(); }
  size_t num_records() const { return num_records_; }

 private:
  struct StoredValue {
    std::string table;
    std::string column;
    std::string value;
    std::vector<std::string> tokens;  // normalized token sequence
    int64_t row_count = 0;
  };

  // token -> indexes into values_ (deduplicated).
  std::unordered_map<std::string, std::vector<uint32_t>> postings_;
  std::vector<StoredValue> values_;
  // (table, column, value) -> index into values_, for row_count merging.
  std::map<std::string, uint32_t> value_keys_;
  size_t num_records_ = 0;
};

}  // namespace soda

#endif  // SODA_TEXT_INVERTED_INDEX_H_
