// Inverted index over the text columns of the base data.
//
// The paper builds an inverted index over all 472 base tables, restricted
// to columns of type "text" (Section 5.1.2). SODA's lookup step probes the
// index with keyword phrases; a hit identifies (table, column, stored
// value) triples that become base-data entry points with equality filters.
//
// Postings are kept at value granularity: token -> set of distinct
// (table, column, value) occurrences with row counts. Phrase queries
// ("credit suisse") require the tokens to appear consecutively in the
// stored value.
//
// Representation. Tokens are interned through a shared TokenDict
// (text/token_dict.h): each stored value keeps an (offset, len) slice
// into one flat TokenId arena instead of a vector of strings, postings_
// is a plain vector indexed by TokenId instead of a string-keyed hash
// map, and phrase verification is an integer subsequence search. A
// multi-token probe walks the postings of the RAREST phrase token and
// prunes candidates against the other tokens' lists by sorted merge
// before verifying adjacency. When the index is built over a Database it
// adopts the database's dictionary, so every shard replica shares one
// vocabulary; probes only ever read the dictionary (Find), never extend
// it — appends happen under the change log's exclusive data lock.

#ifndef SODA_TEXT_INVERTED_INDEX_H_
#define SODA_TEXT_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/change_log.h"
#include "storage/table.h"
#include "text/token_dict.h"

namespace soda {

/// One distinct (table, column, value) occurrence.
struct ValuePosting {
  std::string table;
  std::string column;
  std::string value;      // the stored value, original spelling
  int64_t row_count = 0;  // number of base rows carrying this value
};

class InvertedIndex {
 public:
  InvertedIndex() = default;
  // The value-key interner hashes through a pointer to values_; copying
  // or moving the index would leave it aimed at the source instance.
  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Indexes every string column of every table in `db`, under the
  /// database change log's exclusive data lock (the build appends to the
  /// shared dictionary). Adopts db.token_dict() unless a dictionary was
  /// set explicitly beforehand.
  void Build(const Database& db);

  /// Indexes one table (incremental build). Callers on a live database
  /// hold the change log's exclusive data lock; standalone/test callers
  /// run quiesced.
  void IndexTable(const Table& table);

  /// The dictionary tokens are interned through. Setting one explicitly
  /// (before any indexing) overrides the Build-time adoption — used to
  /// force a private vocabulary; a plain IndexTable build without a
  /// database creates one lazily.
  void set_token_dict(std::shared_ptr<TokenDict> dict) {
    dict_ = std::move(dict);
  }
  const std::shared_ptr<TokenDict>& token_dict() const { return dict_; }

  /// Incremental index maintenance: inserts the appended (table, column,
  /// value) occurrences of one ChangeEvent in place — append-only
  /// matches the paper's historization model, so no rebuild is ever
  /// needed. Events from a log sharing this index's dictionary apply
  /// their TokenIds verbatim; foreign events are translated through the
  /// event's dictionary (or re-tokenized when it carries none). Postings
  /// are kept ordered by the value's first-occurrence scan position
  /// (table creation order, column, row), so every probe (LookupPhrase /
  /// CountPhrase / ContainsPhrase / ContainsToken) returns results
  /// identical to a from-scratch Build over the mutated database —
  /// ordering included. Returns the number of new posting entries
  /// inserted (0 when every value was already indexed and only row
  /// counts moved). Not internally synchronized: callers run under the
  /// change log's exclusive data lock (see storage/change_log.h).
  size_t ApplyDelta(const ChangeEvent& event);

  /// All distinct values whose token sequence contains `phrase` (a
  /// space-separated token phrase) as a consecutive subsequence.
  /// An empty result means the phrase does not occur in the base data.
  std::vector<ValuePosting> LookupPhrase(const std::string& phrase) const;

  /// LookupPhrase(phrase).size() without materializing the postings —
  /// the probe the lookup step's complexity accounting wants.
  size_t CountPhrase(const std::string& phrase) const;

  /// !LookupPhrase(phrase).empty() with early exit on the first match —
  /// the probe keyword segmentation wants.
  bool ContainsPhrase(const std::string& phrase) const;

  /// True when the single token occurs anywhere.
  bool ContainsToken(const std::string& token) const;

  size_t num_tokens() const { return num_tokens_; }
  size_t num_values() const { return values_.size(); }
  size_t num_records() const { return num_records_; }

  /// Approximate heap footprint of the index structures (stored values,
  /// token arena, postings, value-key interner). EXCLUDES the token
  /// dictionary — it is typically shared across replicas; account for it
  /// once via token_dict()->ApproxMemoryBytes().
  size_t ApproxMemoryBytes() const;

 private:
  struct StoredValue {
    std::string table;
    std::string column;
    std::string value;
    /// The value's normalized token sequence, as a slice of the shared
    /// token arena (ids into *dict_).
    uint32_t token_begin = 0;
    uint32_t token_count = 0;
    int64_t row_count = 0;
    /// First-occurrence scan position, (table ordinal << 48) |
    /// (column << 32) | row: the order a from-scratch Build encounters
    /// values in. Postings lists stay sorted by this key, which is what
    /// makes ApplyDelta rebuild-identical.
    uint64_t order_key = 0;
  };

  /// Heterogeneous hash/equality over (table, column, value): stored
  /// keys are indexes into values_ (no duplicate string storage), build
  /// probes are string_view triples — no concatenated key string and no
  /// O(log n) string compares on the indexing hot loop.
  struct ValueKeyView {
    std::string_view table;
    std::string_view column;
    std::string_view value;
  };
  struct ValueKeyHash {
    using is_transparent = void;
    const std::vector<StoredValue>* values;
    size_t operator()(const ValueKeyView& key) const;
    size_t operator()(uint32_t index) const;
  };
  struct ValueKeyEq {
    using is_transparent = void;
    const std::vector<StoredValue>* values;
    bool operator()(uint32_t a, uint32_t b) const { return a == b; }
    bool operator()(const ValueKeyView& a, uint32_t b) const;
    bool operator()(uint32_t a, const ValueKeyView& b) const;
  };

  /// Shared phrase scan: calls `fn(index)` for every stored value whose
  /// token sequence contains the phrase; fn returns false to stop early.
  /// Candidates are enumerated from the rarest phrase token's postings,
  /// in order-key order (== the order a first-token scan yields).
  template <typename Fn>
  void ForEachPhraseMatch(const std::string& phrase, Fn&& fn) const;

  /// Shared indexing core of Build/IndexTable and ApplyDelta: registers
  /// one non-empty string occurrence at scan position (table_ord,
  /// column_index, row_index). `token_ids`, when non-null, is the
  /// value's pre-interned token sequence AGAINST THIS INDEX'S dictionary
  /// (ChangeEvents from the shared log ship it); null means tokenize and
  /// intern here. Returns the number of posting entries inserted (0 for
  /// an already-known value).
  size_t AddOccurrence(uint32_t table_ord, uint32_t column_index,
                       size_t row_index, const std::string& table,
                       const std::string& column, const std::string& text,
                       const std::vector<TokenId>* token_ids = nullptr);

  /// The table's position in from-scratch scan order, assigned on first
  /// encounter (Build walks creation order, so ordinals match it).
  uint32_t TableOrdinal(const std::string& table);

  std::shared_ptr<TokenDict> dict_;
  /// Concatenated token sequences of all stored values; each StoredValue
  /// owns the [token_begin, token_begin + token_count) slice.
  std::vector<TokenId> token_arena_;
  // TokenId -> indexes into values_ (deduplicated, sorted by order_key).
  // Dense by id; slots for dictionary tokens this index never saw stay
  // empty (the dictionary may be shared wider than this index).
  std::vector<std::vector<uint32_t>> postings_;
  size_t num_tokens_ = 0;  // non-empty postings lists
  std::vector<StoredValue> values_;
  // (table, column, value) -> index into values_, for row_count merging.
  std::unordered_set<uint32_t, ValueKeyHash, ValueKeyEq> value_keys_{
      0, ValueKeyHash{&values_}, ValueKeyEq{&values_}};
  // table name -> scan ordinal (the high bits of order_key).
  std::unordered_map<std::string, uint32_t> table_ordinals_;
  size_t num_records_ = 0;
  // Mutation-path scratch (builds and delta applies are serialized by
  // the exclusive data lock; probes never touch these).
  std::vector<TokenId> intern_scratch_;
  std::vector<TokenId> translate_scratch_;
  std::vector<TokenId> dedupe_scratch_;
};

}  // namespace soda

#endif  // SODA_TEXT_INVERTED_INDEX_H_
