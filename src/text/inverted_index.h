// Inverted index over the text columns of the base data.
//
// The paper builds an inverted index over all 472 base tables, restricted
// to columns of type "text" (Section 5.1.2). SODA's lookup step probes the
// index with keyword phrases; a hit identifies (table, column, stored
// value) triples that become base-data entry points with equality filters.
//
// Postings are kept at value granularity: token -> set of distinct
// (table, column, value) occurrences with row counts. Phrase queries
// ("credit suisse") require the tokens to appear consecutively in the
// stored value.

#ifndef SODA_TEXT_INVERTED_INDEX_H_
#define SODA_TEXT_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/change_log.h"
#include "storage/table.h"

namespace soda {

/// One distinct (table, column, value) occurrence.
struct ValuePosting {
  std::string table;
  std::string column;
  std::string value;      // the stored value, original spelling
  int64_t row_count = 0;  // number of base rows carrying this value
};

class InvertedIndex {
 public:
  InvertedIndex() = default;
  // The value-key interner hashes through a pointer to values_; copying
  // or moving the index would leave it aimed at the source instance.
  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Indexes every string column of every table in `db`.
  void Build(const Database& db);

  /// Indexes one table (incremental build).
  void IndexTable(const Table& table);

  /// Incremental index maintenance: inserts the appended (table, column,
  /// value) occurrences of one ChangeEvent in place — append-only
  /// matches the paper's historization model, so no rebuild is ever
  /// needed. Postings are kept ordered by the value's first-occurrence
  /// scan position (table creation order, column, row), so every probe
  /// (LookupPhrase / CountPhrase / ContainsPhrase / ContainsToken)
  /// returns results identical to a from-scratch Build over the mutated
  /// database — ordering included. Returns the number of new posting
  /// entries inserted (0 when every value was already indexed and only
  /// row counts moved). Not internally synchronized: callers run under
  /// the change log's exclusive data lock (see storage/change_log.h).
  size_t ApplyDelta(const ChangeEvent& event);

  /// All distinct values whose token sequence contains `phrase` (a
  /// space-separated token phrase) as a consecutive subsequence.
  /// An empty result means the phrase does not occur in the base data.
  std::vector<ValuePosting> LookupPhrase(const std::string& phrase) const;

  /// LookupPhrase(phrase).size() without materializing the postings —
  /// the probe the lookup step's complexity accounting wants.
  size_t CountPhrase(const std::string& phrase) const;

  /// !LookupPhrase(phrase).empty() with early exit on the first match —
  /// the probe keyword segmentation wants.
  bool ContainsPhrase(const std::string& phrase) const;

  /// True when the single token occurs anywhere.
  bool ContainsToken(const std::string& token) const;

  size_t num_tokens() const { return postings_.size(); }
  size_t num_values() const { return values_.size(); }
  size_t num_records() const { return num_records_; }

 private:
  struct StoredValue {
    std::string table;
    std::string column;
    std::string value;
    std::vector<std::string> tokens;  // normalized token sequence
    int64_t row_count = 0;
    /// First-occurrence scan position, (table ordinal << 48) |
    /// (column << 32) | row: the order a from-scratch Build encounters
    /// values in. Postings lists stay sorted by this key, which is what
    /// makes ApplyDelta rebuild-identical.
    uint64_t order_key = 0;
  };

  /// Heterogeneous hash/equality over (table, column, value): stored
  /// keys are indexes into values_ (no duplicate string storage), build
  /// probes are string_view triples — no concatenated key string and no
  /// O(log n) string compares on the indexing hot loop.
  struct ValueKeyView {
    std::string_view table;
    std::string_view column;
    std::string_view value;
  };
  struct ValueKeyHash {
    using is_transparent = void;
    const std::vector<StoredValue>* values;
    size_t operator()(const ValueKeyView& key) const;
    size_t operator()(uint32_t index) const;
  };
  struct ValueKeyEq {
    using is_transparent = void;
    const std::vector<StoredValue>* values;
    bool operator()(uint32_t a, uint32_t b) const { return a == b; }
    bool operator()(const ValueKeyView& a, uint32_t b) const;
    bool operator()(uint32_t a, const ValueKeyView& b) const;
  };

  /// Shared phrase scan: calls `fn(index)` for every stored value whose
  /// token sequence contains the phrase; fn returns false to stop early.
  template <typename Fn>
  void ForEachPhraseMatch(const std::string& phrase, Fn&& fn) const;

  /// Shared indexing core of Build/IndexTable and ApplyDelta: registers
  /// one non-empty string occurrence at scan position (table_ord,
  /// column_index, row_index). `tokens`, when non-null, is the value's
  /// pre-computed Tokenize(text) (ChangeEvents ship it); null means
  /// tokenize here. Returns the number of posting entries inserted (0
  /// for an already-known value).
  size_t AddOccurrence(uint32_t table_ord, uint32_t column_index,
                       size_t row_index, const std::string& table,
                       const std::string& column, const std::string& text,
                       const std::vector<std::string>* tokens = nullptr);

  /// The table's position in from-scratch scan order, assigned on first
  /// encounter (Build walks creation order, so ordinals match it).
  uint32_t TableOrdinal(const std::string& table);

  // token -> indexes into values_ (deduplicated, sorted by order_key).
  std::unordered_map<std::string, std::vector<uint32_t>> postings_;
  std::vector<StoredValue> values_;
  // (table, column, value) -> index into values_, for row_count merging.
  std::unordered_set<uint32_t, ValueKeyHash, ValueKeyEq> value_keys_{
      0, ValueKeyHash{&values_}, ValueKeyEq{&values_}};
  // table name -> scan ordinal (the high bits of order_key).
  std::unordered_map<std::string, uint32_t> table_ordinals_;
  size_t num_records_ = 0;
};

}  // namespace soda

#endif  // SODA_TEXT_INVERTED_INDEX_H_
