#include "text/inverted_index.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace soda {

namespace {

// FNV-1a accumulation over one field plus a separator, so ("ab", "c")
// and ("a", "bc") hash differently.
uint64_t HashField(uint64_t hash, std::string_view field) {
  for (unsigned char c : field) {
    hash ^= static_cast<uint64_t>(c);
    hash *= 1099511628211ull;
  }
  hash ^= 0x1f;  // field separator
  hash *= 1099511628211ull;
  return hash;
}

uint64_t HashTriple(std::string_view table, std::string_view column,
                    std::string_view value) {
  uint64_t hash = 1469598103934665603ull;
  hash = HashField(hash, table);
  hash = HashField(hash, column);
  hash = HashField(hash, value);
  return hash;
}

}  // namespace

size_t InvertedIndex::ValueKeyHash::operator()(const ValueKeyView& key) const {
  return static_cast<size_t>(HashTriple(key.table, key.column, key.value));
}

size_t InvertedIndex::ValueKeyHash::operator()(uint32_t index) const {
  const StoredValue& sv = (*values)[index];
  return static_cast<size_t>(HashTriple(sv.table, sv.column, sv.value));
}

bool InvertedIndex::ValueKeyEq::operator()(const ValueKeyView& a,
                                           uint32_t b) const {
  const StoredValue& sv = (*values)[b];
  return a.table == sv.table && a.column == sv.column && a.value == sv.value;
}

bool InvertedIndex::ValueKeyEq::operator()(uint32_t a,
                                           const ValueKeyView& b) const {
  return (*this)(b, a);
}

void InvertedIndex::Build(const Database& db) {
  for (const Table* table : db.tables()) {
    IndexTable(*table);
  }
}

void InvertedIndex::IndexTable(const Table& table) {
  uint32_t table_ord = TableOrdinal(table.name());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.columns()[c].type != ValueType::kString) continue;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Value& v = table.row(r)[c];
      if (v.is_null()) continue;
      const std::string& text = v.AsString();
      if (text.empty()) continue;
      AddOccurrence(table_ord, static_cast<uint32_t>(c), r, table.name(),
                    table.columns()[c].name, text);
    }
  }
}

size_t InvertedIndex::ApplyDelta(const ChangeEvent& event) {
  uint32_t table_ord = TableOrdinal(event.table);
  size_t inserted = 0;
  for (const ColumnDelta& delta : event.deltas) {
    for (size_t i = 0; i < delta.values.size(); ++i) {
      // Events carry each value pre-tokenized so N shard replicas do
      // not re-tokenize under the exclusive data lock.
      const std::vector<std::string>* tokens =
          i < delta.tokens.size() ? &delta.tokens[i] : nullptr;
      inserted += AddOccurrence(table_ord, delta.column_index, delta.rows[i],
                                event.table, delta.column, delta.values[i],
                                tokens);
    }
  }
  return inserted;
}

uint32_t InvertedIndex::TableOrdinal(const std::string& table) {
  auto [it, unused] =
      table_ordinals_.emplace(table,
                              static_cast<uint32_t>(table_ordinals_.size()));
  return it->second;
}

size_t InvertedIndex::AddOccurrence(uint32_t table_ord, uint32_t column_index,
                                    size_t row_index, const std::string& table,
                                    const std::string& column,
                                    const std::string& text,
                                    const std::vector<std::string>* tokens) {
  ++num_records_;

  ValueKeyView key{table, column, text};
  auto it = value_keys_.find(key);
  if (it != value_keys_.end()) {
    ++values_[*it].row_count;
    return 0;
  }
  StoredValue sv;
  sv.table = table;
  sv.column = column;
  sv.value = text;
  sv.tokens = tokens != nullptr ? *tokens : Tokenize(text);
  sv.row_count = 1;
  sv.order_key = (static_cast<uint64_t>(table_ord) << 48) |
                 (static_cast<uint64_t>(column_index) << 32) |
                 static_cast<uint64_t>(row_index);
  if (sv.tokens.empty()) return 0;
  uint32_t index = static_cast<uint32_t>(values_.size());
  size_t inserted = 0;
  // Register under each distinct token of the value, keeping the
  // postings list ordered by first-occurrence scan position. During a
  // from-scratch Build positions arrive ascending (push_back); a delta
  // apply splices into the middle wherever a rebuild would have put it.
  std::vector<std::string> seen;
  for (const auto& token : sv.tokens) {
    if (std::find(seen.begin(), seen.end(), token) != seen.end()) continue;
    seen.push_back(token);
    std::vector<uint32_t>& list = postings_[token];
    if (list.empty() || values_[list.back()].order_key < sv.order_key) {
      list.push_back(index);
    } else {
      auto pos = std::upper_bound(
          list.begin(), list.end(), sv.order_key,
          [this](uint64_t order_key, uint32_t existing) {
            return order_key < values_[existing].order_key;
          });
      list.insert(pos, index);
    }
    ++inserted;
  }
  values_.push_back(std::move(sv));
  value_keys_.insert(index);
  return inserted;
}

template <typename Fn>
void InvertedIndex::ForEachPhraseMatch(const std::string& phrase,
                                       Fn&& fn) const {
  std::vector<std::string> query_tokens = Tokenize(phrase);
  if (query_tokens.empty()) return;

  auto it = postings_.find(query_tokens[0]);
  if (it == postings_.end()) return;

  for (uint32_t index : it->second) {
    const StoredValue& sv = values_[index];
    // Check that query_tokens appear consecutively in sv.tokens.
    bool found = false;
    if (sv.tokens.size() >= query_tokens.size()) {
      for (size_t start = 0; start + query_tokens.size() <= sv.tokens.size();
           ++start) {
        bool all = true;
        for (size_t k = 0; k < query_tokens.size(); ++k) {
          if (sv.tokens[start + k] != query_tokens[k]) {
            all = false;
            break;
          }
        }
        if (all) {
          found = true;
          break;
        }
      }
    }
    if (found && !fn(index)) return;
  }
}

std::vector<ValuePosting> InvertedIndex::LookupPhrase(
    const std::string& phrase) const {
  std::vector<ValuePosting> result;
  ForEachPhraseMatch(phrase, [&](uint32_t index) {
    const StoredValue& sv = values_[index];
    result.push_back(ValuePosting{sv.table, sv.column, sv.value,
                                  sv.row_count});
    return true;
  });
  return result;
}

size_t InvertedIndex::CountPhrase(const std::string& phrase) const {
  size_t count = 0;
  ForEachPhraseMatch(phrase, [&](uint32_t) {
    ++count;
    return true;
  });
  return count;
}

bool InvertedIndex::ContainsPhrase(const std::string& phrase) const {
  bool found = false;
  ForEachPhraseMatch(phrase, [&](uint32_t) {
    found = true;
    return false;  // first match is enough
  });
  return found;
}

bool InvertedIndex::ContainsToken(const std::string& token) const {
  return postings_.count(NormalizeToken(token)) > 0;
}

}  // namespace soda
