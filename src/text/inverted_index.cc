#include "text/inverted_index.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace soda {

namespace {

// FNV-1a accumulation over one field plus a separator, so ("ab", "c")
// and ("a", "bc") hash differently.
uint64_t HashField(uint64_t hash, std::string_view field) {
  for (unsigned char c : field) {
    hash ^= static_cast<uint64_t>(c);
    hash *= 1099511628211ull;
  }
  hash ^= 0x1f;  // field separator
  hash *= 1099511628211ull;
  return hash;
}

uint64_t HashTriple(std::string_view table, std::string_view column,
                    std::string_view value) {
  uint64_t hash = 1469598103934665603ull;
  hash = HashField(hash, table);
  hash = HashField(hash, column);
  hash = HashField(hash, value);
  return hash;
}

}  // namespace

size_t InvertedIndex::ValueKeyHash::operator()(const ValueKeyView& key) const {
  return static_cast<size_t>(HashTriple(key.table, key.column, key.value));
}

size_t InvertedIndex::ValueKeyHash::operator()(uint32_t index) const {
  const StoredValue& sv = (*values)[index];
  return static_cast<size_t>(HashTriple(sv.table, sv.column, sv.value));
}

bool InvertedIndex::ValueKeyEq::operator()(const ValueKeyView& a,
                                           uint32_t b) const {
  const StoredValue& sv = (*values)[b];
  return a.table == sv.table && a.column == sv.column && a.value == sv.value;
}

bool InvertedIndex::ValueKeyEq::operator()(uint32_t a,
                                           const ValueKeyView& b) const {
  return (*this)(b, a);
}

void InvertedIndex::Build(const Database& db) {
  // Adopt the database's shared vocabulary so every replica built over
  // this catalog holds the same dictionary instance.
  if (dict_ == nullptr) dict_ = db.token_dict();
  // The build appends to a possibly-shared dictionary; exclude readers
  // (replicas are built sequentially, so this never self-deadlocks).
  auto lock = db.change_log().WriterLock();
  for (const Table* table : db.tables()) {
    IndexTable(*table);
  }
}

void InvertedIndex::IndexTable(const Table& table) {
  uint32_t table_ord = TableOrdinal(table.name());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.columns()[c].type != ValueType::kString) continue;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Value& v = table.row(r)[c];
      if (v.is_null()) continue;
      const std::string& text = v.AsString();
      if (text.empty()) continue;
      AddOccurrence(table_ord, static_cast<uint32_t>(c), r, table.name(),
                    table.columns()[c].name, text);
    }
  }
}

size_t InvertedIndex::ApplyDelta(const ChangeEvent& event) {
  uint32_t table_ord = TableOrdinal(event.table);
  const bool same_dict = event.dict != nullptr && event.dict.get() == dict_.get();
  size_t inserted = 0;
  for (const ColumnDelta& delta : event.deltas) {
    for (size_t i = 0; i < delta.values.size(); ++i) {
      // Events carry each value pre-tokenized as interned ids so N shard
      // replicas do not re-tokenize under the exclusive data lock.
      const std::vector<TokenId>* ids =
          i < delta.token_ids.size() ? &delta.token_ids[i] : nullptr;
      if (ids != nullptr && same_dict) {
        // Shared dictionary: the ids are already ours.
        inserted += AddOccurrence(table_ord, delta.column_index, delta.rows[i],
                                  event.table, delta.column, delta.values[i],
                                  ids);
      } else if (ids != nullptr && event.dict != nullptr) {
        // Foreign dictionary: translate id -> spelling -> our id. Rare
        // path (an index subscribed to a database it was not built over).
        if (dict_ == nullptr) dict_ = std::make_shared<TokenDict>();
        translate_scratch_.clear();
        for (TokenId id : *ids) {
          translate_scratch_.push_back(dict_->Intern(event.dict->Spelling(id)));
        }
        inserted += AddOccurrence(table_ord, delta.column_index, delta.rows[i],
                                  event.table, delta.column, delta.values[i],
                                  &translate_scratch_);
      } else {
        inserted += AddOccurrence(table_ord, delta.column_index, delta.rows[i],
                                  event.table, delta.column, delta.values[i]);
      }
    }
  }
  return inserted;
}

uint32_t InvertedIndex::TableOrdinal(const std::string& table) {
  auto [it, unused] =
      table_ordinals_.emplace(table,
                              static_cast<uint32_t>(table_ordinals_.size()));
  return it->second;
}

size_t InvertedIndex::AddOccurrence(uint32_t table_ord, uint32_t column_index,
                                    size_t row_index, const std::string& table,
                                    const std::string& column,
                                    const std::string& text,
                                    const std::vector<TokenId>* token_ids) {
  ++num_records_;

  ValueKeyView key{table, column, text};
  auto it = value_keys_.find(key);
  if (it != value_keys_.end()) {
    ++values_[*it].row_count;
    return 0;
  }
  const std::vector<TokenId>* ids = token_ids;
  if (ids == nullptr) {
    if (dict_ == nullptr) dict_ = std::make_shared<TokenDict>();
    intern_scratch_.clear();
    dict_->InternText(text, &intern_scratch_);
    ids = &intern_scratch_;
  }
  if (ids->empty()) return 0;
  StoredValue sv;
  sv.table = table;
  sv.column = column;
  sv.value = text;
  sv.token_begin = static_cast<uint32_t>(token_arena_.size());
  sv.token_count = static_cast<uint32_t>(ids->size());
  sv.row_count = 1;
  sv.order_key = (static_cast<uint64_t>(table_ord) << 48) |
                 (static_cast<uint64_t>(column_index) << 32) |
                 static_cast<uint64_t>(row_index);
  token_arena_.insert(token_arena_.end(), ids->begin(), ids->end());
  uint32_t index = static_cast<uint32_t>(values_.size());
  size_t inserted = 0;
  // Register under each distinct token of the value, keeping the
  // postings list ordered by first-occurrence scan position. During a
  // from-scratch Build positions arrive ascending (push_back); a delta
  // apply splices into the middle wherever a rebuild would have put it.
  // Distinctness via sort+unique on the interned ids: O(k log k), not
  // the O(k^2) string scan the string-keyed index paid per value.
  dedupe_scratch_.assign(ids->begin(), ids->end());
  std::sort(dedupe_scratch_.begin(), dedupe_scratch_.end());
  dedupe_scratch_.erase(
      std::unique(dedupe_scratch_.begin(), dedupe_scratch_.end()),
      dedupe_scratch_.end());
  if (dedupe_scratch_.back() >= postings_.size()) {
    postings_.resize(dedupe_scratch_.back() + 1);
  }
  for (TokenId id : dedupe_scratch_) {
    std::vector<uint32_t>& list = postings_[id];
    if (list.empty()) ++num_tokens_;
    if (list.empty() || values_[list.back()].order_key < sv.order_key) {
      list.push_back(index);
    } else {
      auto pos = std::upper_bound(
          list.begin(), list.end(), sv.order_key,
          [this](uint64_t order_key, uint32_t existing) {
            return order_key < values_[existing].order_key;
          });
      list.insert(pos, index);
    }
    ++inserted;
  }
  values_.push_back(std::move(sv));
  value_keys_.insert(index);
  return inserted;
}

template <typename Fn>
void InvertedIndex::ForEachPhraseMatch(const std::string& phrase,
                                       Fn&& fn) const {
  if (dict_ == nullptr) return;  // nothing was ever indexed
  // Read-only token resolution: a token the dictionary has never seen
  // cannot occur in any stored value.
  std::vector<TokenId> query_ids;
  if (!dict_->FindText(phrase, &query_ids) || query_ids.empty()) return;

  // Collect the distinct tokens' postings lists; every token must occur
  // somewhere or the phrase cannot match.
  std::vector<const std::vector<uint32_t>*> lists;
  for (size_t k = 0; k < query_ids.size(); ++k) {
    TokenId id = query_ids[k];
    bool duplicate = false;
    for (size_t j = 0; j < k; ++j) {
      if (query_ids[j] == id) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    if (id >= postings_.size() || postings_[id].empty()) return;
    lists.push_back(&postings_[id]);
  }

  // Enumerate candidates from the RAREST token's postings — order_key
  // order is shared by all lists, so emission order is identical to a
  // first-token scan (order_key is unique per stored value).
  size_t rarest = 0;
  for (size_t j = 1; j < lists.size(); ++j) {
    if (lists[j]->size() < lists[rarest]->size()) rarest = j;
  }
  const std::vector<uint32_t>& base = *lists[rarest];

  if (query_ids.size() == 1) {
    // Single-token phrase: every posting of the token is a match.
    for (uint32_t index : base) {
      if (!fn(index)) return;
    }
    return;
  }

  // Sorted-merge intersection: one forward cursor per other list, each
  // advanced monotonically as the base candidates ascend.
  std::vector<size_t> cursors(lists.size(), 0);
  for (uint32_t index : base) {
    const StoredValue& sv = values_[index];
    bool in_all = true;
    for (size_t j = 0; j < lists.size(); ++j) {
      if (j == rarest) continue;
      const std::vector<uint32_t>& list = *lists[j];
      auto pos = std::lower_bound(
          list.begin() + static_cast<ptrdiff_t>(cursors[j]), list.end(),
          sv.order_key, [this](uint32_t existing, uint64_t order_key) {
            return values_[existing].order_key < order_key;
          });
      cursors[j] = static_cast<size_t>(pos - list.begin());
      // This token's list is exhausted below every remaining candidate:
      // no later candidate can match either.
      if (pos == list.end()) return;
      if (*pos != index) {
        in_all = false;
        break;
      }
    }
    if (!in_all) continue;
    // Verify adjacency on the interned sequence (integer compare).
    const TokenId* hay = token_arena_.data() + sv.token_begin;
    const TokenId* hay_end = hay + sv.token_count;
    if (std::search(hay, hay_end, query_ids.begin(), query_ids.end()) !=
        hay_end) {
      if (!fn(index)) return;
    }
  }
}

std::vector<ValuePosting> InvertedIndex::LookupPhrase(
    const std::string& phrase) const {
  std::vector<ValuePosting> result;
  ForEachPhraseMatch(phrase, [&](uint32_t index) {
    const StoredValue& sv = values_[index];
    result.push_back(ValuePosting{sv.table, sv.column, sv.value,
                                  sv.row_count});
    return true;
  });
  return result;
}

size_t InvertedIndex::CountPhrase(const std::string& phrase) const {
  size_t count = 0;
  ForEachPhraseMatch(phrase, [&](uint32_t) {
    ++count;
    return true;
  });
  return count;
}

bool InvertedIndex::ContainsPhrase(const std::string& phrase) const {
  bool found = false;
  ForEachPhraseMatch(phrase, [&](uint32_t) {
    found = true;
    return false;  // first match is enough
  });
  return found;
}

bool InvertedIndex::ContainsToken(const std::string& token) const {
  if (dict_ == nullptr) return false;
  TokenId id = dict_->Find(NormalizeToken(token));
  return id != kNoToken && id < postings_.size() && !postings_[id].empty();
}

size_t InvertedIndex::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const StoredValue& sv : values_) {
    bytes += sv.table.capacity() + sv.column.capacity() + sv.value.capacity();
  }
  bytes += values_.capacity() * sizeof(StoredValue);
  bytes += token_arena_.capacity() * sizeof(TokenId);
  bytes += postings_.capacity() * sizeof(std::vector<uint32_t>);
  for (const std::vector<uint32_t>& list : postings_) {
    bytes += list.capacity() * sizeof(uint32_t);
  }
  // value_keys_ / table_ordinals_: bucket arrays plus per-node overhead.
  bytes += value_keys_.bucket_count() * sizeof(void*);
  bytes += value_keys_.size() * (sizeof(uint32_t) + 2 * sizeof(void*));
  bytes += table_ordinals_.bucket_count() * sizeof(void*);
  for (const auto& [name, ordinal] : table_ordinals_) {
    bytes += sizeof(std::string) + name.capacity() + sizeof(ordinal) +
             2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace soda
