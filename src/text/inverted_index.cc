#include "text/inverted_index.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace soda {

void InvertedIndex::Build(const Database& db) {
  for (const Table* table : db.tables()) {
    IndexTable(*table);
  }
}

void InvertedIndex::IndexTable(const Table& table) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.columns()[c].type != ValueType::kString) continue;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Value& v = table.row(r)[c];
      if (v.is_null()) continue;
      const std::string& text = v.AsString();
      if (text.empty()) continue;
      ++num_records_;

      std::string key =
          table.name() + '\x1f' + table.columns()[c].name + '\x1f' + text;
      auto it = value_keys_.find(key);
      if (it != value_keys_.end()) {
        ++values_[it->second].row_count;
        continue;
      }
      StoredValue sv;
      sv.table = table.name();
      sv.column = table.columns()[c].name;
      sv.value = text;
      sv.tokens = Tokenize(text);
      sv.row_count = 1;
      if (sv.tokens.empty()) continue;
      uint32_t index = static_cast<uint32_t>(values_.size());
      // Register under each distinct token of the value.
      std::vector<std::string> seen;
      for (const auto& token : sv.tokens) {
        if (std::find(seen.begin(), seen.end(), token) != seen.end()) continue;
        seen.push_back(token);
        postings_[token].push_back(index);
      }
      values_.push_back(std::move(sv));
      value_keys_.emplace(std::move(key), index);
    }
  }
}

std::vector<ValuePosting> InvertedIndex::LookupPhrase(
    const std::string& phrase) const {
  std::vector<ValuePosting> result;
  std::vector<std::string> query_tokens = Tokenize(phrase);
  if (query_tokens.empty()) return result;

  auto it = postings_.find(query_tokens[0]);
  if (it == postings_.end()) return result;

  for (uint32_t index : it->second) {
    const StoredValue& sv = values_[index];
    // Check that query_tokens appear consecutively in sv.tokens.
    bool found = false;
    if (sv.tokens.size() >= query_tokens.size()) {
      for (size_t start = 0; start + query_tokens.size() <= sv.tokens.size();
           ++start) {
        bool all = true;
        for (size_t k = 0; k < query_tokens.size(); ++k) {
          if (sv.tokens[start + k] != query_tokens[k]) {
            all = false;
            break;
          }
        }
        if (all) {
          found = true;
          break;
        }
      }
    }
    if (found) {
      result.push_back(ValuePosting{sv.table, sv.column, sv.value,
                                    sv.row_count});
    }
  }
  return result;
}

bool InvertedIndex::ContainsToken(const std::string& token) const {
  return postings_.count(NormalizeToken(token)) > 0;
}

}  // namespace soda
