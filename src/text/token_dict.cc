#include "text/token_dict.h"

#include "common/strings.h"
#include "text/tokenizer.h"

namespace soda {

TokenId TokenDict::Intern(std::string_view token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  spellings_.emplace_back(token);
  TokenId id = static_cast<TokenId>(spellings_.size() - 1);
  ids_.emplace(std::string_view(spellings_.back()), id);
  return id;
}

TokenId TokenDict::Find(std::string_view token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kNoToken : it->second;
}

void TokenDict::InternText(std::string_view text, std::vector<TokenId>* out) {
  std::string folded = FoldForMatch(text);
  ForEachTokenRun(folded, [&](std::string_view run) {
    out->push_back(Intern(run));
    return true;
  });
}

bool TokenDict::FindText(std::string_view text,
                         std::vector<TokenId>* out) const {
  std::string folded = FoldForMatch(text);
  bool all_known = true;
  ForEachTokenRun(folded, [&](std::string_view run) {
    TokenId id = Find(run);
    if (id == kNoToken) {
      all_known = false;
      return false;
    }
    out->push_back(id);
    return true;
  });
  return all_known;
}

size_t TokenDict::ApproxMemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const std::string& spelling : spellings_) {
    bytes += sizeof(std::string) + spelling.capacity();
  }
  // Hash map: bucket array plus one node (key view, id, chain pointer)
  // per entry.
  bytes += ids_.bucket_count() * sizeof(void*);
  bytes += ids_.size() *
           (sizeof(std::string_view) + sizeof(TokenId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace soda
