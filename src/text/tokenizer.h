// Tokenization for the base-data inverted index and the keyword matcher.
//
// Tokens are maximal runs of alphanumeric characters, normalized with
// FoldForMatch (lowercase + diacritic folding), so the query keyword
// "Zurich" matches the stored value "Zürich".

#ifndef SODA_TEXT_TOKENIZER_H_
#define SODA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace soda {

/// Splits `text` into normalized tokens. Digits are kept ("basel ii" ->
/// ["basel", "ii"]; "q3 2011" -> ["q3", "2011"]).
std::vector<std::string> Tokenize(std::string_view text);

/// Normalized single token (no splitting); empty when `word` holds no
/// alphanumeric characters.
std::string NormalizeToken(std::string_view word);

}  // namespace soda

#endif  // SODA_TEXT_TOKENIZER_H_
