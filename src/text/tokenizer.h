// Tokenization for the base-data inverted index and the keyword matcher.
//
// Tokens are maximal runs of alphanumeric characters, normalized with
// FoldForMatch (lowercase + diacritic folding), so the query keyword
// "Zurich" matches the stored value "Zürich".

#ifndef SODA_TEXT_TOKENIZER_H_
#define SODA_TEXT_TOKENIZER_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace soda {

/// Calls `fn(run)` for every maximal alphanumeric run of `folded`
/// (already FoldForMatch-ed text), left to right; fn returns false to
/// stop early. This is THE token boundary definition — Tokenize and the
/// TokenDict text walks all split through it, so they can never drift.
template <typename Fn>
void ForEachTokenRun(std::string_view folded, Fn&& fn) {
  size_t i = 0;
  while (i < folded.size()) {
    while (i < folded.size() &&
           !std::isalnum(static_cast<unsigned char>(folded[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < folded.size() &&
           std::isalnum(static_cast<unsigned char>(folded[i]))) {
      ++i;
    }
    if (i > start && !fn(folded.substr(start, i - start))) return;
  }
}

/// Splits `text` into normalized tokens. Digits are kept ("basel ii" ->
/// ["basel", "ii"]; "q3 2011" -> ["q3", "2011"]).
std::vector<std::string> Tokenize(std::string_view text);

/// Normalized single token (no splitting); empty when `word` holds no
/// alphanumeric characters.
std::string NormalizeToken(std::string_view word);

}  // namespace soda

#endif  // SODA_TEXT_TOKENIZER_H_
