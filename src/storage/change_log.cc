#include "storage/change_log.h"

#include <algorithm>

#include "storage/table.h"

namespace soda {

void ChangeLog::Subscribe(ChangeListener* listener) {
  auto lock = WriterLock();
  if (std::find(listeners_.begin(), listeners_.end(), listener) ==
      listeners_.end()) {
    listeners_.push_back(listener);
  }
}

void ChangeLog::Unsubscribe(ChangeListener* listener) {
  auto lock = WriterLock();
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void ChangeLog::BeginEpoch() {
  auto lock = WriterLock();
  ++epoch_depth_;
}

void ChangeLog::EndEpoch() {
  auto lock = WriterLock();
  if (epoch_depth_ == 0) return;  // unbalanced EndEpoch is a no-op
  if (--epoch_depth_ > 0) return;
  // Outermost close: publish one coalesced event per touched table, in
  // first-touch order so listener observation is deterministic.
  std::vector<PendingRange> pending = std::move(pending_);
  pending_.clear();
  for (const PendingRange& range : pending) {
    PublishLocked(*range.table, range.row_begin, range.row_end);
  }
}

void ChangeLog::RecordAppendLocked(const Table& table, size_t row_begin,
                                   size_t row_end) {
  rows_recorded_ += row_end - row_begin;
  if (epoch_depth_ > 0) {
    for (PendingRange& range : pending_) {
      if (range.table == &table) {
        // Appends only grow the row store, so ranges of one table inside
        // one epoch are contiguous — extend in place.
        range.row_end = row_end;
        return;
      }
    }
    pending_.push_back(PendingRange{&table, row_begin, row_end});
    return;
  }
  PublishLocked(table, row_begin, row_end);
}

void ChangeLog::PublishLocked(const Table& table, size_t row_begin,
                              size_t row_end) {
  ++sequence_;
  ++events_published_;
  // No subscribers: advance the sequence (deferred-write staleness
  // checks depend on it) but skip building an event nobody consumes —
  // dataset construction without a live listener stays copy-free.
  if (listeners_.empty()) return;
  // Interning happens here, under the exclusive data lock, so sharing
  // the dictionary with every replica's index is race-free.
  if (dict_ == nullptr) dict_ = std::make_shared<TokenDict>();
  ChangeEvent event;
  event.table = table.name();
  event.row_begin = row_begin;
  event.row_end = row_end;
  event.sequence = sequence_;
  event.dict = dict_;
  // Column-major over the new rows, exactly the scan order a from-scratch
  // index build uses, so incremental appliers stay rebuild-identical.
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.columns()[c].type != ValueType::kString) continue;
    ColumnDelta delta;
    delta.column = table.columns()[c].name;
    delta.column_index = static_cast<uint32_t>(c);
    for (size_t r = row_begin; r < row_end; ++r) {
      const Value& v = table.row(r)[c];
      if (v.is_null()) continue;
      const std::string& text = v.AsString();
      if (text.empty()) continue;  // the index skips empty values too
      delta.rows.push_back(r);
      delta.token_ids.emplace_back();
      dict_->InternText(text, &delta.token_ids.back());
      delta.values.push_back(text);
    }
    if (!delta.values.empty()) event.deltas.push_back(std::move(delta));
  }
  for (ChangeListener* listener : listeners_) {
    listener->OnChange(event);
  }
}

}  // namespace soda
