// The storage change log: freshness propagation for live base data.
//
// The paper targets warehouses that are append-only with historization
// (Section 5.1): base data moves while the schema stays put. Everything
// above the storage layer — the inverted index, the engines' result
// caches — is derived state over the rows, so a mutation that nobody
// hears about silently serves stale answers. The ChangeLog is the
// subsystem that makes mutations audible:
//
//   Table::Append / AppendUnchecked
//        │  (exclusive data lock)
//        ▼
//   ChangeLog ── ChangeEvent{table, column→value deltas, row range, seq}
//        │
//        ▼
//   ChangeListener (e.g. core/freshness.h FreshnessManager)
//        ├── InvertedIndex::ApplyDelta   (incremental postings, no rebuild)
//        └── SodaEngine::InvalidateWhere (keyed cache eviction)
//
// Concurrency contract. The log owns one readers-writer data lock for
// the whole database: every search path holds it shared for the full
// serve (pipeline, snippet execution, cache insert); every mutation
// holds it exclusive across the row append AND the synchronous listener
// fan-out. A reader therefore always observes rows, index and caches in
// a consistent state — either entirely before or entirely after a
// mutation — and listeners run without extra locking of their own.
//
// Epochs. Bulk loads wrap their appends in BeginEpoch/EndEpoch (or the
// RAII EpochGuard): publication is deferred and coalesced so a load of N
// rows into T tables publishes T events, not N. Rows appended inside an
// open epoch are visible to readers immediately (the lock is per append,
// not per epoch — a bulk load must not starve the serving path), but
// derived state only catches up at epoch close; the coalesced events
// then invalidate exactly the answers the epoch could have touched.

#ifndef SODA_STORAGE_CHANGE_LOG_H_
#define SODA_STORAGE_CHANGE_LOG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "text/token_dict.h"

namespace soda {

class Table;

/// The appended string values of one column, paired with the row index
/// each value landed in (rows with NULL in the column contribute no
/// entry, so `rows` carries the exact positions). Values arrive
/// pre-tokenized as interned TokenIds against the log's dictionary
/// (ChangeEvent::dict): the event is built once per mutation but
/// consumed by every listener and every shard replica's index —
/// tokenizing AND interning at the source keeps the exclusive-lock
/// window (which stalls all serving) from paying one Tokenize per
/// consumer, and replicas sharing the dictionary apply deltas without
/// touching a token string at all.
struct ColumnDelta {
  std::string column;
  uint32_t column_index = 0;
  std::vector<size_t> rows;
  std::vector<std::string> values;            // parallel to `rows`
  std::vector<std::vector<TokenId>> token_ids;  // ids of Tokenize(values[i])
};

/// One published mutation: rows [row_begin, row_end) appended to `table`,
/// with the per-string-column value deltas the text index needs. Events
/// carry a log-wide monotonically increasing sequence number; readers use
/// it to detect that data moved underneath a deferred write.
struct ChangeEvent {
  std::string table;
  size_t row_begin = 0;
  size_t row_end = 0;
  uint64_t sequence = 0;
  /// The dictionary the deltas' token_ids were interned against — the
  /// database's shared vocabulary. Consumers whose index shares it use
  /// the ids verbatim; foreign consumers translate via Spelling().
  std::shared_ptr<const TokenDict> dict;
  std::vector<ColumnDelta> deltas;  // string columns only, in column order

  /// Total appended (row, column) string occurrences — the number of
  /// posting insertions an incremental index apply will perform.
  size_t NumValues() const {
    size_t n = 0;
    for (const ColumnDelta& d : deltas) n += d.values.size();
    return n;
  }
};

/// Receives published events. Called synchronously under the log's
/// exclusive data lock: implementations may mutate derived state (index,
/// caches) without further locking against readers, but must not block
/// on work that itself needs the data lock.
class ChangeListener {
 public:
  virtual ~ChangeListener() = default;
  virtual void OnChange(const ChangeEvent& event) = 0;
};

/// The per-database mutation hub. Owned by Database; every Table created
/// through Database::CreateTable publishes its appends here.
class ChangeLog {
 public:
  ChangeLog() = default;
  ChangeLog(const ChangeLog&) = delete;
  ChangeLog& operator=(const ChangeLog&) = delete;

  /// Shared data lock for readers. Search paths hold this for the whole
  /// serve; mutations (and listener fan-outs) are excluded meanwhile.
  std::shared_lock<std::shared_mutex> ReaderLock() const {
    return std::shared_lock<std::shared_mutex>(data_mu_);
  }

  /// Exclusive data lock for mutators. Table's append paths take this
  /// around the row push + RecordAppendLocked call.
  std::unique_lock<std::shared_mutex> WriterLock() const {
    return std::unique_lock<std::shared_mutex>(data_mu_);
  }

  /// Registers/removes a listener (exclusive lock taken internally; do
  /// not call while holding a lock from this log).
  void Subscribe(ChangeListener* listener);
  void Unsubscribe(ChangeListener* listener);

  /// The dictionary published events intern their token ids against.
  /// Database wires its shared vocabulary in at construction; a log
  /// without one lazily creates a private dictionary on first publish.
  /// Call before any mutation traffic (not internally synchronized).
  void set_token_dict(std::shared_ptr<TokenDict> dict) {
    dict_ = std::move(dict);
  }
  const std::shared_ptr<TokenDict>& token_dict() const { return dict_; }

  /// Opens/closes a batched epoch. Nestable; only the outermost EndEpoch
  /// publishes. While an epoch is open, RecordAppendLocked coalesces per
  /// table; EndEpoch publishes one event per touched table, in first-
  /// touch order (deterministic). Epochs are LOG-GLOBAL, not per
  /// thread: any thread's appends coalesce while one is open, and their
  /// derived-state catch-up is deferred to the close — epochs are for
  /// bulk loads on a quiesced mutation path, not for wrapping one
  /// writer among several concurrent ones.
  void BeginEpoch();
  void EndEpoch();

  /// RAII epoch for bulk loads: one event per table however many rows
  /// the scope appends.
  class EpochGuard {
   public:
    explicit EpochGuard(ChangeLog& log) : log_(&log) { log_->BeginEpoch(); }
    ~EpochGuard() { log_->EndEpoch(); }
    EpochGuard(const EpochGuard&) = delete;
    EpochGuard& operator=(const EpochGuard&) = delete;

   private:
    ChangeLog* log_;
  };

  /// Books rows [row_begin, row_end) just appended to `table`.
  /// PRECONDITION: the caller holds WriterLock() — Table's append paths
  /// do. Publishes immediately (building the event from the table's rows)
  /// unless an epoch is open, in which case the range is coalesced.
  void RecordAppendLocked(const Table& table, size_t row_begin,
                          size_t row_end);

  /// Sequence number of the last published event (0 before the first).
  /// Stable under ReaderLock(): writers only advance it exclusively, so a
  /// reader that sees the same value before and after a deferred write
  /// knows no mutation landed in between.
  uint64_t sequence() const { return sequence_; }

  /// Lifetime books, readable under either lock (or quiesced).
  uint64_t events_published() const { return events_published_; }
  uint64_t rows_recorded() const { return rows_recorded_; }
  size_t num_listeners() const { return listeners_.size(); }

 private:
  struct PendingRange {
    const Table* table = nullptr;
    size_t row_begin = 0;
    size_t row_end = 0;
  };

  /// Builds the event for [row_begin, row_end) of `table` and fans it out
  /// to every listener. Caller holds the writer lock.
  void PublishLocked(const Table& table, size_t row_begin, size_t row_end);

  mutable std::shared_mutex data_mu_;

  // All below guarded by data_mu_ (exclusive for writes).
  std::shared_ptr<TokenDict> dict_;
  std::vector<ChangeListener*> listeners_;
  std::vector<PendingRange> pending_;  // first-touch order
  int epoch_depth_ = 0;
  uint64_t sequence_ = 0;
  uint64_t events_published_ = 0;
  uint64_t rows_recorded_ = 0;
};

}  // namespace soda

#endif  // SODA_STORAGE_CHANGE_LOG_H_
