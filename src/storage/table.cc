#include "storage/table.h"

#include <cassert>

#include "common/strings.h"
#include "storage/change_log.h"
#include "text/token_dict.h"

namespace soda {

int Table::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsFolded(columns_[i].name, column_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status Table::Append(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("table %s expects %zu columns, got %zu", name_.c_str(),
                  columns_.size(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != columns_[i].type) {
      return Status::TypeError(StrFormat(
          "table %s column %s expects %s, got %s", name_.c_str(),
          columns_[i].name.c_str(), ValueTypeName(columns_[i].type),
          ValueTypeName(row[i].type())));
    }
  }
  PushRow(std::move(row));
  return Status::OK();
}

void Table::AppendUnchecked(Row row) {
  assert(row.size() == columns_.size() &&
         "AppendUnchecked: row arity disagrees with the table schema");
  PushRow(std::move(row));
}

void Table::PushRow(Row row) {
  if (change_log_ == nullptr) {
    rows_.push_back(std::move(row));
    return;
  }
  // Exclusive data lock across the row push AND the publication, so no
  // reader ever sees the new row with stale derived state.
  auto lock = change_log_->WriterLock();
  rows_.push_back(std::move(row));
  change_log_->RecordAppendLocked(*this, rows_.size() - 1, rows_.size());
}

Value Table::ValueAt(size_t row_index, const std::string& column_name) const {
  int col = ColumnIndex(column_name);
  if (col < 0 || row_index >= rows_.size()) return Value::Null();
  return rows_[row_index][static_cast<size_t>(col)];
}

Database::Database()
    : token_dict_(std::make_shared<TokenDict>()),
      change_log_(std::make_unique<ChangeLog>()) {
  change_log_->set_token_dict(token_dict_);
}
Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

Result<Table*> Database::CreateTable(const std::string& name,
                                     std::vector<ColumnDef> columns) {
  std::string key = FoldForMatch(name);
  if (by_name_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.push_back(std::make_unique<Table>(name, std::move(columns)));
  Table* t = tables_.back().get();
  t->set_change_log(change_log_.get());
  by_name_[key] = t;
  return t;
}

Table* Database::FindTable(const std::string& name) {
  auto it = by_name_.find(FoldForMatch(name));
  return it == by_name_.end() ? nullptr : it->second;
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = by_name_.find(FoldForMatch(name));
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<const Table*> Database::tables() const {
  std::vector<const Table*> out;
  out.reserve(tables_.size());
  for (const auto& t : tables_) out.push_back(t.get());
  return out;
}

std::vector<Table*> Database::mutable_tables() {
  std::vector<Table*> out;
  out.reserve(tables_.size());
  for (const auto& t : tables_) out.push_back(t.get());
  return out;
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t->num_rows();
  return n;
}

}  // namespace soda
