// Row-oriented in-memory tables and the database catalog.
//
// This is the "base data" substrate of the reproduction: the physical tables
// the warehouse schema compiles into, the rows the inverted index covers,
// and the storage the generated SQL executes against.

#ifndef SODA_STORAGE_TABLE_H_
#define SODA_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace soda {

/// One column of a physical table.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
};

using Row = std::vector<Value>;

/// An in-memory table: schema plus a row store. Row ids are stable (no
/// deletes in this workload; warehouses are append-only with historization).
class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }

  /// Index of `column_name` or -1 when absent (case-insensitive match,
  /// mirroring SQL identifier resolution).
  int ColumnIndex(const std::string& column_name) const;

  /// True when the table has a column of that name.
  bool HasColumn(const std::string& column_name) const {
    return ColumnIndex(column_name) >= 0;
  }

  /// Appends a row; fails when arity or value types disagree with the
  /// schema (NULL is allowed in any column).
  Status Append(Row row);

  /// Appends without validation — used by generators on hot paths after
  /// they have validated the recipe once.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Value at (row, column-name); NULL when the column does not exist.
  Value ValueAt(size_t row_index, const std::string& column_name) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<Row> rows_;
};

/// The catalog: owns tables, resolves case-insensitive table names.
class Database {
 public:
  /// Creates an empty table. Fails when the name is taken.
  Result<Table*> CreateTable(const std::string& name,
                             std::vector<ColumnDef> columns);

  /// Looks up a table; nullptr when absent.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// All tables in creation order.
  std::vector<const Table*> tables() const;
  std::vector<Table*> mutable_tables();

  size_t num_tables() const { return tables_.size(); }

  /// Sum of rows over all tables (used by dataset sanity checks).
  size_t TotalRows() const;

 private:
  // Creation order preserved for deterministic iteration.
  std::vector<std::unique_ptr<Table>> tables_;
  std::map<std::string, Table*> by_name_;  // folded-lowercase name -> table
};

}  // namespace soda

#endif  // SODA_STORAGE_TABLE_H_
