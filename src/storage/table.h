// Row-oriented in-memory tables and the database catalog.
//
// This is the "base data" substrate of the reproduction: the physical tables
// the warehouse schema compiles into, the rows the inverted index covers,
// and the storage the generated SQL executes against.

#ifndef SODA_STORAGE_TABLE_H_
#define SODA_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace soda {

class ChangeLog;
class TokenDict;

/// One column of a physical table.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
};

using Row = std::vector<Value>;

/// An in-memory table: schema plus a row store. Row ids are stable (no
/// deletes in this workload; warehouses are append-only with historization).
class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }

  /// Index of `column_name` or -1 when absent (case-insensitive match,
  /// mirroring SQL identifier resolution).
  int ColumnIndex(const std::string& column_name) const;

  /// True when the table has a column of that name.
  bool HasColumn(const std::string& column_name) const {
    return ColumnIndex(column_name) >= 0;
  }

  /// Appends a row; fails when arity or value types disagree with the
  /// schema (NULL is allowed in any column). When the table belongs to a
  /// Database, the append is published through its ChangeLog (under the
  /// log's exclusive data lock), so live indexes and caches hear about
  /// it; wrap bulk loads in ChangeLog::EpochGuard to coalesce events.
  Status Append(Row row);

  /// Appends without type validation — the generators' fast path after
  /// they have validated the recipe once. Arity still asserts in debug
  /// builds, and the append is routed through the same change-log
  /// publication as Append, so the fast path can never desync a live
  /// index.
  void AppendUnchecked(Row row);

  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Value at (row, column-name); NULL when the column does not exist.
  Value ValueAt(size_t row_index, const std::string& column_name) const;

  /// The change log this table publishes appends to; nullptr for
  /// standalone tables (constructed outside a Database). Set by
  /// Database::CreateTable.
  void set_change_log(ChangeLog* log) { change_log_ = log; }
  ChangeLog* change_log() const { return change_log_; }

 private:
  /// Shared append core: takes the change log's exclusive data lock (when
  /// attached), pushes the row, and records the append for publication.
  void PushRow(Row row);

  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<Row> rows_;
  ChangeLog* change_log_ = nullptr;
};

/// The catalog: owns tables, resolves case-insensitive table names.
class Database {
 public:
  // Out-of-line: the owned ChangeLog is an incomplete type here.
  Database();
  ~Database();
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;

  /// Creates an empty table. Fails when the name is taken.
  Result<Table*> CreateTable(const std::string& name,
                             std::vector<ColumnDef> columns);

  /// Looks up a table; nullptr when absent.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// All tables in creation order.
  std::vector<const Table*> tables() const;
  std::vector<Table*> mutable_tables();

  size_t num_tables() const { return tables_.size(); }

  /// Sum of rows over all tables (used by dataset sanity checks).
  size_t TotalRows() const;

  /// The database's mutation hub: every table created here publishes its
  /// appends through this log. Const access returns a mutable log —
  /// subscribing listeners and taking the data lock are not logical
  /// mutations of the catalog (the engines hold `const Database*`).
  ChangeLog& change_log() const { return *change_log_; }

  /// The database's shared token vocabulary: every InvertedIndex built
  /// over this catalog adopts it (so N shard replicas hold one copy, not
  /// N), and the change log interns published deltas against it. Appends
  /// happen under the change log's exclusive data lock only.
  const std::shared_ptr<TokenDict>& token_dict() const { return token_dict_; }

 private:
  // Creation order preserved for deterministic iteration.
  std::vector<std::unique_ptr<Table>> tables_;
  std::map<std::string, Table*> by_name_;  // folded-lowercase name -> table
  std::shared_ptr<TokenDict> token_dict_;
  std::unique_ptr<ChangeLog> change_log_;
};

}  // namespace soda

#endif  // SODA_STORAGE_TABLE_H_
