// Rendering of the SQL AST into executable text.
//
// The output style follows the statements printed in the paper (Query 1-4):
// uppercase keywords, comma-joined FROM list, WHERE as AND-chain.

#include <string>

#include "common/strings.h"
#include "sql/ast.h"

namespace soda {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "count";
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLike:
      return "LIKE";
  }
  return "=";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kStar:
      return "*";
    case Kind::kColumn:
      return column.ToString();
    case Kind::kLiteral:
      return literal.ToSqlLiteral();
    case Kind::kAggregate: {
      std::string arg = agg_star ? "*" : column.ToString();
      if (agg_distinct) arg = "DISTINCT " + arg;
      return std::string(AggFuncName(agg)) + "(" + arg + ")";
    }
  }
  return "*";
}

std::string Predicate::ToString() const {
  return lhs.ToString() + " " + CompareOpSymbol(op) + " " + rhs.ToString();
}

bool SelectStatement::HasAggregates() const {
  for (const auto& item : items) {
    if (item.expr.is_aggregate()) return true;
  }
  for (const auto& o : order_by) {
    if (o.expr.is_aggregate()) return true;
  }
  return false;
}

std::string SelectStatement::ToSql() const {
  std::string sql = "SELECT ";
  if (distinct) sql += "DISTINCT ";
  if (items.empty()) {
    sql += "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += items[i].ToString();
    }
  }
  sql += "\nFROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += from[i].ToString();
  }
  if (!where.empty()) {
    sql += "\nWHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) sql += "\n  AND ";
      sql += where[i].ToString();
    }
  }
  if (!group_by.empty()) {
    sql += "\nGROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += group_by[i].ToString();
    }
  }
  if (!order_by.empty()) {
    sql += "\nORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += order_by[i].ToString();
    }
  }
  if (limit.has_value()) {
    sql += "\nLIMIT " + std::to_string(*limit);
  }
  return sql;
}

}  // namespace soda
