#include "sql/result_set.h"

#include <algorithm>

namespace soda {

std::string ResultSet::RowKey(const std::vector<Value>& row) {
  std::string key;
  for (const auto& v : row) {
    key += v.ToSqlLiteral();
    key += '\x1f';  // unit separator: cannot occur in rendered literals
  }
  return key;
}

std::string ResultSet::ToAsciiTable(size_t max_rows) const {
  std::vector<size_t> widths(column_names.size());
  for (size_t c = 0; c < column_names.size(); ++c) {
    widths[c] = column_names[c].size();
  }
  size_t shown = std::min(max_rows, rows.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(column_names.size());
    for (size_t c = 0; c < column_names.size() && c < rows[r].size(); ++c) {
      cells[r][c] = rows[r][c].ToDisplayString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  auto rule = [&]() {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  std::string out = rule();
  out += "|";
  for (size_t c = 0; c < column_names.size(); ++c) {
    out += " " + column_names[c] +
           std::string(widths[c] - column_names[c].size(), ' ') + " |";
  }
  out += "\n" + rule();
  for (size_t r = 0; r < shown; ++r) {
    out += "|";
    for (size_t c = 0; c < column_names.size(); ++c) {
      out += " " + cells[r][c] + std::string(widths[c] - cells[r][c].size(), ' ') +
             " |";
    }
    out += "\n";
  }
  out += rule();
  if (rows.size() > shown) {
    out += "(" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace soda
