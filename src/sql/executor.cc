#include "sql/executor.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "sql/parser.h"

namespace soda {

namespace {

// A tuple in flight: one row index per FROM entry (SIZE_MAX = not joined
// yet). Values are fetched lazily from the base tables, so wide
// intermediate results stay cheap.
using TupleIds = std::vector<size_t>;
constexpr size_t kUnset = static_cast<size_t>(-1);

// Resolved FROM entry.
struct FromEntry {
  std::string qualifier;  // alias or table name (original case)
  const Table* table = nullptr;
};

// Resolved column: which FROM entry, which column index.
struct ResolvedColumn {
  size_t from_index = 0;
  size_t column_index = 0;
};

class Evaluation {
 public:
  Evaluation(const Database* db, const SelectStatement& stmt)
      : db_(db), stmt_(stmt) {}

  Result<ResultSet> Run() {
    SODA_RETURN_NOT_OK(ResolveFrom());
    SODA_RETURN_NOT_OK(PartitionPredicates());
    SODA_RETURN_NOT_OK(JoinTables());
    SODA_RETURN_NOT_OK(ApplyFilters());
    if (!stmt_.group_by.empty() || stmt_.HasAggregates()) {
      return ProduceAggregated();
    }
    return ProduceProjected();
  }

 private:
  // ---- resolution -------------------------------------------------------

  Status ResolveFrom() {
    if (stmt_.from.empty()) {
      return Status::InvalidArgument("FROM list is empty");
    }
    for (const auto& ref : stmt_.from) {
      const Table* t = db_->FindTable(ref.table);
      if (t == nullptr) {
        return Status::NotFound("unknown table '" + ref.table + "'");
      }
      std::string qualifier = ref.qualifier();
      for (const auto& existing : from_) {
        if (EqualsFolded(existing.qualifier, qualifier)) {
          return Status::InvalidArgument("duplicate table qualifier '" +
                                         qualifier + "'");
        }
      }
      from_.push_back(FromEntry{qualifier, t});
    }
    return Status::OK();
  }

  Result<ResolvedColumn> ResolveColumn(const ColumnRef& ref) const {
    if (!ref.table.empty()) {
      for (size_t i = 0; i < from_.size(); ++i) {
        if (EqualsFolded(from_[i].qualifier, ref.table) ||
            EqualsFolded(from_[i].table->name(), ref.table)) {
          int col = from_[i].table->ColumnIndex(ref.column);
          if (col < 0) {
            return Status::NotFound("table '" + ref.table +
                                    "' has no column '" + ref.column + "'");
          }
          return ResolvedColumn{i, static_cast<size_t>(col)};
        }
      }
      return Status::NotFound("unknown table qualifier '" + ref.table + "'");
    }
    // Unqualified: must resolve to exactly one table in scope.
    ResolvedColumn found;
    int hits = 0;
    for (size_t i = 0; i < from_.size(); ++i) {
      int col = from_[i].table->ColumnIndex(ref.column);
      if (col >= 0) {
        found = ResolvedColumn{i, static_cast<size_t>(col)};
        ++hits;
      }
    }
    if (hits == 0) {
      return Status::NotFound("unknown column '" + ref.column + "'");
    }
    if (hits > 1) {
      return Status::InvalidArgument("ambiguous column '" + ref.column + "'");
    }
    return found;
  }

  Value FetchColumn(const TupleIds& tuple, const ResolvedColumn& rc) const {
    size_t row = tuple[rc.from_index];
    if (row == kUnset) return Value::Null();
    return from_[rc.from_index].table->row(row)[rc.column_index];
  }

  // ---- predicate partitioning -------------------------------------------

  struct JoinCondition {
    ResolvedColumn left;
    ResolvedColumn right;
  };
  struct Filter {
    const Predicate* pred;
    // Resolved operands when the side is a column.
    std::optional<ResolvedColumn> lhs_col;
    std::optional<ResolvedColumn> rhs_col;
  };

  Status PartitionPredicates() {
    for (const auto& pred : stmt_.where) {
      bool both_columns = pred.lhs.kind == Expr::Kind::kColumn &&
                          pred.rhs.kind == Expr::Kind::kColumn;
      if (both_columns && pred.op == CompareOp::kEq) {
        SODA_ASSIGN_OR_RETURN(ResolvedColumn l, ResolveColumn(pred.lhs.column));
        SODA_ASSIGN_OR_RETURN(ResolvedColumn r, ResolveColumn(pred.rhs.column));
        if (l.from_index != r.from_index) {
          joins_.push_back(JoinCondition{l, r});
          continue;
        }
      }
      Filter f;
      f.pred = &pred;
      if (pred.lhs.kind == Expr::Kind::kColumn) {
        SODA_ASSIGN_OR_RETURN(ResolvedColumn rc, ResolveColumn(pred.lhs.column));
        f.lhs_col = rc;
      } else if (pred.lhs.kind == Expr::Kind::kAggregate) {
        return Status::InvalidArgument("aggregates not allowed in WHERE");
      }
      if (pred.rhs.kind == Expr::Kind::kColumn) {
        SODA_ASSIGN_OR_RETURN(ResolvedColumn rc, ResolveColumn(pred.rhs.column));
        f.rhs_col = rc;
      } else if (pred.rhs.kind == Expr::Kind::kAggregate) {
        return Status::InvalidArgument("aggregates not allowed in WHERE");
      }
      filters_.push_back(std::move(f));
    }
    return Status::OK();
  }

  // ---- joining -----------------------------------------------------------

  Status JoinTables() {
    std::vector<bool> joined(from_.size(), false);

    // Seed with the first FROM table.
    tuples_.clear();
    tuples_.reserve(from_[0].table->num_rows());
    for (size_t r = 0; r < from_[0].table->num_rows(); ++r) {
      TupleIds t(from_.size(), kUnset);
      t[0] = r;
      tuples_.push_back(std::move(t));
    }
    joined[0] = true;
    size_t joined_count = 1;

    std::vector<bool> join_used(joins_.size(), false);

    while (joined_count < from_.size()) {
      // Find the next table (FROM order) connected to the joined set.
      size_t next = kUnset;
      std::vector<size_t> applicable;  // indexes into joins_
      for (size_t candidate = 0; candidate < from_.size() && next == kUnset;
           ++candidate) {
        if (joined[candidate]) continue;
        applicable.clear();
        for (size_t j = 0; j < joins_.size(); ++j) {
          if (join_used[j]) continue;
          const auto& jc = joins_[j];
          bool connects =
              (jc.left.from_index == candidate &&
               joined[jc.right.from_index]) ||
              (jc.right.from_index == candidate && joined[jc.left.from_index]);
          if (connects) applicable.push_back(j);
        }
        if (!applicable.empty()) next = candidate;
      }

      if (next == kUnset) {
        // No connecting condition: cross product with the first unjoined
        // table (the paper's generator never emits this, but gold queries
        // and hand-written SQL may).
        for (size_t candidate = 0; candidate < from_.size(); ++candidate) {
          if (!joined[candidate]) {
            next = candidate;
            break;
          }
        }
        CrossJoin(next);
      } else {
        HashJoin(next, applicable, &join_used);
      }
      joined[next] = true;
      ++joined_count;
    }

    // Join conditions not consumed while connecting (e.g. a second edge
    // between two already-joined tables) become residual filters.
    for (size_t j = 0; j < joins_.size(); ++j) {
      if (!join_used[j]) residual_joins_.push_back(joins_[j]);
    }
    if (!residual_joins_.empty()) {
      std::vector<TupleIds> kept;
      kept.reserve(tuples_.size());
      for (auto& t : tuples_) {
        bool keep = true;
        for (const auto& jc : residual_joins_) {
          Value a = FetchColumn(t, jc.left);
          Value b = FetchColumn(t, jc.right);
          if (a.is_null() || b.is_null() || a.Compare(b) != 0) {
            keep = false;
            break;
          }
        }
        if (keep) kept.push_back(std::move(t));
      }
      tuples_ = std::move(kept);
    }
    return Status::OK();
  }

  void CrossJoin(size_t next) {
    const Table* t = from_[next].table;
    std::vector<TupleIds> out;
    out.reserve(tuples_.size() * std::max<size_t>(t->num_rows(), 1));
    for (const auto& tuple : tuples_) {
      for (size_t r = 0; r < t->num_rows(); ++r) {
        TupleIds extended = tuple;
        extended[next] = r;
        out.push_back(std::move(extended));
      }
    }
    tuples_ = std::move(out);
  }

  void HashJoin(size_t next, const std::vector<size_t>& applicable,
                std::vector<bool>* join_used) {
    const Table* t = from_[next].table;

    // Key columns on the new table side / on the existing side.
    std::vector<size_t> new_cols;
    std::vector<ResolvedColumn> old_cols;
    for (size_t j : applicable) {
      const auto& jc = joins_[j];
      if (jc.left.from_index == next) {
        new_cols.push_back(jc.left.column_index);
        old_cols.push_back(jc.right);
      } else {
        new_cols.push_back(jc.right.column_index);
        old_cols.push_back(jc.left);
      }
      (*join_used)[j] = true;
    }

    auto make_key = [](const std::vector<Value>& vals) {
      std::string key;
      bool has_null = false;
      for (const auto& v : vals) {
        if (v.is_null()) has_null = true;
        key += v.ToSqlLiteral();
        key += '\x1f';
      }
      return std::pair<std::string, bool>(std::move(key), has_null);
    };

    // Build on the new table.
    std::unordered_map<std::string, std::vector<size_t>> build;
    build.reserve(t->num_rows());
    std::vector<Value> key_vals(new_cols.size());
    for (size_t r = 0; r < t->num_rows(); ++r) {
      for (size_t k = 0; k < new_cols.size(); ++k) {
        key_vals[k] = t->row(r)[new_cols[k]];
      }
      auto [key, has_null] = make_key(key_vals);
      if (has_null) continue;  // NULL never joins
      build[key].push_back(r);
    }

    // Probe with existing tuples.
    std::vector<TupleIds> out;
    out.reserve(tuples_.size());
    for (const auto& tuple : tuples_) {
      for (size_t k = 0; k < old_cols.size(); ++k) {
        key_vals[k] = FetchColumn(tuple, old_cols[k]);
      }
      auto [key, has_null] = make_key(key_vals);
      if (has_null) continue;
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (size_t r : it->second) {
        TupleIds extended = tuple;
        extended[next] = r;
        out.push_back(std::move(extended));
      }
    }
    tuples_ = std::move(out);
  }

  // ---- filtering -----------------------------------------------------------

  static bool EvalCompare(const Value& a, CompareOp op, const Value& b) {
    if (op == CompareOp::kLike) {
      if (a.type() != ValueType::kString || b.type() != ValueType::kString) {
        return false;
      }
      return SqlLikeMatch(a.AsString(), b.AsString());
    }
    if (a.is_null() || b.is_null()) return false;  // SQL: NULL compares UNKNOWN
    int c = a.Compare(b);
    switch (op) {
      case CompareOp::kEq:
        return c == 0;
      case CompareOp::kNe:
        return c != 0;
      case CompareOp::kLt:
        return c < 0;
      case CompareOp::kLe:
        return c <= 0;
      case CompareOp::kGt:
        return c > 0;
      case CompareOp::kGe:
        return c >= 0;
      case CompareOp::kLike:
        return false;  // handled above
    }
    return false;
  }

  Status ApplyFilters() {
    if (filters_.empty()) return Status::OK();
    std::vector<TupleIds> kept;
    kept.reserve(tuples_.size());
    for (auto& tuple : tuples_) {
      bool keep = true;
      for (const auto& f : filters_) {
        Value lhs = f.lhs_col.has_value() ? FetchColumn(tuple, *f.lhs_col)
                                          : f.pred->lhs.literal;
        Value rhs = f.rhs_col.has_value() ? FetchColumn(tuple, *f.rhs_col)
                                          : f.pred->rhs.literal;
        if (!EvalCompare(lhs, f.pred->op, rhs)) {
          keep = false;
          break;
        }
      }
      if (keep) kept.push_back(std::move(tuple));
    }
    tuples_ = std::move(kept);
    return Status::OK();
  }

  // ---- output: flat projection ---------------------------------------------

  struct OutputSpec {
    std::vector<std::string> names;
    // One evaluator per output column; kUnset from_index means literal.
    std::vector<Expr> exprs;
    std::vector<std::optional<ResolvedColumn>> resolved;
  };

  Result<OutputSpec> BuildFlatOutput() {
    OutputSpec spec;
    if (stmt_.select_star()) {
      for (size_t i = 0; i < from_.size(); ++i) {
        const Table* t = from_[i].table;
        for (size_t c = 0; c < t->num_columns(); ++c) {
          spec.names.push_back(from_[i].qualifier + "." +
                               t->columns()[c].name);
          spec.exprs.push_back(Expr::MakeColumn(from_[i].qualifier,
                                                t->columns()[c].name));
          spec.resolved.push_back(ResolvedColumn{i, c});
        }
      }
      return spec;
    }
    for (const auto& item : stmt_.items) {
      if (item.expr.kind == Expr::Kind::kStar) {
        return Status::InvalidArgument("'*' must be the only select item");
      }
      spec.names.push_back(item.alias.empty() ? item.expr.ToString()
                                              : item.alias);
      spec.exprs.push_back(item.expr);
      if (item.expr.kind == Expr::Kind::kColumn) {
        SODA_ASSIGN_OR_RETURN(ResolvedColumn rc,
                              ResolveColumn(item.expr.column));
        spec.resolved.push_back(rc);
      } else {
        spec.resolved.push_back(std::nullopt);
      }
    }
    return spec;
  }

  Result<ResultSet> ProduceProjected() {
    SODA_ASSIGN_OR_RETURN(OutputSpec spec, BuildFlatOutput());

    // Resolve order keys.
    std::vector<std::optional<ResolvedColumn>> order_cols;
    for (const auto& o : stmt_.order_by) {
      if (o.expr.kind == Expr::Kind::kColumn) {
        SODA_ASSIGN_OR_RETURN(ResolvedColumn rc, ResolveColumn(o.expr.column));
        order_cols.push_back(rc);
      } else if (o.expr.kind == Expr::Kind::kLiteral) {
        order_cols.push_back(std::nullopt);
      } else {
        return Status::InvalidArgument(
            "aggregate in ORDER BY requires GROUP BY");
      }
    }

    // Sort tuple ids first, then project (stable & cheap).
    if (!stmt_.order_by.empty()) {
      std::stable_sort(
          tuples_.begin(), tuples_.end(),
          [&](const TupleIds& a, const TupleIds& b) {
            for (size_t k = 0; k < order_cols.size(); ++k) {
              Value va = order_cols[k] ? FetchColumn(a, *order_cols[k])
                                       : stmt_.order_by[k].expr.literal;
              Value vb = order_cols[k] ? FetchColumn(b, *order_cols[k])
                                       : stmt_.order_by[k].expr.literal;
              int c = va.Compare(vb);
              if (c != 0) return stmt_.order_by[k].descending ? c > 0 : c < 0;
            }
            return false;
          });
    }

    ResultSet rs;
    rs.column_names = spec.names;
    rs.rows.reserve(tuples_.size());
    for (const auto& tuple : tuples_) {
      std::vector<Value> row;
      row.reserve(spec.exprs.size());
      for (size_t c = 0; c < spec.exprs.size(); ++c) {
        if (spec.resolved[c].has_value()) {
          row.push_back(FetchColumn(tuple, *spec.resolved[c]));
        } else {
          row.push_back(spec.exprs[c].literal);
        }
      }
      rs.rows.push_back(std::move(row));
    }
    ApplyDistinctAndLimit(&rs);
    return rs;
  }

  // ---- output: aggregation --------------------------------------------------

  struct AggState {
    int64_t count = 0;
    double sum = 0.0;
    bool sum_valid = false;
    Value min, max;
    std::set<std::string> distinct_seen;  // only used for DISTINCT aggs
  };

  Result<ResultSet> ProduceAggregated() {
    // Resolve group-by keys.
    std::vector<ResolvedColumn> group_cols;
    for (const auto& g : stmt_.group_by) {
      SODA_ASSIGN_OR_RETURN(ResolvedColumn rc, ResolveColumn(g));
      group_cols.push_back(rc);
    }

    // Collect every aggregate expression mentioned in SELECT or ORDER BY.
    std::vector<Expr> aggs;
    auto intern_agg = [&](const Expr& e) -> size_t {
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (aggs[i] == e) return i;
      }
      aggs.push_back(e);
      return aggs.size() - 1;
    };
    // Validate select items: each is an aggregate or a grouped column.
    struct OutCol {
      bool is_agg;
      size_t agg_index = 0;          // when is_agg
      ResolvedColumn group_col{};    // when !is_agg
      std::string name;
    };
    std::vector<OutCol> out_cols;
    if (stmt_.select_star()) {
      return Status::InvalidArgument("SELECT * cannot be combined with "
                                     "GROUP BY / aggregates");
    }
    for (const auto& item : stmt_.items) {
      OutCol oc;
      oc.name = item.alias.empty() ? item.expr.ToString() : item.alias;
      if (item.expr.is_aggregate()) {
        oc.is_agg = true;
        oc.agg_index = intern_agg(item.expr);
      } else if (item.expr.kind == Expr::Kind::kColumn) {
        SODA_ASSIGN_OR_RETURN(ResolvedColumn rc,
                              ResolveColumn(item.expr.column));
        bool grouped = false;
        for (const auto& gc : group_cols) {
          if (gc.from_index == rc.from_index &&
              gc.column_index == rc.column_index) {
            grouped = true;
            break;
          }
        }
        if (!grouped) {
          return Status::InvalidArgument(
              "column '" + item.expr.column.ToString() +
              "' must appear in GROUP BY");
        }
        oc.is_agg = false;
        oc.group_col = rc;
      } else {
        return Status::InvalidArgument(
            "literal select items not supported with GROUP BY");
      }
      out_cols.push_back(std::move(oc));
    }

    struct OrderKey {
      bool is_agg;
      size_t agg_index = 0;
      ResolvedColumn group_col{};
      bool descending;
    };
    std::vector<OrderKey> order_keys;
    for (const auto& o : stmt_.order_by) {
      OrderKey k;
      k.descending = o.descending;
      if (o.expr.is_aggregate()) {
        k.is_agg = true;
        k.agg_index = intern_agg(o.expr);
      } else if (o.expr.kind == Expr::Kind::kColumn) {
        SODA_ASSIGN_OR_RETURN(ResolvedColumn rc, ResolveColumn(o.expr.column));
        k.is_agg = false;
        k.group_col = rc;
      } else {
        return Status::InvalidArgument("unsupported ORDER BY expression");
      }
      order_keys.push_back(k);
    }

    // Resolve aggregate arguments.
    std::vector<std::optional<ResolvedColumn>> agg_args(aggs.size());
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (!aggs[i].agg_star) {
        SODA_ASSIGN_OR_RETURN(ResolvedColumn rc,
                              ResolveColumn(aggs[i].column));
        agg_args[i] = rc;
      }
    }

    // Group.
    struct Group {
      std::vector<Value> key_values;
      TupleIds representative;
      std::vector<AggState> states;
    };
    std::map<std::string, Group> groups;
    for (const auto& tuple : tuples_) {
      std::vector<Value> key_values;
      key_values.reserve(group_cols.size());
      std::string key;
      for (const auto& gc : group_cols) {
        Value v = FetchColumn(tuple, gc);
        key += v.ToSqlLiteral();
        key += '\x1f';
        key_values.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(key);
      Group& g = it->second;
      if (inserted) {
        g.key_values = std::move(key_values);
        g.representative = tuple;
        g.states.resize(aggs.size());
      }
      for (size_t i = 0; i < aggs.size(); ++i) {
        AggState& st = g.states[i];
        if (aggs[i].agg_star) {
          ++st.count;
          continue;
        }
        Value v = FetchColumn(tuple, *agg_args[i]);
        if (v.is_null()) continue;
        if (aggs[i].agg_distinct &&
            !st.distinct_seen.insert(v.ToSqlLiteral()).second) {
          continue;  // DISTINCT: this value was already aggregated
        }
        ++st.count;
        if (v.IsNumeric()) {
          st.sum += v.NumericValue();
          st.sum_valid = true;
        }
        if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
        if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
      }
    }
    // Aggregate query with no GROUP BY over an empty input still yields one
    // row (COUNT(*) = 0), per SQL semantics.
    if (groups.empty() && group_cols.empty()) {
      Group g;
      g.states.resize(aggs.size());
      g.representative.assign(from_.size(), kUnset);
      groups.emplace("", std::move(g));
    }

    auto finalize = [](const Expr& agg, const AggState& st) -> Value {
      switch (agg.agg) {
        case AggFunc::kCount:
          return Value::Int(st.count);
        case AggFunc::kSum:
          if (st.count == 0 || !st.sum_valid) return Value::Null();
          return Value::Real(st.sum);
        case AggFunc::kAvg:
          if (st.count == 0 || !st.sum_valid) return Value::Null();
          return Value::Real(st.sum / static_cast<double>(st.count));
        case AggFunc::kMin:
          return st.min;
        case AggFunc::kMax:
          return st.max;
      }
      return Value::Null();
    };

    // Produce one output row per group plus its order keys.
    struct OutRow {
      std::vector<Value> cells;
      std::vector<Value> order_values;
    };
    std::vector<OutRow> out_rows;
    out_rows.reserve(groups.size());
    for (auto& [key, g] : groups) {
      (void)key;
      OutRow row;
      for (const auto& oc : out_cols) {
        if (oc.is_agg) {
          row.cells.push_back(finalize(aggs[oc.agg_index],
                                       g.states[oc.agg_index]));
        } else {
          row.cells.push_back(FetchColumn(g.representative, oc.group_col));
        }
      }
      for (const auto& k : order_keys) {
        if (k.is_agg) {
          row.order_values.push_back(
              finalize(aggs[k.agg_index], g.states[k.agg_index]));
        } else {
          row.order_values.push_back(
              FetchColumn(g.representative, k.group_col));
        }
      }
      out_rows.push_back(std::move(row));
    }

    if (!order_keys.empty()) {
      std::stable_sort(out_rows.begin(), out_rows.end(),
                       [&](const OutRow& a, const OutRow& b) {
                         for (size_t k = 0; k < order_keys.size(); ++k) {
                           int c = a.order_values[k].Compare(b.order_values[k]);
                           if (c != 0) {
                             return order_keys[k].descending ? c > 0 : c < 0;
                           }
                         }
                         return false;
                       });
    }

    ResultSet rs;
    for (const auto& oc : out_cols) rs.column_names.push_back(oc.name);
    rs.rows.reserve(out_rows.size());
    for (auto& r : out_rows) rs.rows.push_back(std::move(r.cells));
    ApplyDistinctAndLimit(&rs);
    return rs;
  }

  void ApplyDistinctAndLimit(ResultSet* rs) const {
    if (stmt_.distinct) {
      std::vector<std::vector<Value>> unique;
      std::unordered_map<std::string, bool> seen;
      unique.reserve(rs->rows.size());
      for (auto& row : rs->rows) {
        std::string key = ResultSet::RowKey(row);
        if (!seen.emplace(std::move(key), true).second) continue;
        unique.push_back(std::move(row));
      }
      rs->rows = std::move(unique);
    }
    if (stmt_.limit.has_value() &&
        rs->rows.size() > static_cast<size_t>(*stmt_.limit)) {
      rs->rows.resize(static_cast<size_t>(*stmt_.limit));
    }
  }

  const Database* db_;
  const SelectStatement& stmt_;
  std::vector<FromEntry> from_;
  std::vector<JoinCondition> joins_;
  std::vector<JoinCondition> residual_joins_;
  std::vector<Filter> filters_;
  std::vector<TupleIds> tuples_;
};

}  // namespace

bool SqlLikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<ResultSet> Executor::Execute(const SelectStatement& stmt,
                                    ExecStats* stats) const {
  Evaluation eval(db_, stmt);
  Result<ResultSet> rs = eval.Run();
  if (stats != nullptr && rs.ok()) {
    stats->rows_output = rs->rows.size();
    stats->tables = stmt.from.size();
  }
  return rs;
}

Result<ResultSet> Executor::ExecuteSql(std::string_view sql) const {
  SODA_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  return Execute(stmt);
}

}  // namespace soda
