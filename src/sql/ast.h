// Abstract syntax for the SQL subset SODA generates and executes.
//
// The paper's generated statements are flat SELECT-PROJECT-JOIN queries with
// comma-separated FROM lists, conjunctive WHERE clauses (join conditions and
// filters), GROUP BY with COUNT/SUM-style aggregates, ORDER BY and an
// implicit snippet LIMIT. The AST mirrors exactly that shape: it is a value
// type (copyable) so ranked query candidates can be freely duplicated and
// mutated by the generator.

#ifndef SODA_SQL_AST_H_
#define SODA_SQL_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "sql/value.h"

namespace soda {

/// Aggregate functions supported by the generator and executor.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// Reference to a column, optionally qualified with a table name or alias.
struct ColumnRef {
  std::string table;   // empty = unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
  bool operator==(const ColumnRef&) const = default;
};

/// Scalar or aggregate expression. A closed sum type kept flat (no
/// pointers) because the SODA subset never nests expressions.
struct Expr {
  enum class Kind { kColumn, kLiteral, kAggregate, kStar };

  Kind kind = Kind::kStar;
  ColumnRef column;        // kColumn, or the argument of kAggregate
  Value literal;           // kLiteral
  AggFunc agg = AggFunc::kCount;
  bool agg_star = false;      // kAggregate with COUNT(*)
  bool agg_distinct = false;  // kAggregate over DISTINCT values

  static Expr MakeColumn(std::string table, std::string column) {
    Expr e;
    e.kind = Kind::kColumn;
    e.column = {std::move(table), std::move(column)};
    return e;
  }
  static Expr MakeColumn(ColumnRef ref) {
    Expr e;
    e.kind = Kind::kColumn;
    e.column = std::move(ref);
    return e;
  }
  static Expr MakeLiteral(Value v) {
    Expr e;
    e.kind = Kind::kLiteral;
    e.literal = std::move(v);
    return e;
  }
  static Expr MakeAggregate(AggFunc f, ColumnRef arg) {
    Expr e;
    e.kind = Kind::kAggregate;
    e.agg = f;
    e.column = std::move(arg);
    return e;
  }
  static Expr MakeCountStar() {
    Expr e;
    e.kind = Kind::kAggregate;
    e.agg = AggFunc::kCount;
    e.agg_star = true;
    return e;
  }
  static Expr MakeStar() {
    Expr e;
    e.kind = Kind::kStar;
    return e;
  }

  bool is_aggregate() const { return kind == Kind::kAggregate; }

  /// SQL rendering of the expression.
  std::string ToString() const;

  bool operator==(const Expr&) const = default;
};

/// Comparison operators of SODA's input pattern language plus SQL LIKE.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kLike };

const char* CompareOpSymbol(CompareOp op);

/// One conjunct of the WHERE clause: `lhs op rhs`.
struct Predicate {
  Expr lhs;
  CompareOp op = CompareOp::kEq;
  Expr rhs;

  /// True when this is an equality between columns of two different
  /// qualified tables — i.e. a join condition, not a filter.
  bool IsJoinCondition() const {
    return op == CompareOp::kEq && lhs.kind == Expr::Kind::kColumn &&
           rhs.kind == Expr::Kind::kColumn && lhs.column.table != rhs.column.table;
  }

  std::string ToString() const;

  bool operator==(const Predicate&) const = default;
};

/// Entry of the FROM list.
struct TableRef {
  std::string table;
  std::string alias;  // empty = table name used as qualifier

  const std::string& qualifier() const {
    return alias.empty() ? table : alias;
  }
  std::string ToString() const {
    return alias.empty() ? table : table + " " + alias;
  }
  bool operator==(const TableRef&) const = default;
};

/// Projected item.
struct SelectItem {
  Expr expr;
  std::string alias;  // optional AS alias

  std::string ToString() const {
    return alias.empty() ? expr.ToString() : expr.ToString() + " AS " + alias;
  }
  bool operator==(const SelectItem&) const = default;
};

/// ORDER BY entry.
struct OrderItem {
  Expr expr;
  bool descending = false;

  std::string ToString() const {
    return expr.ToString() + (descending ? " DESC" : "");
  }
  bool operator==(const OrderItem&) const = default;
};

/// A complete statement in the SODA SQL subset.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;  // empty + star==true means SELECT *
  std::vector<TableRef> from;
  std::vector<Predicate> where;   // conjunction
  std::vector<ColumnRef> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  bool select_star() const {
    return items.size() == 1 && items[0].expr.kind == Expr::Kind::kStar;
  }

  /// True when any select item or order key aggregates.
  bool HasAggregates() const;

  /// Renders executable SQL text (see render.cc for the exact style, which
  /// follows the paper's examples).
  std::string ToSql() const;

  bool operator==(const SelectStatement&) const = default;
};

}  // namespace soda

#endif  // SODA_SQL_AST_H_
