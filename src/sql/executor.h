// Execution of the SODA SQL subset against the in-memory catalog.
//
// The executor is deliberately a straightforward relational evaluator:
//   1. FROM resolution (tables + aliases),
//   2. equi-join planning over the WHERE conjuncts (left-deep hash joins,
//      cross product only when no join condition connects a table),
//   3. residual predicate filtering (NULL-rejecting comparison semantics),
//   4. grouping and aggregation (COUNT/SUM/AVG/MIN/MAX),
//   5. ORDER BY / DISTINCT / LIMIT / projection.
//
// Its role in the reproduction is the role Oracle played in the paper: run
// the generated statements and the gold standard and hand back tuple sets.

#ifndef SODA_SQL_EXECUTOR_H_
#define SODA_SQL_EXECUTOR_H_

#include "common/status.h"
#include "sql/ast.h"
#include "sql/result_set.h"
#include "storage/table.h"

namespace soda {

/// Per-statement execution statistics. The engine's snippet path feeds
/// these into its MetricsSink ("executor.rows" / "executor.tables"
/// distributions) to make runaway generated statements — the paper's
/// cross-product candidates — visible at the fleet level.
struct ExecStats {
  size_t rows_output = 0;  // result rows before the caller's snippet cut
  size_t tables = 0;       // FROM entries the statement touched
};

/// Stateless query executor bound to a catalog. Execute/ExecuteSql are
/// const and keep all evaluation state on the stack, so one Executor is
/// safe to share across threads — the SodaEngine runs concurrent snippet
/// execution through a single instance.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// Runs `stmt` and materializes the full result. `stats` (optional)
  /// receives execution statistics on success.
  Result<ResultSet> Execute(const SelectStatement& stmt,
                            ExecStats* stats = nullptr) const;

  /// Convenience: parse + execute.
  Result<ResultSet> ExecuteSql(std::string_view sql) const;

 private:
  const Database* db_;
};

/// SQL LIKE pattern matching ('%' multi-char wildcard, '_' single char).
/// Exposed for tests.
bool SqlLikeMatch(const std::string& text, const std::string& pattern);

}  // namespace soda

#endif  // SODA_SQL_EXECUTOR_H_
