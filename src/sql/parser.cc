#include "sql/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/strings.h"

namespace soda {

namespace {

enum class TokenKind {
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  kSymbol,  // punctuation and comparison operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier/symbol text (identifiers keep case)
  std::string folded;  // lowercase identifier for keyword matching
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      if (pos_ >= sql_.size()) break;
      char c = sql_[pos_];
      Token t;
      t.offset = pos_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        t.kind = TokenKind::kIdentifier;
        size_t start = pos_;
        while (pos_ < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
                sql_[pos_] == '_')) {
          ++pos_;
        }
        t.text = std::string(sql_.substr(start, pos_ - start));
        t.folded = ToLower(t.text);
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < sql_.size() &&
                  std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
        // Numeric literal; a leading '-' is treated as a signed literal
        // (the subset has no arithmetic, so no ambiguity with binary
        // minus can arise).
        size_t start = pos_;
        if (c == '-') ++pos_;
        bool has_dot = false;
        while (pos_ < sql_.size() &&
               (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
                sql_[pos_] == '.')) {
          if (sql_[pos_] == '.') {
            if (has_dot) break;
            has_dot = true;
          }
          ++pos_;
        }
        t.text = std::string(sql_.substr(start, pos_ - start));
        if (has_dot) {
          t.kind = TokenKind::kFloat;
          t.double_value = std::stod(t.text);
        } else {
          t.kind = TokenKind::kInteger;
          t.int_value = std::stoll(t.text);
        }
      } else if (c == '\'') {
        t.kind = TokenKind::kString;
        ++pos_;
        std::string value;
        bool closed = false;
        while (pos_ < sql_.size()) {
          if (sql_[pos_] == '\'') {
            if (pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '\'') {
              value.push_back('\'');
              pos_ += 2;
            } else {
              ++pos_;
              closed = true;
              break;
            }
          } else {
            value.push_back(sql_[pos_]);
            ++pos_;
          }
        }
        if (!closed) {
          return Status::ParseError("unterminated string literal");
        }
        t.text = std::move(value);
      } else {
        t.kind = TokenKind::kSymbol;
        // Two-character operators first.
        if (pos_ + 1 < sql_.size()) {
          std::string two(sql_.substr(pos_, 2));
          if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
            t.text = two;
            pos_ += 2;
            tokens.push_back(std::move(t));
            continue;
          }
        }
        static const std::string kSingles = "(),.*=<>;";
        if (kSingles.find(c) == std::string::npos) {
          return Status::ParseError(StrFormat(
              "unexpected character '%c' at offset %zu", c, pos_));
        }
        t.text = std::string(1, c);
        ++pos_;
      }
      tokens.push_back(std::move(t));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.offset = sql_.size();
    tokens.push_back(end);
    return tokens;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < sql_.size()) {
      if (std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
        ++pos_;
      } else if (sql_[pos_] == '-' && pos_ + 1 < sql_.size() &&
                 sql_[pos_ + 1] == '-') {
        while (pos_ < sql_.size() && sql_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseStatement() {
    SelectStatement stmt;
    SODA_RETURN_NOT_OK(ExpectKeyword("select"));
    if (AcceptKeyword("distinct")) stmt.distinct = true;
    SODA_RETURN_NOT_OK(ParseSelectList(&stmt));
    SODA_RETURN_NOT_OK(ExpectKeyword("from"));
    SODA_RETURN_NOT_OK(ParseTableList(&stmt));
    if (AcceptKeyword("where")) {
      SODA_RETURN_NOT_OK(ParsePredicates(&stmt));
    }
    if (AcceptKeyword("group")) {
      SODA_RETURN_NOT_OK(ExpectKeyword("by"));
      SODA_RETURN_NOT_OK(ParseGroupBy(&stmt));
    }
    if (AcceptKeyword("order")) {
      SODA_RETURN_NOT_OK(ExpectKeyword("by"));
      SODA_RETURN_NOT_OK(ParseOrderBy(&stmt));
    }
    if (AcceptKeyword("limit")) {
      if (Current().kind != TokenKind::kInteger) {
        return Status::ParseError("expected integer after LIMIT");
      }
      stmt.limit = Current().int_value;
      Advance();
    }
    AcceptSymbol(";");
    if (Current().kind != TokenKind::kEnd) {
      return Status::ParseError("unexpected trailing input at '" +
                                Current().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool AcceptKeyword(const std::string& kw) {
    if (Current().kind == TokenKind::kIdentifier && Current().folded == kw) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected keyword '" + ToUpper(kw) +
                                "' near '" + Current().text + "'");
    }
    return Status::OK();
  }

  bool AcceptSymbol(const std::string& sym) {
    if (Current().kind == TokenKind::kSymbol && Current().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError("expected '" + sym + "' near '" +
                                Current().text + "'");
    }
    return Status::OK();
  }

  static bool IsAggName(const std::string& folded, AggFunc* out) {
    if (folded == "count") {
      *out = AggFunc::kCount;
    } else if (folded == "sum") {
      *out = AggFunc::kSum;
    } else if (folded == "avg") {
      *out = AggFunc::kAvg;
    } else if (folded == "min") {
      *out = AggFunc::kMin;
    } else if (folded == "max") {
      *out = AggFunc::kMax;
    } else {
      return false;
    }
    return true;
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Current().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected column name near '" +
                                Current().text + "'");
    }
    std::string first = Current().text;
    Advance();
    if (AcceptSymbol(".")) {
      if (Current().kind != TokenKind::kIdentifier) {
        return Status::ParseError("expected column name after '.'");
      }
      std::string second = Current().text;
      Advance();
      return ColumnRef{first, second};
    }
    return ColumnRef{"", first};
  }

  Result<Expr> ParseExpr() {
    const Token& t = Current();
    if (t.kind == TokenKind::kInteger) {
      Advance();
      return Expr::MakeLiteral(Value::Int(t.int_value));
    }
    if (t.kind == TokenKind::kFloat) {
      Advance();
      return Expr::MakeLiteral(Value::Real(t.double_value));
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return Expr::MakeLiteral(Value::Str(t.text));
    }
    if (t.kind == TokenKind::kIdentifier) {
      AggFunc agg;
      if (t.folded == "date" && Peek().kind == TokenKind::kString) {
        Advance();
        SODA_ASSIGN_OR_RETURN(Date d, Date::Parse(Current().text));
        Advance();
        return Expr::MakeLiteral(Value::DateV(d));
      }
      if (t.folded == "null") {
        Advance();
        return Expr::MakeLiteral(Value::Null());
      }
      if (t.folded == "true" || t.folded == "false") {
        bool b = t.folded == "true";
        Advance();
        return Expr::MakeLiteral(Value::Bool(b));
      }
      if (IsAggName(t.folded, &agg) && Peek().kind == TokenKind::kSymbol &&
          Peek().text == "(") {
        Advance();  // agg name
        Advance();  // '('
        Expr e;
        if (AcceptSymbol("*")) {
          if (agg != AggFunc::kCount) {
            return Status::ParseError("only COUNT may take '*'");
          }
          e = Expr::MakeCountStar();
        } else {
          bool distinct = AcceptKeyword("distinct");
          SODA_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
          e = Expr::MakeAggregate(agg, std::move(ref));
          e.agg_distinct = distinct;
        }
        SODA_RETURN_NOT_OK(ExpectSymbol(")"));
        return e;
      }
      SODA_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      return Expr::MakeColumn(std::move(ref));
    }
    return Status::ParseError("expected expression near '" + t.text + "'");
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (AcceptSymbol("*")) {
      stmt->items.push_back(SelectItem{Expr::MakeStar(), ""});
      return Status::OK();
    }
    while (true) {
      SelectItem item;
      SODA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("as")) {
        if (Current().kind != TokenKind::kIdentifier) {
          return Status::ParseError("expected alias after AS");
        }
        item.alias = Current().text;
        Advance();
      }
      stmt->items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  static bool IsClauseKeyword(const Token& t) {
    if (t.kind != TokenKind::kIdentifier) return false;
    return t.folded == "where" || t.folded == "group" || t.folded == "order" ||
           t.folded == "limit" || t.folded == "on" || t.folded == "as";
  }

  Status ParseTableList(SelectStatement* stmt) {
    while (true) {
      if (Current().kind != TokenKind::kIdentifier) {
        return Status::ParseError("expected table name near '" +
                                  Current().text + "'");
      }
      TableRef ref;
      ref.table = Current().text;
      Advance();
      // Optional alias: a bare identifier that is not a clause keyword.
      if (Current().kind == TokenKind::kIdentifier &&
          !IsClauseKeyword(Current())) {
        ref.alias = Current().text;
        Advance();
      }
      stmt->from.push_back(std::move(ref));
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Status ParsePredicates(SelectStatement* stmt) {
    while (true) {
      SODA_ASSIGN_OR_RETURN(Expr lhs, ParseExpr());
      if (AcceptKeyword("between")) {
        SODA_ASSIGN_OR_RETURN(Expr lo, ParseExpr());
        SODA_RETURN_NOT_OK(ExpectKeyword("and"));
        SODA_ASSIGN_OR_RETURN(Expr hi, ParseExpr());
        stmt->where.push_back(Predicate{lhs, CompareOp::kGe, lo});
        stmt->where.push_back(Predicate{lhs, CompareOp::kLe, hi});
      } else {
        CompareOp op;
        if (AcceptKeyword("like")) {
          op = CompareOp::kLike;
        } else if (Current().kind == TokenKind::kSymbol) {
          const std::string& s = Current().text;
          if (s == "=") {
            op = CompareOp::kEq;
          } else if (s == "<>" || s == "!=") {
            op = CompareOp::kNe;
          } else if (s == "<") {
            op = CompareOp::kLt;
          } else if (s == "<=") {
            op = CompareOp::kLe;
          } else if (s == ">") {
            op = CompareOp::kGt;
          } else if (s == ">=") {
            op = CompareOp::kGe;
          } else {
            return Status::ParseError("expected comparison operator near '" +
                                      s + "'");
          }
          Advance();
        } else {
          return Status::ParseError("expected comparison operator near '" +
                                    Current().text + "'");
        }
        SODA_ASSIGN_OR_RETURN(Expr rhs, ParseExpr());
        stmt->where.push_back(Predicate{std::move(lhs), op, std::move(rhs)});
      }
      if (!AcceptKeyword("and")) break;
    }
    return Status::OK();
  }

  Status ParseGroupBy(SelectStatement* stmt) {
    while (true) {
      SODA_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      stmt->group_by.push_back(std::move(ref));
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Status ParseOrderBy(SelectStatement* stmt) {
    while (true) {
      OrderItem item;
      SODA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("desc")) {
        item.descending = true;
      } else {
        AcceptKeyword("asc");
      }
      stmt->order_by.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSql(std::string_view sql) {
  Lexer lexer(sql);
  SODA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace soda
