// Typed relational values.
//
// The SODA back-end executes generated SQL on an in-memory engine; Value is
// the cell type of that engine. Values are totally ordered (NULL sorts
// first, numeric types compare numerically across Int64/Double), hashable,
// and print in SQL-literal syntax.

#ifndef SODA_SQL_VALUE_H_
#define SODA_SQL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/date.h"
#include "common/status.h"

namespace soda {

/// Column / value type tags.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Canonical lowercase type name ("int64", "string", ...).
const char* ValueTypeName(ValueType type);

/// One relational cell. Cheap to copy for all types except long strings.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }
  static Value DateV(Date d) { return Value(Payload(d)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  Date AsDate() const { return std::get<Date>(data_); }

  /// Numeric view: Int64 and Double (and Bool as 0/1) promote to double.
  /// Calling on non-numeric types is an error (returns 0 in release).
  double NumericValue() const;

  /// True for Int64/Double/Bool.
  bool IsNumeric() const {
    ValueType t = type();
    return t == ValueType::kBool || t == ValueType::kInt64 ||
           t == ValueType::kDouble;
  }

  /// Three-way comparison used by ORDER BY and predicate evaluation.
  /// NULL < everything; numeric types compare by value; cross-type
  /// non-numeric comparisons order by type tag (deterministic, like SQLite).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash consistent with operator== (numeric 3 and 3.0 hash equal).
  size_t Hash() const;

  /// SQL-literal rendering: NULL, TRUE, 42, 3.14, 'text' (quotes escaped),
  /// DATE '2010-01-01'.
  std::string ToSqlLiteral() const;

  /// Plain rendering for result tables (no quotes).
  std::string ToDisplayString() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string, Date>;
  explicit Value(Payload p) : data_(std::move(p)) {}

  Payload data_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToSqlLiteral();
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace soda

#endif  // SODA_SQL_VALUE_H_
