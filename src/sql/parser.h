// Recursive-descent parser for the SODA SQL subset.
//
// Grammar (keywords case-insensitive):
//
//   statement  := SELECT [DISTINCT] select_list FROM table_list
//                 [WHERE predicate (AND predicate)*]
//                 [GROUP BY column (, column)*]
//                 [ORDER BY order_item (, order_item)*]
//                 [LIMIT integer]
//   select_list := '*' | select_item (, select_item)*
//   select_item := expr [AS identifier]
//   table_list  := table_ref (, table_ref)*
//   table_ref   := identifier [identifier]          -- optional alias
//   expr        := agg '(' ('*' | column) ')' | column | literal
//   agg         := COUNT | SUM | AVG | MIN | MAX
//   column      := identifier ['.' identifier]
//   predicate   := expr cmp expr | expr BETWEEN literal AND literal
//   cmp         := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>=' | LIKE
//   literal     := integer | float | string | DATE 'YYYY-MM-DD'
//                | TRUE | FALSE | NULL
//   order_item  := expr [ASC | DESC]
//
// BETWEEN desugars into two conjuncts (>= lo, <= hi). This is the exact
// subset the paper's example statements (Query 1-4) and the gold-standard
// queries of the evaluation need.

#ifndef SODA_SQL_PARSER_H_
#define SODA_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace soda {

/// Parses one SELECT statement. Trailing semicolon is allowed.
Result<SelectStatement> ParseSql(std::string_view sql);

}  // namespace soda

#endif  // SODA_SQL_PARSER_H_
