// Materialized query results.

#ifndef SODA_SQL_RESULT_SET_H_
#define SODA_SQL_RESULT_SET_H_

#include <string>
#include <vector>

#include "sql/value.h"

namespace soda {

/// The rows a SELECT produced, with output column names. Used both for the
/// user-facing result snippets and for precision/recall scoring against the
/// gold standard.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return column_names.size(); }

  /// Canonical string key of one row — the unit of comparison for
  /// precision/recall (paper Section 5.2.1 compares result tuples).
  static std::string RowKey(const std::vector<Value>& row);

  /// ASCII table rendering, at most `max_rows` data rows (the paper's
  /// result snippets show up to twenty tuples).
  std::string ToAsciiTable(size_t max_rows = 20) const;
};

}  // namespace soda

#endif  // SODA_SQL_RESULT_SET_H_
