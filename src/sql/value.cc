#include "sql/value.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace soda {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
  }
  return "unknown";
}

double Value::NumericValue() const {
  switch (type()) {
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case ValueType::kInt64:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  const bool self_null = is_null();
  const bool other_null = other.is_null();
  if (self_null || other_null) {
    if (self_null && other_null) return 0;
    return self_null ? -1 : 1;
  }
  if (IsNumeric() && other.IsNumeric()) {
    // Exact path for int/int to avoid double rounding at 2^53.
    if (type() == ValueType::kInt64 && other.type() == ValueType::kInt64) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = NumericValue(), b = other.NumericValue();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kDate: {
      Date a = AsDate(), b = other.AsDate();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default:
      return 0;  // unreachable: numeric handled above
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9u;
    case ValueType::kBool:
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Hash the numeric value so 3 == 3.0 implies equal hashes.
      double d = NumericValue();
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::abs(d) < 9.0e15) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d)) ^ 0x51ed2701u;
      }
      return std::hash<double>{}(d) ^ 0x51ed2701u;
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString()) ^ 0x2545f491u;
    case ValueType::kDate:
      return std::hash<int32_t>{}(AsDate().days_since_epoch()) ^ 0x8f1bbcdcu;
  }
  return 0;
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + ReplaceAll(AsString(), "'", "''") + "'";
    case ValueType::kDate:
      return "DATE '" + AsDate().ToString() + "'";
  }
  return "NULL";
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kString:
      return AsString();
    case ValueType::kDate:
      return AsDate().ToString();
    default:
      return ToSqlLiteral();
  }
}

}  // namespace soda
