// Registry of named graph patterns plus the default Credit Suisse set.
//
// "While the patterns may have to be changed between different
//  applications, the algorithm always stays the same." (paper Section 4.1)
//
// The library owns the named patterns, resolves `matches-<name>` references
// by inlining (with fresh variable names per instantiation) and memoizes
// the expanded forms for the matcher.

#ifndef SODA_PATTERN_LIBRARY_H_
#define SODA_PATTERN_LIBRARY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "pattern/pattern.h"

namespace soda {

/// Well-known pattern names used by the SODA pipeline steps.
namespace patterns {
inline constexpr char kTable[] = "table";
inline constexpr char kColumn[] = "column";
inline constexpr char kForeignKey[] = "foreign_key";
inline constexpr char kJoinRelationship[] = "join_relationship";
inline constexpr char kInheritanceChild[] = "inheritance_child";
inline constexpr char kBridgeTable[] = "bridge_table";
inline constexpr char kBridgeTableJoin[] = "bridge_table_join";
inline constexpr char kMetadataFilter[] = "metadata_filter";
inline constexpr char kConceptualEntity[] = "conceptual_entity";
inline constexpr char kLogicalEntity[] = "logical_entity";
inline constexpr char kOntologyConcept[] = "ontology_concept";
}  // namespace patterns

class PatternLibrary {
 public:
  /// Registers a parsed pattern under its name. Fails on duplicates.
  Status Register(GraphPattern pattern);

  /// Parses `text` and registers it as `name`.
  Status RegisterText(const std::string& name, const std::string& text);

  /// Replaces an existing pattern (used to adapt SODA to another
  /// warehouse's modeling conventions without touching the algorithm).
  Status Replace(GraphPattern pattern);

  /// Looks up a pattern by name; nullptr when absent.
  const GraphPattern* Find(const std::string& name) const;

  /// Returns the pattern with all `matches-` references inlined.
  /// Referenced patterns bind their `x` variable to the referencing
  /// subject; their other variables get fresh names. Cycles are an error.
  Result<GraphPattern> Expand(const std::string& name) const;

  std::vector<std::string> names() const;
  size_t size() const { return patterns_.size(); }

 private:
  Status ExpandInto(const GraphPattern& pattern,
                    const std::string& bind_x_to, int* fresh_counter,
                    std::vector<std::string>* stack,
                    GraphPattern* out) const;

  std::map<std::string, GraphPattern> patterns_;
};

/// Builds the pattern set used for the Credit Suisse data warehouse
/// (paper Section 4.2.1): Table, Column, Foreign-Key, Join-Relationship,
/// Inheritance-Child, Bridge-Table, Metadata-Filter plus the lookup
/// patterns for conceptual/logical entities and ontology concepts.
PatternLibrary CreditSuissePatternLibrary();

}  // namespace soda

#endif  // SODA_PATTERN_LIBRARY_H_
