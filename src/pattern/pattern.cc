#include "pattern/pattern.h"

#include <cctype>

#include "common/strings.h"

namespace soda {

std::string PatternTerm::ToString() const {
  switch (kind) {
    case Kind::kVariable:
      return name;
    case Kind::kUri:
      return name;
    case Kind::kTextVariable:
      return "t:" + name;
    case Kind::kTextLiteral:
      return "t:\"" + name + "\"";
  }
  return name;
}

std::string PatternTriple::ToString() const {
  if (is_reference) {
    return "( " + subject.ToString() + " matches-" + reference_name + " )";
  }
  return "( " + subject.ToString() + " " + predicate + " " +
         object.ToString() + " )";
}

std::string GraphPattern::ToString() const {
  std::string out;
  for (size_t i = 0; i < triples.size(); ++i) {
    if (i > 0) out += " &\n";
    out += triples[i].ToString();
  }
  for (const auto& [a, b] : distinct_constraints) {
    out += " &\n( " + a + " distinct " + b + " )";
  }
  return out;
}

bool IsVariableToken(std::string_view token) {
  if (token.empty()) return false;
  if (token[0] == '?') return true;
  // Single letter: x, y, z, p, w, ...
  if (token.size() == 1 && std::isalpha(static_cast<unsigned char>(token[0]))) {
    return true;
  }
  // A letter followed only by digits: c1, c2, p3 ...
  if (std::isalpha(static_cast<unsigned char>(token[0]))) {
    for (size_t i = 1; i < token.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
    }
    return token.size() > 1;
  }
  return false;
}

namespace {

// Splits pattern text into word / punctuation tokens. Handles quoted text
// literals after the `t:` prefix.
Result<std::vector<std::string>> TokenizePattern(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(' || c == ')' || c == '&') {
      tokens.emplace_back(1, c);
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    // Word: may contain the t: prefix with an optional quoted literal.
    size_t start = i;
    if (StartsWith(text.substr(i), "t:\"")) {
      i += 3;
      while (i < text.size() && text[i] != '"') ++i;
      if (i >= text.size()) {
        return Status::ParseError("unterminated text literal in pattern");
      }
      ++i;  // consume closing quote
      tokens.emplace_back(text.substr(start, i - start));
      continue;
    }
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '(' && text[i] != ')' && text[i] != '&') {
      ++i;
    }
    tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

PatternTerm ParseTerm(const std::string& token) {
  if (StartsWith(token, "t:\"")) {
    // t:"literal"
    return PatternTerm::TextLiteral(token.substr(3, token.size() - 4));
  }
  if (StartsWith(token, "t:")) {
    std::string name = token.substr(2);
    return PatternTerm::TextVariable(name[0] == '?' ? name.substr(1) : name);
  }
  if (token[0] == '?') {
    return PatternTerm::Variable(token.substr(1));
  }
  if (IsVariableToken(token)) {
    return PatternTerm::Variable(token);
  }
  return PatternTerm::Uri(token);
}

}  // namespace

Result<GraphPattern> ParsePattern(std::string_view name,
                                  std::string_view text) {
  SODA_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                        TokenizePattern(text));
  GraphPattern pattern;
  pattern.name = std::string(name);

  size_t i = 0;
  bool expect_triple = true;
  while (i < tokens.size()) {
    if (!expect_triple) {
      if (tokens[i] != "&") {
        return Status::ParseError("expected '&' between triples, got '" +
                                  tokens[i] + "'");
      }
      ++i;
      expect_triple = true;
      continue;
    }
    if (tokens[i] != "(") {
      return Status::ParseError("expected '(' to open a triple, got '" +
                                tokens[i] + "'");
    }
    ++i;
    std::vector<std::string> parts;
    while (i < tokens.size() && tokens[i] != ")") {
      parts.push_back(tokens[i]);
      ++i;
    }
    if (i >= tokens.size()) {
      return Status::ParseError("unterminated triple in pattern '" +
                                pattern.name + "'");
    }
    ++i;  // consume ')'

    PatternTriple triple;
    if (parts.size() == 3 && parts[1] == "distinct") {
      PatternTerm a = ParseTerm(parts[0]);
      PatternTerm b = ParseTerm(parts[2]);
      if (a.kind != PatternTerm::Kind::kVariable ||
          b.kind != PatternTerm::Kind::kVariable) {
        return Status::ParseError(
            "distinct constraint requires two node variables");
      }
      pattern.distinct_constraints.emplace_back(a.name, b.name);
      expect_triple = false;
      continue;
    }
    if (parts.size() == 2 && StartsWith(parts[1], "matches-")) {
      triple.subject = ParseTerm(parts[0]);
      triple.is_reference = true;
      triple.reference_name = parts[1].substr(8);
    } else if (parts.size() == 3) {
      triple.subject = ParseTerm(parts[0]);
      triple.predicate = parts[1];
      triple.object = ParseTerm(parts[2]);
      if (triple.subject.is_text()) {
        return Status::ParseError("triple subject cannot be a text label");
      }
    } else {
      return Status::ParseError(
          "a triple needs 3 terms (or 2 for a matches- reference), got " +
          std::to_string(parts.size()));
    }
    pattern.triples.push_back(std::move(triple));
    expect_triple = false;
  }
  if (pattern.triples.empty()) {
    return Status::ParseError("pattern '" + pattern.name + "' is empty");
  }
  return pattern;
}

}  // namespace soda
