// Backtracking graph-pattern matcher.
//
// "To match a pattern on a given graph, we assign the variable x to the
//  current node and try to match each triple in the pattern to the graph
//  accordingly." (paper Section 4.2.1)
//
// The matcher works on library-expanded patterns (references inlined) and
// enumerates all variable bindings, subject to the pattern's distinct
// constraints. Expansion results are memoized per matcher instance.

#ifndef SODA_PATTERN_MATCHER_H_
#define SODA_PATTERN_MATCHER_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/metadata_graph.h"
#include "pattern/library.h"
#include "pattern/pattern.h"

namespace soda {

/// One solution: node bindings plus text bindings.
struct MatchBinding {
  std::map<std::string, NodeId> nodes;
  std::map<std::string, std::string> texts;

  NodeId node(const std::string& var) const {
    auto it = nodes.find(var);
    return it == nodes.end() ? kInvalidNode : it->second;
  }
  std::string text(const std::string& var) const {
    auto it = texts.find(var);
    return it == texts.end() ? std::string() : it->second;
  }
};

class PatternMatcher {
 public:
  PatternMatcher(const MetadataGraph* graph, const PatternLibrary* library)
      : graph_(graph), library_(library) {}

  /// Matches the named pattern with `x` pre-bound to `node`. Returns all
  /// bindings, capped at `max_matches`.
  Result<std::vector<MatchBinding>> MatchAt(const std::string& pattern_name,
                                            NodeId node,
                                            size_t max_matches = 64) const;

  /// True when the pattern matches at `node` at least once. Unknown
  /// patterns return false.
  bool Matches(const std::string& pattern_name, NodeId node) const;

  /// Matches without pre-binding x — enumerates over the whole graph.
  Result<std::vector<MatchBinding>> MatchAll(const std::string& pattern_name,
                                             size_t max_matches = 4096) const;

  const MetadataGraph* graph() const { return graph_; }
  const PatternLibrary* library() const { return library_; }

 private:
  Result<const GraphPattern*> Expanded(const std::string& name) const;

  const MetadataGraph* graph_;
  const PatternLibrary* library_;
  /// Guards the expansion cache: MatchAt/MatchAll are const and called
  /// concurrently by the SodaEngine worker pool. std::map node pointers
  /// are stable across inserts, so returned GraphPattern* stay valid
  /// after the lock is released.
  mutable std::mutex expansion_mu_;
  mutable std::map<std::string, GraphPattern> expansion_cache_;
};

}  // namespace soda

#endif  // SODA_PATTERN_MATCHER_H_
