#include "pattern/library.h"

#include <algorithm>

#include "common/strings.h"

namespace soda {

Status PatternLibrary::Register(GraphPattern pattern) {
  if (patterns_.count(pattern.name) > 0) {
    return Status::AlreadyExists("pattern '" + pattern.name +
                                 "' already registered");
  }
  patterns_.emplace(pattern.name, std::move(pattern));
  return Status::OK();
}

Status PatternLibrary::RegisterText(const std::string& name,
                                    const std::string& text) {
  SODA_ASSIGN_OR_RETURN(GraphPattern pattern, ParsePattern(name, text));
  return Register(std::move(pattern));
}

Status PatternLibrary::Replace(GraphPattern pattern) {
  patterns_[pattern.name] = std::move(pattern);
  return Status::OK();
}

const GraphPattern* PatternLibrary::Find(const std::string& name) const {
  auto it = patterns_.find(name);
  return it == patterns_.end() ? nullptr : &it->second;
}

std::vector<std::string> PatternLibrary::names() const {
  std::vector<std::string> out;
  out.reserve(patterns_.size());
  for (const auto& [name, p] : patterns_) out.push_back(name);
  return out;
}

namespace {

// Renames a term according to the substitution map; variables not in the
// map are passed through unchanged.
PatternTerm Substitute(const PatternTerm& term,
                       const std::map<std::string, std::string>& subst) {
  if (term.kind == PatternTerm::Kind::kVariable ||
      term.kind == PatternTerm::Kind::kTextVariable) {
    auto it = subst.find(term.name);
    if (it != subst.end()) {
      PatternTerm renamed = term;
      renamed.name = it->second;
      return renamed;
    }
  }
  return term;
}

}  // namespace

Status PatternLibrary::ExpandInto(const GraphPattern& pattern,
                                  const std::string& bind_x_to,
                                  int* fresh_counter,
                                  std::vector<std::string>* stack,
                                  GraphPattern* out) const {
  if (std::find(stack->begin(), stack->end(), pattern.name) != stack->end()) {
    return Status::InvalidArgument("pattern reference cycle through '" +
                                   pattern.name + "'");
  }
  stack->push_back(pattern.name);

  // Build the substitution: x -> bind_x_to, other variables -> fresh names.
  // (At the top level bind_x_to == "x", i.e. identity on x.)
  std::map<std::string, std::string> subst;
  subst["x"] = bind_x_to;
  const int instance = (*fresh_counter)++;
  auto fresh_name = [&](const std::string& var) {
    if (bind_x_to == "x" && instance == 0) return var;  // top level: keep
    return pattern.name + "#" + std::to_string(instance) + "::" + var;
  };
  auto map_var = [&](const PatternTerm& term) {
    if (term.kind != PatternTerm::Kind::kVariable &&
        term.kind != PatternTerm::Kind::kTextVariable) {
      return;
    }
    if (subst.count(term.name) == 0) {
      subst[term.name] = fresh_name(term.name);
    }
  };
  for (const auto& t : pattern.triples) {
    map_var(t.subject);
    if (!t.is_reference) map_var(t.object);
  }

  for (const auto& t : pattern.triples) {
    if (t.is_reference) {
      const GraphPattern* referenced = Find(t.reference_name);
      if (referenced == nullptr) {
        return Status::NotFound("pattern '" + pattern.name +
                                "' references unknown pattern '" +
                                t.reference_name + "'");
      }
      PatternTerm subject = Substitute(t.subject, subst);
      if (subject.kind == PatternTerm::Kind::kUri) {
        return Status::InvalidArgument(
            "matches- reference subject must be a variable");
      }
      SODA_RETURN_NOT_OK(ExpandInto(*referenced, subject.name, fresh_counter,
                                    stack, out));
    } else {
      PatternTriple expanded;
      expanded.subject = Substitute(t.subject, subst);
      expanded.predicate = t.predicate;
      expanded.object = Substitute(t.object, subst);
      out->triples.push_back(std::move(expanded));
    }
  }
  for (const auto& [a, b] : pattern.distinct_constraints) {
    auto rename = [&](const std::string& v) {
      auto it = subst.find(v);
      return it == subst.end() ? v : it->second;
    };
    out->distinct_constraints.emplace_back(rename(a), rename(b));
  }

  stack->pop_back();
  return Status::OK();
}

Result<GraphPattern> PatternLibrary::Expand(const std::string& name) const {
  const GraphPattern* pattern = Find(name);
  if (pattern == nullptr) {
    return Status::NotFound("unknown pattern '" + name + "'");
  }
  GraphPattern out;
  out.name = name;
  int fresh_counter = 0;
  std::vector<std::string> stack;
  SODA_RETURN_NOT_OK(
      ExpandInto(*pattern, "x", &fresh_counter, &stack, &out));
  return out;
}

PatternLibrary CreditSuissePatternLibrary() {
  PatternLibrary lib;
  auto must = [&](const char* name, const char* text) {
    Status st = lib.RegisterText(name, text);
    (void)st;  // patterns below are static and verified by unit tests
  };

  // Basic patterns (paper Section 4.2.1, "Basic Patterns").
  must(patterns::kTable,
       "( x tablename t:y ) &\n"
       "( x type physical_table )");
  must(patterns::kColumn,
       "( x columnname t:y ) &\n"
       "( x type physical_column ) &\n"
       "( z column x )");

  // "More Complex Patterns": joins and inheritance.
  must(patterns::kForeignKey,
       "( x foreign_key y ) &\n"
       "( x matches-column ) &\n"
       "( y matches-column )");
  must(patterns::kJoinRelationship,
       "( x type join_relationship ) &\n"
       "( x join_foreign_key f ) &\n"
       "( x join_primary_key p ) &\n"
       "( f matches-column ) &\n"
       "( p matches-column )");
  must(patterns::kInheritanceChild,
       "( y inheritance_child x ) &\n"
       "( y type inheritance_node ) &\n"
       "( y inheritance_parent p ) &\n"
       "( y inheritance_child c1 ) &\n"
       "( y inheritance_child c2 ) &\n"
       "( c1 distinct c2 )");

  // Bridge tables: physical implementations of N-to-N relationships,
  // recognized by two outgoing foreign keys on distinct columns.
  must(patterns::kBridgeTable,
       "( x type physical_table ) &\n"
       "( x column c1 ) &\n"
       "( c1 foreign_key p1 ) &\n"
       "( x column c2 ) &\n"
       "( c2 foreign_key p2 ) &\n"
       "( c1 distinct c2 ) &\n"
       "( p1 distinct p2 )");

  // The same bridge shape when foreign keys are modeled with explicit
  // join-relationship nodes (the Credit Suisse convention).
  must(patterns::kBridgeTableJoin,
       "( x type physical_table ) &\n"
       "( x column c1 ) &\n"
       "( j1 type join_relationship ) &\n"
       "( j1 join_foreign_key c1 ) &\n"
       "( j1 join_primary_key p1 ) &\n"
       "( x column c2 ) &\n"
       "( j2 type join_relationship ) &\n"
       "( j2 join_foreign_key c2 ) &\n"
       "( j2 join_primary_key p2 ) &\n"
       "( c1 distinct c2 ) &\n"
       "( p1 distinct p2 )");

  // Filters stored in the metadata ("wealthy customers").
  must(patterns::kMetadataFilter,
       "( x type metadata_filter ) &\n"
       "( x filter_column c ) &\n"
       "( c matches-column ) &\n"
       "( x filter_op t:op ) &\n"
       "( x filter_value t:v )");

  // Lookup-phase patterns: what counts as a named schema object.
  must(patterns::kConceptualEntity,
       "( x type conceptual_entity ) &\n"
       "( x entityname t:y )");
  must(patterns::kLogicalEntity,
       "( x type logical_entity ) &\n"
       "( x entityname t:y )");
  must(patterns::kOntologyConcept,
       "( x type ontology_concept ) &\n"
       "( x label t:y )");

  return lib;
}

}  // namespace soda
