// The metadata graph pattern language (paper Section 4.2.1).
//
// SODA describes schema structure with a SPARQL-inspired triple language:
//
//     ( x tablename t:y ) &
//     ( x type physical_table )
//
// Each parenthesized triple connects two nodes, or a node with a text
// label. Subjects and objects are variables or static URIs; text objects
// are written with a `t:` prefix; predicates are always static URIs.
// A two-term triple `( x matches-column )` references another named
// pattern ("the term matches-column references the Column pattern").
//
// Variable convention: a term is a variable when it starts with '?', or
// when it is one of the short names the paper uses in its pattern listings
// (x, y, z, p, w, v, u, or a letter followed by digits such as c1, c2).
// Everything else is a static URI. By convention the variable `x` denotes
// the node currently being tested.

#ifndef SODA_PATTERN_PATTERN_H_
#define SODA_PATTERN_PATTERN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace soda {

/// One term of a pattern triple.
struct PatternTerm {
  enum class Kind {
    kVariable,      // binds to a graph node
    kUri,           // static node URI
    kTextVariable,  // t:y — binds to a text label
    kTextLiteral,   // t:"..." — must equal the text label
  };

  Kind kind = Kind::kVariable;
  std::string name;  // variable name, URI, or literal text

  static PatternTerm Variable(std::string name) {
    return PatternTerm{Kind::kVariable, std::move(name)};
  }
  static PatternTerm Uri(std::string uri) {
    return PatternTerm{Kind::kUri, std::move(uri)};
  }
  static PatternTerm TextVariable(std::string name) {
    return PatternTerm{Kind::kTextVariable, std::move(name)};
  }
  static PatternTerm TextLiteral(std::string text) {
    return PatternTerm{Kind::kTextLiteral, std::move(text)};
  }

  bool is_text() const {
    return kind == Kind::kTextVariable || kind == Kind::kTextLiteral;
  }

  std::string ToString() const;

  bool operator==(const PatternTerm&) const = default;
};

/// One triple of a pattern, or a reference to another named pattern.
struct PatternTriple {
  // Regular triple.
  PatternTerm subject;
  std::string predicate;  // static URI; empty for references
  PatternTerm object;

  // Reference form: `( x matches-column )`.
  bool is_reference = false;
  std::string reference_name;  // "column"

  std::string ToString() const;

  bool operator==(const PatternTriple&) const = default;
};

/// A named conjunction of triples.
struct GraphPattern {
  std::string name;
  std::vector<PatternTriple> triples;

  /// Inequality constraints between node variables, written in pattern text
  /// as the pseudo-triple `( c1 distinct c2 )`. The paper's
  /// Inheritance-Child pattern lists two children c1, c2 with the clear
  /// intent that they differ; plain SPARQL semantics would let them
  /// coincide, so the constraint is explicit here.
  std::vector<std::pair<std::string, std::string>> distinct_constraints;

  std::string ToString() const;
};

/// Parses the paper's pattern syntax. `name` is the registered name that
/// `matches-<name>` references resolve to.
///
/// Syntax:  pattern  := triple ( '&' triple )*
///          triple   := '(' term term term ')' | '(' term reference ')'
///          term     := URI | variable | 't:' word | 't:"' text '"'
///          reference := 'matches-' name
Result<GraphPattern> ParsePattern(std::string_view name,
                                  std::string_view text);

/// True when a bare token is treated as a variable (see header comment).
bool IsVariableToken(std::string_view token);

}  // namespace soda

#endif  // SODA_PATTERN_PATTERN_H_
