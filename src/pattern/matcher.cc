#include "pattern/matcher.h"

#include <optional>

namespace soda {

namespace {

// Search state shared across the recursion.
struct SearchContext {
  const MetadataGraph* graph;
  const GraphPattern* pattern;
  size_t max_matches;
  std::vector<MatchBinding>* out;
};

// Returns the node a subject term refers to under `binding`, or
// kInvalidNode when it is an unbound variable; sets *is_unbound.
NodeId ResolveNodeTerm(const PatternTerm& term, const MatchBinding& binding,
                       const MetadataGraph& graph, bool* is_unbound) {
  *is_unbound = false;
  if (term.kind == PatternTerm::Kind::kUri) {
    return graph.FindNode(term.name);  // kInvalidNode if the URI is absent
  }
  auto it = binding.nodes.find(term.name);
  if (it != binding.nodes.end()) return it->second;
  *is_unbound = true;
  return kInvalidNode;
}

bool ViolatesDistinct(const GraphPattern& pattern,
                      const MatchBinding& binding) {
  for (const auto& [a, b] : pattern.distinct_constraints) {
    auto ia = binding.nodes.find(a);
    auto ib = binding.nodes.find(b);
    if (ia != binding.nodes.end() && ib != binding.nodes.end() &&
        ia->second == ib->second) {
      return true;
    }
  }
  return false;
}

void Solve(SearchContext* ctx, size_t triple_index, MatchBinding* binding);

// Tries to bind `term` (a node term) to `node` and continue. Undoes the
// binding on return.
void BindNodeAndContinue(SearchContext* ctx, size_t triple_index,
                         MatchBinding* binding, const PatternTerm& term,
                         NodeId node) {
  if (term.kind == PatternTerm::Kind::kUri) {
    if (ctx->graph->FindNode(term.name) != node) return;
    Solve(ctx, triple_index + 1, binding);
    return;
  }
  auto it = binding->nodes.find(term.name);
  if (it != binding->nodes.end()) {
    if (it->second != node) return;
    Solve(ctx, triple_index + 1, binding);
    return;
  }
  binding->nodes[term.name] = node;
  if (!ViolatesDistinct(*ctx->pattern, *binding)) {
    Solve(ctx, triple_index + 1, binding);
  }
  binding->nodes.erase(term.name);
}

// Tries to bind a text term to `text` and continue.
void BindTextAndContinue(SearchContext* ctx, size_t triple_index,
                         MatchBinding* binding, const PatternTerm& term,
                         const std::string& text) {
  if (term.kind == PatternTerm::Kind::kTextLiteral) {
    if (term.name != text) return;
    Solve(ctx, triple_index + 1, binding);
    return;
  }
  auto it = binding->texts.find(term.name);
  if (it != binding->texts.end()) {
    if (it->second != text) return;
    Solve(ctx, triple_index + 1, binding);
    return;
  }
  binding->texts[term.name] = text;
  Solve(ctx, triple_index + 1, binding);
  binding->texts.erase(term.name);
}

void Solve(SearchContext* ctx, size_t triple_index, MatchBinding* binding) {
  if (ctx->out->size() >= ctx->max_matches) return;
  if (triple_index == ctx->pattern->triples.size()) {
    ctx->out->push_back(*binding);
    return;
  }
  const PatternTriple& triple = ctx->pattern->triples[triple_index];
  const MetadataGraph& graph = *ctx->graph;

  auto pred = graph.FindPredicate(triple.predicate);
  if (!pred.has_value()) return;  // predicate never used in this graph

  bool subject_unbound = false;
  NodeId subject =
      ResolveNodeTerm(triple.subject, *binding, graph, &subject_unbound);
  if (!subject_unbound && subject == kInvalidNode) return;

  if (triple.object.is_text()) {
    if (!subject_unbound) {
      for (const TextEdge& e : graph.TextEdges(subject)) {
        if (e.predicate != *pred) continue;
        BindTextAndContinue(ctx, triple_index, binding, triple.object, e.text);
      }
    } else {
      // Unbound subject with a text object: scan all nodes. Rare (only
      // when a pattern starts from a label), acceptable at metadata scale.
      for (NodeId n = 0; n < static_cast<NodeId>(graph.num_nodes()); ++n) {
        for (const TextEdge& e : graph.TextEdges(n)) {
          if (e.predicate != *pred) continue;
          // Bind subject first, then the text object.
          binding->nodes[triple.subject.name] = n;
          if (!ViolatesDistinct(*ctx->pattern, *binding)) {
            BindTextAndContinue(ctx, triple_index, binding, triple.object,
                                e.text);
          }
          binding->nodes.erase(triple.subject.name);
        }
      }
    }
    return;
  }

  bool object_unbound = false;
  NodeId object =
      ResolveNodeTerm(triple.object, *binding, graph, &object_unbound);
  if (!object_unbound && object == kInvalidNode) return;

  if (!subject_unbound && !object_unbound) {
    for (const Edge& e : graph.OutEdges(subject)) {
      if (e.predicate == *pred && e.target == object) {
        Solve(ctx, triple_index + 1, binding);
        return;
      }
    }
    return;
  }
  if (!subject_unbound) {
    for (const Edge& e : graph.OutEdges(subject)) {
      if (e.predicate != *pred) continue;
      BindNodeAndContinue(ctx, triple_index, binding, triple.object, e.target);
    }
    return;
  }
  if (!object_unbound) {
    for (const Edge& e : graph.InEdges(object)) {
      if (e.predicate != *pred) continue;
      BindNodeAndContinue(ctx, triple_index, binding, triple.subject,
                          e.target);
    }
    return;
  }
  // Both unbound: enumerate every edge with this predicate.
  for (const auto& [s, o] : graph.EdgesWithPredicate(triple.predicate)) {
    binding->nodes[triple.subject.name] = s;
    if (!ViolatesDistinct(*ctx->pattern, *binding)) {
      BindNodeAndContinue(ctx, triple_index, binding, triple.object, o);
    }
    binding->nodes.erase(triple.subject.name);
  }
}

}  // namespace

Result<const GraphPattern*> PatternMatcher::Expanded(
    const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(expansion_mu_);
    auto it = expansion_cache_.find(name);
    if (it != expansion_cache_.end()) return &it->second;
  }
  // Expand outside the lock — expansion walks the library and can be
  // slow; a racing thread at worst expands the same pattern twice and
  // the loser's copy is discarded by emplace.
  SODA_ASSIGN_OR_RETURN(GraphPattern expanded, library_->Expand(name));
  std::lock_guard<std::mutex> lock(expansion_mu_);
  auto [inserted, ok] = expansion_cache_.emplace(name, std::move(expanded));
  (void)ok;
  return &inserted->second;
}

Result<std::vector<MatchBinding>> PatternMatcher::MatchAt(
    const std::string& pattern_name, NodeId node, size_t max_matches) const {
  SODA_ASSIGN_OR_RETURN(const GraphPattern* pattern, Expanded(pattern_name));
  std::vector<MatchBinding> out;
  MatchBinding binding;
  binding.nodes["x"] = node;
  SearchContext ctx{graph_, pattern, max_matches, &out};
  Solve(&ctx, 0, &binding);
  return out;
}

bool PatternMatcher::Matches(const std::string& pattern_name,
                             NodeId node) const {
  auto result = MatchAt(pattern_name, node, /*max_matches=*/1);
  return result.ok() && !result.value().empty();
}

Result<std::vector<MatchBinding>> PatternMatcher::MatchAll(
    const std::string& pattern_name, size_t max_matches) const {
  SODA_ASSIGN_OR_RETURN(const GraphPattern* pattern, Expanded(pattern_name));
  std::vector<MatchBinding> out;
  MatchBinding binding;
  SearchContext ctx{graph_, pattern, max_matches, &out};
  Solve(&ctx, 0, &binding);
  return out;
}

}  // namespace soda
