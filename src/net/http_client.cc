#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/deadline.h"

namespace soda {

HttpClient::HttpClient(std::string host, uint16_t port, double timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

HttpClient::~HttpClient() { Disconnect(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_ms_(other.timeout_ms_),
      retry_policy_(other.retry_policy_),
      trace_id_(std::move(other.trace_id_)),
      sheds_absorbed_(other.sheds_absorbed_),
      fd_(other.fd_) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Disconnect();
    host_ = std::move(other.host_);
    port_ = other.port_;
    timeout_ms_ = other.timeout_ms_;
    retry_policy_ = other.retry_policy_;
    trace_id_ = std::move(other.trace_id_);
    sheds_absorbed_ = other.sheds_absorbed_;
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int connect_errno = errno;
    Disconnect();
    return Status::Internal(std::string("connect(): ") +
                            std::strerror(connect_errno));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status HttpClient::SendRaw(std::string_view data) {
  SODA_RETURN_NOT_OK(EnsureConnected());
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      int send_errno = errno;
      Disconnect();
      return Status::Internal(std::string("send(): ") +
                              std::strerror(send_errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpResponse> HttpClient::ReadResponse() {
  if (fd_ < 0) return Status::Internal("not connected");
  HttpResponseParser parser;
  Deadline deadline = Deadline::AfterMs(timeout_ms_);
  char buf[8192];
  while (parser.state() == HttpResponseParser::State::kIncomplete) {
    if (deadline.expired()) {
      Disconnect();
      return Status::Internal("response timed out");
    }
    pollfd conn{fd_, POLLIN, 0};
    int ready = ::poll(
        &conn, 1,
        static_cast<int>(std::min(100.0, deadline.remaining_ms())) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      int poll_errno = errno;
      Disconnect();
      return Status::Internal(std::string("poll(): ") +
                              std::strerror(poll_errno));
    }
    if (ready == 0) continue;
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      // Peer closed: either read-until-close framing completed, or the
      // response was cut short (parse error either way below).
      parser.FinishEof();
      Disconnect();
      break;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      int recv_errno = errno;
      Disconnect();
      return Status::Internal(std::string("recv(): ") +
                              std::strerror(recv_errno));
    }
    parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  if (parser.state() != HttpResponseParser::State::kComplete) {
    Disconnect();
    return Status::ParseError("bad response: " + parser.error_detail());
  }
  if (parser.close_after()) Disconnect();
  return parser.response();
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& request_bytes) {
  // One transparent retry on a stale keep-alive connection: the server
  // may have closed it (max_keepalive_requests, drain) between our
  // requests — legal per RFC 9112, invisible to callers.
  bool was_connected = fd_ >= 0;
  SODA_RETURN_NOT_OK(SendRaw(request_bytes));
  Result<HttpResponse> response = ReadResponse();
  if (!response.ok() && was_connected) {
    SODA_RETURN_NOT_OK(SendRaw(request_bytes));
    return ReadResponse();
  }
  return response;
}

Result<HttpResponse> HttpClient::RoundTripWithRetry(
    const std::string& request_bytes) {
  Result<HttpResponse> response = RoundTrip(request_bytes);
  for (size_t attempt = 0; attempt < retry_policy_.max_retries; ++attempt) {
    if (!response.ok() || response->status != 503) return response;
    // Honor the server's Retry-After (whole seconds) when present, capped
    // so a pathological header cannot stall the client; otherwise back
    // off exponentially from the policy's initial delay.
    double backoff_ms = std::min(
        retry_policy_.initial_backoff_ms * static_cast<double>(1u << attempt),
        retry_policy_.max_backoff_ms);
    std::string_view retry_after = response->header("Retry-After");
    if (!retry_after.empty()) {
      char* end = nullptr;
      std::string value(retry_after);
      double seconds = std::strtod(value.c_str(), &end);
      if (end != value.c_str() && seconds >= 0.0) {
        backoff_ms = std::min(seconds * 1000.0, retry_policy_.max_backoff_ms);
      }
    }
    ++sheds_absorbed_;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    response = RoundTrip(request_bytes);
  }
  return response;
}

Result<HttpResponse> HttpClient::Get(std::string_view target) {
  std::string request = "GET ";
  request.append(target);
  request.append(" HTTP/1.1\r\nHost: ");
  request.append(host_);
  if (!trace_id_.empty()) {
    request.append("\r\nX-Soda-Trace-Id: ");
    request.append(trace_id_);
  }
  request.append("\r\n\r\n");
  return RoundTripWithRetry(request);
}

Result<HttpResponse> HttpClient::Post(std::string_view target,
                                      std::string_view body,
                                      std::string_view content_type) {
  std::string request = "POST ";
  request.append(target);
  request.append(" HTTP/1.1\r\nHost: ");
  request.append(host_);
  request.append("\r\nContent-Type: ");
  request.append(content_type);
  if (!trace_id_.empty()) {
    request.append("\r\nX-Soda-Trace-Id: ");
    request.append(trace_id_);
  }
  request.append("\r\nContent-Length: ");
  request.append(std::to_string(body.size()));
  request.append("\r\n\r\n");
  request.append(body);
  return RoundTripWithRetry(request);
}

}  // namespace soda
