#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/prometheus_sink.h"
#include "common/trace.h"
#include "net/json.h"
#include "net/search_json.h"

namespace soda {

namespace {

/// RAII occupancy ticket for the admission window: the pre-increment
/// occupancy is what the shed decision compares against the watermark,
/// so N concurrent arrivals at watermark W admit exactly W of themselves
/// regardless of interleaving.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<size_t>* counter) : counter_(counter) {
    occupancy_before_ = counter_->fetch_add(1);
  }
  ~InflightGuard() { counter_->fetch_sub(1); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

  size_t occupancy_before() const { return occupancy_before_; }

 private:
  std::atomic<size_t>* counter_;
  size_t occupancy_before_;
};

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

SodaHttpServer::SodaHttpServer(SodaService* service, HttpServerOptions options)
    : service_(service),
      options_(std::move(options)),
      sink_(std::make_shared<InMemoryMetricsSink>()),
      pool_(std::max<size_t>(2, options_.num_threads)) {}

SodaHttpServer::~SodaHttpServer() { Stop(); }

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Status SodaHttpServer::Start() {
  if (started_) return Status::Internal("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int bind_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("bind(): ") +
                            std::strerror(bind_errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    int listen_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen(): ") +
                            std::strerror(listen_errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    int name_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("getsockname(): ") +
                            std::strerror(name_errno));
  }
  port_ = ntohs(bound.sin_port);

  // Non-blocking listener: the accept loop polls it with a short timeout
  // so Stop() is observed within one tick even with no traffic.
  int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  // Pre-register the serving books at zero so /metrics exports every
  // server_* series from the first scrape (CI greps the exposition for
  // each of them — absence must mean "broken", never "no traffic yet").
  sink_->IncrementCounter("server.requests", 0);
  sink_->IncrementCounter("server.accepted", 0);
  sink_->IncrementCounter("server.shed", 0);
  sink_->IncrementCounter("server.timeouts", 0);
  sink_->IncrementCounter("trace.spans", 0);
  sink_->IncrementCounter("trace.sampled", 0);
  sink_->IncrementCounter("trace.dropped", 0);
  sink_->IncrementCounter("trace.slow_queries", 0);
  sink_->Observe("server.inflight", 0.0);

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SodaHttpServer::Stop() {
  if (!started_) return;
  stopping_ = true;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain barrier: every accepted connection (running or still queued on
  // the pool) finishes its in-flight request and decrements. Idle
  // keep-alive connections notice stopping_ within one 50ms poll tick.
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_.wait(lock, [this] { return open_connections_ == 0; });
}

// ---------------------------------------------------------------------------
// Accept / connection loops
// ---------------------------------------------------------------------------

void SodaHttpServer::AcceptLoop() {
  while (!stopping_) {
    pollfd listener{listen_fd_, POLLIN, 0};
    int ready = ::poll(&listener, 1, 100);
    if (ready <= 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    sink_->IncrementCounter("server.accepted", 1);
    // Bounded accept: a connection backlog deeper than the pool can
    // plausibly drain is answered 503 here rather than queued without
    // limit (the shed is booked — never a silent drop).
    if (pool_.queue_depth() >= options_.accept_queue_limit) {
      sink_->IncrementCounter("server.requests", 1);
      sink_->IncrementCounter("server.shed", 1);
      HttpResponse shed = ErrorResponse(503, "connection backlog full");
      shed.SetHeader("Retry-After", "1");
      SendAll(fd, SerializeResponse(shed, /*keep_alive=*/false));
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      ++open_connections_;
    }
    pool_.Submit([this, fd] { ServeConnection(fd); });
  }
}

void SodaHttpServer::ServeConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HttpRequestParser parser(HttpRequestParser::Limits{
      options_.max_header_bytes, options_.max_body_bytes});
  size_t served = 0;
  char buf[8192];

  for (;;) {
    // -------- read one request, budgeted from its first byte --------
    bool armed = parser.started();
    Deadline deadline = armed ? Deadline::AfterMs(options_.request_deadline_ms)
                              : Deadline();
    bool timed_out = false;
    bool connection_dead = false;
    while (parser.state() == HttpRequestParser::State::kIncomplete) {
      if (stopping_ && !parser.started()) {
        // Graceful drain: no request has begun on this connection, so
        // closing it drops nothing.
        connection_dead = true;
        break;
      }
      if (armed && deadline.expired()) {
        timed_out = true;
        break;
      }
      pollfd conn{fd, POLLIN, 0};
      double wait_ms = 50.0;
      if (armed) wait_ms = std::min(wait_ms, deadline.remaining_ms());
      int ready = ::poll(&conn, 1, static_cast<int>(wait_ms) + 1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        connection_dead = true;
        break;
      }
      if (ready == 0) continue;
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) {
        connection_dead = true;  // peer closed
        break;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        connection_dead = true;
        break;
      }
      if (!armed) {
        armed = true;
        deadline = Deadline::AfterMs(options_.request_deadline_ms);
      }
      parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
    if (connection_dead) break;
    if (timed_out) {
      sink_->IncrementCounter("server.requests", 1);
      sink_->IncrementCounter("server.timeouts", 1);
      SendAll(fd, SerializeResponse(
                      ErrorResponse(408, "request read deadline exceeded"),
                      /*keep_alive=*/false));
      break;
    }
    if (parser.state() == HttpRequestParser::State::kError) {
      sink_->IncrementCounter("server.requests", 1);
      SendAll(fd, SerializeResponse(ErrorResponse(parser.error_status(),
                                                  parser.error_detail()),
                                    /*keep_alive=*/false));
      break;
    }

    // -------- serve it --------
    sink_->IncrementCounter("server.requests", 1);
    const HttpRequest& request = parser.request();
    ++served;
    bool keep_alive = request.keep_alive() && !stopping_ &&
                      served < options_.max_keepalive_requests;
    HttpResponse response;
    bool already_written = false;

    // Per-request trace. An inbound X-Soda-Trace-Id lets the client pick
    // the id (so its own logs correlate with /debug/traces); a malformed
    // one is rejected outright rather than silently re-keyed. The id —
    // inbound or freshly minted — is echoed on every response the
    // handler did not write itself, even when tracing is sampled off:
    // correlation must not depend on sampling config.
    uint64_t trace_id = 0;
    std::string_view inbound_id = request.header("X-Soda-Trace-Id");
    const bool malformed_trace_id =
        !inbound_id.empty() && !ParseTraceId(inbound_id, &trace_id);
    if (malformed_trace_id) trace_id = 0;
    TraceRecorder& recorder = TraceRecorder::Instance();
    TraceContext trace;
    if (!malformed_trace_id && recorder.enabled()) {
      trace = recorder.StartTrace("http.request", trace_id);
      if (trace.active()) trace_id = trace.data->trace_id();
    }
    std::string trace_header = trace_id != 0 ? FormatTraceId(trace_id) : "";

    if (malformed_trace_id) {
      response = ErrorResponse(400, "malformed X-Soda-Trace-Id");
    } else {
      // Root span over the whole handler; ScopedTraceContext is what the
      // engine/router layers join, so their spans parent under this one.
      Span root_span(trace, "http.request");
      if (root_span.active()) {
        root_span.SetAttr("method", request.method);
        root_span.SetAttr("path", request.path());
      }
      ScopedTraceContext scoped(root_span.context());
      try {
        already_written = HandleRequest(request, deadline, fd, keep_alive,
                                        trace_header, &response);
      } catch (const std::exception& e) {
        response = ErrorResponse(500, e.what());
      } catch (...) {
        response = ErrorResponse(500, "unknown handler exception");
      }
      if (root_span.active() && !already_written) {
        root_span.SetAttr("status", static_cast<int64_t>(response.status));
        if (response.status >= 500) {
          // 5xx marks the whole trace errored → always kept in the ring.
          root_span.SetError(ReasonPhrase(response.status));
        }
      }
    }
    if (trace.active()) {
      TraceVerdict verdict =
          recorder.FinishTrace(trace, trace.data->ElapsedMs());
      sink_->IncrementCounter("trace.spans", verdict.spans);
      sink_->IncrementCounter(
          verdict.kept ? "trace.sampled" : "trace.dropped", 1);
      if (verdict.slow) sink_->IncrementCounter("trace.slow_queries", 1);
    }
    if (!already_written && !trace_header.empty()) {
      response.SetHeader("X-Soda-Trace-Id", trace_header);
    }
    if (!already_written &&
        !SendAll(fd, SerializeResponse(response, keep_alive))) {
      break;
    }
    if (!keep_alive) break;
    parser.Reset();
  }

  ::close(fd);
  {
    // Notify under the lock: the moment Stop()'s waiter can observe
    // open_connections_ == 0 and let the destructor tear the condition
    // variable down, this thread must already be past the notify call.
    std::lock_guard<std::mutex> lock(drain_mu_);
    --open_connections_;
    drained_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

bool SodaHttpServer::HandleRequest(const HttpRequest& request,
                                   const Deadline& deadline, int fd,
                                   bool keep_alive,
                                   const std::string& trace_header,
                                   HttpResponse* response) {
  // Fault seam for the serving path: when armed it throws here, and the
  // ServeConnection catch turns it into a booked 500 — proving a dying
  // handler never wedges the connection loop or leaks the drain count.
  SODA_FAILPOINT("http.handle");
  std::string_view path = request.path();
  if (path == "/healthz") {
    if (request.method != "GET" && request.method != "HEAD") {
      *response = ErrorResponse(405, "healthz accepts GET only");
      response->SetHeader("Allow", "GET");
      return false;
    }
    *response = HandleHealthz();
    return false;
  }
  if (path == "/metrics") {
    if (request.method != "GET") {
      *response = ErrorResponse(405, "metrics accepts GET only");
      response->SetHeader("Allow", "GET");
      return false;
    }
    *response = HandleMetrics();
    return false;
  }
  if (path == "/debug/traces") {
    if (request.method != "GET") {
      *response = ErrorResponse(405, "debug/traces accepts GET only");
      response->SetHeader("Allow", "GET");
      return false;
    }
    *response = HandleDebugTraces(request);
    return false;
  }
  if (path == "/debug/vars") {
    if (request.method != "GET") {
      *response = ErrorResponse(405, "debug/vars accepts GET only");
      response->SetHeader("Allow", "GET");
      return false;
    }
    *response = HandleDebugVars();
    return false;
  }
  if (path == "/search") {
    if (request.method != "POST") {
      *response = ErrorResponse(405, "search accepts POST only");
      response->SetHeader("Allow", "POST");
      return false;
    }
    if (request.HasQueryParam("stream", "1")) {
      if (HandleStreamingSearch(request, fd, keep_alive, trace_header,
                                response)) {
        return true;
      }
      return false;  // shed / parse failure before the head went out
    }
    *response = HandleSearch(request, deadline);
    return false;
  }
  *response = ErrorResponse(404, "unknown path");
  return false;
}

bool SodaHttpServer::Shed(size_t occupancy_before, HttpResponse* response) {
  // Admission window: this request is admitted only while the searches
  // already in flight plus the engine's own backlog sit strictly below
  // the watermark. queue_depth() is a sampled load signal — the guard is
  // a watermark, not an exact token bucket.
  if (occupancy_before + service_->queue_depth() < options_.shed_watermark) {
    return false;
  }
  sink_->IncrementCounter("server.shed", 1);
  *response = ErrorResponse(503, "over admission watermark");
  response->SetHeader("Retry-After", "1");
  return true;
}

HttpResponse SodaHttpServer::HandleSearch(const HttpRequest& request,
                                          const Deadline& deadline) {
  InflightGuard guard(&search_inflight_);
  sink_->Observe("server.inflight",
                 static_cast<double>(guard.occupancy_before() + 1));
  HttpResponse response;
  if (Shed(guard.occupancy_before(), &response)) return response;

  Result<std::vector<std::string>> queries = ParseSearchBody(request.body);
  if (!queries.ok()) return ErrorResponse(400, queries.status().message());

  auto start = std::chrono::steady_clock::now();
  std::vector<Result<SearchOutput>> outputs =
      service_->SearchAll(std::span<const std::string>(*queries));
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  if (deadline.expired()) {
    sink_->IncrementCounter("server.timeouts", 1);
    return ErrorResponse(504, "deadline exceeded during search");
  }

  response.status = 200;
  response.SetHeader("Content-Type", "application/json");
  // Observability rides in headers only: the body is byte-identical for
  // identical questions regardless of cache state or shard layout
  // (net/search_json.h), and wall time would break exactly that.
  response.SetHeader("X-Soda-Wall-Ms", FormatMs(wall_ms));
  response.SetHeader("X-Soda-Queries", std::to_string(queries->size()));
  response.body = RenderSearchResponseJson(*queries, outputs);
  return response;
}

bool SodaHttpServer::HandleStreamingSearch(const HttpRequest& request, int fd,
                                           bool keep_alive,
                                           const std::string& trace_header,
                                           HttpResponse* error_response) {
  InflightGuard guard(&search_inflight_);
  sink_->Observe("server.inflight",
                 static_cast<double>(guard.occupancy_before() + 1));
  if (Shed(guard.occupancy_before(), error_response)) return false;

  Result<std::vector<std::string>> queries = ParseSearchBody(request.body);
  if (!queries.ok()) {
    *error_response = ErrorResponse(400, queries.status().message());
    return false;
  }

  // Snippet callbacks fire on engine pool threads while this thread is
  // still emitting the chunked head + translation payload, so events are
  // buffered under the stream mutex until the payload is out, then
  // written through directly. All socket writes happen under `mu`.
  struct StreamState {
    std::mutex mu;
    bool direct = false;
    bool write_failed = false;
    std::vector<std::string> pending;
  };
  auto state = std::make_shared<StreamState>();
  auto send_chunk = [this, fd, state](const std::string& payload) {
    // Callers hold state->mu.
    if (state->write_failed) return;
    if (!SendAll(fd, SerializeChunk(payload))) state->write_failed = true;
  };

  SnippetBarrier barrier;
  auto on_snippet = [state, send_chunk](size_t query_index,
                                        size_t result_index,
                                        const SodaResult& result) {
    std::string line =
        RenderSnippetEventJson(query_index, result_index, result);
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->direct) {
      send_chunk(line);
    } else {
      state->pending.push_back(std::move(line));
    }
  };

  std::vector<Result<SearchOutput>> outputs = service_->SearchAllAsync(
      std::span<const std::string>(*queries), on_snippet, &barrier);

  HttpResponse head;
  head.status = 200;
  head.SetHeader("Content-Type", "application/x-ndjson");
  head.SetHeader("X-Soda-Queries", std::to_string(queries->size()));
  // The streaming handler writes its own head, so the trace-id echo that
  // ServeConnection stamps on buffered responses rides here instead.
  if (!trace_header.empty()) head.SetHeader("X-Soda-Trace-Id", trace_header);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!SendAll(fd, SerializeChunkedHead(head, keep_alive))) {
      state->write_failed = true;
    }
    send_chunk(RenderSearchResponseJson(*queries, outputs));
    for (const std::string& line : state->pending) send_chunk(line);
    state->pending.clear();
    state->direct = true;
  }

  // Completion point: after Wait() no callback can fire, so the done
  // line and the terminating chunk cannot interleave with events.
  barrier.Wait();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    send_chunk(
        RenderStreamDoneJson(barrier.delivered(),
                             barrier.callback_exceptions()));
    if (!state->write_failed) SendAll(fd, SerializeLastChunk());
  }
  return true;
}

HttpResponse SodaHttpServer::HandleHealthz() const {
  // First line is the verdict — "ok" or "degraded" — followed by one
  // detail line per failure domain (empty for a single-engine service,
  // so the classic bare "ok\n" body is preserved). Probes key on the
  // first line only. Degraded still answers 200: the service is serving,
  // just re-routing around quarantined shards.
  ServiceHealth health = service_->health();
  HttpResponse response;
  response.status = 200;
  response.SetHeader("Content-Type", "text/plain; charset=utf-8");
  response.body = health.degraded ? "degraded\n" : "ok\n";
  for (const ShardHealthInfo& shard : health.shards) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "shard %zu: %s failures=%zu total_failures=%llu "
                  "backoff_ms=%.0f retry_in_ms=%.0f\n",
                  shard.shard, shard.state.c_str(),
                  shard.consecutive_failures,
                  static_cast<unsigned long long>(shard.total_failures),
                  shard.backoff_ms, shard.retry_in_ms);
    response.body += line;
  }
  return response;
}

HttpResponse SodaHttpServer::HandleMetrics() const {
  HttpResponse response;
  response.status = 200;
  response.SetHeader("Content-Type",
                     "text/plain; version=0.0.4; charset=utf-8");
  response.body =
      RenderPrometheusText(metrics_snapshot(), options_.metrics_prefix);
  return response;
}

HttpResponse SodaHttpServer::HandleDebugTraces(
    const HttpRequest& request) const {
  double min_ms = 0.0;
  std::string_view min_param = request.QueryParamValue("min_ms");
  if (!min_param.empty()) {
    std::string text(min_param);
    char* end = nullptr;
    min_ms = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || min_ms < 0.0) {
      return ErrorResponse(400, "min_ms must be a non-negative number");
    }
  }
  const bool errors_only = request.HasQueryParam("error", "1");
  std::vector<std::shared_ptr<const TraceData>> traces =
      TraceRecorder::Instance().Snapshot();
  HttpResponse response;
  response.status = 200;
  response.SetHeader("Content-Type", "application/json");
  response.body = request.HasQueryParam("chrome", "1")
                      ? DumpChromeTrace(traces)
                      : RenderTraceJson(traces, min_ms, errors_only);
  return response;
}

HttpResponse SodaHttpServer::HandleDebugVars() const {
  // One JSON object with everything an operator at a misbehaving box
  // wants before reaching for a debugger: the knobs the server actually
  // runs with, the live service/cache/shard state, the trace recorder's
  // totals plus its slow-query log, and enough build info to tell which
  // binary answered.
  std::string body = "{\"server\":{\"bind_address\":";
  AppendJsonQuoted(&body, options_.bind_address);
  body += ",\"port\":" + std::to_string(port_);
  body += ",\"num_threads\":" + std::to_string(options_.num_threads);
  body += ",\"shed_watermark\":" + std::to_string(options_.shed_watermark);
  body +=
      ",\"accept_queue_limit\":" + std::to_string(options_.accept_queue_limit);
  body += ",\"request_deadline_ms\":";
  AppendJsonNumber(&body, options_.request_deadline_ms);
  body += ",\"max_batch_queries\":" +
          std::to_string(options_.max_batch_queries);
  body += ",\"metrics_prefix\":";
  AppendJsonQuoted(&body, options_.metrics_prefix);
  body += ",\"search_inflight\":" + std::to_string(search_inflight_.load());

  body += "},\"service\":{\"num_threads\":" +
          std::to_string(service_->num_threads());
  body += ",\"queue_depth\":" + std::to_string(service_->queue_depth());
  CacheStats cache = service_->cache_stats();
  body += ",\"cache\":{\"hits\":" + std::to_string(cache.hits) +
          ",\"misses\":" + std::to_string(cache.misses) +
          ",\"evictions\":" + std::to_string(cache.evictions) +
          ",\"invalidations\":" + std::to_string(cache.invalidations) +
          ",\"size\":" + std::to_string(cache.size) +
          ",\"capacity\":" + std::to_string(cache.capacity) + "}";
  ServiceHealth health = service_->health();
  body += ",\"health\":{\"degraded\":";
  body += health.degraded ? "true" : "false";
  body += ",\"shards\":[";
  for (size_t i = 0; i < health.shards.size(); ++i) {
    const ShardHealthInfo& shard = health.shards[i];
    if (i > 0) body += ",";
    body += "{\"shard\":" + std::to_string(shard.shard) + ",\"state\":";
    AppendJsonQuoted(&body, shard.state);
    body += ",\"consecutive_failures\":" +
            std::to_string(shard.consecutive_failures);
    body += ",\"total_failures\":" + std::to_string(shard.total_failures);
    body += ",\"backoff_ms\":";
    AppendJsonNumber(&body, shard.backoff_ms);
    body += ",\"retry_in_ms\":";
    AppendJsonNumber(&body, shard.retry_in_ms);
    body += "}";
  }
  body += "]}";

  TraceRecorder& recorder = TraceRecorder::Instance();
  body += "},\"trace\":{\"enabled\":";
  body += recorder.enabled() ? "true" : "false";
  body += ",\"sample_every\":" + std::to_string(recorder.sample_every());
  body += ",\"slow_threshold_ms\":";
  AppendJsonNumber(&body, recorder.slow_threshold_ms());
  body += ",\"capacity\":" + std::to_string(recorder.capacity());
  body += ",\"started\":" + std::to_string(recorder.traces_started());
  body += ",\"kept\":" + std::to_string(recorder.traces_kept());
  body += ",\"dropped\":" + std::to_string(recorder.traces_dropped());
  body += ",\"slow_log\":[";
  std::vector<std::string> slow = recorder.SlowLog();
  for (size_t i = 0; i < slow.size(); ++i) {
    if (i > 0) body += ",";
    AppendJsonQuoted(&body, slow[i]);
  }
  body += "]},\"build\":{\"compiler\":";
  AppendJsonQuoted(&body, __VERSION__);
  body += ",\"failpoints\":";
  body += Failpoints::compiled_in() ? "true" : "false";
  body += "}}\n";

  HttpResponse response;
  response.status = 200;
  response.SetHeader("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

MetricsSnapshot SodaHttpServer::metrics_snapshot() const {
  MetricsSnapshot merged = sink_->Snapshot();
  merged.MergeFrom(service_->metrics_snapshot());
  if (options_.extra_metrics) merged.MergeFrom(options_.extra_metrics());
  return merged;
}

// ---------------------------------------------------------------------------
// Request body
// ---------------------------------------------------------------------------

Result<std::vector<std::string>> SodaHttpServer::ParseSearchBody(
    const std::string& body) const {
  SODA_ASSIGN_OR_RETURN(JsonValue document, ParseJson(body));
  if (!document.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  std::vector<std::string> queries;
  if (const JsonValue* single = document.Find("query")) {
    if (!single->is_string()) {
      return Status::InvalidArgument("\"query\" must be a string");
    }
    queries.push_back(single->as_string());
  } else if (const JsonValue* batch = document.Find("queries")) {
    if (!batch->is_array()) {
      return Status::InvalidArgument("\"queries\" must be an array");
    }
    for (const JsonValue& entry : batch->as_array()) {
      if (!entry.is_string()) {
        return Status::InvalidArgument("\"queries\" entries must be strings");
      }
      queries.push_back(entry.as_string());
    }
  } else {
    return Status::InvalidArgument(
        "request body needs \"query\" or \"queries\"");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("no queries supplied");
  }
  if (queries.size() > options_.max_batch_queries) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(queries.size()) +
        " exceeds max_batch_queries=" +
        std::to_string(options_.max_batch_queries));
  }
  return queries;
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

HttpResponse SodaHttpServer::ErrorResponse(int status,
                                           std::string_view detail) {
  HttpResponse response;
  response.status = status;
  response.SetHeader("Content-Type", "application/json");
  response.body = "{\"error\":";
  AppendJsonQuoted(&response.body, ReasonPhrase(status));
  response.body += ",\"detail\":";
  AppendJsonQuoted(&response.body, detail);
  response.body += "}\n";
  return response;
}

bool SodaHttpServer::SendAll(int fd, std::string_view data) const {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace soda
