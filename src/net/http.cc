#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace soda {

namespace {

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool AsciiIEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits the header block (request/status line excluded) into
// name/value pairs. Returns false on a malformed field line.
template <typename Map>
bool ParseHeaderFields(std::string_view block, Map* headers) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    std::string_view line = block.substr(pos, eol - pos);
    pos = eol + (eol < block.size() ? 2 : 0);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view name = Trim(line.substr(0, colon));
    if (name.empty()) return false;
    std::string_view value = Trim(line.substr(colon + 1));
    (*headers)[std::string(name)] = std::string(value);
  }
  return true;
}

}  // namespace

bool AsciiCaseLess::operator()(std::string_view a, std::string_view b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    char la = AsciiLower(a[i]);
    char lb = AsciiLower(b[i]);
    if (la != lb) return la < lb;
  }
  return a.size() < b.size();
}

// ---------------------------------------------------------------------------
// Request / response records
// ---------------------------------------------------------------------------

std::string_view HttpRequest::path() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::query() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view() : t.substr(q + 1);
}

bool HttpRequest::HasQueryParam(std::string_view key,
                                std::string_view value) const {
  std::string_view q = query();
  while (!q.empty()) {
    size_t amp = q.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? q : q.substr(0, amp);
    q = amp == std::string_view::npos ? std::string_view() : q.substr(amp + 1);
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (AsciiIEquals(pair.substr(0, eq), key) &&
        AsciiIEquals(pair.substr(eq + 1), value)) {
      return true;
    }
  }
  return false;
}

std::string_view HttpRequest::QueryParamValue(std::string_view key) const {
  std::string_view q = query();
  while (!q.empty()) {
    size_t amp = q.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? q : q.substr(0, amp);
    q = amp == std::string_view::npos ? std::string_view() : q.substr(amp + 1);
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (AsciiIEquals(pair.substr(0, eq), key)) return pair.substr(eq + 1);
  }
  return std::string_view();
}

std::string_view HttpRequest::header(std::string_view name) const {
  auto it = headers.find(name);
  return it == headers.end() ? std::string_view() : std::string_view(it->second);
}

bool HttpRequest::keep_alive() const {
  std::string_view connection = header("Connection");
  if (AsciiIEquals(connection, "close")) return false;
  if (AsciiIEquals(connection, "keep-alive")) return true;
  return version != "HTTP/1.0";
}

void HttpResponse::SetHeader(std::string name, std::string value) {
  for (auto& [existing, existing_value] : headers) {
    if (AsciiIEquals(existing, name)) {
      existing_value = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

std::string_view HttpResponse::header(std::string_view name) const {
  for (const auto& [existing, value] : headers) {
    if (AsciiIEquals(existing, name)) return value;
  }
  return std::string_view();
}

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Content Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

namespace {

void AppendStatusAndHeaders(std::string* out, const HttpResponse& response,
                            bool keep_alive) {
  out->append("HTTP/1.1 ");
  out->append(std::to_string(response.status));
  out->push_back(' ');
  out->append(ReasonPhrase(response.status));
  out->append("\r\n");
  for (const auto& [name, value] : response.headers) {
    if (AsciiIEquals(name, "Content-Length") ||
        AsciiIEquals(name, "Connection") ||
        AsciiIEquals(name, "Transfer-Encoding")) {
      continue;  // framing headers are owned by the serializer
    }
    out->append(name);
    out->append(": ");
    out->append(value);
    out->append("\r\n");
  }
  out->append(keep_alive ? "Connection: keep-alive\r\n"
                         : "Connection: close\r\n");
}

}  // namespace

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  AppendStatusAndHeaders(&out, response, keep_alive);
  out.append("Content-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\n\r\n");
  out.append(response.body);
  return out;
}

std::string SerializeChunkedHead(const HttpResponse& head, bool keep_alive) {
  std::string out;
  AppendStatusAndHeaders(&out, head, keep_alive);
  out.append("Transfer-Encoding: chunked\r\n\r\n");
  return out;
}

std::string SerializeChunk(std::string_view payload) {
  std::string out;
  char size_hex[24];
  std::snprintf(size_hex, sizeof(size_hex), "%zx\r\n", payload.size());
  out.append(size_hex);
  out.append(payload);
  out.append("\r\n");
  return out;
}

std::string SerializeLastChunk() { return "0\r\n\r\n"; }

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = std::move(detail);
  return state_;
}

void HttpRequestParser::Reset() {
  // Keep any bytes that belong to the next pipelined request.
  buffer_.erase(0, header_end_ + body_length_);
  header_end_ = 0;
  body_length_ = 0;
  headers_done_ = false;
  state_ = State::kIncomplete;
  request_ = HttpRequest{};
  error_status_ = 0;
  error_detail_.clear();
  if (!buffer_.empty()) state_ = TryParse();
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view data) {
  if (state_ != State::kIncomplete) return state_;
  buffer_.append(data);
  return state_ = TryParse();
}

HttpRequestParser::State HttpRequestParser::TryParse() {
  if (!headers_done_) {
    size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail(431, "header section exceeds limit");
      }
      return State::kIncomplete;
    }
    if (end + 4 > limits_.max_header_bytes) {
      return Fail(431, "header section exceeds limit");
    }
    header_end_ = end + 4;

    std::string_view head(buffer_.data(), end);
    size_t line_end = head.find("\r\n");
    std::string_view request_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    size_t sp1 = request_line.find(' ');
    size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        sp2 == sp1 + 1 || sp2 + 1 >= request_line.size()) {
      return Fail(400, "malformed request line");
    }
    request_.method = std::string(request_line.substr(0, sp1));
    request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(request_line.substr(sp2 + 1));
    if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
      return Fail(400, "unsupported HTTP version");
    }
    std::string_view field_block =
        line_end == std::string_view::npos ? std::string_view()
                                           : head.substr(line_end + 2);
    if (!ParseHeaderFields(field_block, &request_.headers)) {
      return Fail(400, "malformed header field");
    }
    if (!request_.header("Transfer-Encoding").empty()) {
      return Fail(400, "chunked request bodies are not supported");
    }
    std::string_view length = request_.header("Content-Length");
    if (!length.empty()) {
      char* parse_end = nullptr;
      std::string length_str(length);
      unsigned long long parsed =
          std::strtoull(length_str.c_str(), &parse_end, 10);
      if (parse_end != length_str.c_str() + length_str.size()) {
        return Fail(400, "malformed Content-Length");
      }
      if (parsed > limits_.max_body_bytes) {
        return Fail(413, "request body exceeds limit");
      }
      body_length_ = static_cast<size_t>(parsed);
    }
    headers_done_ = true;
  }
  if (buffer_.size() < header_end_ + body_length_) return State::kIncomplete;
  request_.body = buffer_.substr(header_end_, body_length_);
  return State::kComplete;
}

// ---------------------------------------------------------------------------
// Response parsing
// ---------------------------------------------------------------------------

HttpResponseParser::State HttpResponseParser::Fail(std::string detail) {
  state_ = State::kError;
  error_detail_ = std::move(detail);
  return state_;
}

void HttpResponseParser::Reset() {
  buffer_.clear();
  header_end_ = 0;
  headers_done_ = false;
  body_mode_ = BodyMode::kUnknown;
  body_length_ = 0;
  state_ = State::kIncomplete;
  close_after_ = false;
  response_ = HttpResponse{};
  error_detail_.clear();
}

HttpResponseParser::State HttpResponseParser::Feed(std::string_view data) {
  if (state_ != State::kIncomplete) return state_;
  buffer_.append(data);
  return state_ = TryParse();
}

HttpResponseParser::State HttpResponseParser::FinishEof() {
  if (state_ != State::kIncomplete) return state_;
  if (headers_done_ && body_mode_ == BodyMode::kUntilClose) {
    response_.body = buffer_.substr(header_end_);
    close_after_ = true;
    return state_ = State::kComplete;
  }
  return Fail("connection closed mid-response");
}

HttpResponseParser::State HttpResponseParser::TryParse() {
  if (!headers_done_) {
    size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) return State::kIncomplete;
    header_end_ = end + 4;

    std::string_view head(buffer_.data(), end);
    size_t line_end = head.find("\r\n");
    std::string_view status_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    if (status_line.substr(0, 5) != "HTTP/") {
      return Fail("malformed status line");
    }
    size_t sp1 = status_line.find(' ');
    if (sp1 == std::string_view::npos || sp1 + 4 > status_line.size()) {
      return Fail("malformed status line");
    }
    response_.status =
        std::atoi(std::string(status_line.substr(sp1 + 1, 3)).c_str());
    if (response_.status < 100 || response_.status > 599) {
      return Fail("bad status code");
    }

    std::map<std::string, std::string, AsciiCaseLess> fields;
    std::string_view field_block =
        line_end == std::string_view::npos ? std::string_view()
                                           : head.substr(line_end + 2);
    if (!ParseHeaderFields(field_block, &fields)) {
      return Fail("malformed header field");
    }
    for (auto& [name, value] : fields) {
      response_.headers.emplace_back(name, value);
    }

    close_after_ = AsciiIEquals(response_.header("Connection"), "close");
    std::string_view transfer = response_.header("Transfer-Encoding");
    std::string_view length = response_.header("Content-Length");
    if (AsciiIEquals(transfer, "chunked")) {
      body_mode_ = BodyMode::kChunked;
    } else if (!length.empty()) {
      body_mode_ = BodyMode::kLength;
      body_length_ =
          static_cast<size_t>(std::strtoull(std::string(length).c_str(),
                                            nullptr, 10));
    } else {
      body_mode_ = BodyMode::kUntilClose;
    }
    headers_done_ = true;
  }

  switch (body_mode_) {
    case BodyMode::kLength:
      if (buffer_.size() < header_end_ + body_length_) {
        return State::kIncomplete;
      }
      response_.body = buffer_.substr(header_end_, body_length_);
      return State::kComplete;
    case BodyMode::kChunked:
      return DecodeChunks();
    case BodyMode::kUntilClose:
      return State::kIncomplete;  // completed by FinishEof
    case BodyMode::kUnknown:
      break;
  }
  return Fail("unreachable body mode");
}

// Re-decodes the chunk stream from the start of the body on every feed.
// Quadratic in the number of feeds in the worst case, which is fine for
// the small streamed payloads this client reads (tests, load harness,
// smoke probes).
HttpResponseParser::State HttpResponseParser::DecodeChunks() {
  std::string body;
  size_t pos = header_end_;
  for (;;) {
    size_t line_end = buffer_.find("\r\n", pos);
    if (line_end == std::string::npos) return State::kIncomplete;
    std::string size_line = buffer_.substr(pos, line_end - pos);
    // Ignore chunk extensions (";..." suffix) per RFC 9112.
    size_t semi = size_line.find(';');
    if (semi != std::string::npos) size_line.resize(semi);
    char* parse_end = nullptr;
    unsigned long long chunk_size =
        std::strtoull(size_line.c_str(), &parse_end, 16);
    if (parse_end == size_line.c_str()) return Fail("malformed chunk size");
    pos = line_end + 2;
    if (chunk_size == 0) {
      // Trailer section: skip until the terminating blank line.
      size_t trailer_end = buffer_.find("\r\n", pos);
      if (trailer_end == std::string::npos) return State::kIncomplete;
      response_.body = std::move(body);
      return State::kComplete;
    }
    if (buffer_.size() < pos + chunk_size + 2) return State::kIncomplete;
    body.append(buffer_, pos, chunk_size);
    pos += chunk_size + 2;  // payload + CRLF
  }
}

}  // namespace soda
