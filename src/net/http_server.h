// SodaHttpServer — the network front end over any SodaService.
//
// The paper's system ran as a shared service over a Credit Suisse
// warehouse; this is that deployment shape for the reproduction: a small
// HTTP/1.1 server that fronts a SodaService (single engine or sharded
// fleet — construction-time choice, as everywhere else) and puts the
// serving-robustness machinery in one place:
//
//   POST /search            single {"query":"..."} or batched
//                           {"queries":["...", ...]} JSON in; the
//                           deterministic RenderSearchResponseJson body
//                           out (byte-identical to an in-process
//                           SearchAll — see net/search_json.h). Wall
//                           time and cache observability travel as
//                           X-Soda-* headers, never in the body.
//   POST /search?stream=1   chunked newline-delimited JSON: the
//                           translated outputs first, then one
//                           {"event":"snippet",...} line per snippet as
//                           SearchAllAsync delivers it, closed by an
//                           {"event":"done",...} summary once the
//                           SnippetBarrier drains.
//   GET  /metrics           Prometheus text exposition of the server's
//                           own counters merged with the service fleet
//                           snapshot (and an optional extra snapshot,
//                           e.g. a FreshnessManager's).
//   GET  /healthz           200, first line "ok" (all failure domains
//                           closed) or "degraded" (some shard replica
//                           quarantined/probing — the service still
//                           answers, re-routing around it), followed by
//                           one detail line per shard breaker. A
//                           single-engine service keeps the classic bare
//                           "ok\n" body. Never shed, usable as a
//                           liveness probe under overload.
//
// Robustness layer:
//
//   * bounded accept/read loop — one accept thread polls the listening
//     socket; connections are served on a fixed ThreadPool
//     (common/thread_pool.h). When more connections are queued than
//     accept_queue_limit the accept thread answers 503 immediately
//     instead of queueing unboundedly;
//   * queue-depth-aware admission control — a /search is admitted only
//     while (in-flight searches + SodaService::queue_depth()) is below
//     shed_watermark; everything else is shed with 503 + Retry-After
//     and booked, never silently dropped. watermark 0 sheds everything
//     (useful in tests); /healthz and /metrics are never shed;
//   * per-request deadlines — a request that fails to arrive within
//     request_deadline_ms of its first byte is answered 408; a search
//     whose answer was computed after the deadline passed is answered
//     504 (the pipeline is not cancellable mid-flight; the budget caps
//     what the client waits for, not what the pool spends);
//   * graceful drain — Stop() (also run by the destructor) stops
//     accepting, lets every in-flight request complete and write its
//     response, then joins. Keep-alive connections are told
//     "Connection: close" on their in-flight response.
//
// Everything is booked through MetricsSink into the server's own sink:
// server.requests, server.accepted, server.shed, server.timeouts
// (counters, pre-registered at zero so /metrics always exports them)
// and server.inflight (histogram, sampled at every /search admission).
//
// Thread-safety: Start/Stop from one controlling thread; everything
// else is internal. The server never mutates the service beyond calling
// its const serving surface.

#ifndef SODA_NET_HTTP_SERVER_H_
#define SODA_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/service.h"
#include "net/http.h"

namespace soda {

struct HttpServerOptions {
  /// Loopback by default: the reproduction's serving story is a
  /// same-host fleet; bind wider deliberately.
  std::string bind_address = "127.0.0.1";

  /// 0 binds an ephemeral port; read the outcome from port().
  uint16_t port = 0;

  /// Connection-serving workers (min 2 is enforced: a workerless pool
  /// would serve connections inline on the accept thread and wedge
  /// accepts behind keep-alive connections).
  size_t num_threads = 4;

  /// Admission watermark: a /search is admitted only while the number
  /// of already-admitted in-flight searches plus the service's
  /// queue_depth() is strictly below this. 0 sheds every search.
  size_t shed_watermark = 64;

  /// Connections waiting for a worker before the accept thread starts
  /// answering 503 without queueing.
  size_t accept_queue_limit = 256;

  /// Per-request budget, measured from the request's first byte.
  double request_deadline_ms = 30000.0;

  /// Framing limits (413 / 431 beyond them).
  size_t max_header_bytes = 8 * 1024;
  size_t max_body_bytes = 1 << 20;

  /// Requests served per keep-alive connection before the server closes
  /// it (fairness under connection churn).
  size_t max_keepalive_requests = 128;

  /// Cap on "queries" array length per /search (400 beyond it).
  size_t max_batch_queries = 64;

  /// Metric prefix of the /metrics exposition.
  std::string metrics_prefix = "soda";

  /// Extra snapshot merged into /metrics (e.g. a FreshnessManager's
  /// books). Called per scrape; must be thread-safe.
  std::function<MetricsSnapshot()> extra_metrics;
};

class SodaHttpServer {
 public:
  /// `service` must outlive the server.
  SodaHttpServer(SodaService* service, HttpServerOptions options);

  /// Stops and drains (see Stop).
  ~SodaHttpServer();

  SodaHttpServer(const SodaHttpServer&) = delete;
  SodaHttpServer& operator=(const SodaHttpServer&) = delete;

  /// Binds, listens and starts the accept thread. Fails with
  /// InvalidArgument/Internal on socket errors (port in use, bad
  /// address). Start after construction; a stopped server does not
  /// restart.
  Status Start();

  /// Graceful drain: stop accepting, serve every in-flight request to
  /// completion, join all threads. Idempotent.
  void Stop();

  /// The bound port (after Start; the ephemeral choice when port was 0).
  uint16_t port() const { return port_; }

  bool running() const { return started_ && !stopping_; }

  /// In-flight admitted searches right now (tests use this to observe
  /// the admission window).
  size_t search_inflight() const { return search_inflight_.load(); }

  /// The /metrics view: server.* merged with the service fleet snapshot
  /// and the optional extra snapshot.
  MetricsSnapshot metrics_snapshot() const;

  /// The server's own books only (server.*).
  MetricsSnapshot server_metrics() const { return sink_->Snapshot(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  /// Routes one parsed request. Returns true when the response was
  /// already written (streaming); otherwise fills *response.
  /// `trace_header` is the request's X-Soda-Trace-Id echo value ("" when
  /// the request has no id and tracing is off) — handlers that write the
  /// response themselves (streaming) must stamp it on their own head.
  bool HandleRequest(const HttpRequest& request, const Deadline& deadline,
                     int fd, bool keep_alive, const std::string& trace_header,
                     HttpResponse* response);

  /// The admission decision shared by both /search flavors: true when
  /// the request must be shed (fills *response with 503 + Retry-After).
  /// `occupancy_before` is the caller's pre-increment in-flight count.
  bool Shed(size_t occupancy_before, HttpResponse* response);

  HttpResponse HandleSearch(const HttpRequest& request,
                            const Deadline& deadline);
  bool HandleStreamingSearch(const HttpRequest& request, int fd,
                             bool keep_alive, const std::string& trace_header,
                             HttpResponse* error_response);
  HttpResponse HandleHealthz() const;
  HttpResponse HandleMetrics() const;

  /// GET /debug/traces — the TraceRecorder ring as deterministic JSON
  /// span trees (?min_ms=N filters fast traces, ?error=1 keeps errored
  /// ones only, ?chrome=1 emits Chrome trace_event format instead).
  HttpResponse HandleDebugTraces(const HttpRequest& request) const;

  /// GET /debug/vars — config knobs, service/cache/shard state, trace
  /// recorder totals and the slow-query log as one JSON object.
  HttpResponse HandleDebugVars() const;

  /// Parses the /search body into a query list; non-OK → 400 detail.
  Result<std::vector<std::string>> ParseSearchBody(
      const std::string& body) const;

  static HttpResponse ErrorResponse(int status, std::string_view detail);

  bool SendAll(int fd, std::string_view data) const;

  SodaService* service_;
  HttpServerOptions options_;
  std::shared_ptr<InMemoryMetricsSink> sink_;
  ThreadPool pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::atomic<size_t> search_inflight_{0};
  // Open connections, counted for the drain barrier in Stop().
  mutable std::mutex drain_mu_;
  std::condition_variable drained_;
  size_t open_connections_ = 0;
};

}  // namespace soda

#endif  // SODA_NET_HTTP_SERVER_H_
