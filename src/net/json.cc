#include "net/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace soda {

namespace {

// Recursive-descent parser over a string_view. Position is tracked for
// error messages; depth is bounded so a hostile body cannot blow the
// stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    SODA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  static constexpr size_t kMaxDepth = 32;

  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        SODA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(object));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SODA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SODA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(object));
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(array));
    for (;;) {
      SODA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(array));
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          SODA_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          AppendUtf8(&out, code);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad \\u escape");
      }
    }
    return code;
  }

  // Encodes one BMP code point as UTF-8 (surrogate pairs are not
  // recombined — request bodies carrying non-BMP escapes are not a case
  // the server needs; the lone surrogate encodes as its 3-byte form,
  // which is at least deterministic).
  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    std::string number(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(number.c_str(), &end);
    if (end != number.c_str() + number.size() || !std::isfinite(value)) {
      return Error("bad number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& object = as_object();
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void AppendJsonQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");  // JSON has no Inf/NaN; never emitted in practice
    return;
  }
  double integral = 0.0;
  if (std::modf(value, &integral) == 0.0 && integral >= -9.2e18 &&
      integral <= 9.2e18) {
    out->append(std::to_string(static_cast<int64_t>(integral)));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

}  // namespace soda
