// Minimal blocking HTTP/1.1 client for loopback use: the server tests,
// the closed-loop load harness (bench/http_load.cc) and the CI smoke
// probe all talk to SodaHttpServer through it, so none of them need
// curl. Keep-alive by default (one TCP connection per HttpClient,
// reconnected transparently when the server closes it), chunked and
// Content-Length framing via HttpResponseParser, and raw byte-level
// access (SendRaw/ReadResponse) so tests can speak deliberately broken
// HTTP at the server — half a request, garbage request lines, oversized
// bodies — and observe the 400/408/413 answers.
//
// Not a general client: IPv4 dotted-quad hosts only, no TLS, no
// redirects, no proxies.

#ifndef SODA_NET_HTTP_CLIENT_H_
#define SODA_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/http.h"

namespace soda {

class HttpClient {
 public:
  /// `host` is an IPv4 literal ("127.0.0.1"). Connection happens lazily
  /// on the first request.
  HttpClient(std::string host, uint16_t port, double timeout_ms = 10000.0);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Full request/response round trips. The timeout covers the whole
  /// round trip (connect + send + receive).
  Result<HttpResponse> Get(std::string_view target);
  Result<HttpResponse> Post(std::string_view target, std::string_view body,
                            std::string_view content_type =
                                "application/json");

  /// Byte-level access for tests that need malformed or partial HTTP.
  /// SendRaw connects if needed and writes exactly `data`; ReadResponse
  /// then parses whatever the server answers.
  Status SendRaw(std::string_view data);
  Result<HttpResponse> ReadResponse();

  /// Closes the connection (the next request reconnects).
  void Disconnect();

  bool connected() const { return fd_ >= 0; }

 private:
  Status EnsureConnected();
  Result<HttpResponse> RoundTrip(std::string request_bytes);

  std::string host_;
  uint16_t port_;
  double timeout_ms_;
  int fd_ = -1;
};

}  // namespace soda

#endif  // SODA_NET_HTTP_CLIENT_H_
