// Minimal blocking HTTP/1.1 client for loopback use: the server tests,
// the closed-loop load harness (bench/http_load.cc) and the CI smoke
// probe all talk to SodaHttpServer through it, so none of them need
// curl. Keep-alive by default (one TCP connection per HttpClient,
// reconnected transparently when the server closes it), chunked and
// Content-Length framing via HttpResponseParser, and raw byte-level
// access (SendRaw/ReadResponse) so tests can speak deliberately broken
// HTTP at the server — half a request, garbage request lines, oversized
// bodies — and observe the 400/408/413 answers.
//
// Not a general client: IPv4 dotted-quad hosts only, no TLS, no
// redirects, no proxies.

#ifndef SODA_NET_HTTP_CLIENT_H_
#define SODA_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/http.h"

namespace soda {

/// Opt-in client-side handling of 503 shed responses. With max_retries
/// > 0, Get/Post transparently re-issue a request the server answered
/// 503, sleeping the server's Retry-After (seconds) when present —
/// capped by max_backoff_ms — else an exponential backoff doubling from
/// initial_backoff_ms. Anything other than a 503 (success, other errors,
/// transport failures) returns immediately. Default-off: tests that
/// assert shed behavior see every 503.
struct HttpRetryPolicy {
  size_t max_retries = 0;
  double initial_backoff_ms = 50.0;
  double max_backoff_ms = 2000.0;
};

class HttpClient {
 public:
  /// `host` is an IPv4 literal ("127.0.0.1"). Connection happens lazily
  /// on the first request.
  HttpClient(std::string host, uint16_t port, double timeout_ms = 10000.0);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Full request/response round trips. The timeout covers the whole
  /// round trip (connect + send + receive).
  Result<HttpResponse> Get(std::string_view target);
  Result<HttpResponse> Post(std::string_view target, std::string_view body,
                            std::string_view content_type =
                                "application/json");

  /// Byte-level access for tests that need malformed or partial HTTP.
  /// SendRaw connects if needed and writes exactly `data`; ReadResponse
  /// then parses whatever the server answers.
  Status SendRaw(std::string_view data);
  Result<HttpResponse> ReadResponse();

  /// Closes the connection (the next request reconnects).
  void Disconnect();

  bool connected() const { return fd_ >= 0; }

  /// Installs (or clears, with a default-constructed policy) the 503
  /// retry behavior for subsequent Get/Post calls.
  void set_retry_policy(HttpRetryPolicy policy) { retry_policy_ = policy; }

  /// Installs an X-Soda-Trace-Id header sent with every subsequent
  /// Get/Post ("" clears it). The server adopts the id for its
  /// per-request trace and echoes it back, so a caller can pick the id
  /// it will later look up in /debug/traces.
  void set_trace_id(std::string trace_id) { trace_id_ = std::move(trace_id); }
  const std::string& trace_id() const { return trace_id_; }

  /// 503 responses this client absorbed by retrying (the final answer
  /// of an exhausted retry chain is returned, not absorbed). The load
  /// harness adds these back into its shed accounting so client-side
  /// retries never hide server-side sheds.
  uint64_t sheds_absorbed() const { return sheds_absorbed_; }

 private:
  Status EnsureConnected();
  Result<HttpResponse> RoundTrip(const std::string& request_bytes);
  Result<HttpResponse> RoundTripWithRetry(const std::string& request_bytes);

  std::string host_;
  uint16_t port_;
  double timeout_ms_;
  HttpRetryPolicy retry_policy_;
  std::string trace_id_;
  uint64_t sheds_absorbed_ = 0;
  int fd_ = -1;
};

}  // namespace soda

#endif  // SODA_NET_HTTP_CLIENT_H_
