// HTTP/1.1 message plumbing shared by the server (net/http_server.h),
// the client (net/http_client.h), the tests and the load harness: typed
// request/response records, incremental parsers that consume bytes as
// they arrive off a socket, and serialization with Content-Length or
// chunked framing.
//
// Scope is deliberately the serving subset: request-line + headers +
// Content-Length bodies on the server side (no request trailers, no
// multipart, no continuation lines), chunked decoding on the client side
// (the streaming /search endpoint responds chunked). Everything is
// transport-agnostic — the parsers eat byte buffers, the socket loops
// live with their owners.

#ifndef SODA_NET_HTTP_H_
#define SODA_NET_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace soda {

/// Case-insensitive ordering for header names (field names are
/// case-insensitive per RFC 9110; values are left untouched).
struct AsciiCaseLess {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const;
};

struct HttpRequest {
  std::string method;   // as sent ("GET", "POST", ...)
  std::string target;   // origin-form target, e.g. "/search?stream=1"
  std::string version;  // "HTTP/1.1"
  std::map<std::string, std::string, AsciiCaseLess> headers;
  std::string body;

  /// Target split helpers: path() is the target up to '?', query() the
  /// rest (without the '?', "" when absent).
  std::string_view path() const;
  std::string_view query() const;

  /// True when the (case-insensitively compared) `key=value` pair
  /// appears in the query string.
  bool HasQueryParam(std::string_view key, std::string_view value) const;

  /// Value of the first `key=...` pair in the query string (key compared
  /// case-insensitively); "" when absent. No percent-decoding — the
  /// debug endpoints take numeric and flag values only.
  std::string_view QueryParamValue(std::string_view key) const;

  /// Header lookup; "" when absent.
  std::string_view header(std::string_view name) const;

  /// Connection semantics: HTTP/1.1 defaults to keep-alive unless
  /// "Connection: close"; HTTP/1.0 defaults to close.
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  void SetHeader(std::string name, std::string value);
  std::string_view header(std::string_view name) const;
};

/// Canonical reason phrase for the status codes the server emits;
/// "Unknown" otherwise.
std::string_view ReasonPhrase(int status);

/// Serializes a full response with Content-Length framing.
/// `keep_alive` controls the Connection header. Content-Length and
/// Connection are always (re)computed here; response.headers carries
/// everything else (Content-Type etc.).
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Serializes the status line + headers of a chunked response (the
/// streaming endpoint): Transfer-Encoding: chunked, no Content-Length.
std::string SerializeChunkedHead(const HttpResponse& head, bool keep_alive);

/// One chunk of a chunked body. Empty payloads are skipped by callers
/// (an empty chunk terminates the stream — use SerializeLastChunk).
std::string SerializeChunk(std::string_view payload);
std::string SerializeLastChunk();

/// Incremental request parser: feed it bytes as they arrive; it signals
/// completion or a client-error status code. One parser instance parses
/// one request; Reset() recycles it for the next request on a
/// keep-alive connection.
class HttpRequestParser {
 public:
  enum class State {
    kIncomplete,  // need more bytes
    kComplete,    // request() is valid; surplus bytes stay buffered
    kError,       // error_status() holds 400/413/431
  };

  struct Limits {
    size_t max_header_bytes = 8 * 1024;
    size_t max_body_bytes = 1 << 20;
  };

  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  /// Consumes `data`, returns the new state. Bytes beyond the current
  /// request are buffered and survive Reset() (HTTP pipelining /
  /// keep-alive back-to-back requests).
  State Feed(std::string_view data);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }

  /// 400 (malformed), 413 (body over limit) or 431 (headers over limit).
  int error_status() const { return error_status_; }
  const std::string& error_detail() const { return error_detail_; }

  /// True when at least one byte of the current request has arrived —
  /// distinguishes "idle keep-alive connection" from "mid-request" for
  /// deadline accounting.
  bool started() const { return !buffer_.empty() || state_ != State::kIncomplete; }

  /// Recycles the parser for the next request on the connection,
  /// keeping any already-buffered bytes of it.
  void Reset();

 private:
  State Fail(int status, std::string detail);
  State TryParse();

  Limits limits_;
  std::string buffer_;
  size_t header_end_ = 0;    // offset one past the blank line, when found
  size_t body_length_ = 0;   // parsed Content-Length
  bool headers_done_ = false;
  State state_ = State::kIncomplete;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_detail_;
};

/// Incremental response parser (client side): status line + headers,
/// then Content-Length, chunked, or read-until-close bodies.
class HttpResponseParser {
 public:
  enum class State { kIncomplete, kComplete, kError };

  State Feed(std::string_view data);

  /// For read-until-close framing: the peer closed the connection; the
  /// buffered bytes are the body.
  State FinishEof();

  State state() const { return state_; }
  const HttpResponse& response() const { return response_; }
  const std::string& error_detail() const { return error_detail_; }

  /// True when the response carried "Connection: close" (or was framed
  /// by EOF) — the caller must not reuse the connection.
  bool close_after() const { return close_after_; }

  void Reset();

 private:
  enum class BodyMode { kUnknown, kLength, kChunked, kUntilClose };

  State Fail(std::string detail);
  State TryParse();
  State DecodeChunks();

  std::string buffer_;
  size_t header_end_ = 0;
  bool headers_done_ = false;
  BodyMode body_mode_ = BodyMode::kUnknown;
  size_t body_length_ = 0;
  State state_ = State::kIncomplete;
  bool close_after_ = false;
  HttpResponse response_;
  std::string error_detail_;
};

}  // namespace soda

#endif  // SODA_NET_HTTP_H_
