#include "net/search_json.h"

#include "net/json.h"
#include "sql/result_set.h"
#include "sql/value.h"

namespace soda {

namespace {

void AppendResultJson(std::string* out, const SodaResult& result) {
  out->append("{\"sql\":");
  AppendJsonQuoted(out, result.sql);
  out->append(",\"score\":");
  AppendJsonNumber(out, result.score);
  out->append(",\"explanation\":");
  AppendJsonQuoted(out, result.explanation);
  out->append(",\"connected\":");
  out->append(result.fully_connected ? "true" : "false");
  out->append(",\"executed\":");
  out->append(result.executed ? "true" : "false");
  if (result.executed) {
    out->append(",\"snippet\":{\"columns\":[");
    for (size_t c = 0; c < result.snippet.column_names.size(); ++c) {
      if (c > 0) out->push_back(',');
      AppendJsonQuoted(out, result.snippet.column_names[c]);
    }
    out->append("],\"rows\":[");
    for (size_t r = 0; r < result.snippet.rows.size(); ++r) {
      if (r > 0) out->push_back(',');
      out->push_back('[');
      const std::vector<Value>& row = result.snippet.rows[r];
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out->push_back(',');
        AppendJsonQuoted(out, row[c].ToDisplayString());
      }
      out->push_back(']');
    }
    out->append("]}");
  } else if (!result.execution_status.ok()) {
    out->append(",\"execution_error\":");
    AppendJsonQuoted(out, result.execution_status.ToString());
  }
  out->push_back('}');
}

void AppendOutputJson(std::string* out, const std::string& query,
                      const Result<SearchOutput>& output) {
  out->append("{\"query\":");
  AppendJsonQuoted(out, query);
  if (!output.ok()) {
    // Partial-batch serving: the failed query carries a structured error
    // object; its siblings in the same response are untouched. "code" is
    // the machine key — "unavailable" marks a transient fault (shard
    // quarantined, every replica exhausted) worth retrying, unlike e.g.
    // "invalid_argument".
    out->append(",\"ok\":false,\"error\":");
    AppendJsonQuoted(out, output.status().ToString());
    out->append(",\"code\":");
    AppendJsonQuoted(out, StatusCodeName(output.status().code()));
    out->push_back('}');
    return;
  }
  out->append(",\"ok\":true,\"complexity\":");
  AppendJsonNumber(out, static_cast<double>(output->complexity));
  out->append(",\"ignored\":[");
  for (size_t i = 0; i < output->ignored_words.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendJsonQuoted(out, output->ignored_words[i]);
  }
  out->append("],\"results\":[");
  for (size_t i = 0; i < output->results.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendResultJson(out, output->results[i]);
  }
  out->append("]}");
}

}  // namespace

std::string RenderSearchResponseJson(
    std::span<const std::string> queries,
    std::span<const Result<SearchOutput>> outputs) {
  std::string out = "{\"outputs\":[";
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendOutputJson(&out, i < queries.size() ? queries[i] : std::string(),
                     outputs[i]);
  }
  out.append("]}\n");
  return out;
}

std::string RenderSnippetEventJson(size_t query_index, size_t result_index,
                                   const SodaResult& result) {
  std::string out = "{\"event\":\"snippet\",\"query\":";
  AppendJsonNumber(&out, static_cast<double>(query_index));
  out.append(",\"result\":");
  AppendJsonNumber(&out, static_cast<double>(result_index));
  out.append(",\"executed\":");
  out.append(result.executed ? "true" : "false");
  out.append(",\"rows\":");
  AppendJsonNumber(&out, static_cast<double>(result.snippet.rows.size()));
  out.append("}\n");
  return out;
}

std::string RenderStreamDoneJson(size_t snippets, size_t callback_exceptions) {
  std::string out = "{\"event\":\"done\",\"snippets\":";
  AppendJsonNumber(&out, static_cast<double>(snippets));
  out.append(",\"callback_exceptions\":");
  AppendJsonNumber(&out, static_cast<double>(callback_exceptions));
  out.append("}\n");
  return out;
}

}  // namespace soda
