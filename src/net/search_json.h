// The /search body contract: deterministic JSON rendering of search
// outputs.
//
// The HTTP server and the tests share these functions, which is what
// makes "HTTP /search responses are byte-identical to direct
// SodaService::SearchAll output" a checkable property: the test calls
// SearchAll itself, renders with the same function, and compares bytes
// with the wire payload. Determinism therefore rules the field set —
// everything rank-relevant is included (SQL, scores, provenance,
// snippets, complexity, ignored words, per-query errors), while
// serving-history observability (wall times, cache counters, pool
// width) is exiled to X-Soda-* response headers by the server: two
// identical questions must produce identical bodies regardless of which
// shard, cache state, or thread count produced them.

#ifndef SODA_NET_SEARCH_JSON_H_
#define SODA_NET_SEARCH_JSON_H_

#include <cstddef>
#include <span>
#include <string>

#include "common/status.h"
#include "core/pipeline.h"
#include "core/service.h"

namespace soda {

/// Renders the response body of POST /search: one element of "outputs"
/// per input query, in input order:
///
///   {"outputs":[{"query":"...","ok":true,"complexity":N,
///     "ignored":["..."],"results":[{"sql":"...","score":S,
///     "explanation":"...","connected":true,"executed":true,
///     "snippet":{"columns":["..."],"rows":[["..."]]}}]},
///    {"query":"...","ok":false,"error":"code: message"}]}
///
/// `queries` and `outputs` must be the same length (the SearchAll
/// contract). Snippet cells render via Value::ToDisplayString; "snippet"
/// is present only on executed results.
std::string RenderSearchResponseJson(
    std::span<const std::string> queries,
    std::span<const Result<SearchOutput>> outputs);

/// One streamed snippet event of the chunked /search?stream=1 endpoint
/// (newline-delimited JSON): {"event":"snippet","query":Q,"result":R,
/// "executed":true,"rows":N}.
std::string RenderSnippetEventJson(size_t query_index, size_t result_index,
                                   const SodaResult& result);

/// The closing summary line of a chunked stream:
/// {"event":"done","snippets":N,"callback_exceptions":M}.
std::string RenderStreamDoneJson(size_t snippets, size_t callback_exceptions);

}  // namespace soda

#endif  // SODA_NET_SEARCH_JSON_H_
