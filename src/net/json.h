// Minimal JSON support for the HTTP front end: a strict recursive-descent
// parser for request bodies and deterministic append-style writers for
// response bodies.
//
// Deliberately not a general serialization framework — the server needs
// exactly (a) "parse a small client-supplied document, reject garbage
// loudly" and (b) "render bytes that are identical for identical inputs"
// (the /search body contract is byte-identity against the in-process
// SearchAll output, see net/search_json.h). No external dependency: the
// container images build with the stock toolchain only.

#ifndef SODA_NET_JSON_H_
#define SODA_NET_JSON_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace soda {

/// One parsed JSON value. Numbers are held as double (the server only
/// reads small integers out of requests); object keys are ordered for
/// deterministic iteration.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : data_(nullptr) {}
  explicit JsonValue(bool b) : data_(b) {}
  explicit JsonValue(double d) : data_(d) {}
  explicit JsonValue(std::string s) : data_(std::move(s)) {}
  explicit JsonValue(Array a) : data_(std::move(a)) {}
  explicit JsonValue(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  double as_number() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }

  /// Object member lookup; nullptr when this is not an object or the key
  /// is absent.
  const JsonValue* Find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses one JSON document. Strict: the whole input must be consumed
/// (trailing whitespace allowed), nesting depth is bounded, and any
/// syntax error returns ParseError with an offset-bearing message.
Result<JsonValue> ParseJson(std::string_view text);

/// Appends `s` as a quoted JSON string with the mandatory escapes
/// (quote, backslash, control characters as \uXXXX; UTF-8 passes
/// through byte-for-byte — deterministic, no normalization).
void AppendJsonQuoted(std::string* out, std::string_view s);

/// Appends a JSON number. Doubles render via "%.17g" (shortest exact
/// round-trip is not needed — identical doubles render identically,
/// which is the determinism contract); integral values that fit int64
/// render without exponent or trailing ".0".
void AppendJsonNumber(std::string* out, double value);

}  // namespace soda

#endif  // SODA_NET_JSON_H_
