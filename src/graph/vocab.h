// The predicate and type vocabulary of the metadata graph.
//
// These are the edge labels ("static URIs" in the paper's pattern language)
// that the Credit Suisse metadata warehouse exposes and the SODA patterns
// test for. Centralizing them here keeps the schema compiler, the pattern
// library and the datasets in agreement.

#ifndef SODA_GRAPH_VOCAB_H_
#define SODA_GRAPH_VOCAB_H_

namespace soda {
namespace vocab {

// ---- rdf-ish core -----------------------------------------------------------
inline constexpr char kType[] = "type";
inline constexpr char kLabel[] = "label";  // human-readable text label

// ---- node type URIs ---------------------------------------------------------
inline constexpr char kPhysicalTable[] = "physical_table";
inline constexpr char kPhysicalColumn[] = "physical_column";
inline constexpr char kLogicalEntity[] = "logical_entity";
inline constexpr char kLogicalAttribute[] = "logical_attribute";
inline constexpr char kConceptualEntity[] = "conceptual_entity";
inline constexpr char kConceptualAttribute[] = "conceptual_attribute";
inline constexpr char kInheritanceNode[] = "inheritance_node";
inline constexpr char kJoinRelationship[] = "join_relationship";
inline constexpr char kRelationshipNode[] = "relationship_node";
inline constexpr char kOntologyConcept[] = "ontology_concept";
inline constexpr char kDbpediaTerm[] = "dbpedia_term";
inline constexpr char kMetadataFilter[] = "metadata_filter";

// ---- physical schema edges --------------------------------------------------
inline constexpr char kTablename[] = "tablename";    // table -> t:name
inline constexpr char kColumnname[] = "columnname";  // column -> t:name
inline constexpr char kColumn[] = "column";          // table -> column
inline constexpr char kForeignKey[] = "foreign_key";  // fk col -> pk col

// Explicit join node (the more general Credit Suisse Join-Relationship):
inline constexpr char kJoinForeignKey[] = "join_foreign_key";  // join -> col
inline constexpr char kJoinPrimaryKey[] = "join_primary_key";  // join -> col

// ---- inheritance ------------------------------------------------------------
inline constexpr char kInheritanceParent[] = "inheritance_parent";
inline constexpr char kInheritanceChild[] = "inheritance_child";

// ---- conceptual / logical schema edges -------------------------------------
inline constexpr char kEntityname[] = "entityname";        // entity -> t:name
inline constexpr char kAttributename[] = "attributename";  // attr -> t:name
inline constexpr char kAttribute[] = "attribute";          // entity -> attr
inline constexpr char kRelFrom[] = "rel_from";             // relationship
inline constexpr char kRelTo[] = "rel_to";

// Cross-layer mapping: conceptual -> logical -> physical.
inline constexpr char kImplementedBy[] = "implemented_by";
// Attribute-level mapping onto physical columns.
inline constexpr char kRealizedBy[] = "realized_by";

// ---- ontology / DBpedia edges ----------------------------------------------
inline constexpr char kClassifies[] = "classifies";  // concept -> schema node
inline constexpr char kSubconceptOf[] = "subconcept_of";
inline constexpr char kSynonymOf[] = "synonym_of";  // dbpedia -> schema node

// ---- metadata-defined filters (e.g. "wealthy customer") ---------------------
inline constexpr char kFilterColumn[] = "filter_column";  // filter -> column
inline constexpr char kFilterOp[] = "filter_op";          // filter -> t:op
inline constexpr char kFilterValue[] = "filter_value";    // filter -> t:value

// ---- metadata-defined aggregations (e.g. "trading volume" = sum of the
// transaction amount, paper Section 4.4.2) ------------------------------------
inline constexpr char kMetadataAggregation[] = "metadata_aggregation";
inline constexpr char kAggColumn[] = "agg_column";  // agg -> column
inline constexpr char kAggFunc[] = "agg_func";      // agg -> t:sum|count|...

// ---- schema annotations (war stories, Section 5.3.1) ------------------------
// A join_relationship annotated as ignored (e.g. unpopulated bridge table).
inline constexpr char kAnnotation[] = "annotation";        // node -> t:text
inline constexpr char kIgnoreRelationship[] = "ignore_relationship";

}  // namespace vocab
}  // namespace soda

#endif  // SODA_GRAPH_VOCAB_H_
