#include "graph/metadata_graph.h"

#include <algorithm>

#include "common/strings.h"

namespace soda {

const char* MetadataLayerName(MetadataLayer layer) {
  switch (layer) {
    case MetadataLayer::kConceptualSchema:
      return "conceptual schema";
    case MetadataLayer::kLogicalSchema:
      return "logical schema";
    case MetadataLayer::kPhysicalSchema:
      return "physical schema";
    case MetadataLayer::kDomainOntology:
      return "domain ontology";
    case MetadataLayer::kDbpedia:
      return "DBpedia";
    case MetadataLayer::kBaseData:
      return "base data";
    case MetadataLayer::kOther:
      return "other";
  }
  return "other";
}

UriId UriTable::Intern(std::string_view uri) {
  auto it = index_.find(std::string(uri));
  if (it != index_.end()) return it->second;
  UriId id = static_cast<UriId>(uris_.size());
  uris_.emplace_back(uri);
  index_.emplace(uris_.back(), id);
  return id;
}

std::optional<UriId> UriTable::Find(std::string_view uri) const {
  auto it = index_.find(std::string(uri));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Result<NodeId> MetadataGraph::AddNode(std::string_view uri,
                                      MetadataLayer layer) {
  UriId uid = uri_table_.Intern(uri);
  if (node_by_uri_.count(uid) > 0) {
    return Status::AlreadyExists("node '" + std::string(uri) +
                                 "' already exists");
  }
  NodeId id = static_cast<NodeId>(layers_.size());
  node_uris_.push_back(uid);
  layers_.push_back(layer);
  out_.emplace_back();
  in_.emplace_back();
  text_.emplace_back();
  node_by_uri_[uid] = id;
  return id;
}

NodeId MetadataGraph::GetOrAddNode(std::string_view uri, MetadataLayer layer) {
  NodeId existing = FindNode(uri);
  if (existing != kInvalidNode) return existing;
  return *AddNode(uri, layer);
}

NodeId MetadataGraph::FindNode(std::string_view uri) const {
  auto uid = uri_table_.Find(uri);
  if (!uid.has_value()) return kInvalidNode;
  auto it = node_by_uri_.find(*uid);
  return it == node_by_uri_.end() ? kInvalidNode : it->second;
}

void MetadataGraph::AddEdge(NodeId from, std::string_view predicate,
                            NodeId to) {
  UriId pred = uri_table_.Intern(predicate);
  out_[from].push_back(Edge{pred, to});
  in_[to].push_back(Edge{pred, from});
  ++num_edges_;
}

void MetadataGraph::AddTextEdge(NodeId from, std::string_view predicate,
                                std::string_view text) {
  UriId pred = uri_table_.Intern(predicate);
  text_[from].push_back(TextEdge{pred, std::string(text)});
  ++num_text_edges_;
}

NodeId MetadataGraph::FirstTarget(NodeId n,
                                  std::string_view predicate) const {
  auto pred = uri_table_.Find(predicate);
  if (!pred.has_value()) return kInvalidNode;
  for (const Edge& e : out_[n]) {
    if (e.predicate == *pred) return e.target;
  }
  return kInvalidNode;
}

std::vector<NodeId> MetadataGraph::Targets(NodeId n,
                                           std::string_view predicate) const {
  std::vector<NodeId> out;
  auto pred = uri_table_.Find(predicate);
  if (!pred.has_value()) return out;
  for (const Edge& e : out_[n]) {
    if (e.predicate == *pred) out.push_back(e.target);
  }
  return out;
}

std::vector<NodeId> MetadataGraph::Sources(NodeId n,
                                           std::string_view predicate) const {
  std::vector<NodeId> out;
  auto pred = uri_table_.Find(predicate);
  if (!pred.has_value()) return out;
  for (const Edge& e : in_[n]) {
    if (e.predicate == *pred) out.push_back(e.target);
  }
  return out;
}

std::optional<std::string> MetadataGraph::FirstText(
    NodeId n, std::string_view predicate) const {
  auto pred = uri_table_.Find(predicate);
  if (!pred.has_value()) return std::nullopt;
  for (const TextEdge& e : text_[n]) {
    if (e.predicate == *pred) return e.text;
  }
  return std::nullopt;
}

bool MetadataGraph::HasEdge(NodeId from, std::string_view predicate,
                            NodeId to) const {
  auto pred = uri_table_.Find(predicate);
  if (!pred.has_value()) return false;
  for (const Edge& e : out_[from]) {
    if (e.predicate == *pred && e.target == to) return true;
  }
  return false;
}

bool MetadataGraph::HasType(NodeId n, std::string_view type_uri) const {
  NodeId type_node = FindNode(type_uri);
  if (type_node == kInvalidNode) return false;
  return HasEdge(n, "type", type_node);
}

std::vector<std::pair<NodeId, NodeId>> MetadataGraph::EdgesWithPredicate(
    std::string_view predicate) const {
  std::vector<std::pair<NodeId, NodeId>> result;
  auto pred = uri_table_.Find(predicate);
  if (!pred.has_value()) return result;
  for (NodeId n = 0; n < static_cast<NodeId>(out_.size()); ++n) {
    for (const Edge& e : out_[n]) {
      if (e.predicate == *pred) result.emplace_back(n, e.target);
    }
  }
  return result;
}

std::vector<NodeId> MetadataGraph::NodesInLayer(MetadataLayer layer) const {
  std::vector<NodeId> result;
  for (NodeId n = 0; n < static_cast<NodeId>(layers_.size()); ++n) {
    if (layers_[n] == layer) result.push_back(n);
  }
  return result;
}

std::string MetadataGraph::ToDot(size_t max_nodes) const {
  std::string dot = "digraph metadata {\n  rankdir=LR;\n";
  size_t limit = std::min(max_nodes, layers_.size());
  for (size_t n = 0; n < limit; ++n) {
    dot += StrFormat("  n%zu [label=\"%s\\n(%s)\"];\n", n,
                     uri(static_cast<NodeId>(n)).c_str(),
                     MetadataLayerName(layers_[n]));
  }
  for (size_t n = 0; n < limit; ++n) {
    for (const Edge& e : out_[n]) {
      if (static_cast<size_t>(e.target) >= limit) continue;
      dot += StrFormat("  n%zu -> n%d [label=\"%s\"];\n", n, e.target,
                       uri_table_.Lookup(e.predicate).c_str());
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace soda
