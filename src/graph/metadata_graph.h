// The extended metadata graph (paper Section 2.2, Figure 3).
//
// An RDF-style triple store over interned URIs. Triples either connect two
// nodes (`node --predicate--> node`) or attach a text label to a node
// (`node --predicate--> "text"`). Every node carries a provenance layer
// (conceptual / logical / physical schema, domain ontology, DBpedia, base
// data) which drives SODA's ranking heuristic in Step 2.

#ifndef SODA_GRAPH_METADATA_GRAPH_H_
#define SODA_GRAPH_METADATA_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace soda {

using NodeId = int32_t;
using UriId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// Provenance of a metadata node — which part of Figure 3 it lives in.
enum class MetadataLayer {
  kConceptualSchema = 0,
  kLogicalSchema,
  kPhysicalSchema,
  kDomainOntology,
  kDbpedia,
  kBaseData,   // virtual nodes representing inverted-index hits
  kOther,
};

const char* MetadataLayerName(MetadataLayer layer);

/// Interner mapping URI strings <-> dense ids.
class UriTable {
 public:
  /// Returns the id for `uri`, creating it on first use.
  UriId Intern(std::string_view uri);

  /// Returns the id or nullopt when never interned.
  std::optional<UriId> Find(std::string_view uri) const;

  const std::string& Lookup(UriId id) const { return uris_[id]; }
  size_t size() const { return uris_.size(); }

 private:
  std::vector<std::string> uris_;
  std::unordered_map<std::string, UriId> index_;
};

/// One node -> node edge.
struct Edge {
  UriId predicate;
  NodeId target;
};

/// One node -> text edge.
struct TextEdge {
  UriId predicate;
  std::string text;
};

/// The metadata graph. Nodes are identified by unique URIs; edges are
/// unordered multi-sets per node with both directions indexed.
class MetadataGraph {
 public:
  /// Creates a node with a unique URI. Fails when the URI exists.
  Result<NodeId> AddNode(std::string_view uri, MetadataLayer layer);

  /// Returns the node for `uri`, or creates it.
  NodeId GetOrAddNode(std::string_view uri, MetadataLayer layer);

  /// Finds a node by URI; kInvalidNode when absent.
  NodeId FindNode(std::string_view uri) const;

  /// Adds a node -> node triple.
  void AddEdge(NodeId from, std::string_view predicate, NodeId to);

  /// Adds a node -> text triple.
  void AddTextEdge(NodeId from, std::string_view predicate,
                   std::string_view text);

  size_t num_nodes() const { return layers_.size(); }
  size_t num_edges() const { return num_edges_; }
  size_t num_text_edges() const { return num_text_edges_; }

  const std::string& uri(NodeId n) const { return uri_table_.Lookup(node_uris_[n]); }
  MetadataLayer layer(NodeId n) const { return layers_[n]; }

  const std::vector<Edge>& OutEdges(NodeId n) const { return out_[n]; }
  const std::vector<Edge>& InEdges(NodeId n) const { return in_[n]; }
  const std::vector<TextEdge>& TextEdges(NodeId n) const { return text_[n]; }

  /// Interns a predicate URI (for matcher hot paths).
  UriId InternPredicate(std::string_view predicate) {
    return uri_table_.Intern(predicate);
  }
  std::optional<UriId> FindPredicate(std::string_view predicate) const {
    return uri_table_.Find(predicate);
  }
  const std::string& PredicateUri(UriId id) const {
    return uri_table_.Lookup(id);
  }

  /// First target of an out-edge `n --predicate-->`, or kInvalidNode.
  NodeId FirstTarget(NodeId n, std::string_view predicate) const;

  /// All targets of out-edges with the given predicate.
  std::vector<NodeId> Targets(NodeId n, std::string_view predicate) const;

  /// All sources of in-edges with the given predicate.
  std::vector<NodeId> Sources(NodeId n, std::string_view predicate) const;

  /// First text of `n --predicate--> "text"`, or nullopt.
  std::optional<std::string> FirstText(NodeId n,
                                       std::string_view predicate) const;

  /// True when the triple (from, predicate, to) exists.
  bool HasEdge(NodeId from, std::string_view predicate, NodeId to) const;

  /// True when node `n` has `type` edge to the node whose URI is
  /// `type_uri` (convenience for the common `( x type T )` test).
  bool HasType(NodeId n, std::string_view type_uri) const;

  /// All (subject, object) pairs connected by `predicate` — supports
  /// pattern triples with two unbound variables.
  std::vector<std::pair<NodeId, NodeId>> EdgesWithPredicate(
      std::string_view predicate) const;

  /// All node ids whose layer equals `layer`.
  std::vector<NodeId> NodesInLayer(MetadataLayer layer) const;

  /// Graphviz dot rendering (used by the schema-explorer example).
  std::string ToDot(size_t max_nodes = 200) const;

 private:
  UriTable uri_table_;
  std::vector<UriId> node_uris_;
  std::vector<MetadataLayer> layers_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  std::vector<std::vector<TextEdge>> text_;
  std::unordered_map<UriId, NodeId> node_by_uri_;
  size_t num_edges_ = 0;
  size_t num_text_edges_ = 0;
};

}  // namespace soda

#endif  // SODA_GRAPH_METADATA_GRAPH_H_
