#include "eval/workload.h"

namespace soda {

const std::vector<BenchmarkQuery>& EnterpriseWorkload() {
  static const std::vector<BenchmarkQuery>* kWorkload = [] {
    auto* workload = new std::vector<BenchmarkQuery>();

    // ---- Q1.0 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "1.0",
        "private customers family name",
        "Use customer domain ontology (D) and combine with attribute from "
        "schema (S). 3-way join incl. inheritance (I).",
        "Current family names of all private customers (3-way join through "
        "the snapshot name key).",
        {"SELECT indvl_td.id AS pid, indvl_nm_hist_td.family_name AS nm "
         "FROM party_td, indvl_td, indvl_nm_hist_td "
         "WHERE indvl_td.id = party_td.id "
         "AND indvl_td.curr_name_id = indvl_nm_hist_td.name_id"},
        {{"indvl_td.id|indvl_id", "family_name"}},
        1.00, 1.00, 1, 0, 3, 1, 1.54, 6, "DSI"});

    // ---- Q2.1 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "2.1",
        "Sara",
        "Use base data (B) as a filter criterion. 3-way join incl. "
        "inheritance (I) with where-clause on given name.",
        "The full name history of the customer currently named Sara. The "
        "history join (indvl_id) is not in the schema graph; SODA can only "
        "reach the current name version, hence recall 0.2.",
        {"SELECT indvl_nm_hist_td.indvl_id AS pid, "
         "indvl_nm_hist_td.given_name AS gn, "
         "indvl_nm_hist_td.valid_from AS vf "
         "FROM party_td, indvl_td, indvl_nm_hist_td "
         "WHERE indvl_td.id = party_td.id "
         "AND indvl_nm_hist_td.indvl_id = indvl_td.id "
         "AND indvl_td.given_nm = 'Sara'"},
        {{"indvl_id|indvl_td.id", "given_nm|given_name", "valid_from"}},
        1.00, 0.20, 1, 3, 4, 4, 0.81, 1, "BI"});

    // ---- Q2.2 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "2.2",
        "Sara given name",
        "Same as for Q2.1 + restriction on given name (S).",
        "Same gold standard as Q2.1.",
        {"SELECT indvl_nm_hist_td.indvl_id AS pid, "
         "indvl_nm_hist_td.given_name AS gn, "
         "indvl_nm_hist_td.valid_from AS vf "
         "FROM party_td, indvl_td, indvl_nm_hist_td "
         "WHERE indvl_td.id = party_td.id "
         "AND indvl_nm_hist_td.indvl_id = indvl_td.id "
         "AND indvl_td.given_nm = 'Sara'"},
        {{"indvl_id|indvl_td.id", "given_nm|given_name", "valid_from"}},
        1.00, 0.20, 1, 1, 12, 2, 1.60, 3, "BSI"});

    // ---- Q2.3 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "2.3",
        "Sara birth date",
        "Restriction on birth date to focus on specific table (S).",
        "Birth date of the customer named Sara (the snapshot join suffices "
        "for current-state questions, hence full recall).",
        {"SELECT indvl_td.id AS pid, indvl_td.birth_dt AS bd "
         "FROM party_td, indvl_td, indvl_nm_hist_td "
         "WHERE indvl_td.id = party_td.id "
         "AND indvl_nm_hist_td.indvl_id = indvl_td.id "
         "AND indvl_td.given_nm = 'Sara'"},
        {{"indvl_td.id|indvl_id", "birth_dt"}},
        1.00, 1.00, 1, 2, 12, 3, 1.69, 3, "BSI"});

    // ---- Q3.1 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "3.1",
        "Credit Suisse",
        "Use base data (B) as a filter criterion to find the organization.",
        "The organization named Credit Suisse.",
        {"SELECT org_td.id AS oid FROM org_td "
         "WHERE org_td.org_nm = 'Credit Suisse'"},
        {{"org_td.id|org_id"}},
        1.00, 1.00, 2, 4, 12, 6, 3.78, 2, "B"});

    // ---- Q3.2 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "3.2",
        "Credit Suisse",
        "Use base data (B) as a filter criterion to find Credit Suisse "
        "agreements.",
        "The Credit Suisse master agreement (deals table).",
        {"SELECT agrmnt_td.id AS aid FROM agrmnt_td "
         "WHERE agrmnt_td.agrmnt_nm = 'Credit Suisse Master Agreement'"},
        {{"agrmnt_td.id"}},
        1.00, 1.00, 3, 3, 12, 6, 3.78, 2, "B"});

    // ---- Q4.0 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "4.0",
        "gold agreement",
        "Use base data (B) as filter and match with schema attribute (S). "
        "2-way join.",
        "The gold hedging agreement and its holding party.",
        {"SELECT agrmnt_td.id AS aid FROM agrmnt_td, party_td "
         "WHERE agrmnt_td.party_id = party_td.id "
         "AND agrmnt_td.agrmnt_nm = 'Gold Hedging Agreement'"},
        {{"agrmnt_td.id"}},
        1.00, 1.00, 1, 3, 16, 4, 4.89, 4, "BS"});

    // ---- Q5.0 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "5.0",
        "customers names",
        "Identify inheritance relationships (I) and use names domain "
        "ontology (D).",
        "Two separate 3-way join queries for private and corporate clients "
        "(current names). SODA routes the organization side through the "
        "associate-employment bridge between the inheritance siblings, "
        "collapsing precision.",
        {"SELECT indvl_td.id AS pid, indvl_nm_hist_td.family_name AS nm "
         "FROM indvl_td, indvl_nm_hist_td "
         "WHERE indvl_td.curr_name_id = indvl_nm_hist_td.name_id",
         "SELECT org_td.id AS pid, org_nm_hist_td.org_name AS nm "
         "FROM org_td, org_nm_hist_td "
         "WHERE org_td.curr_name_id = org_nm_hist_td.name_id"},
        {{"party_td.id", "family_name"}, {"party_td.id", "org_name"}},
        0.12, 0.56, 1, 4, 4, 4, 1.24, 6, "DI"});

    // ---- Q6.0 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "6.0",
        "trade order period > date(2011-09-01)",
        "Time-based range query (P) on given column (S).",
        "Trade orders with a period after September 2011.",
        {"SELECT trd_ordr_td.id AS oid "
         "FROM party_td, ordr_td, trd_ordr_td "
         "WHERE ordr_td.party_id = party_td.id "
         "AND trd_ordr_td.id = ordr_td.id "
         "AND trd_ordr_td.period_dt > DATE '2011-09-01'"},
        {{"trd_ordr_td.id"}},
        1.00, 1.00, 2, 0, 5, 2, 0.73, 1, "SPI"});

    // ---- Q7.0 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "7.0",
        "YEN trade order",
        "Use base data (B) filters and schema (S).",
        "Trade orders fully denominated in YEN (order AND settlement "
        "currency). SODA restricts only the order currency, returning a "
        "2x superset.",
        {"SELECT trd_ordr_td.id AS oid "
         "FROM party_td, ordr_td, trd_ordr_td, crncy_td "
         "WHERE ordr_td.party_id = party_td.id "
         "AND trd_ordr_td.id = ordr_td.id "
         "AND trd_ordr_td.crncy_cd = crncy_td.cd "
         "AND crncy_td.cd = 'YEN' "
         "AND trd_ordr_td.settle_crncy_cd = 'YEN'"},
        {{"trd_ordr_td.id"}},
        0.50, 1.00, 1, 3, 20, 4, 4.94, 1, "BSI"});

    // ---- Q8.0 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "8.0",
        "trade order investment product Lehman XYZ",
        "Base data (B) + schema (S). 5-way join with where-clause incl. "
        "inheritance (I).",
        "Trade orders of the Lehman XYZ product.",
        {"SELECT trd_ordr_td.id AS oid "
         "FROM party_td, ordr_td, trd_ordr_td, invst_prod_td "
         "WHERE ordr_td.party_id = party_td.id "
         "AND trd_ordr_td.id = ordr_td.id "
         "AND trd_ordr_td.prod_id = invst_prod_td.id "
         "AND invst_prod_td.prod_nm = 'Lehman XYZ'"},
        {{"trd_ordr_td.id"}},
        1.00, 1.00, 2, 2, 8, 4, 2.94, 2, "BSI"});

    // ---- Q9.0 ---------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "9.0",
        "select count() private customers Switzerland",
        "Base data (B) + domain ontology (D) + aggregation (A) incl. "
        "inheritance (I).",
        "Number of distinct private customers with an address in "
        "Switzerland. SODA's COUNT(*) over the party-address bridge "
        "double-counts (two addresses per person) — every produced count "
        "is wrong.",
        {"SELECT count(DISTINCT indvl_td.id) AS cnt "
         "FROM party_td, indvl_td, party_addr_td, addr_td "
         "WHERE indvl_td.id = party_td.id "
         "AND party_addr_td.party_id = party_td.id "
         "AND party_addr_td.addr_id = addr_td.id "
         "AND addr_td.cntry = 'Switzerland'"},
        {{"cnt|count(*)"}},
        0.00, 0.00, 0, 6, 30, 6, 7.31, 1, "BDAI"});

    // ---- Q10.0 --------------------------------------------------------------
    workload->push_back(BenchmarkQuery{
        "10.0",
        "sum(investments) group by (currency)",
        "Aggregation (A) with explicit grouping and schema (S).",
        "Total investments per currency.",
        {"SELECT sum(invst_pos_td.invst_amt) AS total, "
         "invst_pos_td.crncy_cd AS currency "
         "FROM invst_pos_td GROUP BY invst_pos_td.crncy_cd"},
        {{"total|sum(invst_pos_td.invst_amt)", "currency|crncy_cd"}},
        1.00, 1.00, 1, 5, 25, 6, 2.83, 40, "SA"});

    return workload;
  }();
  return *kWorkload;
}

}  // namespace soda
