#include "eval/harness.h"

#include <chrono>

namespace soda {

Result<QueryEvaluation> EvaluateQuery(const Soda& soda,
                                      const BenchmarkQuery& query) {
  QueryEvaluation evaluation;
  evaluation.id = query.id;

  // Gold standard: union of the gold statements' tuple sets.
  Executor executor(soda.database());
  std::set<std::string> gold;
  for (const std::string& sql : query.gold_sql) {
    SODA_ASSIGN_OR_RETURN(ResultSet rs, executor.ExecuteSql(sql));
    for (auto& tuple : AllTuples(rs)) gold.insert(tuple);
  }

  // SODA translation.
  SODA_ASSIGN_OR_RETURN(SearchOutput output, soda.Search(query.keywords));
  evaluation.complexity = output.complexity;
  evaluation.num_results = output.results.size();
  evaluation.soda_ms = output.timings.soda_total_ms();

  // Execute every produced statement in full and score it.
  auto t0 = std::chrono::steady_clock::now();
  bool have_best = false;
  for (const SodaResult& result : output.results) {
    Result<ResultSet> rs = executor.Execute(result.statement);
    PrScore score;
    if (rs.ok()) {
      std::set<std::string> tuples = ExtractTuples(*rs, query.extractors);
      score = ComputePr(tuples, gold);
    }
    evaluation.per_result.push_back(score);
    if (score.precision > 0.0 && score.recall > 0.0) {
      ++evaluation.results_nonzero;
    } else {
      ++evaluation.results_zero;
    }
    bool better =
        !have_best || score.f1() > evaluation.best.f1() ||
        (score.f1() == evaluation.best.f1() &&
         score.precision > evaluation.best.precision);
    if (better) {
      evaluation.best = score;
      evaluation.best_sql = result.sql;
      have_best = true;
    }
  }
  evaluation.execute_ms = MsSince(t0);
  return evaluation;
}

Result<std::vector<QueryEvaluation>> EvaluateWorkload(
    const Soda& soda, const std::vector<BenchmarkQuery>& workload) {
  std::vector<QueryEvaluation> evaluations;
  for (const BenchmarkQuery& query : workload) {
    SODA_ASSIGN_OR_RETURN(QueryEvaluation evaluation,
                          EvaluateQuery(soda, query));
    evaluations.push_back(std::move(evaluation));
  }
  return evaluations;
}

}  // namespace soda
