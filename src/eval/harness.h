// Evaluation harness: runs a benchmark query through SODA, executes the
// generated statements and the gold standard, and scores precision/recall
// (paper Tables 3 and 4).

#ifndef SODA_EVAL_HARNESS_H_
#define SODA_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "core/soda.h"
#include "eval/precision_recall.h"
#include "eval/workload.h"

namespace soda {

/// The evaluation of one benchmark query.
struct QueryEvaluation {
  std::string id;
  size_t complexity = 0;    // lookup combinatorics
  size_t num_results = 0;   // distinct SQL statements produced
  PrScore best;             // best result (max F1, then precision)
  std::string best_sql;     // the statement that scored best
  int results_nonzero = 0;  // results with P,R > 0
  int results_zero = 0;     // results with P,R = 0
  double soda_ms = 0.0;     // translation time (steps 1-5)
  double execute_ms = 0.0;  // executing all generated statements
  std::vector<PrScore> per_result;
};

/// Runs one query end to end. The Soda instance should be configured with
/// execute_snippets=false so translation time is measured separately.
Result<QueryEvaluation> EvaluateQuery(const Soda& soda,
                                      const BenchmarkQuery& query);

/// Runs the whole workload.
Result<std::vector<QueryEvaluation>> EvaluateWorkload(
    const Soda& soda, const std::vector<BenchmarkQuery>& workload);

}  // namespace soda

#endif  // SODA_EVAL_HARNESS_H_
