#include "eval/precision_recall.h"

#include "common/strings.h"

namespace soda {

namespace {

// Finds the index of the output column matching `spec` (alternatives
// separated by '|'), or -1.
int FindColumn(const std::vector<std::string>& columns,
               const std::string& spec) {
  for (const auto& alternative : Split(spec, '|')) {
    for (size_t c = 0; c < columns.size(); ++c) {
      const std::string& column = columns[c];
      if (EqualsFolded(column, alternative)) return static_cast<int>(c);
      // Suffix match at a '.' boundary: "family_name" vs
      // "indvl_nm_hist_td.family_name".
      if (column.size() > alternative.size() + 1) {
        size_t offset = column.size() - alternative.size();
        if (column[offset - 1] == '.' &&
            EqualsFolded(column.substr(offset), alternative)) {
          return static_cast<int>(c);
        }
      }
    }
  }
  return -1;
}

}  // namespace

std::set<std::string> ExtractTuples(
    const ResultSet& rs, const std::vector<TupleExtractor>& extractors) {
  std::set<std::string> tuples;
  for (const TupleExtractor& extractor : extractors) {
    std::vector<int> indexes;
    bool all_found = true;
    for (const std::string& spec : extractor) {
      int index = FindColumn(rs.column_names, spec);
      if (index < 0) {
        all_found = false;
        break;
      }
      indexes.push_back(index);
    }
    if (!all_found) continue;
    for (const auto& row : rs.rows) {
      std::string key;
      for (int index : indexes) {
        key += row[static_cast<size_t>(index)].ToSqlLiteral();
        key += '\x1f';
      }
      tuples.insert(std::move(key));
    }
  }
  return tuples;
}

std::set<std::string> AllTuples(const ResultSet& rs) {
  std::set<std::string> tuples;
  for (const auto& row : rs.rows) {
    tuples.insert(ResultSet::RowKey(row));
  }
  return tuples;
}

PrScore ComputePr(const std::set<std::string>& result_tuples,
                  const std::set<std::string>& gold_tuples) {
  PrScore score;
  score.result_tuples = result_tuples.size();
  score.gold_tuples = gold_tuples.size();
  for (const auto& tuple : result_tuples) {
    if (gold_tuples.count(tuple) > 0) ++score.overlap;
  }
  if (score.result_tuples > 0) {
    score.precision = static_cast<double>(score.overlap) /
                      static_cast<double>(score.result_tuples);
  }
  if (score.gold_tuples > 0) {
    score.recall = static_cast<double>(score.overlap) /
                   static_cast<double>(score.gold_tuples);
  }
  return score;
}

}  // namespace soda
