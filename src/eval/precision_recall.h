// Tuple-set precision/recall (paper Section 5.2.1).
//
// "To compute precision, we compared the result tuples of a produced SQL
//  statement of SODA with the result tuples of the Gold Standard query."
//
// Results are compared as sets of distinct projected tuples. Gold results
// project their comparison columns directly in the gold SQL; SODA results
// are projected by *tuple extractors*: lists of column names (with
// `a|b` alternatives) that are suffix-matched against the result's output
// columns. Every extractor that matches contributes its tuples; an
// extractor that cannot match contributes nothing (a result lacking the
// comparison columns scores zero, like the paper's 0-precision rows).

#ifndef SODA_EVAL_PRECISION_RECALL_H_
#define SODA_EVAL_PRECISION_RECALL_H_

#include <set>
#include <string>
#include <vector>

#include "sql/result_set.h"

namespace soda {

/// Precision/recall of one result against one gold tuple set.
struct PrScore {
  double precision = 0.0;
  double recall = 0.0;
  size_t result_tuples = 0;
  size_t gold_tuples = 0;
  size_t overlap = 0;

  double f1() const {
    return (precision + recall) == 0.0
               ? 0.0
               : 2.0 * precision * recall / (precision + recall);
  }
};

/// One extractor: a list of column specs, each spec being alternatives
/// separated by '|' ("indvl_td.id|indvl_id").
using TupleExtractor = std::vector<std::string>;

/// Extracts the distinct tuple set from `rs` using `extractors`.
/// A column spec matches an output column when it equals the column name
/// or is a suffix of it after a '.' boundary (spec "family_name" matches
/// "indvl_nm_hist_td.family_name" but not "x.a_family_name").
std::set<std::string> ExtractTuples(
    const ResultSet& rs, const std::vector<TupleExtractor>& extractors);

/// The whole result as tuples (all columns) — used for gold statements,
/// which project exactly the comparison columns.
std::set<std::string> AllTuples(const ResultSet& rs);

/// Set-based precision/recall.
PrScore ComputePr(const std::set<std::string>& result_tuples,
                  const std::set<std::string>& gold_tuples);

}  // namespace soda

#endif  // SODA_EVAL_PRECISION_RECALL_H_
