// The 13-query benchmark workload of the paper's evaluation (Table 2),
// adapted to the synthetic enterprise warehouse, with hand-written gold
// standards and the paper's reference numbers for side-by-side reporting.

#ifndef SODA_EVAL_WORKLOAD_H_
#define SODA_EVAL_WORKLOAD_H_

#include <string>
#include <vector>

#include "eval/precision_recall.h"

namespace soda {

struct BenchmarkQuery {
  std::string id;        // "1.0", "2.1", ...
  std::string keywords;  // the SODA input
  std::string comment;   // query-type tags, as in paper Table 2
  std::string gold_description;

  /// Gold standard: one or more statements whose tuple sets union
  /// (paper Q5.0 needs "two separate 3-way join queries"). Each statement
  /// projects exactly the comparison columns.
  std::vector<std::string> gold_sql;

  /// Tuple extractors applied to every SODA result (see
  /// eval/precision_recall.h).
  std::vector<TupleExtractor> extractors;

  // Paper reference numbers (Tables 3 and 4).
  double paper_precision = 0.0;
  double paper_recall = 0.0;
  int paper_results_nonzero = 0;
  int paper_results_zero = 0;
  int paper_complexity = 0;
  int paper_num_results = 0;
  double paper_soda_seconds = 0.0;
  int paper_total_minutes = 0;

  /// Query-type tags for the Table 5 comparison: subset of
  /// {B, S, D, I, P, A} (base data, schema, domain ontology, inheritance,
  /// predicates, aggregates).
  std::string types;
};

/// The full workload, in paper order.
const std::vector<BenchmarkQuery>& EnterpriseWorkload();

}  // namespace soda

#endif  // SODA_EVAL_WORKLOAD_H_
