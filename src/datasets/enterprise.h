// The synthetic enterprise data warehouse used for the paper's evaluation
// (Section 5). This substitutes for the Credit Suisse integration layer:
//
//  * the schema graph reproduces the cardinalities of paper Table 1
//    exactly (226 conceptual entities / 985 attributes / 243 relationships,
//    436 logical entities / 2700 attributes / 254 relationships,
//    472 physical tables / 3181 columns),
//  * physical names are abbreviated ("birth date" -> birth_dt, entity
//    tables suffixed _td) per Section 6.2,
//  * the structural hazards behind the paper's precision/recall outliers
//    are planted mechanically:
//      - bi-temporal name historization: individuals carry five name
//        versions in indvl_nm_hist_td; the history join
//        (indvl_nm_hist_td.indvl_id -> indvl_td.id) is implemented in the
//        data but NOT reflected in the schema graph — only the snapshot
//        join via curr_name_id is. Gold standards may use the history
//        join; SODA cannot (paper: recall 0.2 on Q2.1/Q2.2),
//      - a bridge table between inheritance siblings
//        (assoc_empl_td: individuals <-> organizations, paper Figure 10),
//        plus an unmodeled org -> party foreign key, which routes
//        organization joins through employments (precision collapse on
//        Q5.0 and the zero counts of Q9.0),
//      - a party <-> address bridge (party_addr_td) with two addresses
//        per individual, so COUNT(*) over the join double-counts persons
//        (Q9.0),
//  * specific values are planted to reproduce the lookup cardinalities of
//    paper Table 4 where the mechanism allows it ("Sara" occurs in exactly
//    4 (table, column, value) homes; "Credit Suisse" in 12).
//
// The base data volume is scaled down (the paper used 220 GB; every code
// path here is exercised by schema structure, not by volume).

#ifndef SODA_DATASETS_ENTERPRISE_H_
#define SODA_DATASETS_ENTERPRISE_H_

#include <memory>

#include "common/status.h"
#include "graph/metadata_graph.h"
#include "schema/warehouse_model.h"
#include "storage/table.h"

namespace soda {

// Core dataset constants (exposed for tests and the evaluation harness).
inline constexpr int kEntIndividuals = 500;
inline constexpr int kEntOrganizations = 300;
inline constexpr int kEntNameVersions = 5;   // per individual
inline constexpr int kEntOrgNameVersions = 3;  // per organization
inline constexpr int kEntEmployedIndividuals = 450;
inline constexpr int kEntEmployersPerIndividual = 7;
inline constexpr int kEntSwissIndividuals = 300;
inline constexpr int kEntAddressesPerIndividual = 2;
inline constexpr int kEntAgreements = 300;
inline constexpr int kEntProducts = 120;
inline constexpr int kEntOrders = 2000;
inline constexpr int kEntTradeOrders = 1200;
inline constexpr int kEntYenOrders = 200;         // order currency YEN
inline constexpr int kEntYenSettledYenOrders = 100;  // both YEN (gold Q7)
inline constexpr int kEntOtherSettledYenOrders = 150;
inline constexpr int kEntLehmanTrades = 15;
inline constexpr int kEntPositions = 1000;

// Paper Table 1 targets.
inline constexpr size_t kPaperConceptualEntities = 226;
inline constexpr size_t kPaperConceptualAttributes = 985;
inline constexpr size_t kPaperConceptualRelationships = 243;
inline constexpr size_t kPaperLogicalEntities = 436;
inline constexpr size_t kPaperLogicalAttributes = 2700;
inline constexpr size_t kPaperLogicalRelationships = 254;
inline constexpr size_t kPaperPhysicalTables = 472;
inline constexpr size_t kPaperPhysicalColumns = 3181;

/// A fully built enterprise warehouse.
struct EnterpriseWarehouse {
  WarehouseModel model;
  MetadataGraph graph;
  Database db;
};

/// Builds the enterprise warehouse (deterministic).
Result<std::unique_ptr<EnterpriseWarehouse>> BuildEnterpriseWarehouse();

/// The schema model only (core + filler, no graph, no data).
WarehouseModel EnterpriseModel();

}  // namespace soda

#endif  // SODA_DATASETS_ENTERPRISE_H_
