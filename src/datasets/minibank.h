// The paper's running example: a mini-bank with customers that buy and
// sell financial instruments (Section 2, Figures 1 and 2).
//
// Conceptual schema (Figure 1): Parties (with Individuals/Organizations as
// mutually exclusive specializations), Transactions (N-N between parties
// and financial instruments), Financial_Instruments (recursive N-N).
//
// Logical schema (Figure 2): addresses split into their own entity,
// transactions specialized into financial-instrument transactions and
// money transactions, financial instruments split into instruments,
// securities and the fi_contains_sec bridge.
//
// Physical schema: the tables used by the paper's example SQL (Query 1:
// FROM parties, individuals WHERE parties.id = individuals.id ...), except
// that the financial-instrument tables carry abbreviated physical names
// (fin_instruments) — mirroring the paper's observation that "physical
// column and table names never correspond to those documented as part of
// a conceptual or logical schema" (Section 6.2) and keeping the lookup
// cardinalities of Figure 5 exact (the phrase "financial instruments" is
// found twice: conceptual and logical schema).
//
// Base data is deterministic (fixed RNG seed) and includes the specific
// values the paper queries for: the customer Sara Guttinger, the city
// Zürich, organizations such as Credit Suisse.

#ifndef SODA_DATASETS_MINIBANK_H_
#define SODA_DATASETS_MINIBANK_H_

#include <memory>

#include "common/status.h"
#include "graph/metadata_graph.h"
#include "schema/warehouse_model.h"
#include "storage/table.h"

namespace soda {

/// A fully built mini-bank: schema model, compiled metadata graph, and
/// populated base data.
struct MiniBank {
  WarehouseModel model;
  MetadataGraph graph;
  Database db;

  /// Number of individuals living in Zürich (used by tests).
  size_t zurich_individuals = 0;
};

/// Builds the mini-bank. Deterministic: two calls produce identical data.
Result<std::unique_ptr<MiniBank>> BuildMiniBank();

/// The mini-bank's schema model only (no graph compilation, no data) —
/// used by schema-level tests.
WarehouseModel MiniBankModel();

}  // namespace soda

#endif  // SODA_DATASETS_MINIBANK_H_
