#include "datasets/minibank.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "storage/change_log.h"

namespace soda {

namespace {

const std::vector<std::string> kFirstNames = {
    "Anna",  "Bruno",  "Carla", "Daniel", "Elena",  "Felix",  "Gina",
    "Hans",  "Irene",  "Jonas", "Karin",  "Luca",   "Maria",  "Nico",
    "Olga",  "Peter",  "Rosa",  "Stefan", "Tanja",  "Urs",    "Vera",
    "Walter"};

const std::vector<std::string> kLastNames = {
    "Meier",   "Müller",  "Schmid",  "Keller",  "Weber",    "Huber",
    "Schneider", "Frei",  "Baumann", "Fischer", "Brunner",  "Gerber",
    "Widmer",  "Zimmermann", "Moser", "Graf",   "Wyss",     "Roth"};

const std::vector<std::string> kCities = {"Zürich", "Geneva", "Basel",
                                          "Bern", "Lugano", "Lausanne"};

// Note: no organization name contains the token "Zurich" — the Figure 5
// classification example requires the keyword "Zürich" to be found exactly
// once in the base data (addresses.city).
const std::vector<std::string> kOrganizations = {
    "Credit Suisse",        "IBM",                 "UBS",
    "Novartis",             "Roche",               "Swiss Re",
    "Nestlé",               "Helvetia Insurance",  "Swisscom",
    "ABB",                  "Holcim",              "Givaudan",
    "Sika",                 "Lonza",               "Geberit",
    "Sonova",               "Logitech",            "Kuehne Nagel",
    "Alpine Capital",       "Helvetia Holding"};

const std::vector<std::string> kStreets = {
    "Bahnhofstrasse", "Seestrasse",   "Hauptstrasse", "Dorfstrasse",
    "Kirchgasse",     "Lindenweg",    "Birkenweg",    "Rosenweg"};

const std::vector<std::string> kInstrumentNames = {
    "IBM shares",           "Novartis shares",      "Roche shares",
    "UBS shares",           "Nestlé shares",        "ABB shares",
    "Global Tech Fund",     "Alpine Equity Fund",   "Swiss Bond Fund",
    "Emerging Markets Fund", "Green Energy Fund",   "Alpine Hedge Fund",
    "Quant Macro Hedge Fund", "Gold Certificate",   "Silver Certificate",
    "Oil Futures Certificate", "Real Estate Fund",  "Dividend Fund",
    "Small Cap Fund",       "Infrastructure Fund",  "Biotech Fund",
    "Pharma Basket Certificate", "Currency Hedge Fund", "Credit Fund",
    "Momentum Fund",        "Value Fund",           "Growth Fund",
    "Balanced Fund",        "Income Fund",          "Commodity Fund"};

const std::vector<std::string> kInstrumentTypes = {"share", "fund",
                                                   "hedge fund",
                                                   "certificate"};

const std::vector<std::string> kCurrencies = {"CHF", "USD", "EUR", "YEN",
                                              "GBP"};

}  // namespace

WarehouseModel MiniBankModel() {
  WarehouseModel model;

  // ---- conceptual schema (Figure 1) --------------------------------------
  model.AddConceptualEntity(
      {"Parties", {{"name"}, {"address"}}, ""});
  model.AddConceptualEntity(
      {"Transactions",
       {{"amount", ValueType::kDouble}, {"transaction_date", ValueType::kDate}},
       ""});
  model.AddConceptualEntity(
      {"Financial_Instruments", {{"name"}, {"instrument_type"}}, ""});
  model.AddConceptualRelationship(
      {"party_trades", "Parties", "Transactions", /*many_to_many=*/false});
  model.AddConceptualRelationship({"trade_of_instrument", "Transactions",
                                   "Financial_Instruments", false});
  model.AddConceptualRelationship({"instrument_structure",
                                   "Financial_Instruments",
                                   "Financial_Instruments", true});

  // ---- logical schema (Figure 2) ------------------------------------------
  model.AddLogicalEntity({"Parties", {{"name"}}, "Parties"});
  model.AddLogicalEntity({"Individuals",
                          {{"first_name"},
                           {"last_name"},
                           {"salary", ValueType::kInt64},
                           {"birthday", ValueType::kDate}},
                          "Parties"});
  model.AddLogicalEntity(
      {"Organizations", {{"company_name"}}, "Parties"});
  model.AddLogicalEntity(
      {"Addresses", {{"street"}, {"city"}, {"country"}}, ""});
  model.AddLogicalEntity({"Transactions", {}, "Transactions"});
  model.AddLogicalEntity(
      {"Financial_Instrument_Transactions",
       {{"amount", ValueType::kDouble},
        {"transaction_date", ValueType::kDate}},
       "Transactions"});
  model.AddLogicalEntity({"Money_Transactions",
                          {{"amount", ValueType::kDouble},
                           {"currency"},
                           {"transaction_date", ValueType::kDate}},
                          "Transactions"});
  model.AddLogicalEntity({"Financial_Instruments",
                          {{"name"}, {"instrument_type"}},
                          "Financial_Instruments"});
  model.AddLogicalEntity({"Securities", {{"name"}, {"isin"}}, ""});
  model.AddLogicalRelationship(
      {"individual_address", "Individuals", "Addresses", false});
  model.AddLogicalRelationship(
      {"fi_composition", "Financial_Instruments", "Securities", true});

  // ---- physical schema -----------------------------------------------------
  // The parties supertype table holds only the key and a discriminator —
  // person names live in the individuals table (paper Query 1 filters
  // individuals.firstName / individuals.lastName).
  model.AddTable({"parties",
                  "Parties",
                  {{"id", ValueType::kInt64, ""},
                   {"party_type", ValueType::kString, ""}}});
  model.AddTable(
      {"individuals",
       "Individuals",
       {{"id", ValueType::kInt64, ""},
        {"firstName", ValueType::kString, "Individuals.first_name"},
        {"lastName", ValueType::kString, "Individuals.last_name"},
        {"salary", ValueType::kInt64, "Individuals.salary"},
        {"birthday", ValueType::kDate, "Individuals.birthday"}}});
  model.AddTable(
      {"organizations",
       "Organizations",
       {{"id", ValueType::kInt64, ""},
        {"companyname", ValueType::kString, "Organizations.company_name"}}});
  model.AddTable({"addresses",
                  "Addresses",
                  {{"id", ValueType::kInt64, ""},
                   {"party_id", ValueType::kInt64, ""},
                   {"street", ValueType::kString, "Addresses.street"},
                   {"city", ValueType::kString, "Addresses.city"},
                   {"country", ValueType::kString, "Addresses.country"}}});
  model.AddTable({"transactions",
                  "Transactions",
                  {{"id", ValueType::kInt64, ""},
                   {"fromParty", ValueType::kInt64, ""},
                   {"toParty", ValueType::kInt64, ""}}});
  model.AddTable(
      {"fi_transactions",
       "Financial_Instrument_Transactions",
       {{"id", ValueType::kInt64, ""},
        {"fi_id", ValueType::kInt64, ""},
        {"amount", ValueType::kDouble,
         "Financial_Instrument_Transactions.amount"},
        {"transactiondate", ValueType::kDate,
         "Financial_Instrument_Transactions.transaction_date"}}});
  model.AddTable(
      {"money_transactions",
       "Money_Transactions",
       {{"id", ValueType::kInt64, ""},
        {"amount", ValueType::kDouble, "Money_Transactions.amount"},
        {"currency", ValueType::kString, "Money_Transactions.currency"},
        {"transactiondate", ValueType::kDate,
         "Money_Transactions.transaction_date"}}});
  // Abbreviated physical name (see header comment).
  model.AddTable(
      {"fin_instruments",
       "Financial_Instruments",
       {{"id", ValueType::kInt64, ""},
        {"name", ValueType::kString, "Financial_Instruments.name"},
        {"instr_type", ValueType::kString,
         "Financial_Instruments.instrument_type"}}});
  // The securities table also backs the Financial_Instruments entity
  // split (structured instruments decompose into securities), which is
  // how the tables step reaches all three tables from the logical entity
  // (paper Figure 6 lists seven tables for the classification example).
  model.AddTable({"securities",
                  "Securities",
                  {{"id", ValueType::kInt64, ""},
                   {"name", ValueType::kString, "Securities.name"},
                   {"isin", ValueType::kString, "Securities.isin"}},
                  {"Financial_Instruments"}});
  model.AddTable({"fi_contains_sec",
                  "Financial_Instruments",
                  {{"fi_id", ValueType::kInt64, ""},
                   {"sec_id", ValueType::kInt64, ""}}});

  // ---- foreign keys (explicit join-relationship nodes) --------------------
  model.AddForeignKey({"individuals", "id", "parties", "id"});
  model.AddForeignKey({"organizations", "id", "parties", "id"});
  model.AddForeignKey({"addresses", "party_id", "individuals", "id"});
  model.AddForeignKey({"transactions", "fromParty", "parties", "id"});
  model.AddForeignKey({"transactions", "toParty", "parties", "id"});
  model.AddForeignKey({"fi_transactions", "id", "transactions", "id"});
  model.AddForeignKey({"money_transactions", "id", "transactions", "id"});
  model.AddForeignKey({"fi_transactions", "fi_id", "fin_instruments", "id"});
  model.AddForeignKey({"fi_contains_sec", "fi_id", "fin_instruments", "id"});
  model.AddForeignKey({"fi_contains_sec", "sec_id", "securities", "id"});

  // ---- inheritance ---------------------------------------------------------
  model.AddInheritance({"parties", {"individuals", "organizations"}});
  model.AddInheritance(
      {"transactions", {"fi_transactions", "money_transactions"}});

  // ---- domain ontology -----------------------------------------------------
  model.AddOntologyConcept({"Customers", "", {"logical:Parties"}});
  model.AddOntologyConcept(
      {"Private Customers", "Customers", {"logical:Individuals"}});
  model.AddOntologyConcept(
      {"Corporate Customers", "Customers", {"logical:Organizations"}});
  model.AddMetadataFilter(
      {"wealthy customers", "individuals", "salary", ">=", "1000000"});
  model.AddMetadataAggregation(
      {"trading volume", "sum", "fi_transactions", "amount"});

  // ---- DBpedia synonyms (Section 2.2: entries with direct connections to
  // the integrated schema; for "Parties": customer, client, political
  // organization, ...) --------------------------------------------------------
  model.AddDbpediaSynonym({"customer", {"logical:Parties"}});
  model.AddDbpediaSynonym({"client", {"logical:Parties"}});
  model.AddDbpediaSynonym({"political organization",
                           {"logical:Organizations"}});
  model.AddDbpediaSynonym({"company", {"logical:Organizations"}});
  model.AddDbpediaSynonym({"person", {"logical:Individuals"}});
  model.AddDbpediaSynonym({"share", {"logical:Financial_Instruments"}});
  model.AddDbpediaSynonym({"product", {"logical:Financial_Instruments"}});

  return model;
}

Result<std::unique_ptr<MiniBank>> BuildMiniBank() {
  auto bank = std::make_unique<MiniBank>();
  bank->model = MiniBankModel();
  SODA_RETURN_NOT_OK(bank->model.Compile(&bank->graph, &bank->db));

  Rng rng(0x50DA2012);

  Table* parties = bank->db.FindTable("parties");
  Table* individuals = bank->db.FindTable("individuals");
  Table* organizations = bank->db.FindTable("organizations");
  Table* addresses = bank->db.FindTable("addresses");
  Table* transactions = bank->db.FindTable("transactions");
  Table* fi_transactions = bank->db.FindTable("fi_transactions");
  Table* money_transactions = bank->db.FindTable("money_transactions");
  Table* instruments = bank->db.FindTable("fin_instruments");
  Table* securities = bank->db.FindTable("securities");
  Table* fi_contains_sec = bank->db.FindTable("fi_contains_sec");

  // Bulk load: coalesce publication to one change event per table (see
  // storage/change_log.h epoch semantics) — nobody is subscribed during
  // dataset construction, but generators must model the discipline live
  // loaders follow.
  ChangeLog::EpochGuard epoch(bank->db.change_log());

  constexpr int kNumIndividuals = 50;
  constexpr int kNumOrganizations = 20;

  // Individuals; party ids 1..50. Exactly one Sara Guttinger (id 7).
  for (int i = 1; i <= kNumIndividuals; ++i) {
    std::string first = kFirstNames[rng.Below(kFirstNames.size())];
    std::string last = kLastNames[rng.Below(kLastNames.size())];
    if (i == 7) {
      first = "Sara";
      last = "Guttinger";
    }
    int64_t salary = rng.Range(30, 2000) * 1000;
    Date birthday = Date::FromYmd(static_cast<int>(rng.Range(1950, 1995)),
                                  static_cast<int>(rng.Range(1, 12)),
                                  static_cast<int>(rng.Range(1, 28)));
    SODA_RETURN_NOT_OK(
        parties->Append({Value::Int(i), Value::Str("individual")}));
    SODA_RETURN_NOT_OK(individuals->Append({Value::Int(i), Value::Str(first),
                                            Value::Str(last),
                                            Value::Int(salary),
                                            Value::DateV(birthday)}));
    std::string city = kCities[rng.Below(kCities.size())];
    if (city == "Zürich") ++bank->zurich_individuals;
    SODA_RETURN_NOT_OK(addresses->Append(
        {Value::Int(i), Value::Int(i),
         Value::Str(kStreets[rng.Below(kStreets.size())] + " " +
                    std::to_string(rng.Range(1, 99))),
         Value::Str(city), Value::Str("Switzerland")}));
  }

  // Organizations; party ids 51..70.
  for (int i = 0; i < kNumOrganizations; ++i) {
    int64_t id = kNumIndividuals + 1 + i;
    const std::string& name = kOrganizations[static_cast<size_t>(i)];
    SODA_RETURN_NOT_OK(
        parties->Append({Value::Int(id), Value::Str("organization")}));
    SODA_RETURN_NOT_OK(
        organizations->Append({Value::Int(id), Value::Str(name)}));
  }

  // Financial instruments and securities.
  for (size_t i = 0; i < kInstrumentNames.size(); ++i) {
    const std::string& name = kInstrumentNames[i];
    std::string type = "share";
    if (name.find("Hedge") != std::string::npos) {
      type = "hedge fund";
    } else if (name.find("Fund") != std::string::npos) {
      type = "fund";
    } else if (name.find("Certificate") != std::string::npos) {
      type = "certificate";
    }
    SODA_RETURN_NOT_OK(instruments->Append(
        {Value::Int(static_cast<int64_t>(i + 1)), Value::Str(name),
         Value::Str(type)}));
  }
  for (int i = 1; i <= 25; ++i) {
    SODA_RETURN_NOT_OK(securities->Append(
        {Value::Int(i), Value::Str("Security " + std::to_string(i)),
         Value::Str(StrFormat("CH%010d", i * 37))}));
  }
  // Funds (ids 7..13 etc. — every non-share) contain securities.
  for (size_t i = 0; i < kInstrumentNames.size(); ++i) {
    if (kInstrumentNames[i].find("shares") != std::string::npos) continue;
    int64_t fi_id = static_cast<int64_t>(i + 1);
    size_t count = 2 + rng.Below(3);
    for (size_t k = 0; k < count; ++k) {
      SODA_RETURN_NOT_OK(fi_contains_sec->Append(
          {Value::Int(fi_id),
           Value::Int(static_cast<int64_t>(1 + rng.Below(25)))}));
    }
  }

  // Transactions: 300 financial-instrument trades + 200 money transfers.
  constexpr int kNumFiTransactions = 300;
  constexpr int kNumMoneyTransactions = 200;
  for (int i = 1; i <= kNumFiTransactions + kNumMoneyTransactions; ++i) {
    int64_t from = rng.Range(1, kNumIndividuals + kNumOrganizations);
    int64_t to = rng.Range(1, kNumIndividuals + kNumOrganizations);
    SODA_RETURN_NOT_OK(transactions->Append(
        {Value::Int(i), Value::Int(from), Value::Int(to)}));
    Date when = Date::FromYmd(static_cast<int>(rng.Range(2009, 2011)),
                              static_cast<int>(rng.Range(1, 12)),
                              static_cast<int>(rng.Range(1, 28)));
    if (i <= kNumFiTransactions) {
      SODA_RETURN_NOT_OK(fi_transactions->Append(
          {Value::Int(i),
           Value::Int(static_cast<int64_t>(
               1 + rng.Below(kInstrumentNames.size()))),
           Value::Real(static_cast<double>(rng.Range(100, 100000))),
           Value::DateV(when)}));
    } else {
      SODA_RETURN_NOT_OK(money_transactions->Append(
          {Value::Int(i),
           Value::Real(static_cast<double>(rng.Range(10, 50000))),
           Value::Str(kCurrencies[rng.Below(kCurrencies.size())]),
           Value::DateV(when)}));
    }
  }

  return bank;
}

}  // namespace soda
