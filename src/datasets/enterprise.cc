#include "datasets/enterprise.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "storage/change_log.h"

namespace soda {

namespace {

// ---------------------------------------------------------------------------
// Core schema: the entities the 13 benchmark queries touch.
// ---------------------------------------------------------------------------

void AddCoreSchema(WarehouseModel* model) {
  // ---- conceptual layer ---------------------------------------------------
  model->AddConceptualEntity(
      {"Party", {{"birth_date", ValueType::kDate},
                 {"salary", ValueType::kInt64}}, ""});
  model->AddConceptualEntity({"Name", {{"family_name"}}, ""});
  model->AddConceptualEntity(
      {"Address", {{"street"}, {"city"}, {"country"}}, ""});
  model->AddConceptualEntity(
      {"Agreement", {{"agreement_name"}, {"agreement_type"}}, ""});
  model->AddConceptualEntity(
      {"Order", {{"order_date", ValueType::kDate},
                 {"period", ValueType::kDate}}, ""});
  model->AddConceptualEntity(
      {"Investment_Product", {{"product_name"}, {"product_type"}}, ""});
  model->AddConceptualEntity(
      {"Currency", {{"currency_code"}, {"currency_name"}}, ""});
  model->AddConceptualEntity(
      {"Investment", {{"investments", ValueType::kDouble}, {"currency"}},
       ""});
  model->AddConceptualEntity({"Employment", {{"role"}}, ""});

  model->AddConceptualRelationship({"party_holds_agreement", "Party",
                                    "Agreement", false});
  model->AddConceptualRelationship({"party_places_order", "Party", "Order",
                                    false});
  model->AddConceptualRelationship({"order_of_product", "Order",
                                    "Investment_Product", false});
  model->AddConceptualRelationship({"order_in_currency", "Order", "Currency",
                                    false});
  model->AddConceptualRelationship({"party_has_address", "Party", "Address",
                                    true});
  model->AddConceptualRelationship({"party_has_name", "Party", "Name",
                                    false});
  model->AddConceptualRelationship({"position_of_party", "Party",
                                    "Investment", false});
  model->AddConceptualRelationship({"party_employment", "Party",
                                    "Employment", true});

  // ---- logical layer -------------------------------------------------------
  model->AddLogicalEntity({"Party", {{"party_type"}}, "Party"});
  model->AddLogicalEntity({"Individual",
                           {{"given_name"},
                            {"birth_date", ValueType::kDate},
                            {"salary", ValueType::kInt64}},
                           "Party"});
  model->AddLogicalEntity({"Organization", {{"org_name"}}, "Party"});
  model->AddLogicalEntity({"Individual_Name",
                           {{"given_name"},
                            {"family_name"},
                            {"valid_from", ValueType::kDate},
                            {"valid_to", ValueType::kDate}},
                           "Name"});
  model->AddLogicalEntity({"Organization_Name",
                           {{"org_name"},
                            {"valid_from", ValueType::kDate},
                            {"valid_to", ValueType::kDate}},
                           "Name"});
  model->AddLogicalEntity({"Employment", {{"role"}}, "Employment"});
  model->AddLogicalEntity(
      {"Address", {{"street"}, {"city"}, {"country"}}, "Address"});
  model->AddLogicalEntity(
      {"Agreement", {{"agreement_name"}, {"agreement_type"}}, "Agreement"});
  model->AddLogicalEntity({"Order",
                           {{"order_date", ValueType::kDate},
                            {"order_type"}},
                           "Order"});
  model->AddLogicalEntity({"Trade_Order",
                           {{"period", ValueType::kDate},
                            {"order_currency"},
                            {"settlement_currency"}},
                           "Order"});
  model->AddLogicalEntity({"Payment_Order",
                           {{"payment_amount", ValueType::kDouble},
                            {"payment_currency"}},
                           "Order"});
  model->AddLogicalEntity(
      {"Investment_Product", {{"product_name"}, {"product_type"}},
       "Investment_Product"});
  model->AddLogicalEntity(
      {"Currency", {{"currency_code"}, {"currency_name"}}, "Currency"});
  model->AddLogicalEntity({"Investment_Position",
                           {{"investments", ValueType::kDouble},
                            {"currency"}},
                           "Investment"});
  model->AddLogicalEntity({"Party_Address", {{"address_type"}}, ""});

  model->AddLogicalRelationship({"individual_employment", "Individual",
                                 "Employment", false});
  model->AddLogicalRelationship({"employment_org", "Employment",
                                 "Organization", false});
  model->AddLogicalRelationship({"individual_names", "Individual",
                                 "Individual_Name", false});
  model->AddLogicalRelationship({"org_names", "Organization",
                                 "Organization_Name", false});
  model->AddLogicalRelationship({"party_addresses", "Party", "Address",
                                 true});
  model->AddLogicalRelationship({"agreement_holder", "Agreement", "Party",
                                 false});
  model->AddLogicalRelationship({"order_placer", "Order", "Party", false});
  model->AddLogicalRelationship({"trade_product", "Trade_Order",
                                 "Investment_Product", false});
  model->AddLogicalRelationship({"trade_currency", "Trade_Order", "Currency",
                                 false});
  model->AddLogicalRelationship({"position_currency", "Investment_Position",
                                 "Currency", false});

  // ---- physical layer (abbreviated names, Section 6.2) ---------------------
  model->AddTable({"party_td",
                   "Party",
                   {{"id", ValueType::kInt64, ""},
                    {"party_type", ValueType::kString, "Party.party_type"}}});
  model->AddTable(
      {"indvl_td",
       "Individual",
       {{"id", ValueType::kInt64, ""},
        {"given_nm", ValueType::kString, "Individual.given_name"},
        {"birth_dt", ValueType::kDate, "Individual.birth_date"},
        {"salary_amt", ValueType::kInt64, "Individual.salary"},
        {"curr_name_id", ValueType::kInt64, ""}}});
  model->AddTable({"org_td",
                   "Organization",
                   {{"id", ValueType::kInt64, ""},
                    {"org_nm", ValueType::kString, "Organization.org_name"},
                    {"curr_name_id", ValueType::kInt64, ""},
                    {"main_addr_id", ValueType::kInt64, ""}}});
  // The history tables keep full column names — they were added in a later
  // modeling generation ("different conventions ... in each generation").
  model->AddTable(
      {"indvl_nm_hist_td",
       "Individual_Name",
       {{"name_id", ValueType::kInt64, ""},
        {"indvl_id", ValueType::kInt64, ""},
        {"given_name", ValueType::kString, "Individual_Name.given_name"},
        {"family_name", ValueType::kString, "Individual_Name.family_name"},
        {"valid_from", ValueType::kDate, "Individual_Name.valid_from"},
        {"valid_to", ValueType::kDate, "Individual_Name.valid_to"}}});
  model->AddTable(
      {"org_nm_hist_td",
       "Organization_Name",
       {{"name_id", ValueType::kInt64, ""},
        {"org_id", ValueType::kInt64, ""},
        {"org_name", ValueType::kString, "Organization_Name.org_name"},
        {"valid_from", ValueType::kDate, "Organization_Name.valid_from"},
        {"valid_to", ValueType::kDate, "Organization_Name.valid_to"}}});
  model->AddTable({"assoc_empl_td",
                   "Employment",
                   {{"indvl_id", ValueType::kInt64, ""},
                    {"org_id", ValueType::kInt64, ""},
                    {"role_cd", ValueType::kString, "Employment.role"}}});
  model->AddTable({"addr_td",
                   "Address",
                   {{"id", ValueType::kInt64, ""},
                    {"street", ValueType::kString, "Address.street"},
                    {"city", ValueType::kString, "Address.city"},
                    {"cntry", ValueType::kString, "Address.country"}}});
  model->AddTable(
      {"party_addr_td",
       "Party_Address",
       {{"party_id", ValueType::kInt64, ""},
        {"addr_id", ValueType::kInt64, ""},
        {"addr_type", ValueType::kString, "Party_Address.address_type"}}});
  model->AddTable(
      {"agrmnt_td",
       "Agreement",
       {{"id", ValueType::kInt64, ""},
        {"party_id", ValueType::kInt64, ""},
        {"agrmnt_nm", ValueType::kString, "Agreement.agreement_name"},
        {"agrmnt_type", ValueType::kString, "Agreement.agreement_type"}}});
  model->AddTable({"ordr_td",
                   "Order",
                   {{"id", ValueType::kInt64, ""},
                    {"party_id", ValueType::kInt64, ""},
                    {"ordr_dt", ValueType::kDate, "Order.order_date"},
                    {"ordr_type", ValueType::kString, "Order.order_type"}}});
  model->AddTable(
      {"trd_ordr_td",
       "Trade_Order",
       {{"id", ValueType::kInt64, ""},
        {"prod_id", ValueType::kInt64, ""},
        {"crncy_cd", ValueType::kString, "Trade_Order.order_currency"},
        {"settle_crncy_cd", ValueType::kString,
         "Trade_Order.settlement_currency"},
        {"period_dt", ValueType::kDate, "Trade_Order.period"}}});
  model->AddTable(
      {"pmt_ordr_td",
       "Payment_Order",
       {{"id", ValueType::kInt64, ""},
        {"pmt_amt", ValueType::kDouble, "Payment_Order.payment_amount"},
        {"crncy_cd", ValueType::kString, "Payment_Order.payment_currency"}}});
  model->AddTable(
      {"invst_prod_td",
       "Investment_Product",
       {{"id", ValueType::kInt64, ""},
        {"prod_nm", ValueType::kString, "Investment_Product.product_name"},
        {"prod_type", ValueType::kString,
         "Investment_Product.product_type"}}});
  model->AddTable({"crncy_td",
                   "Currency",
                   {{"cd", ValueType::kString, "Currency.currency_code"},
                    {"crncy_nm", ValueType::kString,
                     "Currency.currency_name"}}});
  model->AddTable(
      {"invst_pos_td",
       "Investment_Position",
       {{"id", ValueType::kInt64, ""},
        {"party_id", ValueType::kInt64, ""},
        {"invst_amt", ValueType::kDouble, "Investment_Position.investments"},
        {"crncy_cd", ValueType::kString, "Investment_Position.currency"}}});

  // ---- foreign keys in the schema graph ------------------------------------
  // NOT modeled (data only, see header): indvl_nm_hist_td.indvl_id ->
  // indvl_td.id, org_nm_hist_td.org_id -> org_td.id (bi-temporal history
  // joins), org_td.id -> party_td.id (lost in a migration — paper 5.3.1:
  // "some of the primary/foreign key relationships are not always
  // implemented").
  model->AddForeignKey({"indvl_td", "id", "party_td", "id"});
  model->AddForeignKey(
      {"indvl_td", "curr_name_id", "indvl_nm_hist_td", "name_id"});
  model->AddForeignKey(
      {"org_td", "curr_name_id", "org_nm_hist_td", "name_id"});
  model->AddForeignKey({"org_td", "main_addr_id", "addr_td", "id"});
  model->AddForeignKey({"assoc_empl_td", "indvl_id", "indvl_td", "id"});
  model->AddForeignKey({"assoc_empl_td", "org_id", "org_td", "id"});
  model->AddForeignKey({"party_addr_td", "party_id", "party_td", "id"});
  model->AddForeignKey({"party_addr_td", "addr_id", "addr_td", "id"});
  model->AddForeignKey({"agrmnt_td", "party_id", "party_td", "id"});
  model->AddForeignKey({"ordr_td", "party_id", "party_td", "id"});
  model->AddForeignKey({"trd_ordr_td", "id", "ordr_td", "id"});
  model->AddForeignKey({"pmt_ordr_td", "id", "ordr_td", "id"});
  model->AddForeignKey({"trd_ordr_td", "prod_id", "invst_prod_td", "id"});
  model->AddForeignKey({"trd_ordr_td", "crncy_cd", "crncy_td", "cd"});
  model->AddForeignKey({"trd_ordr_td", "settle_crncy_cd", "crncy_td", "cd"});
  model->AddForeignKey({"pmt_ordr_td", "crncy_cd", "crncy_td", "cd"});
  model->AddForeignKey({"invst_pos_td", "party_id", "party_td", "id"});
  model->AddForeignKey({"invst_pos_td", "crncy_cd", "crncy_td", "cd"});

  // ---- inheritance (multi-level, mutually exclusive) -----------------------
  model->AddInheritance({"party_td", {"indvl_td", "org_td"}});
  model->AddInheritance({"ordr_td", {"trd_ordr_td", "pmt_ordr_td"}});

  // ---- domain ontology ------------------------------------------------------
  model->AddOntologyConcept({"customers", "", {"logical:Party"}});
  model->AddOntologyConcept(
      {"private customers", "customers", {"logical:Individual"}});
  model->AddOntologyConcept(
      {"corporate customers", "customers", {"logical:Organization"}});
  model->AddOntologyConcept({"names",
                             "",
                             {"logical:Individual_Name",
                              "logical:Organization_Name"}});
  model->AddMetadataFilter(
      {"wealthy customers", "indvl_td", "salary_amt", ">=", "1000000"});
  model->AddMetadataAggregation(
      {"trading volume", "sum", "invst_pos_td", "invst_amt"});

  // ---- DBpedia --------------------------------------------------------------
  model->AddDbpediaSynonym({"customers", {"logical:Party"}});
  model->AddDbpediaSynonym({"client", {"logical:Party"}});
  model->AddDbpediaSynonym({"names", {"logical:Organization_Name"}});
  model->AddDbpediaSynonym({"birth date", {"logical:Individual"}});
  model->AddDbpediaSynonym({"company", {"logical:Organization"}});
}

// ---------------------------------------------------------------------------
// Filler schema: brings the schema graph to the paper Table 1 cardinalities.
// Filler clusters are internally joined but never connected to the core, so
// they cannot pollute join paths of the benchmark queries — they exercise
// lookup/traversal scale only.
// ---------------------------------------------------------------------------

// Distributes `total` items over `count` buckets as evenly as possible.
size_t BucketSize(size_t total, size_t count, size_t index) {
  size_t base = total / count;
  return base + (index < total % count ? 1 : 0);
}

void AddFillerSchema(WarehouseModel* model) {
  SchemaStats core = model->Stats();

  const size_t filler_conceptual =
      kPaperConceptualEntities - core.conceptual_entities;
  const size_t filler_conceptual_attrs =
      kPaperConceptualAttributes - core.conceptual_attributes;
  const size_t filler_logical = kPaperLogicalEntities - core.logical_entities;
  const size_t filler_logical_attrs =
      kPaperLogicalAttributes - core.logical_attributes;
  const size_t filler_tables = kPaperPhysicalTables - core.physical_tables;
  const size_t filler_columns = kPaperPhysicalColumns - core.physical_columns;

  // Conceptual fillers.
  std::vector<std::string> conceptual_names;
  for (size_t i = 0; i < filler_conceptual; ++i) {
    EntitySpec entity;
    entity.name = StrFormat("Domain%03zu_Entity", i);
    size_t attrs = BucketSize(filler_conceptual_attrs, filler_conceptual, i);
    for (size_t a = 0; a < attrs; ++a) {
      entity.attributes.push_back(
          {StrFormat("dm%03zu_attr%02zu", i, a), ValueType::kString});
    }
    conceptual_names.push_back(entity.name);
    model->AddConceptualEntity(std::move(entity));
  }
  // Conceptual relationships among fillers.
  Rng rel_rng(0xC0DE0001);
  for (size_t r = core.conceptual_relationships;
       r < kPaperConceptualRelationships; ++r) {
    const std::string& a = conceptual_names[rel_rng.Below(
        conceptual_names.size())];
    const std::string& b = conceptual_names[rel_rng.Below(
        conceptual_names.size())];
    model->AddConceptualRelationship(
        {StrFormat("filler_crel_%03zu", r), a, b, rel_rng.Chance(0.2)});
  }

  // Logical fillers: the first `filler_conceptual` implement the
  // conceptual fillers 1:1; the rest are purely technical entities.
  std::vector<std::string> logical_names;
  for (size_t i = 0; i < filler_logical; ++i) {
    EntitySpec entity;
    entity.name = StrFormat("Tech%03zu_Entity", i);
    entity.implements =
        i < conceptual_names.size() ? conceptual_names[i] : "";
    size_t attrs = BucketSize(filler_logical_attrs, filler_logical, i);
    for (size_t a = 0; a < attrs; ++a) {
      entity.attributes.push_back(
          {StrFormat("te%03zu_attr%02zu", i, a), ValueType::kString});
    }
    logical_names.push_back(entity.name);
    model->AddLogicalEntity(std::move(entity));
  }
  for (size_t r = core.logical_relationships;
       r < kPaperLogicalRelationships; ++r) {
    const std::string& a = logical_names[rel_rng.Below(logical_names.size())];
    const std::string& b = logical_names[rel_rng.Below(logical_names.size())];
    model->AddLogicalRelationship(
        {StrFormat("filler_lrel_%03zu", r), a, b, rel_rng.Chance(0.2)});
  }

  // Physical fillers: one table per logical filler, then partition tables
  // (the "_p2" convention — performance tricks of the DBAs).
  std::vector<std::string> table_names;
  for (size_t i = 0; i < filler_tables; ++i) {
    TableSpec table;
    bool partition = i >= logical_names.size();
    if (partition) {
      size_t base = i - logical_names.size();
      table.name = StrFormat("tec%03zu_td_p2", base);
      table.implements = logical_names[base];
    } else {
      table.name = StrFormat("tec%03zu_td", i);
      table.implements = logical_names[i];
    }
    size_t columns = BucketSize(filler_columns, filler_tables, i);
    if (columns == 0) columns = 1;
    for (size_t c = 0; c < columns; ++c) {
      // First column is the cluster join key; typed int.
      table.columns.push_back(
          {StrFormat("fc%zu", c),
           c == 0 ? ValueType::kInt64 : ValueType::kString, ""});
    }
    table_names.push_back(table.name);
    model->AddTable(std::move(table));
  }
  // Join the fillers in clusters of ten — realistic local connectivity
  // that never reaches the core tables.
  for (size_t i = 1; i < table_names.size(); ++i) {
    if (i % 10 == 0) continue;  // cluster boundary
    model->AddForeignKey(
        {table_names[i], "fc0", table_names[i - 1], "fc0"});
  }
}

// ---------------------------------------------------------------------------
// Base data.
// ---------------------------------------------------------------------------

const std::vector<std::string> kGivenNames = {
    "Anna",  "Bruno", "Carla", "Daniel", "Elena", "Felix", "Gina",
    "Hans",  "Irene", "Jonas", "Karin",  "Luca",  "Maria", "Nico",
    "Olga",  "Peter", "Rosa",  "Stefan", "Tanja", "Urs"};

const std::vector<std::string> kFamilyNames = {
    "Meier",     "Müller", "Schmid",  "Keller", "Weber",   "Huber",
    "Schneider", "Frei",   "Baumann", "Fischer", "Brunner", "Gerber",
    "Widmer",    "Moser",  "Graf",    "Wyss",    "Roth",    "Bieri"};

const std::vector<std::string> kOrgPrefixes = {
    "Alpine", "Helvetia", "Global", "Nordic",  "Pacific", "Atlas",
    "Meridian", "Summit", "Cascade", "Pioneer", "Sterling", "Vantage"};

const std::vector<std::string> kOrgSuffixes = {
    "Capital",  "Holding", "Partners", "Trust",   "Bank",
    "Insurance", "Trading", "Advisory", "Securities", "Asset Management"};

const std::vector<std::string> kCities = {
    "Zürich", "Geneva", "Basel", "Bern", "Lugano", "Frankfurt", "Paris",
    "London", "Milan",  "Vienna"};

const std::vector<std::string> kStreets = {
    "Bahnhofstrasse", "Seestrasse", "Hauptstrasse", "Dorfstrasse",
    "Kirchgasse",     "Lindenweg",  "Marktgasse",   "Industriestrasse"};

const std::vector<std::string> kForeignCountries = {
    "Germany", "France", "United Kingdom", "Italy", "Austria"};

const std::vector<std::string> kAgreementKinds = {
    "Custody",  "Lending", "Brokerage", "Margin", "Advisory",
    "Clearing", "Netting", "Framework"};

const std::vector<std::string> kProductKinds = {
    "Equity Basket", "Bond Ladder",  "Index Tracker", "Dividend Note",
    "Momentum Fund", "Value Basket", "Balanced Portfolio"};

const std::vector<std::string> kRoles = {"employee", "director", "advisor",
                                         "contractor"};

// Currency table: (code, name). "YEN" is the code the traders use (the
// benchmark keyword); the long name differs.
const std::vector<std::pair<std::string, std::string>> kCurrencies = {
    {"CHF", "Swiss Franc"},   {"USD", "US Dollar"},
    {"EUR", "Euro"},          {"YEN", "Japanese Yen"},
    {"GBP", "Pound Sterling"}, {"SEK", "Swedish Krona"},
    {"NOK", "Norwegian Krone"}, {"AUD", "Australian Dollar"}};

Status PopulateBaseData(EnterpriseWarehouse* warehouse) {
  Database& db = warehouse->db;
  Rng rng(0x50DA0C51);

  // Bulk load: one coalesced change event per table, not one per row
  // (storage/change_log.h epoch semantics).
  ChangeLog::EpochGuard epoch(db.change_log());

  Table* party = db.FindTable("party_td");
  Table* indvl = db.FindTable("indvl_td");
  Table* org = db.FindTable("org_td");
  Table* indvl_nm = db.FindTable("indvl_nm_hist_td");
  Table* org_nm = db.FindTable("org_nm_hist_td");
  Table* assoc = db.FindTable("assoc_empl_td");
  Table* addr = db.FindTable("addr_td");
  Table* party_addr = db.FindTable("party_addr_td");
  Table* agrmnt = db.FindTable("agrmnt_td");
  Table* ordr = db.FindTable("ordr_td");
  Table* trd = db.FindTable("trd_ordr_td");
  Table* pmt = db.FindTable("pmt_ordr_td");
  Table* prod = db.FindTable("invst_prod_td");
  Table* crncy = db.FindTable("crncy_td");
  Table* pos = db.FindTable("invst_pos_td");

  // ---- individuals + five-version name history -----------------------------
  int64_t name_id = 0;
  for (int i = 1; i <= kEntIndividuals; ++i) {
    bool is_sara = i == 7;
    std::string given =
        is_sara ? "Sara" : kGivenNames[rng.Below(kGivenNames.size())];
    std::string family =
        is_sara ? "Guttinger" : kFamilyNames[rng.Below(kFamilyNames.size())];
    Date birth = Date::FromYmd(static_cast<int>(rng.Range(1950, 1995)),
                               static_cast<int>(rng.Range(1, 12)),
                               static_cast<int>(rng.Range(1, 28)));
    SODA_RETURN_NOT_OK(
        party->Append({Value::Int(i), Value::Str("individual")}));
    // Name history: versions v1..v5; only the last (current) version is
    // referenced by curr_name_id. The given name of historic versions of
    // Sara is the older spelling "Sarah"; family names change over time
    // for everyone (marriages, corrections).
    for (int v = 1; v <= kEntNameVersions; ++v) {
      ++name_id;
      bool current = v == kEntNameVersions;
      std::string version_given = given;
      if (is_sara && !current) version_given = "Sarah";
      std::string version_family =
          current ? family
                  : family + StrFormat("-%c",
                                       static_cast<char>('A' + v - 1));
      Date valid_from = Date::FromYmd(1990 + v * 4, 6, 1);
      Date valid_to =
          current ? Date::FromYmd(9999, 12, 31) : Date::FromYmd(1994 + v * 4, 5, 31);
      Row version_row = {Value::Int(name_id), Value::Int(i),
                         Value::Str(version_given),
                         Value::Str(version_family), Value::DateV(valid_from),
                         Value::DateV(valid_to)};
      if (i == 1 && v == 1) {
        // Validate the recipe once, then take the unchecked fast path —
        // still published through the epoch, so a live index cannot
        // desync.
        SODA_RETURN_NOT_OK(indvl_nm->Append(std::move(version_row)));
      } else {
        indvl_nm->AppendUnchecked(std::move(version_row));
      }
    }
    SODA_RETURN_NOT_OK(indvl->Append({Value::Int(i), Value::Str(given),
                                      Value::DateV(birth),
                                      Value::Int(rng.Range(40, 3000) * 1000),
                                      Value::Int(name_id)}));
  }

  // ---- organizations + three-version name history --------------------------
  // Organization ids start after the individuals.
  int64_t org_name_id = name_id;
  for (int o = 0; o < kEntOrganizations; ++o) {
    int64_t id = kEntIndividuals + 1 + o;
    std::string name;
    if (o == 0) {
      name = "Credit Suisse";
    } else {
      name = kOrgPrefixes[static_cast<size_t>(o) % kOrgPrefixes.size()] +
             " " +
             kOrgSuffixes[(static_cast<size_t>(o) / kOrgPrefixes.size()) %
                          kOrgSuffixes.size()] +
             StrFormat(" %d", o);
    }
    SODA_RETURN_NOT_OK(
        party->Append({Value::Int(id), Value::Str("organization")}));
    for (int v = 1; v <= kEntOrgNameVersions; ++v) {
      ++org_name_id;
      bool current = v == kEntOrgNameVersions;
      std::string version_name = name;
      if (o == 0) {
        // The paper-famous history: Credit Suisse First Boston ->
        // Credit Suisse Group -> Credit Suisse.
        version_name = v == 1 ? "Credit Suisse First Boston"
                              : (v == 2 ? "Credit Suisse Group"
                                        : "Credit Suisse");
      } else if (!current) {
        version_name = name + (v == 1 ? " AG" : " International");
      }
      SODA_RETURN_NOT_OK(org_nm->Append(
          {Value::Int(org_name_id), Value::Int(id), Value::Str(version_name),
           Value::DateV(Date::FromYmd(1980 + v * 10, 1, 1)),
           Value::DateV(current ? Date::FromYmd(9999, 12, 31)
                                : Date::FromYmd(1990 + v * 10, 12, 31))}));
    }
    // Organization HQ address (ids after the individual addresses).
    int64_t addr_id =
        kEntIndividuals * kEntAddressesPerIndividual + 1 + o;
    SODA_RETURN_NOT_OK(org->Append({Value::Int(id), Value::Str(name),
                                    Value::Int(org_name_id),
                                    Value::Int(addr_id)}));
  }

  // ---- addresses -------------------------------------------------------------
  // Individuals: two addresses each (residence + mailing), same country.
  // The first kEntSwissIndividuals live in Switzerland.
  int64_t addr_id = 0;
  for (int i = 1; i <= kEntIndividuals; ++i) {
    bool swiss = i <= kEntSwissIndividuals;
    std::string country =
        swiss ? "Switzerland"
              : kForeignCountries[rng.Below(kForeignCountries.size())];
    for (int a = 0; a < kEntAddressesPerIndividual; ++a) {
      ++addr_id;
      std::string city = swiss ? kCities[rng.Below(5)]  // Swiss cities
                               : kCities[5 + rng.Below(kCities.size() - 5)];
      SODA_RETURN_NOT_OK(addr->Append(
          {Value::Int(addr_id),
           Value::Str(kStreets[rng.Below(kStreets.size())] + " " +
                      std::to_string(rng.Range(1, 99))),
           Value::Str(city), Value::Str(country)}));
      SODA_RETURN_NOT_OK(party_addr->Append(
          {Value::Int(i), Value::Int(addr_id),
           Value::Str(a == 0 ? "residence" : "mailing")}));
    }
  }
  // Organization addresses (referenced by org_td.main_addr_id).
  for (int o = 0; o < kEntOrganizations; ++o) {
    ++addr_id;
    std::string street =
        o == 0 ? "Credit Suisse Tower 1"
               : (o == 1 ? "Credit Suisse Plaza 2"
                         : kStreets[rng.Below(kStreets.size())] + " " +
                               std::to_string(rng.Range(1, 99)));
    SODA_RETURN_NOT_OK(addr->Append(
        {Value::Int(addr_id), Value::Str(street),
         Value::Str(kCities[rng.Below(kCities.size())]),
         Value::Str(rng.Chance(0.5) ? "Switzerland" : "United Kingdom")}));
  }

  // ---- employments (the Figure 10 sibling bridge) ---------------------------
  // The first kEntEmployedIndividuals individuals each hold
  // kEntEmployersPerIndividual distinct employments.
  for (int i = 1; i <= kEntEmployedIndividuals; ++i) {
    for (int k = 0; k < kEntEmployersPerIndividual; ++k) {
      int64_t org_id =
          kEntIndividuals + 1 + ((i * kEntEmployersPerIndividual + k) %
                                 kEntOrganizations);
      SODA_RETURN_NOT_OK(assoc->Append(
          {Value::Int(i), Value::Int(org_id),
           Value::Str(kRoles[rng.Below(kRoles.size())])}));
    }
  }

  // ---- agreements -------------------------------------------------------------
  // Planted names first (benchmark values), generated ones after. The
  // generated pool never contains the planted tokens.
  std::vector<std::string> planted_agreements = {
      "Credit Suisse Master Agreement",  // Q3.2 (the only CS agreement)
      "Gold Hedging Agreement",          // Q4.0 gold standard
      "Sara Trust Agreement",            // Q2.* noise home
      "YEN Swap Agreement",              // Q7.0 noise home
      "Switzerland Custody Agreement",   // Q9.0 noise home
      "Lehman XYZ Settlement Agreement", // Q8.0 noise home
  };
  for (int g = 1; g <= kEntAgreements; ++g) {
    std::string name;
    if (g <= static_cast<int>(planted_agreements.size())) {
      name = planted_agreements[static_cast<size_t>(g - 1)];
    } else {
      // Generated names avoid the token "Agreement" so that the keyword
      // "agreement" resolves through the schema layers, not through
      // hundreds of base-data values (which would blow up the lookup
      // complexity far beyond paper Table 4).
      name = kOrgPrefixes[rng.Below(kOrgPrefixes.size())] + " " +
             kAgreementKinds[rng.Below(kAgreementKinds.size())] +
             StrFormat(" Mandate %d", g);
    }
    SODA_RETURN_NOT_OK(agrmnt->Append(
        {Value::Int(g),
         Value::Int(rng.Range(1, kEntIndividuals + kEntOrganizations)),
         Value::Str(name),
         Value::Str(kAgreementKinds[rng.Below(kAgreementKinds.size())])}));
  }

  // ---- investment products ----------------------------------------------------
  std::vector<std::string> planted_products = {
      "Lehman XYZ",                     // Q8.0
      "Credit Suisse Equity Fund",      // Q3.* complexity plants
      "Credit Suisse Bond Fund",
      "Credit Suisse Alpha Note",
      "Credit Suisse Real Estate Fund",
      "Credit Suisse Momentum Note",
      "Sara Lee shares",                // Q2.* noise home
      "Gold Certificate",               // Q4.0 noise home
      "Gold Futures Note",
      "YEN Money Market Fund",          // Q7.0 noise home
      "Switzerland Equity Fund",        // Q9.0 noise home
  };
  for (int p = 1; p <= kEntProducts; ++p) {
    std::string name;
    if (p <= static_cast<int>(planted_products.size())) {
      name = planted_products[static_cast<size_t>(p - 1)];
    } else {
      name = kOrgPrefixes[rng.Below(kOrgPrefixes.size())] + " " +
             kProductKinds[rng.Below(kProductKinds.size())] +
             StrFormat(" %d", p);
    }
    SODA_RETURN_NOT_OK(prod->Append(
        {Value::Int(p), Value::Str(name),
         Value::Str(rng.Chance(0.5) ? "fund" : "structured note")}));
  }

  // ---- currencies ---------------------------------------------------------------
  for (const auto& [code, cname] : kCurrencies) {
    SODA_RETURN_NOT_OK(crncy->Append({Value::Str(code), Value::Str(cname)}));
  }

  // ---- orders ---------------------------------------------------------------------
  // Trade orders: ids 1..kEntTradeOrders; payment orders after.
  //   ids 1..kEntYenOrders                     : order currency YEN
  //   ids 1..kEntYenSettledYenOrders           : settlement also YEN (gold Q7)
  //   ids kEntYenOrders+1 .. +kEntOtherSettled : settlement YEN, currency not
  auto other_currency = [&](Rng* r) {
    static const std::vector<std::string> kOthers = {"CHF", "USD", "EUR",
                                                     "GBP"};
    return kOthers[r->Below(kOthers.size())];
  };
  for (int o = 1; o <= kEntOrders; ++o) {
    bool trade = o <= kEntTradeOrders;
    SODA_RETURN_NOT_OK(ordr->Append(
        {Value::Int(o),
         Value::Int(rng.Range(1, kEntIndividuals + kEntOrganizations)),
         Value::DateV(Date::FromYmd(static_cast<int>(rng.Range(2010, 2012)),
                                    static_cast<int>(rng.Range(1, 12)),
                                    static_cast<int>(rng.Range(1, 28)))),
         Value::Str(trade ? "trade order" : "payment order")}));
    if (trade) {
      std::string currency =
          o <= kEntYenOrders ? "YEN" : other_currency(&rng);
      std::string settlement;
      if (o <= kEntYenSettledYenOrders) {
        settlement = "YEN";
      } else if (o > kEntYenOrders &&
                 o <= kEntYenOrders + kEntOtherSettledYenOrders) {
        settlement = "YEN";
      } else {
        settlement = other_currency(&rng);
      }
      int64_t product_id =
          o > kEntTradeOrders - kEntLehmanTrades
              ? 1  // "Lehman XYZ"
              : rng.Range(2, kEntProducts);
      SODA_RETURN_NOT_OK(trd->Append(
          {Value::Int(o), Value::Int(product_id), Value::Str(currency),
           Value::Str(settlement),
           Value::DateV(Date::FromYmd(
               static_cast<int>(rng.Range(2010, 2012)),
               static_cast<int>(rng.Range(1, 12)),
               static_cast<int>(rng.Range(1, 28))))}));
    } else {
      SODA_RETURN_NOT_OK(pmt->Append(
          {Value::Int(o),
           Value::Real(static_cast<double>(rng.Range(100, 500000))),
           Value::Str(kCurrencies[rng.Below(kCurrencies.size())].first)}));
    }
  }

  // ---- investment positions -----------------------------------------------------
  for (int p = 1; p <= kEntPositions; ++p) {
    SODA_RETURN_NOT_OK(pos->Append(
        {Value::Int(p),
         Value::Int(rng.Range(1, kEntIndividuals + kEntOrganizations)),
         Value::Real(static_cast<double>(rng.Range(1000, 2000000))),
         Value::Str(kCurrencies[rng.Below(kCurrencies.size())].first)}));
  }

  return Status::OK();
}

}  // namespace

WarehouseModel EnterpriseModel() {
  WarehouseModel model;
  AddCoreSchema(&model);
  AddFillerSchema(&model);
  return model;
}

Result<std::unique_ptr<EnterpriseWarehouse>> BuildEnterpriseWarehouse() {
  auto warehouse = std::make_unique<EnterpriseWarehouse>();
  warehouse->model = EnterpriseModel();
  SODA_RETURN_NOT_OK(
      warehouse->model.Compile(&warehouse->graph, &warehouse->db));
  SODA_RETURN_NOT_OK(PopulateBaseData(warehouse.get()));
  return warehouse;
}

}  // namespace soda
