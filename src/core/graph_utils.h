// Small helpers for navigating compiled warehouse graphs.

#ifndef SODA_CORE_GRAPH_UTILS_H_
#define SODA_CORE_GRAPH_UTILS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "graph/metadata_graph.h"

namespace soda {

/// A physical column identified by names.
struct PhysicalColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const { return table + "." + column; }
  bool operator==(const PhysicalColumnRef&) const = default;
};

/// Dense id of a physical table inside one compiled search session.
using TableId = uint32_t;
inline constexpr TableId kInvalidTableId = UINT32_MAX;

/// Interner mapping folded table names <-> dense TableIds. The warehouse
/// table set is immutable during a search session, so the catalog is
/// built once (during Soda::Create / JoinGraph::Build) and read-only
/// afterwards — integer ids replace folded-string comparisons on every
/// hot path that walks tables (join-path search, adjacency, APSP).
class TableCatalog {
 public:
  /// Returns the id for `table` (folding it first), interning on first
  /// use. Build-time only: not safe to call concurrently with Find.
  TableId Intern(const std::string& table);

  /// The id for `table`, or kInvalidTableId when it was never interned.
  TableId Find(std::string_view table) const;

  /// Number of interned tables (ids are 0..size()-1, dense).
  size_t size() const { return id_of_.size(); }

 private:
  std::unordered_map<std::string, TableId> id_of_;  // folded name -> id
};

/// The table name of a physical-table node (its `tablename` label).
std::optional<std::string> TableNameOf(const MetadataGraph& graph,
                                       NodeId table_node);

/// The (table, column) of a physical-column node, following the incoming
/// `column` edge to the owning table.
std::optional<PhysicalColumnRef> ColumnRefOf(const MetadataGraph& graph,
                                             NodeId column_node);

/// Resolves a metadata node to the physical column that realizes it:
///   physical column        -> itself
///   logical attribute      -> realized_by target
///   conceptual attribute   -> implemented_by -> realized_by
/// Returns nullopt for entities, tables, concepts, etc.
std::optional<PhysicalColumnRef> ResolvePhysicalColumn(
    const MetadataGraph& graph, NodeId node);

}  // namespace soda

#endif  // SODA_CORE_GRAPH_UTILS_H_
