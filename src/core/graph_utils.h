// Small helpers for navigating compiled warehouse graphs.

#ifndef SODA_CORE_GRAPH_UTILS_H_
#define SODA_CORE_GRAPH_UTILS_H_

#include <optional>
#include <string>

#include "graph/metadata_graph.h"

namespace soda {

/// A physical column identified by names.
struct PhysicalColumnRef {
  std::string table;
  std::string column;

  std::string ToString() const { return table + "." + column; }
  bool operator==(const PhysicalColumnRef&) const = default;
};

/// The table name of a physical-table node (its `tablename` label).
std::optional<std::string> TableNameOf(const MetadataGraph& graph,
                                       NodeId table_node);

/// The (table, column) of a physical-column node, following the incoming
/// `column` edge to the owning table.
std::optional<PhysicalColumnRef> ColumnRefOf(const MetadataGraph& graph,
                                             NodeId column_node);

/// Resolves a metadata node to the physical column that realizes it:
///   physical column        -> itself
///   logical attribute      -> realized_by target
///   conceptual attribute   -> implemented_by -> realized_by
/// Returns nullopt for entities, tables, concepts, etc.
std::optional<PhysicalColumnRef> ResolvePhysicalColumn(
    const MetadataGraph& graph, NodeId node);

}  // namespace soda

#endif  // SODA_CORE_GRAPH_UTILS_H_
