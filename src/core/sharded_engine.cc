#include "core/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/trace.h"

namespace soda {

namespace {

// 64-bit FNV-1a over the key bytes. Deliberately not std::hash: the
// router's shard map must be identical across standard libraries and
// runs, so tests (and any external placement logic) can rely on it.
uint64_t Fnv1a64(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : key) {
    hash ^= static_cast<uint64_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

// AcquireTarget's "every replica quarantined and none due" verdict.
constexpr size_t kNoShard = static_cast<size_t>(-1);

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

// One dispatch attempt of one sub-batch on one shard, shared between
// the pool task that executes it and the batch thread that waits on it.
// The batch thread may abandon a stalled attempt (the task keeps
// running to completion against this struct, whose shared_ptr — and the
// query vector's — outlive the batch), so `started`/`done`/`abandoned`
// make the handoff explicit.
struct SubBatchAttempt {
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool done = false;
  bool abandoned = false;
  Status failure;  // non-OK: the whole attempt failed (throw/failpoint)
  std::vector<Result<SearchOutput>> outputs;
};

enum class WaitOutcome {
  kDone,          // attempt finished (failure says how)
  kQueueTimeout,  // never started within the deadline: pool congestion
  kStallTimeout,  // started but did not finish: the shard stalled
};

// Blocks until the attempt completes; with a positive deadline (sync
// dispatch only) gives up after `deadline_ms`, marking the attempt
// abandoned so a not-yet-started task skips execution entirely.
WaitOutcome WaitForAttempt(SubBatchAttempt& attempt, double deadline_ms) {
  std::unique_lock<std::mutex> lock(attempt.mu);
  if (deadline_ms <= 0.0) {
    attempt.cv.wait(lock, [&] { return attempt.done; });
    return WaitOutcome::kDone;
  }
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(deadline_ms));
  if (attempt.cv.wait_until(lock, deadline, [&] { return attempt.done; })) {
    return WaitOutcome::kDone;
  }
  attempt.abandoned = true;
  return attempt.started ? WaitOutcome::kStallTimeout
                         : WaitOutcome::kQueueTimeout;
}

}  // namespace

size_t ShardOfKey(const std::string& normalized_key, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t hash = Fnv1a64(normalized_key);
  // Fold to 32 bits: FNV's low bits mix slowly for short keys, so xor
  // the halves before the modulo to keep small shard counts balanced.
  uint32_t folded = static_cast<uint32_t>(hash >> 32) ^
                    static_cast<uint32_t>(hash & 0xffffffffull);
  return static_cast<size_t>(folded % num_shards);
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ShardedSodaEngine>> ShardedSodaEngine::Create(
    const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
    SodaConfig config) {
  size_t num_shards = config.num_shards == 0 ? 1 : config.num_shards;
  // num_threads=0 means "use the hardware" — for a fleet that must mean
  // the hardware divided across shards, not multiplied by them (8 shards
  // on a 64-core box should build ~64 workers, not 512).
  if (config.num_threads == 0 && num_shards > 1) {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    config.num_threads = std::max<size_t>(1, hw / num_shards);
  }
  // One traversal memo for the whole fleet: the closure depends only on
  // the (immutable, shared) metadata graph + config, so replicas can
  // share it — any shard's traffic warms every shard's entry points.
  std::shared_ptr<EntryPointClosure> shared_closure;
  if (config.enable_closures && graph != nullptr) {
    shared_closure = std::make_shared<EntryPointClosure>(graph->num_nodes());
  }
  std::vector<std::unique_ptr<SodaEngine>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    SODA_ASSIGN_OR_RETURN(
        std::unique_ptr<SodaEngine> shard,
        SodaEngine::Create(db, graph, patterns, config, shared_closure));
    shards.push_back(std::move(shard));
  }
  return std::make_unique<ShardedSodaEngine>(std::move(shards));
}

ShardedSodaEngine::ShardedSodaEngine(
    std::vector<std::unique_ptr<SodaEngine>> shards)
    : shards_(std::move(shards)),
      router_sink_(std::make_shared<InMemoryMetricsSink>()),
      dispatch_pool_(shards_.size()) {
  assert(!shards_.empty() && "router needs at least one shard");
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    assert(shard != nullptr && "null shard");
    (void)shard;
  }
  const SodaConfig& config = shards_.front()->soda().config();
  policy_.failure_threshold =
      std::max<size_t>(1, config.shard_failure_threshold);
  policy_.backoff_initial_ms = config.shard_backoff_initial_ms;
  policy_.backoff_max_ms = config.shard_backoff_max_ms;
  policy_.retry_limit = config.shard_retry_limit;
  policy_.retry_backoff_ms = config.shard_retry_backoff_ms;
  policy_.dispatch_deadline_ms = config.shard_dispatch_deadline_ms;
  breakers_.resize(shards_.size());
  // Pre-register every router series (PR 8 did the same for server.*):
  // a first /metrics scrape exports the full failure-isolation surface
  // even before any traffic — dashboards and alerts can be written
  // against series that exist from boot.
  for (const char* counter :
       {"router.batches", "router.shard_queries", "router.session_queries",
        "router.invalidations", "router.shard_failures", "router.retries",
        "router.quarantines", "router.readmissions",
        "router.rerouted_queries"}) {
    router_sink_->IncrementCounter(counter, 0);
  }
  router_sink_->RegisterHistogram("router.shard_batch_size");
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

size_t ShardedSodaEngine::AcquireTarget(size_t start) const {
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(breaker_mu_);
  for (size_t k = 0; k < shards_.size(); ++k) {
    size_t s = (start + k) % shards_.size();
    ShardBreaker& b = breakers_[s];
    switch (b.state) {
      case BreakerState::kClosed:
      case BreakerState::kProbing:
        return s;
      case BreakerState::kQuarantined:
        if (now >= b.retry_at) {
          // Backoff elapsed: this dispatch is the probe.
          b.state = BreakerState::kProbing;
          return s;
        }
        break;
    }
  }
  return kNoShard;
}

void ShardedSodaEngine::ReportShardSuccess(size_t shard) const {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  ShardBreaker& b = breakers_[shard];
  if (b.state == BreakerState::kProbing) {
    router_sink_->IncrementCounter("router.readmissions", 1);
  }
  b.state = BreakerState::kClosed;
  b.consecutive_failures = 0;
  b.backoff_ms = 0.0;
}

bool ShardedSodaEngine::ReportShardFailure(size_t shard) const {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  ShardBreaker& b = breakers_[shard];
  ++b.consecutive_failures;
  ++b.total_failures;
  router_sink_->IncrementCounter("router.shard_failures", 1);
  // A failed probe re-quarantines immediately (the shard just proved it
  // is still sick); a closed shard crosses into quarantine at the
  // threshold. Backoff doubles per quarantine up to the cap.
  bool quarantine = b.state == BreakerState::kProbing ||
                    b.consecutive_failures >= policy_.failure_threshold;
  if (!quarantine) return false;
  b.backoff_ms = b.backoff_ms <= 0.0
                     ? policy_.backoff_initial_ms
                     : std::min(b.backoff_ms * 2.0, policy_.backoff_max_ms);
  b.retry_at = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(b.backoff_ms));
  if (b.state != BreakerState::kQuarantined) {
    router_sink_->IncrementCounter("router.quarantines", 1);
  }
  b.state = BreakerState::kQuarantined;
  return true;
}

ServiceHealth ShardedSodaEngine::health() const {
  auto now = std::chrono::steady_clock::now();
  ServiceHealth health;
  std::lock_guard<std::mutex> lock(breaker_mu_);
  health.shards.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ShardBreaker& b = breakers_[s];
    ShardHealthInfo info;
    info.shard = s;
    switch (b.state) {
      case BreakerState::kClosed:
        info.state = "closed";
        break;
      case BreakerState::kQuarantined:
        info.state = "quarantined";
        break;
      case BreakerState::kProbing:
        info.state = "probing";
        break;
    }
    info.consecutive_failures = b.consecutive_failures;
    info.total_failures = b.total_failures;
    info.backoff_ms = b.backoff_ms;
    if (b.state == BreakerState::kQuarantined && b.retry_at > now) {
      info.retry_in_ms =
          std::chrono::duration<double, std::milli>(b.retry_at - now).count();
    }
    health.degraded = health.degraded || b.state != BreakerState::kClosed;
    health.shards.push_back(std::move(info));
  }
  return health;
}

// ---------------------------------------------------------------------------
// Routed entry points
// ---------------------------------------------------------------------------

Result<SearchOutput> ShardedSodaEngine::Search(
    const std::string& query, const SessionConstraints& constraints) const {
  // Route by the normalized query alone: constrained variants of one
  // question share its shard (and therefore its plans and cache locality).
  router_sink_->IncrementCounter("router.shard_queries", 1);
  size_t home = ShardOfKey(NormalizedQueryKey(query), shards_.size());
  return RouteSingle(home, [&](const SodaEngine& engine) {
    return engine.Search(query, constraints);
  });
}

Result<SearchOutput> ShardedSodaEngine::SearchSession(
    const std::string& query, const SessionConstraints& constraints,
    std::shared_ptr<TranslationPlan>* plan) const {
  router_sink_->IncrementCounter("router.shard_queries", 1);
  router_sink_->IncrementCounter("router.session_queries", 1);
  size_t home = ShardOfKey(NormalizedQueryKey(query), shards_.size());
  return RouteSingle(home, [&](const SodaEngine& engine) {
    return engine.SearchSession(query, constraints, plan);
  });
}

Result<SearchOutput> ShardedSodaEngine::SearchAsync(
    const std::string& query, SnippetCallback on_snippet,
    SnippetBarrier* barrier) const {
  router_sink_->IncrementCounter("router.shard_queries", 1);
  size_t home = ShardOfKey(NormalizedQueryKey(query), shards_.size());
  return RouteSingle(home, [&](const SodaEngine& engine) {
    return engine.SearchAsync(query, on_snippet, barrier);
  });
}

Result<SearchOutput> ShardedSodaEngine::RouteSingle(
    size_t home,
    const std::function<Result<SearchOutput>(const SodaEngine&)>& call) const {
  // The routing span joins whatever trace the caller (usually the HTTP
  // server) installed on this thread; the engine call below runs under
  // it, so engine.search parents here and inherits the shard attr.
  Span route_span(CurrentTraceContext(), "router.route");
  if (route_span.active()) route_span.SetAttr("home", static_cast<int64_t>(home));
  Status last = Status::Unavailable("no dispatch attempted");
  size_t start = home;
  for (size_t attempt = 0; attempt <= policy_.retry_limit; ++attempt) {
    if (attempt > 0) {
      router_sink_->IncrementCounter("router.retries", 1);
      route_span.AddEvent("retry", "attempt " + std::to_string(attempt));
      SleepMs(std::min(policy_.retry_backoff_ms *
                           static_cast<double>(uint64_t{1} << (attempt - 1)),
                       policy_.backoff_max_ms));
    }
    size_t target = AcquireTarget(start);
    if (target == kNoShard) {
      last = Status::Unavailable("every shard replica is quarantined");
      route_span.AddEvent("no_replica", "every shard quarantined");
      continue;
    }
    if (target != home) {
      router_sink_->IncrementCounter("router.rerouted_queries", 1);
      route_span.AddEvent("reroute", "shard " + std::to_string(target));
    }
    try {
      Status armed =
          SODA_FAILPOINT_STATUS("shard.dispatch", std::to_string(target));
      if (armed.ok()) {
        if (route_span.active()) {
          route_span.SetAttr("shard", static_cast<int64_t>(target));
        }
        ScopedTraceContext scoped(route_span.context());
        Result<SearchOutput> output = call(*shards_[target]);
        ReportShardSuccess(target);
        return output;
      }
      last = std::move(armed);
    } catch (const std::exception& e) {
      last = Status::Unavailable(std::string("shard dispatch threw: ") +
                                 e.what());
    } catch (...) {
      last = Status::Unavailable("shard dispatch threw");
    }
    route_span.AddEvent("shard_failure",
                        "shard " + std::to_string(target) + ": " +
                            std::string(last.message()));
    if (ReportShardFailure(target)) {
      route_span.AddEvent("quarantine", "shard " + std::to_string(target));
    }
    start = target + 1;
  }
  route_span.SetError("query failed on every attempted replica");
  return Status::Unavailable("query failed on every attempted replica: " +
                             last.ToString());
}

std::vector<Result<SearchOutput>> ShardedSodaEngine::SearchAll(
    std::span<const std::string> queries) const {
  return DispatchBatch(queries, /*async=*/false, nullptr, nullptr);
}

std::vector<Result<SearchOutput>> ShardedSodaEngine::SearchAllAsync(
    std::span<const std::string> queries, SnippetCallback on_snippet,
    SnippetBarrier* barrier) const {
  return DispatchBatch(queries, /*async=*/true, std::move(on_snippet),
                       barrier);
}

std::shared_ptr<void> ShardedSodaEngine::LaunchAttempt(
    size_t target, std::shared_ptr<const std::vector<std::string>> queries,
    bool async, SnippetCallback on_snippet, SnippetBarrier* barrier) const {
  auto attempt = std::make_shared<SubBatchAttempt>();
  // Everything the task touches is captured by value / shared_ptr: if
  // the batch abandons a stalled attempt and returns, the task still
  // has live queries and a live attempt struct to finish against.
  // The trace context crosses onto the dispatch pool by value and is
  // re-installed inside the task, so the shard engine's spans parent
  // under the batch's trace even though they run on a pool thread.
  TraceContext trace = CurrentTraceContext();
  dispatch_pool_.Submit([this, attempt, queries, target, async, trace,
                         callback = std::move(on_snippet), barrier] {
    {
      std::lock_guard<std::mutex> lock(attempt->mu);
      if (attempt->abandoned) {
        // The batch gave up before we started: skip the work entirely.
        attempt->done = true;
        attempt->cv.notify_all();
        return;
      }
      attempt->started = true;
    }
    Span dispatch_span(trace, "router.dispatch");
    if (dispatch_span.active()) {
      dispatch_span.SetAttr("shard", static_cast<int64_t>(target));
      dispatch_span.SetAttr("queries", static_cast<int64_t>(queries->size()));
    }
    ScopedTraceContext scoped(dispatch_span.context());
    Status failure;
    std::vector<Result<SearchOutput>> outputs;
    try {
      Status armed =
          SODA_FAILPOINT_STATUS("shard.dispatch", std::to_string(target));
      if (!armed.ok()) {
        failure = std::move(armed);
      } else {
        std::span<const std::string> sub(*queries);
        outputs = async
                      ? shards_[target]->SearchAllAsync(sub, callback, barrier)
                      : shards_[target]->SearchAll(sub);
      }
    } catch (const std::exception& e) {
      failure =
          Status::Unavailable(std::string("shard dispatch threw: ") + e.what());
    } catch (...) {
      failure = Status::Unavailable("shard dispatch threw");
    }
    if (!failure.ok()) dispatch_span.SetStatus(failure.message());
    // End (and append) the span before publishing completion: the
    // waiting batch thread may finish the whole trace the moment done
    // flips, and a span recorded after that is an orphan the render
    // pass cannot attach.
    dispatch_span.End();
    {
      std::lock_guard<std::mutex> lock(attempt->mu);
      attempt->failure = std::move(failure);
      attempt->outputs = std::move(outputs);
      attempt->done = true;
    }
    attempt->cv.notify_all();
  });
  return attempt;
}

std::vector<Result<SearchOutput>> ShardedSodaEngine::RunSubBatchWithFailover(
    size_t home, std::shared_ptr<const std::vector<std::string>> queries,
    bool async, SnippetCallback on_snippet, SnippetBarrier* barrier,
    size_t first_target, std::shared_ptr<void> first_attempt) const {
  // The stall deadline applies to sync dispatch only: an async sub-batch
  // registers its snippet callbacks on the caller's barrier, and an
  // abandoned half-registered attempt could deliver duplicates.
  double deadline_ms = async ? 0.0 : policy_.dispatch_deadline_ms;
  // Joins the batch's trace on the caller thread; retry, re-route,
  // stall-abandon and quarantine decisions land here as span events.
  Span sub_span(CurrentTraceContext(), "router.subbatch");
  if (sub_span.active()) {
    sub_span.SetAttr("home", static_cast<int64_t>(home));
    sub_span.SetAttr("queries", static_cast<int64_t>(queries->size()));
  }
  Status last = Status::Unavailable("no dispatch attempted");
  size_t target = first_target;
  auto attempt = std::static_pointer_cast<SubBatchAttempt>(first_attempt);
  for (size_t attempts_used = 0;; ++attempts_used) {
    if (attempt != nullptr) {
      WaitOutcome outcome = WaitForAttempt(*attempt, deadline_ms);
      switch (outcome) {
        case WaitOutcome::kDone: {
          Status failure;
          std::vector<Result<SearchOutput>> outputs;
          {
            std::lock_guard<std::mutex> lock(attempt->mu);
            failure = std::move(attempt->failure);
            outputs = std::move(attempt->outputs);
          }
          if (failure.ok()) {
            ReportShardSuccess(target);
            return outputs;
          }
          last = std::move(failure);
          sub_span.AddEvent("shard_failure",
                            "shard " + std::to_string(target) + ": " +
                                std::string(last.message()));
          if (ReportShardFailure(target)) {
            sub_span.AddEvent("quarantine", "shard " + std::to_string(target));
          }
          target = target + 1;
          break;
        }
        case WaitOutcome::kStallTimeout:
          last = Status::Unavailable(
              "shard " + std::to_string(target) +
              " stalled past the sub-batch deadline; abandoned");
          sub_span.AddEvent("stall_abandoned",
                            "shard " + std::to_string(target));
          if (ReportShardFailure(target)) {
            sub_span.AddEvent("quarantine", "shard " + std::to_string(target));
          }
          target = target + 1;
          break;
        case WaitOutcome::kQueueTimeout:
          // The attempt never ran — the dispatch queue is congested.
          // Not the shard's fault: retry without charging its breaker.
          last = Status::Unavailable(
              "sub-batch not scheduled within the dispatch deadline");
          break;
      }
    } else {
      last = Status::Unavailable("every shard replica is quarantined");
    }
    if (attempts_used >= policy_.retry_limit) break;
    router_sink_->IncrementCounter("router.retries", 1);
    sub_span.AddEvent("retry", "attempt " + std::to_string(attempts_used + 1));
    SleepMs(std::min(policy_.retry_backoff_ms *
                         static_cast<double>(uint64_t{1} << attempts_used),
                     policy_.backoff_max_ms));
    size_t next = AcquireTarget(target);
    if (next == kNoShard) {
      sub_span.AddEvent("no_replica", "every shard quarantined");
      attempt = nullptr;
      continue;
    }
    target = next;
    if (target != home) {
      router_sink_->IncrementCounter("router.rerouted_queries",
                                     queries->size());
      sub_span.AddEvent("reroute", "shard " + std::to_string(target));
    }
    // Re-install the sub-batch span as the pool task's parent: the
    // retried dispatch span hangs off this span, not the batch root.
    ScopedTraceContext scoped(sub_span.context());
    attempt = std::static_pointer_cast<SubBatchAttempt>(
        LaunchAttempt(target, queries, async, on_snippet, barrier));
  }
  sub_span.SetError("sub-batch failed after every attempt");
  return std::vector<Result<SearchOutput>>(
      queries->size(),
      Result<SearchOutput>(Status::Unavailable(
          "sub-batch for shard " + std::to_string(home) +
          " failed after " + std::to_string(policy_.retry_limit + 1) +
          " attempts: " + last.ToString())));
}

std::vector<Result<SearchOutput>> ShardedSodaEngine::DispatchBatch(
    std::span<const std::string> queries, bool async,
    SnippetCallback on_snippet, SnippetBarrier* barrier) const {
  if (queries.empty()) return {};

  // Single shard (the config default): no routing to do — delegate on
  // the caller's span and skip the copy/merge machinery. Callback
  // indices are already global. Failure containment still applies: a
  // throwing or failpoint-armed dispatch becomes per-query errors and
  // charges the (only) shard's breaker, and a quarantined sole shard
  // fails fast until its backoff elapses.
  if (shards_.size() == 1) {
    router_sink_->IncrementCounter("router.batches", 1);
    router_sink_->IncrementCounter("router.shard_queries", queries.size());
    router_sink_->Observe("router.shard_batch_size",
                          static_cast<double>(queries.size()));
    Status last = Status::Unavailable("no dispatch attempted");
    for (size_t attempt = 0; attempt <= policy_.retry_limit; ++attempt) {
      if (attempt > 0) {
        router_sink_->IncrementCounter("router.retries", 1);
        SleepMs(std::min(policy_.retry_backoff_ms *
                             static_cast<double>(uint64_t{1} << (attempt - 1)),
                         policy_.backoff_max_ms));
      }
      if (AcquireTarget(0) == kNoShard) {
        last = Status::Unavailable("the only shard replica is quarantined");
        continue;
      }
      try {
        Status armed = SODA_FAILPOINT_STATUS("shard.dispatch", "0");
        if (armed.ok()) {
          auto outputs = async ? shards_[0]->SearchAllAsync(
                                     queries, std::move(on_snippet), barrier)
                               : shards_[0]->SearchAll(queries);
          ReportShardSuccess(0);
          return outputs;
        }
        last = std::move(armed);
      } catch (const std::exception& e) {
        last = Status::Unavailable(std::string("shard dispatch threw: ") +
                                   e.what());
      } catch (...) {
        last = Status::Unavailable("shard dispatch threw");
      }
      ReportShardFailure(0);
    }
    return std::vector<Result<SearchOutput>>(
        queries.size(),
        Result<SearchOutput>(Status::Unavailable(
            "batch failed after " + std::to_string(policy_.retry_limit + 1) +
            " attempts: " + last.ToString())));
  }

  // Split the batch by routing key. Sub-batches keep input order, so a
  // shard sees its queries exactly as a single engine would have (dedup
  // keeps first-occurrence semantics).
  std::vector<std::vector<std::string>> sub_queries(shards_.size());
  std::vector<std::vector<size_t>> sub_indices(shards_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t shard = ShardOfKey(NormalizedQueryKey(queries[i]), shards_.size());
    sub_queries[shard].push_back(queries[i]);
    sub_indices[shard].push_back(i);
  }

  router_sink_->IncrementCounter("router.batches", 1);
  router_sink_->IncrementCounter("router.shard_queries", queries.size());
  std::vector<size_t> occupied;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (sub_queries[s].empty()) continue;
    occupied.push_back(s);
    router_sink_->Observe("router.shard_batch_size",
                          static_cast<double>(sub_queries[s].size()));
  }

  // Launch every occupied home's first attempt before joining any of
  // them, so healthy sub-batches run concurrently on the dispatch pool
  // while a failing one walks its retry chain. Shards are shared-nothing
  // (own pool, own cache, own sink), so this is pure fan-out. For the
  // async path this covers the translation phase only — each shard
  // registers its callbacks on `barrier` before its SearchAll returns,
  // so by the time we return the barrier's expectation is complete and
  // snippets keep streaming from every shard's pool.
  struct Flight {
    size_t home = 0;
    size_t target = 0;
    std::shared_ptr<const std::vector<std::string>> queries;
    SnippetCallback callback;
    std::shared_ptr<void> attempt;
  };
  std::vector<Flight> flights;
  flights.reserve(occupied.size());
  for (size_t s : occupied) {
    Flight flight;
    flight.home = s;
    flight.queries = std::make_shared<const std::vector<std::string>>(
        std::move(sub_queries[s]));
    if (async && on_snippet) {
      // By value: the callback outlives this call — snippets stream
      // from the shard's pool long after the sub-batch vectors die.
      flight.callback = [to_global = sub_indices[s], callback = on_snippet](
                            size_t query_index, size_t result_index,
                            const SodaResult& result) {
        callback(to_global[query_index], result_index, result);
      };
    }
    size_t target = AcquireTarget(s);
    if (target == kNoShard) {
      flight.attempt = nullptr;
    } else {
      flight.target = target;
      if (target != s) {
        router_sink_->IncrementCounter("router.rerouted_queries",
                                       flight.queries->size());
      }
      flight.attempt = LaunchAttempt(target, flight.queries, async,
                                     flight.callback, barrier);
    }
    flights.push_back(std::move(flight));
  }

  std::vector<std::vector<Result<SearchOutput>>> sub_outputs(shards_.size());
  for (Flight& flight : flights) {
    sub_outputs[flight.home] = RunSubBatchWithFailover(
        flight.home, flight.queries, async, flight.callback, barrier,
        flight.target, std::move(flight.attempt));
  }

  // Re-merge into input order.
  std::vector<Result<SearchOutput>> outputs(
      queries.size(), Result<SearchOutput>(Status::Internal("unrouted query")));
  for (size_t s : occupied) {
    for (size_t k = 0; k < sub_indices[s].size(); ++k) {
      outputs[sub_indices[s][k]] = std::move(sub_outputs[s][k]);
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// Aggregated surfaces
// ---------------------------------------------------------------------------

CacheStats ShardedSodaEngine::cache_stats() const {
  CacheStats total;
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    total += shard->cache_stats();
  }
  return total;
}

void ShardedSodaEngine::ClearCache() const {
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    shard->ClearCache();
  }
}

size_t ShardedSodaEngine::InvalidateWhere(
    const std::function<bool(const std::string&)>& pred) const {
  size_t erased = 0;
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    erased += shard->InvalidateWhere(pred);
  }
  router_sink_->IncrementCounter("router.invalidations", erased);
  return erased;
}

size_t ShardedSodaEngine::ApplyBaseDataDelta(const ChangeEvent& event) {
  size_t inserted = 0;
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    inserted += shard->ApplyBaseDataDelta(event);
  }
  return inserted;
}

void ShardedSodaEngine::set_freshness(FreshnessManager* freshness) {
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    shard->set_freshness(freshness);
  }
}

void ShardedSodaEngine::set_metrics_sink(std::shared_ptr<MetricsSink> sink) {
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    shard->set_metrics_sink(sink);
  }
}

size_t ShardedSodaEngine::queue_depth() const {
  size_t depth = dispatch_pool_.queue_depth();
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    depth += shard->queue_depth();
  }
  return depth;
}

MetricsSnapshot ShardedSodaEngine::metrics_snapshot() const {
  MetricsSnapshot merged = router_sink_->Snapshot();
  {
    // Point-in-time breaker state, so quarantines are visible on
    // /metrics while they are happening (router.quarantines only counts
    // transitions).
    std::lock_guard<std::mutex> lock(breaker_mu_);
    uint64_t open = 0;
    for (const ShardBreaker& b : breakers_) {
      if (b.state != BreakerState::kClosed) ++open;
    }
    merged.counters["router.shards_quarantined"] = open;
  }
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    merged.MergeFrom(shard->metrics_snapshot());
  }
  return merged;
}

}  // namespace soda
