#include "core/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <thread>
#include <utility>

namespace soda {

namespace {

// 64-bit FNV-1a over the key bytes. Deliberately not std::hash: the
// router's shard map must be identical across standard libraries and
// runs, so tests (and any external placement logic) can rely on it.
uint64_t Fnv1a64(const std::string& key) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : key) {
    hash ^= static_cast<uint64_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

}  // namespace

size_t ShardOfKey(const std::string& normalized_key, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t hash = Fnv1a64(normalized_key);
  // Fold to 32 bits: FNV's low bits mix slowly for short keys, so xor
  // the halves before the modulo to keep small shard counts balanced.
  uint32_t folded = static_cast<uint32_t>(hash >> 32) ^
                    static_cast<uint32_t>(hash & 0xffffffffull);
  return static_cast<size_t>(folded % num_shards);
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ShardedSodaEngine>> ShardedSodaEngine::Create(
    const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
    SodaConfig config) {
  size_t num_shards = config.num_shards == 0 ? 1 : config.num_shards;
  // num_threads=0 means "use the hardware" — for a fleet that must mean
  // the hardware divided across shards, not multiplied by them (8 shards
  // on a 64-core box should build ~64 workers, not 512).
  if (config.num_threads == 0 && num_shards > 1) {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    config.num_threads = std::max<size_t>(1, hw / num_shards);
  }
  // One traversal memo for the whole fleet: the closure depends only on
  // the (immutable, shared) metadata graph + config, so replicas can
  // share it — any shard's traffic warms every shard's entry points.
  std::shared_ptr<EntryPointClosure> shared_closure;
  if (config.enable_closures && graph != nullptr) {
    shared_closure = std::make_shared<EntryPointClosure>(graph->num_nodes());
  }
  std::vector<std::unique_ptr<SodaEngine>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    SODA_ASSIGN_OR_RETURN(
        std::unique_ptr<SodaEngine> shard,
        SodaEngine::Create(db, graph, patterns, config, shared_closure));
    shards.push_back(std::move(shard));
  }
  return std::make_unique<ShardedSodaEngine>(std::move(shards));
}

ShardedSodaEngine::ShardedSodaEngine(
    std::vector<std::unique_ptr<SodaEngine>> shards)
    : shards_(std::move(shards)),
      router_sink_(std::make_shared<InMemoryMetricsSink>()),
      dispatch_pool_(shards_.size()) {
  assert(!shards_.empty() && "router needs at least one shard");
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    assert(shard != nullptr && "null shard");
    (void)shard;
  }
}

// ---------------------------------------------------------------------------
// Routed entry points
// ---------------------------------------------------------------------------

Result<SearchOutput> ShardedSodaEngine::Search(
    const std::string& query, const SessionConstraints& constraints) const {
  // Route by the normalized query alone: constrained variants of one
  // question share its shard (and therefore its plans and cache locality).
  size_t shard = ShardOfKey(NormalizedQueryKey(query), shards_.size());
  router_sink_->IncrementCounter("router.shard_queries", 1);
  return shards_[shard]->Search(query, constraints);
}

Result<SearchOutput> ShardedSodaEngine::SearchSession(
    const std::string& query, const SessionConstraints& constraints,
    std::shared_ptr<TranslationPlan>* plan) const {
  size_t shard = ShardOfKey(NormalizedQueryKey(query), shards_.size());
  router_sink_->IncrementCounter("router.shard_queries", 1);
  router_sink_->IncrementCounter("router.session_queries", 1);
  return shards_[shard]->SearchSession(query, constraints, plan);
}

std::vector<Result<SearchOutput>> ShardedSodaEngine::SearchAll(
    std::span<const std::string> queries) const {
  return DispatchBatch(queries, /*async=*/false, nullptr, nullptr);
}

std::vector<Result<SearchOutput>> ShardedSodaEngine::SearchAllAsync(
    std::span<const std::string> queries, SnippetCallback on_snippet,
    SnippetBarrier* barrier) const {
  return DispatchBatch(queries, /*async=*/true, std::move(on_snippet),
                       barrier);
}

std::vector<Result<SearchOutput>> ShardedSodaEngine::DispatchBatch(
    std::span<const std::string> queries, bool async,
    SnippetCallback on_snippet, SnippetBarrier* barrier) const {
  if (queries.empty()) return {};

  // Single shard (the config default): no routing to do — delegate on
  // the caller's span and skip the copy/merge machinery. Callback
  // indices are already global.
  if (shards_.size() == 1) {
    router_sink_->IncrementCounter("router.batches", 1);
    router_sink_->IncrementCounter("router.shard_queries", queries.size());
    router_sink_->Observe("router.shard_batch_size",
                          static_cast<double>(queries.size()));
    return async ? shards_[0]->SearchAllAsync(queries, std::move(on_snippet),
                                              barrier)
                 : shards_[0]->SearchAll(queries);
  }

  // Split the batch by routing key. Sub-batches keep input order, so a
  // shard sees its queries exactly as a single engine would have (dedup
  // keeps first-occurrence semantics).
  std::vector<std::vector<std::string>> sub_queries(shards_.size());
  std::vector<std::vector<size_t>> sub_indices(shards_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t shard = ShardOfKey(NormalizedQueryKey(queries[i]), shards_.size());
    sub_queries[shard].push_back(queries[i]);
    sub_indices[shard].push_back(i);
  }

  router_sink_->IncrementCounter("router.batches", 1);
  router_sink_->IncrementCounter("router.shard_queries", queries.size());
  std::vector<size_t> occupied;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (sub_queries[s].empty()) continue;
    occupied.push_back(s);
    router_sink_->Observe("router.shard_batch_size",
                          static_cast<double>(sub_queries[s].size()));
  }

  // Run every occupied shard's sub-batch concurrently on the router's
  // persistent dispatch pool (the caller thread participates, so
  // progress is guaranteed even under concurrent batches). Shards are
  // shared-nothing (own pool, own cache, own sink), so this is pure
  // fan-out. For the async path this covers the translation phase only —
  // each shard registers its callbacks on `barrier` before its SearchAll
  // returns, so by the time we return the barrier's expectation is
  // complete and snippets keep streaming from every shard's pool.
  std::vector<std::vector<Result<SearchOutput>>> sub_outputs(shards_.size());
  auto run_shard = [&](size_t s) {
    std::span<const std::string> sub(sub_queries[s]);
    if (async) {
      SnippetCallback remapped;
      if (on_snippet) {
        // By value: the callback outlives this call — snippets stream
        // from the shard's pool long after the sub-batch vectors die.
        remapped = [to_global = sub_indices[s], callback = on_snippet](
                       size_t query_index, size_t result_index,
                       const SodaResult& result) {
          callback(to_global[query_index], result_index, result);
        };
      }
      sub_outputs[s] =
          shards_[s]->SearchAllAsync(sub, std::move(remapped), barrier);
    } else {
      sub_outputs[s] = shards_[s]->SearchAll(sub);
    }
  };
  dispatch_pool_.ParallelFor(occupied.size(),
                             [&](size_t k) { run_shard(occupied[k]); });

  // Re-merge into input order.
  std::vector<Result<SearchOutput>> outputs(
      queries.size(), Result<SearchOutput>(Status::Internal("unrouted query")));
  for (size_t s : occupied) {
    for (size_t k = 0; k < sub_indices[s].size(); ++k) {
      outputs[sub_indices[s][k]] = std::move(sub_outputs[s][k]);
    }
  }
  return outputs;
}

Result<SearchOutput> ShardedSodaEngine::SearchAsync(
    const std::string& query, SnippetCallback on_snippet,
    SnippetBarrier* barrier) const {
  size_t shard = ShardOfKey(NormalizedQueryKey(query), shards_.size());
  router_sink_->IncrementCounter("router.shard_queries", 1);
  return shards_[shard]->SearchAsync(query, std::move(on_snippet), barrier);
}

// ---------------------------------------------------------------------------
// Aggregated surfaces
// ---------------------------------------------------------------------------

CacheStats ShardedSodaEngine::cache_stats() const {
  CacheStats total;
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    total += shard->cache_stats();
  }
  return total;
}

void ShardedSodaEngine::ClearCache() const {
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    shard->ClearCache();
  }
}

size_t ShardedSodaEngine::InvalidateWhere(
    const std::function<bool(const std::string&)>& pred) const {
  size_t erased = 0;
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    erased += shard->InvalidateWhere(pred);
  }
  router_sink_->IncrementCounter("router.invalidations", erased);
  return erased;
}

size_t ShardedSodaEngine::ApplyBaseDataDelta(const ChangeEvent& event) {
  size_t inserted = 0;
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    inserted += shard->ApplyBaseDataDelta(event);
  }
  return inserted;
}

void ShardedSodaEngine::set_freshness(FreshnessManager* freshness) {
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    shard->set_freshness(freshness);
  }
}

void ShardedSodaEngine::set_metrics_sink(std::shared_ptr<MetricsSink> sink) {
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    shard->set_metrics_sink(sink);
  }
}

size_t ShardedSodaEngine::queue_depth() const {
  size_t depth = dispatch_pool_.queue_depth();
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    depth += shard->queue_depth();
  }
  return depth;
}

MetricsSnapshot ShardedSodaEngine::metrics_snapshot() const {
  MetricsSnapshot merged = router_sink_->Snapshot();
  for (const std::unique_ptr<SodaEngine>& shard : shards_) {
    merged.MergeFrom(shard->metrics_snapshot());
  }
  return merged;
}

}  // namespace soda
