#include "core/session.h"

#include "common/strings.h"

namespace soda {

Result<SearchOutput> SodaSession::Run() {
  Result<SearchOutput> output =
      service_->SearchSession(query_, constraints_, &plan_);
  if (output.ok()) last_stages_skipped_ = output->stages_skipped;
  return output;
}

Result<SearchOutput> SodaSession::Ask(const std::string& query) {
  query_ = query;
  constraints_ = SessionConstraints{};
  plan_.reset();
  return Run();
}

Result<SearchOutput> SodaSession::Refine() {
  if (query_.empty()) {
    return Status::InvalidArgument("Refine before any Ask: no question held");
  }
  ++refines_;
  return Run();
}

Result<SearchOutput> SodaSession::Refine(const std::string& query) {
  query_ = query;
  return Refine();
}

SodaSession& SodaSession::PinTable(const std::string& table) {
  constraints_.PinTable(table);
  return *this;
}

SodaSession& SodaSession::UnpinTable(const std::string& table) {
  constraints_.UnpinTable(table);
  return *this;
}

SodaSession& SodaSession::BanTable(const std::string& table) {
  constraints_.BanTable(table);
  return *this;
}

SodaSession& SodaSession::UnbanTable(const std::string& table) {
  constraints_.UnbanTable(table);
  return *this;
}

SodaSession& SodaSession::BindTerm(const std::string& term,
                                   const std::string& entry_key) {
  constraints_.Bind(term, entry_key);
  return *this;
}

SodaSession& SodaSession::UnbindTerm(const std::string& term) {
  constraints_.Unbind(term);
  return *this;
}

SodaSession& SodaSession::ClearConstraints() {
  constraints_ = SessionConstraints{};
  return *this;
}

std::vector<std::pair<std::string, std::string>> SodaSession::TermCandidates(
    const std::string& term) const {
  std::vector<std::pair<std::string, std::string>> candidates;
  if (plan_ == nullptr) return candidates;
  for (const LookupTerm& lookup_term : plan_->lookup.terms) {
    if (!EqualsFolded(lookup_term.phrase, term)) continue;
    candidates.reserve(lookup_term.candidates.size());
    for (const EntryPoint& candidate : lookup_term.candidates) {
      candidates.emplace_back(EntryPointKey(candidate), candidate.ToString());
    }
    break;
  }
  return candidates;
}

}  // namespace soda
