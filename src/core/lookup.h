// Step 1 - Lookup and Step 2 - Rank and top N (paper Section 3).
//
// The lookup step segments every keyword run with the longest-word-
// combination algorithm, finds all entry points per phrase, binds
// comparison / between operators to their neighboring phrases, and forms
// the combinatorial product of entry-point choices ("the output of the
// lookup step is a combinatorial product of all lookup terms", Figure 5).
// Ranking scores each interpretation by the metadata location of its entry
// points and keeps the top N.

#ifndef SODA_CORE_LOOKUP_H_
#define SODA_CORE_LOOKUP_H_

#include <string>
#include <vector>

#include "core/classification.h"
#include "core/config.h"
#include "core/entry_point.h"
#include "core/input_query.h"
#include "sql/value.h"

namespace soda {

/// A comparison (or between range) bound to a keyword phrase.
struct OperatorBinding {
  size_t term_index = 0;  // index into LookupOutput::terms — the LHS phrase
  CompareOp op = CompareOp::kEq;
  Value literal;
  bool is_between = false;
  Value literal_high;  // upper bound when is_between
};

/// One keyword phrase with all its candidate entry points.
struct LookupTerm {
  std::string phrase;
  std::vector<EntryPoint> candidates;
  /// True when an operator binding references this term — it then
  /// contributes a predicate instead of a plain presence match.
  bool has_operator = false;
};

/// One element of the combinatorial product: a choice of entry point per
/// term.
struct Interpretation {
  std::vector<size_t> choice;  // candidate index per term
  double score = 0.0;
};

struct LookupOutput {
  std::vector<LookupTerm> terms;
  std::vector<OperatorBinding> operators;
  std::vector<std::string> ignored_words;
  /// Untruncated combinatorial product — the paper's query complexity
  /// measure (Table 4).
  size_t complexity = 1;
  std::vector<Interpretation> interpretations;
};

class LookupStep {
 public:
  LookupStep(const ClassificationIndex* index, const SodaConfig* config)
      : index_(index), config_(config) {}

  /// Runs lookup on the parsed input. Aggregation / group-by / top-N
  /// elements pass through untouched (the SQL generator handles them).
  /// When `memo` is non-null every classification probe (segmentation,
  /// entry-point lookup, complexity counting) goes through it, so each
  /// distinct phrase is tokenized and scanned at most once per query.
  Result<LookupOutput> Run(const InputQuery& query,
                           ProbeMemo* memo = nullptr) const;

  /// The classification index probes run against (memo construction).
  const ClassificationIndex* index() const { return index_; }

 private:
  const ClassificationIndex* index_;
  const SodaConfig* config_;
};

/// Step 2: scores every interpretation and keeps the best `top_n`,
/// stably ordered by descending score. Returns the kept interpretations.
std::vector<Interpretation> RankAndTopN(const LookupOutput& lookup,
                                        const SodaConfig& config);

/// The ranking weight of one entry point (by metadata layer).
double LayerWeight(MetadataLayer layer, const SodaConfig& config);

}  // namespace soda

#endif  // SODA_CORE_LOOKUP_H_
