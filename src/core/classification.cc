#include "core/classification.h"

#include <algorithm>

#include "common/strings.h"
#include "graph/vocab.h"
#include "text/tokenizer.h"

namespace soda {

std::string ClassificationIndex::PhraseKey(const std::string& text) {
  return Join(Tokenize(text), " ");
}

void ClassificationIndex::Build(const MetadataGraph& graph,
                                const InvertedIndex* base_data) {
  metadata_.clear();
  base_data_ = base_data;

  // Index every text label attached to a node under the label predicates
  // business users may type.
  static const char* kLabelPredicates[] = {
      vocab::kLabel,      vocab::kEntityname, vocab::kAttributename,
      vocab::kTablename,  vocab::kColumnname,
  };
  for (NodeId n = 0; n < static_cast<NodeId>(graph.num_nodes()); ++n) {
    MetadataLayer layer = graph.layer(n);
    if (layer == MetadataLayer::kOther) continue;  // type nodes etc.
    for (const TextEdge& edge : graph.TextEdges(n)) {
      const std::string& predicate = graph.PredicateUri(edge.predicate);
      bool indexable = false;
      for (const char* p : kLabelPredicates) {
        if (predicate == p) {
          indexable = true;
          break;
        }
      }
      if (!indexable) continue;
      std::string key = PhraseKey(edge.text);
      if (key.empty()) continue;
      auto& bucket = metadata_[key];
      // The same node may carry several labels that fold to one key
      // (e.g. columnname "birth_dt" and label "birth dt").
      bool duplicate = false;
      for (const auto& existing : bucket) {
        if (existing.node == n) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      EntryPoint ep;
      ep.kind = EntryPoint::Kind::kMetadataNode;
      ep.node = n;
      ep.layer = layer;
      ep.label = edge.text;
      bucket.push_back(std::move(ep));
    }
  }
}

std::vector<EntryPoint> ClassificationIndex::Lookup(
    const std::string& phrase) const {
  return LookupKey(PhraseKey(phrase));
}

std::vector<EntryPoint> ClassificationIndex::LookupKey(
    const std::string& key) const {
  std::vector<EntryPoint> result;
  if (key.empty()) return result;

  auto it = metadata_.find(key);
  if (it != metadata_.end()) {
    result = it->second;
  }
  if (base_data_ != nullptr) {
    for (const ValuePosting& posting : base_data_->LookupPhrase(key)) {
      EntryPoint ep;
      ep.kind = EntryPoint::Kind::kBaseData;
      ep.layer = MetadataLayer::kBaseData;
      ep.table = posting.table;
      ep.column = posting.column;
      ep.value = posting.value;
      ep.row_count = posting.row_count;
      ep.label = posting.value;
      result.push_back(std::move(ep));
    }
  }
  return result;
}

size_t ClassificationIndex::CountMatches(const std::string& phrase) const {
  return CountKey(PhraseKey(phrase));
}

size_t ClassificationIndex::CountKey(const std::string& key) const {
  if (key.empty()) return 0;
  size_t count = 0;
  auto it = metadata_.find(key);
  if (it != metadata_.end()) count += it->second.size();
  if (base_data_ != nullptr) count += base_data_->CountPhrase(key);
  return count;
}

bool ClassificationIndex::Matches(const std::string& phrase) const {
  return MatchesKey(PhraseKey(phrase));
}

bool ClassificationIndex::MatchesKey(const std::string& key) const {
  if (key.empty()) return false;
  if (metadata_.count(key) > 0) return true;
  return base_data_ != nullptr && base_data_->ContainsPhrase(key);
}

std::vector<std::string> ClassificationIndex::SegmentKeywords(
    const std::vector<std::string>& words,
    std::vector<std::string>* ignored, ProbeMemo* memo) const {
  std::vector<std::string> phrases;
  size_t i = 0;
  while (i < words.size()) {
    // Longest combination first: try words[i..j] for the largest j.
    bool matched = false;
    for (size_t len = words.size() - i; len >= 1; --len) {
      std::vector<std::string> combo(words.begin() + i,
                                     words.begin() + i + len);
      std::string phrase = Join(combo, " ");
      bool match = memo != nullptr ? memo->Matches(phrase) : Matches(phrase);
      if (match) {
        phrases.push_back(phrase);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      if (ignored != nullptr) ignored->push_back(words[i]);
      ++i;
    }
  }
  return phrases;
}

// ---------------------------------------------------------------------------
// ProbeMemo
// ---------------------------------------------------------------------------

ProbeMemo::Entry& ProbeMemo::EntryFor(const std::string& phrase) {
  auto [it, inserted] = memo_.try_emplace(phrase);
  if (inserted) it->second.key = ClassificationIndex::PhraseKey(phrase);
  return it->second;
}

bool ProbeMemo::Matches(const std::string& phrase) {
  Entry& entry = EntryFor(phrase);
  if (entry.matches >= 0) {
    ++hits_;
    return entry.matches == 1;
  }
  ++misses_;
  bool match = index_->MatchesKey(entry.key);
  entry.matches = match ? 1 : 0;
  if (match) {
    // Accepted phrases get their entry points fetched right after
    // segmentation; materialize now so that Lookup is a memo hit.
    entry.entries = index_->LookupKey(entry.key);
    entry.has_entries = true;
    entry.count = static_cast<ptrdiff_t>(entry.entries.size());
  } else {
    entry.count = 0;
  }
  return match;
}

size_t ProbeMemo::CountMatches(const std::string& phrase) {
  Entry& entry = EntryFor(phrase);
  if (entry.count >= 0) {
    ++hits_;
    return static_cast<size_t>(entry.count);
  }
  ++misses_;
  entry.count = static_cast<ptrdiff_t>(index_->CountKey(entry.key));
  entry.matches = entry.count > 0 ? 1 : 0;
  return static_cast<size_t>(entry.count);
}

std::vector<EntryPoint> ProbeMemo::Lookup(const std::string& phrase) {
  Entry& entry = EntryFor(phrase);
  if (entry.has_entries) {
    ++hits_;
    return entry.entries;
  }
  if (entry.matches == 0) {
    // Known non-match: the entry-point list is empty by definition.
    ++hits_;
    return {};
  }
  ++misses_;
  entry.entries = index_->LookupKey(entry.key);
  entry.has_entries = true;
  entry.count = static_cast<ptrdiff_t>(entry.entries.size());
  entry.matches = entry.entries.empty() ? 0 : 1;
  return entry.entries;
}

}  // namespace soda
