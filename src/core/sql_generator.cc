#include "core/sql_generator.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/strings.h"
#include "graph/vocab.h"

namespace soda {

namespace {

bool ContainsTable(const std::vector<std::string>& tables,
                   const std::string& table) {
  for (const auto& t : tables) {
    if (EqualsFolded(t, table)) return true;
  }
  return false;
}

}  // namespace

Result<SqlGenerator::ResolvedArgument> SqlGenerator::ResolveArgument(
    const std::string& phrase) const {
  const MetadataGraph& graph = *matcher_->graph();
  std::vector<EntryPoint> candidates = classification_->Lookup(phrase);
  if (candidates.empty()) {
    return Status::NotFound("operator argument '" + phrase +
                            "' matches nothing in the metadata");
  }
  // Prefer the candidate that resolves to a column; weight by layer so
  // domain-ontology terms win over raw physical names.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const EntryPoint& a, const EntryPoint& b) {
                     return LayerWeight(a.layer, *config_) >
                            LayerWeight(b.layer, *config_);
                   });
  for (const EntryPoint& candidate : candidates) {
    if (candidate.kind != EntryPoint::Kind::kMetadataNode) continue;
    auto column = ResolvePhysicalColumn(graph, candidate.node);
    if (column.has_value()) {
      ResolvedArgument out;
      out.column = column;
      return out;
    }
  }
  // Entity arguments: count(transactions). Resolve to the entity's first
  // physical table.
  for (const EntryPoint& candidate : candidates) {
    if (candidate.kind != EntryPoint::Kind::kMetadataNode) continue;
    // Walk down: entity -> (implemented_by)* -> table.
    NodeId node = candidate.node;
    for (int hops = 0; hops < 4 && node != kInvalidNode; ++hops) {
      if (graph.HasType(node, vocab::kPhysicalTable)) {
        auto name = TableNameOf(graph, node);
        if (name.has_value()) {
          ResolvedArgument out;
          out.table = name;
          return out;
        }
      }
      node = graph.FirstTarget(node, vocab::kImplementedBy);
    }
  }
  return Status::NotFound("operator argument '" + phrase +
                          "' does not resolve to a column or table");
}

void SqlGenerator::EnsureTable(const std::string& table,
                               std::vector<std::string>* tables,
                               std::vector<JoinEdge>* joins,
                               uint64_t* path_lookups) const {
  if (ContainsTable(*tables, table)) return;
  // Connect the new table to the existing FROM set via a direct path.
  std::vector<JoinEdge> path;
  std::vector<std::string> path_tables;
  if (!tables->empty()) ++*path_lookups;
  if (!tables->empty() &&
      join_graph_->DirectPath(*tables, {table}, &path, &path_tables)) {
    for (const JoinEdge& edge : path) {
      bool duplicate = false;
      for (const JoinEdge& existing : *joins) {
        if ((existing.from == edge.from && existing.to == edge.to) ||
            (existing.from == edge.to && existing.to == edge.from)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) joins->push_back(edge);
    }
    for (const auto& t : path_tables) {
      if (!ContainsTable(*tables, t)) tables->push_back(t);
    }
  }
  if (!ContainsTable(*tables, table)) tables->push_back(table);
}

Result<SelectStatement> SqlGenerator::Generate(
    const InputQuery& query, const TablesOutput& tables,
    const std::vector<GeneratedFilter>& filters,
    MetricsSink* metrics) const {
  SelectStatement stmt;
  uint64_t path_lookups = 0;

  std::vector<std::string> from_tables = tables.tables;
  std::vector<JoinEdge> joins = tables.joins;

  // ---- aggregates --------------------------------------------------------
  struct PlannedAggregate {
    AggFunc func;
    std::optional<PhysicalColumnRef> column;  // nullopt = COUNT(*)
    bool over_entity = false;                 // count(<entity key>)
  };
  std::vector<PlannedAggregate> aggregates;

  for (const InputElement& element : query.elements) {
    if (element.kind != InputElement::Kind::kAggregation) continue;
    PlannedAggregate planned;
    planned.func = element.agg;
    if (element.agg_argument.empty()) {
      // count() — plain row count.
      planned.column = std::nullopt;
    } else {
      SODA_ASSIGN_OR_RETURN(ResolvedArgument arg,
                            ResolveArgument(element.agg_argument));
      if (arg.column.has_value()) {
        planned.column = arg.column;
        EnsureTable(arg.column->table, &from_tables, &joins, &path_lookups);
      } else if (arg.table.has_value()) {
        // count(<entity>) — count the entity's key column (the paper's
        // Query 4 emits count(fi_transactions.id)).
        EnsureTable(*arg.table, &from_tables, &joins, &path_lookups);
        planned.column = PhysicalColumnRef{*arg.table, "id"};
        planned.over_entity = true;
      }
    }
    aggregates.push_back(std::move(planned));
  }

  // Metadata-defined aggregations discovered in Step 3 ("trading volume").
  for (const DiscoveredAggregation& discovered : tables.aggregations) {
    PlannedAggregate planned;
    planned.func = discovered.func;
    planned.column = discovered.column;
    EnsureTable(discovered.column.table, &from_tables, &joins,
                &path_lookups);
    aggregates.push_back(std::move(planned));
  }

  // ---- group by ----------------------------------------------------------
  std::vector<PhysicalColumnRef> group_columns;
  for (const InputElement& element : query.elements) {
    if (element.kind != InputElement::Kind::kGroupBy) continue;
    for (const std::string& phrase : element.group_by_phrases) {
      SODA_ASSIGN_OR_RETURN(ResolvedArgument arg, ResolveArgument(phrase));
      if (!arg.column.has_value()) {
        return Status::InvalidArgument("group by attribute '" + phrase +
                                       "' does not resolve to a column");
      }
      group_columns.push_back(*arg.column);
      EnsureTable(arg.column->table, &from_tables, &joins, &path_lookups);
    }
  }

  // ---- top N -------------------------------------------------------------
  std::optional<int64_t> top_n;
  for (const InputElement& element : query.elements) {
    if (element.kind == InputElement::Kind::kTopN) top_n = element.integer;
  }

  if (from_tables.empty()) {
    return Status::InvalidArgument(
        "no tables discovered for this interpretation");
  }

  // A filter on a table that never made it into FROM would be invalid
  // SQL; pull those tables in (connected via join paths when possible)
  // before assembling the statement.
  for (const GeneratedFilter& filter : filters) {
    EnsureTable(filter.column.table, &from_tables, &joins, &path_lookups);
  }

  // ---- assemble -----------------------------------------------------------
  stmt.from.reserve(from_tables.size());
  for (const auto& table : from_tables) {
    stmt.from.push_back(TableRef{table, ""});
  }
  for (const JoinEdge& join : joins) {
    Predicate p;
    p.lhs = Expr::MakeColumn(join.from.table, join.from.column);
    p.op = CompareOp::kEq;
    p.rhs = Expr::MakeColumn(join.to.table, join.to.column);
    stmt.where.push_back(std::move(p));
  }
  for (const GeneratedFilter& filter : filters) {
    stmt.where.push_back(filter.ToPredicate());
  }

  if (!aggregates.empty()) {
    bool count_over_entity = false;
    for (const PlannedAggregate& agg : aggregates) {
      Expr e;
      if (agg.column.has_value()) {
        e = Expr::MakeAggregate(
            agg.func, ColumnRef{agg.column->table, agg.column->column});
      } else {
        e = Expr::MakeCountStar();
      }
      stmt.items.push_back(SelectItem{std::move(e), ""});
      if (agg.over_entity && agg.func == AggFunc::kCount) {
        count_over_entity = true;
      }
    }
    for (const PhysicalColumnRef& column : group_columns) {
      stmt.items.push_back(SelectItem{
          Expr::MakeColumn(column.table, column.column), ""});
      stmt.group_by.push_back(ColumnRef{column.table, column.column});
    }
    // Ranking semantics: top-N requests and entity counts order by the
    // first aggregate, descending (paper Query 4 adds ORDER BY count()
    // DESC when ranking organizations by trading volume).
    if ((top_n.has_value() || count_over_entity) && !group_columns.empty()) {
      OrderItem order;
      order.expr = stmt.items[0].expr;
      order.descending = true;
      stmt.order_by.push_back(std::move(order));
    }
    if (top_n.has_value() && group_columns.empty() && !stmt.items.empty()) {
      // "top 10 sum(x)" without grouping still limits output rows.
    }
  } else {
    stmt.items.push_back(SelectItem{Expr::MakeStar(), ""});
    if (top_n.has_value()) {
      // Without an aggregate there is nothing to rank by; the paper
      // resolves "top 10 trading volume" through the metadata
      // aggregation, which lands in the aggregate branch above.
    }
  }
  if (top_n.has_value()) stmt.limit = top_n;

  if (metrics != nullptr && path_lookups > 0 &&
      join_graph_->has_path_closure()) {
    metrics->IncrementCounter("closure.path_lookups", path_lookups);
  }
  return stmt;
}

}  // namespace soda
