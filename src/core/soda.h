// SODA — Search over DAta warehouse.
//
// The public entry point of the library. A Soda instance binds together a
// storage catalog (the base data), the extended metadata graph, the graph
// pattern library, the inverted index, and the pipeline configuration, and
// answers keyword + operator queries with a ranked list of executable SQL
// statements plus result snippets.
//
// Architecture (this layer and up):
//
//   ┌────────────────────────────────────────────────────────────────┐
//   │ SodaEngine (core/engine.h)                                     │
//   │   LRU result cache · fixed-size worker pool · parallel fan-out │
//   └──────────────────────────┬─────────────────────────────────────┘
//                              │ shares the stage list of
//   ┌──────────────────────────▼─────────────────────────────────────┐
//   │ Soda (this header)        serial driver over the stage list    │
//   │   owns the indexes (inverted, classification, join graph), the │
//   │   step objects, and the ordered PipelineStage adapters         │
//   └──────────────────────────┬─────────────────────────────────────┘
//                              │ runs
//   ┌──────────────────────────▼─────────────────────────────────────┐
//   │ Pipeline (core/pipeline.h) — paper Figure 4 as stages          │
//   │   LookupStage → RankStage → TablesStage → FiltersStage →       │
//   │   SqlStage, over one QueryContext; per-interpretation stages   │
//   │   are independent per InterpretationState, which is what the   │
//   │   engine exploits for parallelism. FinalizeOutput merges in    │
//   │   ranked order and dedups via CanonicalKey, so serial and      │
//   │   concurrent execution produce byte-identical result lists.    │
//   └────────────────────────────────────────────────────────────────┘
//
// Typical use (serial, library-style):
//
//   soda::Database db;
//   soda::MetadataGraph graph;
//   model.Compile(&graph, &db);          // WarehouseModel
//   ... populate base data ...
//   auto soda = soda::Soda::Create(&db, &graph,
//                                  soda::CreditSuissePatternLibrary(), {});
//   auto output = (*soda)->Search("customers Zürich financial instruments");
//   for (const auto& result : output->results) {
//     std::cout << result.sql << "\n" << result.snippet.ToAsciiTable();
//   }
//
// For a service-style deployment (shared across threads, cached), wrap the
// same arguments in a soda::SodaEngine instead — see core/engine.h.

#ifndef SODA_CORE_SODA_H_
#define SODA_CORE_SODA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classification.h"
#include "core/closure.h"
#include "core/config.h"
#include "core/filters_step.h"
#include "core/input_query.h"
#include "core/join_graph.h"
#include "core/lookup.h"
#include "core/pipeline.h"
#include "core/sql_generator.h"
#include "core/tables_step.h"
#include "pattern/library.h"
#include "pattern/matcher.h"
#include "sql/executor.h"
#include "sql/result_set.h"
#include "text/inverted_index.h"

namespace soda {

class Soda {
 public:
  /// Builds the search engine over an existing catalog + metadata graph,
  /// propagating any index-construction failure (e.g. a malformed join
  /// pattern) instead of deferring it. `db` and `graph` must outlive the
  /// returned instance. This is the only way to construct a Soda — a
  /// returned instance is always fully initialized, so Search never has
  /// to report a construction-time failure after the fact.
  ///
  /// `shared_closure` (optional) supplies an entry-point traversal memo
  /// shared with other Soda instances — the sharded router passes one
  /// instance to every replica so any shard's traffic warms the whole
  /// fleet. Sharers MUST be built over the same metadata graph, the
  /// same pattern library, and the same traversal config
  /// (max_traversal_depth): cached closures are keyed by NodeId only,
  /// so a mismatched sharer would silently serve another instance's
  /// traversal results. When omitted and config.enable_closures is on,
  /// a private closure is created here.
  static Result<std::unique_ptr<Soda>> Create(
      const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
      SodaConfig config,
      std::shared_ptr<EntryPointClosure> shared_closure = nullptr);

  /// Runs the five-step pipeline on a query string: the ordered stage
  /// list from stages(), executed serially, followed by snippet
  /// execution. Thread-safe: Search is const and all mutable state lives
  /// in the per-call QueryContext.
  Result<SearchOutput> Search(const std::string& query) const {
    return Search(query, nullptr);
  }

  /// As Search, additionally streaming per-stage latency samples
  /// ("stage.<name>.ms", including "stage.execute.ms") and snippet
  /// outcome counters into `metrics`. nullptr disables observation. This
  /// is the library-style hook for deployments that want fleet metrics
  /// without the engine; the SodaEngine wires the same sink through its
  /// own concurrent drivers.
  Result<SearchOutput> Search(const std::string& query,
                              MetricsSink* metrics) const;

  /// The ordered stage list (lookup, rank, tables, filters, sql). The
  /// SodaEngine drives these same stages concurrently.
  const std::vector<const PipelineStage*>& stages() const { return stages_; }

  /// Executes `statement` with the snippet row limit and stores the
  /// outcome on `result`. Used by both drivers after the merge. When
  /// `metrics` is set, executor-level distributions ("executor.rows",
  /// "executor.tables") are observed per executed statement.
  void ExecuteSnippet(SodaResult* result,
                      MetricsSink* metrics = nullptr) const;

  /// Incremental base-data maintenance: applies one storage ChangeEvent
  /// to the inverted index in place (the classification index resolves
  /// base-data phrases through it, so lookups see the appended values
  /// immediately; the metadata graph, join graph and closures stay
  /// untouched — only base data moves). Returns the number of new
  /// posting entries. MUST be called under the owning database's change
  /// log exclusive data lock — in practice, from a ChangeListener such
  /// as the FreshnessManager (core/freshness.h).
  size_t ApplyBaseDataDelta(const ChangeEvent& event) {
    return inverted_index_.ApplyDelta(event);
  }

  /// Exposed internals for benches, tests and the example applications.
  const ClassificationIndex& classification() const {
    return classification_;
  }
  const InvertedIndex& inverted_index() const { return inverted_index_; }
  const JoinGraph& join_graph() const { return join_graph_; }
  const PatternMatcher& matcher() const { return *matcher_; }
  const LookupStep& lookup_step() const { return *lookup_step_; }
  const TablesStep& tables_step() const { return *tables_step_; }
  const FiltersStep& filters_step() const { return *filters_step_; }
  const SqlGenerator& generator() const { return *generator_; }
  const Executor& executor() const { return *executor_; }
  const SodaConfig& config() const { return config_; }
  const Database* database() const { return db_; }
  const MetadataGraph* graph() const { return graph_; }

  /// The Step-3 traversal memo (nullptr when closures are disabled).
  /// Shareable across Soda instances built over the same graph.
  const std::shared_ptr<EntryPointClosure>& entry_point_closure() const {
    return closure_;
  }

 private:
  /// Index construction happens here (the paper reports it separately
  /// from query processing); any failure lands in init_status_, which
  /// Create checks before handing the instance out.
  Soda(const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
       SodaConfig config, std::shared_ptr<EntryPointClosure> shared_closure);

  const Database* db_;
  const MetadataGraph* graph_;
  PatternLibrary patterns_;
  SodaConfig config_;
  Status init_status_;

  InvertedIndex inverted_index_;
  ClassificationIndex classification_;
  std::unique_ptr<PatternMatcher> matcher_;
  JoinGraph join_graph_;
  std::shared_ptr<EntryPointClosure> closure_;  // nullptr when disabled
  std::unique_ptr<LookupStep> lookup_step_;
  std::unique_ptr<TablesStep> tables_step_;
  std::unique_ptr<FiltersStep> filters_step_;
  std::unique_ptr<SqlGenerator> generator_;
  std::unique_ptr<Executor> executor_;

  // The stage adapters, in pipeline order, and the list handed to the
  // drivers. Stages only hold pointers to the step objects above.
  std::unique_ptr<LookupStage> lookup_stage_;
  std::unique_ptr<RankStage> rank_stage_;
  std::unique_ptr<TablesStage> tables_stage_;
  std::unique_ptr<FiltersStage> filters_stage_;
  std::unique_ptr<SqlStage> sql_stage_;
  std::vector<const PipelineStage*> stages_;
};

}  // namespace soda

#endif  // SODA_CORE_SODA_H_
