// SODA — Search over DAta warehouse.
//
// The public entry point of the library. A Soda instance binds together a
// storage catalog (the base data), the extended metadata graph, the graph
// pattern library, the inverted index, and the pipeline configuration, and
// answers keyword + operator queries with a ranked list of executable SQL
// statements plus result snippets (paper Figure 4):
//
//   query: keywords + operators + values
//     -> lookup: find entry points
//     -> rank and top N: select best N results
//     -> tables: determine tables and joins
//     -> filters: collect filters
//     -> SQL: generate SQL
//   result: scored SQL statements
//
// Typical use:
//
//   soda::Database db;
//   soda::MetadataGraph graph;
//   model.Compile(&graph, &db);          // WarehouseModel
//   ... populate base data ...
//   soda::Soda soda(&db, &graph, soda::CreditSuissePatternLibrary(), {});
//   auto output = soda.Search("customers Zürich financial instruments");
//   for (const auto& result : output->results) {
//     std::cout << result.sql << "\n" << result.snippet.ToAsciiTable();
//   }

#ifndef SODA_CORE_SODA_H_
#define SODA_CORE_SODA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classification.h"
#include "core/config.h"
#include "core/filters_step.h"
#include "core/input_query.h"
#include "core/join_graph.h"
#include "core/lookup.h"
#include "core/sql_generator.h"
#include "core/tables_step.h"
#include "pattern/library.h"
#include "pattern/matcher.h"
#include "sql/executor.h"
#include "sql/result_set.h"
#include "text/inverted_index.h"

namespace soda {

/// One ranked candidate: an executable SQL statement with provenance.
struct SodaResult {
  SelectStatement statement;
  std::string sql;          // rendered statement
  double score = 0.0;       // ranking score of the interpretation
  std::string explanation;  // entry points, e.g. "customers @ domain ontology"
  bool fully_connected = true;
  /// Result snippet (up to config.snippet_rows rows) when execution is on.
  ResultSet snippet;
  bool executed = false;
  Status execution_status;
};

/// Per-step wall-clock timings in milliseconds (paper Section 5.2.2
/// splits end-to-end time into lookup, rank, tables, SQL and grouping).
struct StepTimings {
  double lookup_ms = 0.0;
  double rank_ms = 0.0;
  double tables_ms = 0.0;
  double filters_ms = 0.0;
  double sql_ms = 0.0;
  double execute_ms = 0.0;

  double soda_total_ms() const {
    return lookup_ms + rank_ms + tables_ms + filters_ms + sql_ms;
  }
};

/// Everything a search produced.
struct SearchOutput {
  InputQuery parsed;
  size_t complexity = 1;  // lookup combinatorics (paper Table 4)
  std::vector<std::string> ignored_words;
  std::vector<SodaResult> results;
  StepTimings timings;
};

class Soda {
 public:
  /// Builds the search engine over an existing catalog + metadata graph.
  /// The inverted index over `db` and the classification index are built
  /// here (the paper reports index construction separately from query
  /// processing). `db` and `graph` must outlive the Soda instance.
  Soda(const Database* db, const MetadataGraph* graph,
       PatternLibrary patterns, SodaConfig config);

  /// Runs the five-step pipeline on a query string.
  Result<SearchOutput> Search(const std::string& query) const;

  /// Exposed internals for benches, tests and the example applications.
  const ClassificationIndex& classification() const {
    return classification_;
  }
  const InvertedIndex& inverted_index() const { return inverted_index_; }
  const JoinGraph& join_graph() const { return join_graph_; }
  const PatternMatcher& matcher() const { return *matcher_; }
  const TablesStep& tables_step() const { return *tables_step_; }
  const SodaConfig& config() const { return config_; }
  const Database* database() const { return db_; }
  const MetadataGraph* graph() const { return graph_; }

 private:
  const Database* db_;
  const MetadataGraph* graph_;
  PatternLibrary patterns_;
  SodaConfig config_;

  InvertedIndex inverted_index_;
  ClassificationIndex classification_;
  std::unique_ptr<PatternMatcher> matcher_;
  JoinGraph join_graph_;
  std::unique_ptr<LookupStep> lookup_step_;
  std::unique_ptr<TablesStep> tables_step_;
  std::unique_ptr<FiltersStep> filters_step_;
  std::unique_ptr<SqlGenerator> generator_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace soda

#endif  // SODA_CORE_SODA_H_
