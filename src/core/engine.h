// SodaEngine — the concurrent, cached service layer over the pipeline.
//
// Soda::Search runs the Figure 4 stage list serially. The engine wraps
// the same Soda instance for service-style deployments (think Sigma-style
// interactive query construction over a warehouse, many users hammering
// the same schema):
//
//   1. an LRU result cache keyed on the whitespace-normalized query
//      string (case is kept: comparison literals are case-sensitive) —
//      repeated
//      business queries (dashboards, saved searches) short-circuit the
//      whole pipeline; hit/miss counters are surfaced on every response;
//   2. a fixed-size worker pool that fans the ranked interpretations out
//      across Steps 3-5 (tables/filters/SQL are independent per
//      interpretation — the serial per-interpretation loop is the latency
//      bottleneck on multi-interpretation queries) and parallelizes
//      snippet execution across result candidates;
//   3. a deterministic merge: states are recombined in ranked order and
//      deduplicated with CanonicalKey, so the ranked SQL list is
//      byte-identical whether num_threads is 1 or N.
//
// The engine is safe to share across caller threads: Search is const,
// the cache is internally locked, and the underlying step objects are
// stateless (the pattern matcher's memoization is mutex-guarded).

#ifndef SODA_CORE_ENGINE_H_
#define SODA_CORE_ENGINE_H_

#include <memory>
#include <string>

#include "common/lru_cache.h"
#include "common/thread_pool.h"
#include "core/soda.h"

namespace soda {

class SodaEngine {
 public:
  /// Builds the underlying Soda (propagating index-construction errors),
  /// the worker pool (config.num_threads; 0 = hardware concurrency) and
  /// the result cache (config.cache_capacity; 0 disables).
  static Result<std::unique_ptr<SodaEngine>> Create(
      const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
      SodaConfig config);

  /// Wraps an already-constructed Soda.
  explicit SodaEngine(std::unique_ptr<Soda> soda);

  /// Cached, concurrent search. On a cache hit the stored output is
  /// copied with `from_cache` set; on a miss the pipeline runs with
  /// Steps 3-5 fanned out across the pool. Every response carries the
  /// engine-lifetime cache counters and the pool width.
  Result<SearchOutput> Search(const std::string& query) const;

  /// Cache observability and control.
  CacheStats cache_stats() const { return cache_.stats(); }
  void ClearCache() const { cache_.Clear(); }

  /// Effective parallelism: worker count, or 1 when running inline.
  size_t num_threads() const;

  const Soda& soda() const { return *soda_; }

 private:
  std::unique_ptr<Soda> soda_;
  mutable ThreadPool pool_;
  mutable LruCache<std::string, SearchOutput> cache_;
};

}  // namespace soda

#endif  // SODA_CORE_ENGINE_H_
