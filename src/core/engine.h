// SodaEngine — the concurrent, cached, observable service layer over the
// pipeline.
//
// Soda::Search runs the Figure 4 stage list serially. The engine wraps
// the same Soda instance for service-style deployments (think Sigma-style
// interactive query construction over a warehouse, many users hammering
// the same schema):
//
//   1. an LRU result cache keyed on the whitespace-normalized query
//      string (case is kept: comparison literals are case-sensitive) —
//      repeated business queries (dashboards, saved searches)
//      short-circuit the whole pipeline; hit/miss counters are surfaced
//      on every response;
//   2. a fixed-size worker pool that fans the ranked interpretations out
//      across Steps 3-5 (tables/filters/SQL are independent per
//      interpretation) and parallelizes snippet execution across result
//      candidates;
//   3. a deterministic merge: states are recombined in ranked order and
//      deduplicated with CanonicalKey, so the ranked SQL list is
//      byte-identical whether num_threads is 1 or N;
//   4. a batched front door — SearchAll admits a whole dashboard refresh
//      at once, dedups identical normalized queries inside the batch
//      (Steps 1-5 run once per unique query; repeats cost one cache hit),
//      and flattens every (query, interpretation) pair into one shared
//      task list so the pool load-balances across the batch;
//   5. async snippet streaming — SearchAsync/SearchAllAsync return the
//      translated, ranked SQL immediately and deliver each executed
//      snippet through a SnippetCallback as the pool finishes it, with a
//      SnippetBarrier as the deterministic completion point;
//   6. pluggable observability — every stage latency, cache hit/miss,
//      batch dedup, snippet outcome and queue-depth sample flows into a
//      MetricsSink (default: in-memory counters + histograms, snapshot
//      via metrics_snapshot());
//   7. interactive sessions — Search takes SessionConstraints (cached
//      under ConstrainedCacheKey), and SearchSession captures/resumes a
//      TranslationPlan so a session's Refine re-runs only the stages a
//      constraint change can affect (core/service.h, core/session.h).
//
// The engine is safe to share across caller threads: all entry points are
// const, the cache and sink are internally locked, and the underlying
// step objects are stateless (the pattern matcher's memoization is
// mutex-guarded).

#ifndef SODA_CORE_ENGINE_H_
#define SODA_CORE_ENGINE_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/service.h"
#include "core/soda.h"

namespace soda {

class FreshnessManager;

/// The engine's cache key and the sharded router's routing key:
/// whitespace runs collapsed to single spaces, ends trimmed. Case is NOT
/// folded — comparison literals ("family name = Meier") compare
/// case-sensitively in the executor, so differently-cased queries can
/// have genuinely different answers. Exposed so the router, the
/// invalidation predicates handed to InvalidateWhere, and the tests all
/// agree on exactly the bytes that get hashed and cached. Constrained
/// answers extend this with the constraint fingerprint — see
/// ConstrainedCacheKey (core/service.h).
std::string NormalizedQueryKey(const std::string& query);

class SodaEngine : public SodaService {
 public:
  /// Builds the underlying Soda (propagating index-construction errors),
  /// the worker pool (config.num_threads; 0 = hardware concurrency) and
  /// the result cache (config.cache_capacity; 0 disables).
  /// `shared_closure` (optional) is forwarded to Soda::Create — the
  /// sharded router hands every replica the same traversal memo.
  static Result<std::unique_ptr<SodaEngine>> Create(
      const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
      SodaConfig config,
      std::shared_ptr<EntryPointClosure> shared_closure = nullptr);

  /// Wraps an already-constructed Soda.
  explicit SodaEngine(std::unique_ptr<Soda> soda);

  using SodaService::Search;
  using SodaService::SearchAll;

  /// Cached, concurrent search under `constraints` (empty = classic
  /// behavior). On a cache hit the stored output is copied with
  /// `from_cache` set; on a miss the pipeline runs with Steps 3-5 fanned
  /// out across the pool. Every response carries the engine-lifetime
  /// cache counters and the pool width.
  Result<SearchOutput> Search(
      const std::string& query,
      const SessionConstraints& constraints) const override;

  /// Session search: Search + TranslationPlan capture/resume — see
  /// SodaService::SearchSession for the contract and the stage-skip
  /// matrix.
  Result<SearchOutput> SearchSession(
      const std::string& query, const SessionConstraints& constraints,
      std::shared_ptr<TranslationPlan>* plan) const override;

  /// Batched search: one dashboard refresh in, per-query outputs out, in
  /// input order. Identical normalized queries inside the batch are
  /// deduplicated before the cache is touched — the pipeline runs once
  /// per unique query and repeats are booked as one miss + N-1 hits.
  /// Step-1/2 lookup runs once per unique query across the pool, then
  /// every (query, interpretation) pair joins one flat task list, so a
  /// batch of narrow queries parallelizes as well as one wide query.
  /// Per-query failures (e.g. a malformed query) error only their own
  /// slot. Results are byte-identical to N independent Search calls at
  /// any thread count.
  std::vector<Result<SearchOutput>> SearchAll(
      std::span<const std::string> queries) const override;

  /// Async search: returns the translated, ranked SQL immediately —
  /// results carry executed=false and empty snippets (unless served from
  /// cache, which already holds them) — then executes snippets on the
  /// pool, delivering each through `on_snippet` exactly once per result.
  /// `barrier` (required) is the completion point; once the last snippet
  /// of a query lands, the fully materialized output is inserted into
  /// the result cache. query_index is always 0 for this entry point.
  Result<SearchOutput> SearchAsync(const std::string& query,
                                   SnippetCallback on_snippet,
                                   SnippetBarrier* barrier) const override;

  /// Batched async search: SearchAll's dedup/amortization for the
  /// translation phase, snippet streaming for the execution phase. Each
  /// input index receives exactly one callback per result in its output;
  /// deduplicated repeats share one snippet execution but still get
  /// their own callbacks (with their own query_index).
  std::vector<Result<SearchOutput>> SearchAllAsync(
      std::span<const std::string> queries, SnippetCallback on_snippet,
      SnippetBarrier* barrier) const override;

  /// Cache observability and control.
  CacheStats cache_stats() const override { return cache_.stats(); }
  void ClearCache() const override { cache_.Clear(); }

  /// Keyed cache invalidation: evicts every cached answer whose
  /// normalized query key (see NormalizedQueryKey) satisfies `pred`, and
  /// returns how many entries were dropped. This is the base-data update
  /// hook for mutable warehouses — on a table refresh, evict the queries
  /// that mention it instead of clearing the whole cache. Safe to call
  /// concurrently with Search traffic: the predicate runs under the
  /// cache lock (keep it cheap; it must not call back into the engine),
  /// and in-flight readers keep their payloads alive. Note async
  /// streaming inserts into the cache after its barrier drains, so
  /// invalidate after Wait() to cover in-flight async answers.
  size_t InvalidateWhere(
      const std::function<bool(const std::string&)>& pred) const override;

  /// Incremental base-data maintenance: forwards one storage ChangeEvent
  /// to the underlying Soda's inverted index. MUST run under the
  /// database change log's exclusive data lock (i.e. from a
  /// ChangeListener) — every serving path holds the shared side for its
  /// whole serve, so the delta can never interleave with a probe.
  /// Returns the number of new posting entries.
  size_t ApplyBaseDataDelta(const ChangeEvent& event) override {
    return soda_->ApplyBaseDataDelta(event);
  }

  /// Registers the freshness manager this engine reports cache inserts
  /// to: each materialized answer's (normalized key, dependency terms,
  /// referenced tables) triple is recorded so storage mutations can
  /// invalidate exactly the affected keys. Install before serving
  /// traffic (entries cached earlier have no recorded dependencies).
  /// nullptr detaches. Normally called by FreshnessManager::Track.
  void set_freshness(FreshnessManager* freshness) override {
    freshness_ = freshness;
  }

  /// Replaces the metrics sink (statsd/Prometheus exporters plug in
  /// here). Not thread-safe with respect to in-flight searches — install
  /// the sink before serving traffic. Passing nullptr restores the
  /// built-in in-memory sink.
  void set_metrics_sink(std::shared_ptr<MetricsSink> sink) override;

  /// The active sink.
  MetricsSink* metrics_sink() const { return sink_.get(); }

  /// Snapshot of the built-in in-memory sink. When a custom sink is
  /// installed the built-in one stops receiving events and this freezes;
  /// snapshot the custom sink through its own interface instead.
  MetricsSnapshot metrics_snapshot() const override {
    return default_sink_->Snapshot();
  }

  /// Effective parallelism: worker count, or 1 when running inline.
  size_t num_threads() const override;

  /// Worker-pool backlog (see SodaService::queue_depth).
  size_t queue_depth() const override { return pool_.queue_depth(); }

  const Soda& soda() const { return *soda_; }

 private:
  struct BatchItem;

  /// Shared core of Search and SearchSession. `plan` == nullptr means a
  /// plain (possibly constrained) search: probe the cache under
  /// ConstrainedCacheKey, run the full pipeline on a miss. With a plan
  /// slot the engine additionally resumes from a still-fresh matching
  /// plan — skipping Step 1 (bindings changed) or Steps 1-4 (pins/bans
  /// only) — and captures a fresh plan into the slot whenever it could
  /// not reuse the held one. Outputs are byte-identical across all
  /// paths.
  Result<SearchOutput> SearchInternal(
      const std::string& query, const SessionConstraints& constraints,
      std::shared_ptr<TranslationPlan>* plan) const;

  /// Whether a captured plan may still be resumed: its valid flag has
  /// not been flipped by a freshness hook, and — when nobody watches it
  /// — the change log has not advanced past its capture point.
  bool PlanStillFresh(const TranslationPlan& plan) const;

  /// Registers a freshly captured plan with the freshness manager so
  /// base-data mutations touching its term vocabulary flip its valid
  /// flag. No-op without a manager.
  void RegisterPlan(const std::shared_ptr<TranslationPlan>& plan) const;

  /// Shared translation core of the batch entry points: normalize +
  /// dedup, probe the cache per unique key, then run Steps 1-2 per miss
  /// and Steps 3-5 over the flattened (miss, interpretation) task list.
  /// Outputs are translated but not executed (`execute` extends the flat
  /// fan-out to snippet execution for the sync path); nothing is written
  /// to the cache — callers insert when their snippets are materialized.
  /// `trace` (the caller's batch-root span context, possibly inactive)
  /// parents one span per unique miss plus the execute fan-out span.
  std::vector<BatchItem> TranslateBatch(std::span<const std::string> queries,
                                        bool execute,
                                        const TraceContext& trace) const;

  /// Expands per-unique BatchItems into per-input-index outputs, booking
  /// dedup repeats as cache hits and stamping the lifetime counters.
  /// `mark_dedup_as_cached` sets from_cache on in-batch repeats — true
  /// for the sync path (repeats are materialized), false for async
  /// (repeats are still-unexecuted translations).
  /// `batch_start` stamps cache-served responses with this call's own
  /// elapsed wall time (computed outputs already carry the batch wall).
  std::vector<Result<SearchOutput>> ExpandBatch(
      std::vector<BatchItem> items, size_t query_count,
      bool mark_dedup_as_cached,
      std::chrono::steady_clock::time_point batch_start) const;

  /// Shared data lock for the serve (empty when the engine has no
  /// database): every entry point takes one before probing the cache and
  /// holds it through its own cache insert, so answers can never be
  /// cached after an invalidation that should have covered them.
  std::shared_lock<std::shared_mutex> ReadGuard() const;

  /// Cache insert + freshness dependency registration, one atom: both
  /// happen under the caller's ReadGuard.
  void CacheInsert(const std::string& key, const SearchOutput& output) const;

  std::unique_ptr<Soda> soda_;
  // Stage sub-lists for session resume, built once in the constructor
  // from soda_->stages() (which owns the stage objects):
  //   rank_on_  — everything after lookup (bindings changed: re-rank)
  //   pre_sql_  — per-interpretation stages before sql (plan capture)
  //   sql_      — sql alone (pins/bans only: regenerate statements)
  std::vector<const PipelineStage*> stages_rank_on_;
  std::vector<const PipelineStage*> stages_pre_sql_;
  std::vector<const PipelineStage*> stages_sql_;
  FreshnessManager* freshness_ = nullptr;
  mutable LruCache<std::string, SearchOutput> cache_;
  std::shared_ptr<InMemoryMetricsSink> default_sink_;
  std::shared_ptr<MetricsSink> sink_;
  // Declared last: the pool's destructor drains queued async snippet
  // tasks, which still touch the cache and the sink above — they must
  // outlive the workers.
  mutable ThreadPool pool_;
};

}  // namespace soda

#endif  // SODA_CORE_ENGINE_H_
