// Entry points: where a keyword was found (paper Step 1 - Lookup).

#ifndef SODA_CORE_ENTRY_POINT_H_
#define SODA_CORE_ENTRY_POINT_H_

#include <cstdint>
#include <string>

#include "graph/metadata_graph.h"

namespace soda {

/// One location in the metadata graph or the base data where a keyword
/// phrase was found.
struct EntryPoint {
  enum class Kind {
    kMetadataNode,  // a node of the metadata graph
    kBaseData,      // a (table, column, value) hit of the inverted index
  };

  Kind kind = Kind::kMetadataNode;

  // kMetadataNode:
  NodeId node = kInvalidNode;
  MetadataLayer layer = MetadataLayer::kOther;

  // kBaseData (layer is kBaseData then):
  std::string table;
  std::string column;
  std::string value;       // the exact stored value, original spelling
  int64_t row_count = 0;

  /// The label/value that matched, for display.
  std::string label;

  std::string ToString() const {
    return label + " @ " + std::string(MetadataLayerName(layer));
  }
};

}  // namespace soda

#endif  // SODA_CORE_ENTRY_POINT_H_
